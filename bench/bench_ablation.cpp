// Ablation benchmarks for the design choices Section III motivates:
//
//   * unit/pure detection on AIGs (Theorems 5/6) on vs. off;
//   * CNF preprocessing (incl. gate detection) on vs. off;
//   * selection of the universal elimination set: MaxSAT-minimum (Eq. 1/2)
//     vs. greedy hitting set vs. eliminating all universals (the strategy
//     of the paper's predecessor [10]).
//
// For each configuration: solved instances, total/mean time on solved, and
// total Theorem-1 eliminations + introduced existential copies (the cost
// the minimum selection is designed to avoid).
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"

using namespace hqs;
using namespace hqs::bench;

namespace {

struct Config {
    const char* name;
    HqsOptions options;
};

struct Tally {
    int solved = 0, timeout = 0, memout = 0, wrong = 0;
    double totalMs = 0;
    std::size_t universalElims = 0;
    std::size_t copies = 0;
    std::size_t peakNodes = 0;
};

} // namespace

int main()
{
    SuiteParams params = suiteParamsFromEnv();
    const std::vector<InstanceSpec> suite = buildSuite(params);

    auto mk = [&](bool pre, bool unitPure, HqsOptions::Selection sel) {
        HqsOptions o;
        o.preprocess = pre;
        o.gateDetection = pre;
        o.unitPure = unitPure;
        o.selection = sel;
        o.deadline = Deadline::unlimited(); // set per instance
        o.nodeLimit = params.hqsNodeLimit;
        return o;
    };
    auto withBackend = [&](HqsOptions o, HqsOptions::Backend b) {
        o.backend = b;
        return o;
    };
    const Config configs[] = {
        {"HQS (full)", mk(true, true, HqsOptions::Selection::MaxSat)},
        {"no unit/pure", mk(true, false, HqsOptions::Selection::MaxSat)},
        {"no preprocessing", mk(false, true, HqsOptions::Selection::MaxSat)},
        {"greedy selection", mk(true, true, HqsOptions::Selection::Greedy)},
        {"eliminate all [10]", mk(true, true, HqsOptions::Selection::All)},
        {"BDD backend [23]", withBackend(mk(true, true, HqsOptions::Selection::MaxSat),
                                         HqsOptions::Backend::BddElimination)},
    };

    std::printf("Ablation study — %zu PEC instances, %.1f s per instance\n\n", suite.size(),
                params.timeoutSeconds);
    std::printf("%-20s %8s %8s %8s %12s %12s %10s %12s\n", "configuration", "solved",
                "TO", "MO", "time[ms]", "Thm1 elims", "copies", "peak nodes");
    std::printf("%.*s\n", 98,
                "--------------------------------------------------------------------------"
                "------------------------");

    int wrongTotal = 0;
    for (const Config& cfg : configs) {
        Tally tally;
        for (const InstanceSpec& spec : suite) {
            const PecInstance inst = makeInstance(spec.family, spec.width, spec.realizable);
            PecEncoding enc = encodePec(inst);
            HqsOptions opts = cfg.options;
            opts.deadline = Deadline::in(params.timeoutSeconds);
            HqsSolver solver(opts);
            Timer t;
            const SolveResult r = solver.solve(std::move(enc.formula));
            const double ms = t.elapsedMilliseconds();
            if (isConclusive(r)) {
                ++tally.solved;
                tally.totalMs += ms;
                if ((r == SolveResult::Sat) != spec.realizable) ++tally.wrong;
            } else if (r == SolveResult::Memout) {
                ++tally.memout;
            } else {
                ++tally.timeout;
            }
            tally.universalElims += solver.stats().universalsEliminated;
            tally.copies += solver.stats().copiesIntroduced;
            tally.peakNodes = std::max(tally.peakNodes, solver.stats().peakConeSize);
        }
        std::printf("%-20s %8d %8d %8d %12.1f %12zu %10zu %12zu\n", cfg.name, tally.solved,
                    tally.timeout, tally.memout, tally.totalMs, tally.universalElims,
                    tally.copies, tally.peakNodes);
        wrongTotal += tally.wrong;
    }
    std::printf("\nresults contradicting ground truth: %d (must be 0)\n", wrongTotal);
    return wrongTotal == 0 ? 0 : 1;
}
