// bench_service: throughput and latency of the solver service under load.
//
//   bench_service [--connections=N] [--requests=N] [--max-inflight=N]
//                 [--queue=N] [--jsonl] [--json=FILE]
//
// Starts an in-process SolverService on a loopback ephemeral port, floods it
// from N client threads solving a small DQDIMACS instance, and reports
// throughput plus p50/p90/p99 latency taken from the service's own
// `service.solve_latency_us` log2 histogram in the obs registry (the same
// histogram GET /metrics exposes).  --json=FILE additionally writes the
// schema-versioned report consumed by the golden-file test and committed as
// BENCH_service.json.
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

// Forall u1 u2 exists e3(u1) e4(u2): (u1 <-> e3) and (u2 <-> e4) — SAT, and
// small enough that one solve is dominated by service overhead, which is the
// thing this benchmark measures.
const char* kFormula =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    std::size_t connections = 8;
    std::size_t requests = 256;
    std::size_t maxInflight = 4;
    std::size_t maxQueue = 64;
    bool jsonl = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        if (arg.rfind("--connections=", 0) == 0 && parseSize(val("--connections="), n) &&
            n > 0) {
            connections = n;
        } else if (arg.rfind("--requests=", 0) == 0 && parseSize(val("--requests="), n)) {
            requests = n;
        } else if (arg.rfind("--max-inflight=", 0) == 0 &&
                   parseSize(val("--max-inflight="), n)) {
            maxInflight = n;
        } else if (arg.rfind("--queue=", 0) == 0 && parseSize(val("--queue="), n)) {
            maxQueue = n;
        } else if (arg == "--jsonl") {
            jsonl = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = val("--json=");
        } else {
            std::cerr << "usage: bench_service [--connections=N] [--requests=N] "
                         "[--max-inflight=N] [--queue=N] [--jsonl] [--json=FILE]\n";
            return 1;
        }
    }

    ServiceOptions sopts;
    sopts.maxInflight = maxInflight;
    sopts.maxQueue = maxQueue;
    sopts.defaultTimeoutSeconds = 10.0;
    SolverService service(sopts);
    std::string error;
    if (!service.start(&error)) {
        std::cerr << "bench_service: " << error << "\n";
        return 1;
    }
    const std::uint16_t port = jsonl ? service.jsonlPort() : service.httpPort();

    std::mutex mu;
    std::size_t ok = 0, rejected = 0, errors = 0;
    std::atomic<std::size_t> nextRequest{0};
    Timer wall;

    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t t = 0; t < connections; ++t) {
        threads.emplace_back([&, t] {
            std::size_t localOk = 0, localRejected = 0, localErrors = 0;
            BlockingClient client;
            if (!client.connect("127.0.0.1", port)) {
                std::lock_guard<std::mutex> lock(mu);
                ++errors;
                return;
            }
            SolveRequestOptions ropts;
            while (true) {
                const std::size_t seq = nextRequest.fetch_add(1);
                if (seq >= requests) break;
                bool sent;
                if (jsonl) {
                    sent = client.sendAll(buildJsonlSolveRequest(
                        std::to_string(t) + "-" + std::to_string(seq), kFormula, ropts));
                } else {
                    sent = client.sendAll(
                        buildHttpSolveRequest(kFormula, ropts, /*keepAlive=*/true));
                }
                if (!sent) {
                    ++localErrors;
                    break;
                }
                if (jsonl) {
                    std::string row;
                    if (!client.readLine(row)) {
                        ++localErrors;
                        break;
                    }
                    std::string verdict;
                    if (jsonStringField(row, "result", verdict))
                        ++localOk;
                    else if (row.find("\"busy\"") != std::string::npos)
                        ++localRejected;
                    else
                        ++localErrors;
                } else {
                    HttpResponseMsg rsp;
                    if (!client.readResponse(rsp)) {
                        ++localErrors;
                        break;
                    }
                    if (rsp.status == 200)
                        ++localOk;
                    else if (rsp.status == 429)
                        ++localRejected;
                    else
                        ++localErrors;
                }
            }
            std::lock_guard<std::mutex> lock(mu);
            ok += localOk;
            rejected += localRejected;
            errors += localErrors;
        });
    }
    for (std::thread& th : threads) th.join();
    const double wallMs = wall.elapsedMilliseconds();
    service.stop();

    obs::BenchServiceReport report;
    report.connections = static_cast<std::int64_t>(connections);
    report.requests = static_cast<std::int64_t>(requests);
    report.maxInflight = static_cast<std::int64_t>(maxInflight);
    report.maxQueue = static_cast<std::int64_t>(maxQueue);
    report.jsonlMode = jsonl;
    report.ok = static_cast<std::int64_t>(ok);
    report.rejected = static_cast<std::int64_t>(rejected);
    report.errors = static_cast<std::int64_t>(errors);
    report.wallMs = wallMs;
    report.throughputRps = wallMs > 0 ? static_cast<double>(ok) * 1000.0 / wallMs : 0;
    report.metrics = obs::globalRegistry().snapshot();
    for (const obs::MetricValue& m : report.metrics) {
        if (m.name == "service.solve_latency_us")
            report.latency = obs::latencyFromHistogram(m);
    }

    std::cout << "mode=" << (jsonl ? "jsonl" : "http") << " connections=" << connections
              << " requests=" << requests << " ok=" << ok << " rejected=" << rejected
              << " errors=" << errors << "\n";
    std::cout << "wall_ms=" << wallMs << " throughput_rps=" << report.throughputRps
              << " latency_us p50=" << report.latency.p50Us
              << " p99=" << report.latency.p99Us << "\n";

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "bench_service: cannot write " << jsonPath << "\n";
            return 1;
        }
        obs::writeBenchServiceJson(out, report);
        std::cout << "wrote " << jsonPath << "\n";
    }
    return ok + rejected == requests ? 0 : 1;
}
