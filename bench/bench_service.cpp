// bench_service: throughput and latency of the solver service under load.
//
//   bench_service [--connections=N] [--requests=N] [--max-inflight=N]
//                 [--queue=N] [--jsonl] [--workers=LIST] [--cache=MODE]
//                 [--session=MODE] [--json=FILE]
//
// Runs one row per (fleet size, cache) cell: fleet sizes come from
// --workers (default "0,1,2,4"; 0 = the in-process SolverService baseline,
// N = a supervised fork fleet sharing the ports via SO_REUSEPORT) and
// --cache picks the cache dimension ("off", "on", or the default "both").
// Each cell floods the service from N client threads solving the *same*
// small DQDIMACS instance — a repeated workload, so cache-on rows measure
// the result cache's steady-state hit path (every request after the warm-up
// solve is answered from the canonical-hash cache; fleet workers share a
// persistent --cache-dir, so each worker warms from the first solve in the
// whole fleet, not one per process) while cache-off rows measure the full
// solve path.  Reports throughput plus exact p50/p90/p99 latency from the
// client-observed per-request times.  Fleet rows use the bounded
// retry-with-backoff client path so worker startup races count as retries,
// not errors.  --json=FILE writes the schema-versioned multi-run report
// ("hqs-bench-service/v4") consumed by the golden-file test and committed as
// BENCH_service.json.
//
// The report additionally carries the session matrix (--session=on, the
// default): two rows solving the same 8-instance delta family over one
// multi-component base formula, once cold (eight stateless JSONL solves of
// the effective formulas) and once through a v2 solve session (one `open`
// plus eight delta/solve/retract rounds).  Each delta touches one variable
// connected component, so the session row re-eliminates only the touched
// cone and answers the rest from its per-component memo; the row records
// the reuse accounting (`session_reuses`, `cone_nodes_saved`) next to the
// latency quantiles the cold row pays in full.
//
// Note: scaling across workers is bounded by the machine.  On a single-core
// host the 1->4 worker rows measure isolation overhead, not speedup.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/cache/result_cache.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/service/supervisor.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

// An 8-universal XOR chain whose aux existentials each miss one universal
// from their dependency set — genuine DQBF, UNSAT, and a few tens of
// milliseconds of real elimination work per solve.  Solve-bound on the
// cache-off rows (they measure full-solve throughput) while cache-on rows
// collapse to the service-overhead hit path, which is exactly the contrast
// the cache matrix is after.
const char* kFormula =
    "p cnf 15 28\n"
    "a 1 2 3 4 5 6 7 8 0\n"
    "d 9 1 2 3 5 6 7 8 0\n"
    "d 10 1 2 3 4 6 7 8 0\n"
    "d 11 1 2 3 4 5 7 8 0\n"
    "d 12 1 2 3 4 5 6 8 0\n"
    "d 13 1 2 3 4 5 6 7 0\n"
    "d 14 2 3 4 5 6 7 8 0\n"
    "d 15 1 3 4 5 6 7 8 0\n"
    "-1 -2 -9 0\n"
    "1 2 -9 0\n"
    "1 -2 9 0\n"
    "-1 2 9 0\n"
    "-9 -3 -10 0\n"
    "9 3 -10 0\n"
    "9 -3 10 0\n"
    "-9 3 10 0\n"
    "-10 -4 -11 0\n"
    "10 4 -11 0\n"
    "10 -4 11 0\n"
    "-10 4 11 0\n"
    "-11 -5 -12 0\n"
    "11 5 -12 0\n"
    "11 -5 12 0\n"
    "-11 5 12 0\n"
    "-12 -6 -13 0\n"
    "12 6 -13 0\n"
    "12 -6 13 0\n"
    "-12 6 13 0\n"
    "-13 -7 -14 0\n"
    "13 7 -14 0\n"
    "13 -7 14 0\n"
    "-13 7 14 0\n"
    "-14 -8 -15 0\n"
    "14 8 -15 0\n"
    "14 -8 15 0\n"
    "-14 8 15 0\n";

bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseWorkerList(const std::string& text, std::vector<int>& out)
{
    out.clear();
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? comma : comma - start);
        std::size_t n = 0;
        if (!parseSize(item, n) || n > 64) return false;
        out.push_back(static_cast<int>(n));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return !out.empty();
}

struct LoadParams {
    std::size_t connections = 8;
    std::size_t requests = 256;
    std::size_t maxInflight = 4;
    std::size_t maxQueue = 64;
    bool jsonl = false;
};

obs::BenchServiceLatency latencyFromSamples(std::vector<double>& us)
{
    obs::BenchServiceLatency lat;
    if (us.empty()) return lat;
    std::sort(us.begin(), us.end());
    const auto pct = [&](double q) {
        const auto idx =
            static_cast<std::size_t>(q * static_cast<double>(us.size() - 1) + 0.5);
        return us[idx];
    };
    lat.p50Us = pct(0.50);
    lat.p90Us = pct(0.90);
    lat.p99Us = pct(0.99);
    lat.maxUs = us.back();
    double sum = 0;
    for (double v : us) sum += v;
    lat.meanUs = sum / static_cast<double>(us.size());
    return lat;
}

/// Flood 127.0.0.1:@p port with @p params.requests solves from
/// @p params.connections threads.  @p retries > 0 enables the bounded
/// retry-with-backoff path on transport failures and 429/503 (fleet rows:
/// worker startup races are retries, not errors).
void runLoad(std::uint16_t port, const LoadParams& params, std::size_t retries,
             obs::BenchServiceReport& report)
{
    std::mutex mu;
    std::size_t ok = 0, rejected = 0, errors = 0, resent = 0;
    std::vector<double> latenciesUs;
    std::atomic<std::size_t> nextRequest{0};
    Timer wall;

    std::vector<std::thread> threads;
    threads.reserve(params.connections);
    for (std::size_t t = 0; t < params.connections; ++t) {
        threads.emplace_back([&, t] {
            std::size_t localOk = 0, localRejected = 0, localErrors = 0,
                        localResent = 0;
            std::vector<double> localUs;
            BlockingClient client;
            SolveRequestOptions ropts;
            const double base = 0.02, cap = 0.5;
            while (true) {
                const std::size_t seq = nextRequest.fetch_add(1);
                if (seq >= params.requests) break;
                Timer perRequest;
                // 0 = verdict, 1 = rejected, 2 = transport/fatal
                int outcome = 2;
                for (std::size_t attempt = 0; attempt <= retries; ++attempt) {
                    outcome = 2;
                    double hint = 0;
                    if (!client.connected() && !client.connect("127.0.0.1", port)) {
                        // fall through to the retry decision
                    } else {
                        bool sent;
                        if (params.jsonl) {
                            sent = client.sendAll(buildJsonlSolveRequest(
                                std::to_string(t) + "-" + std::to_string(seq), kFormula,
                                ropts));
                        } else {
                            sent = client.sendAll(buildHttpSolveRequest(
                                kFormula, ropts, /*keepAlive=*/true));
                        }
                        if (sent && params.jsonl) {
                            std::string row;
                            if (client.readLine(row)) {
                                std::string verdict;
                                if (jsonStringField(row, "result", verdict)) {
                                    outcome = 0;
                                } else {
                                    outcome = 1;
                                    hint = parseRetryAfterSeconds("", row, base);
                                    if (row.find("\"error\"") != std::string::npos)
                                        client.close();
                                }
                            } else {
                                client.close();
                            }
                        } else if (sent) {
                            HttpResponseMsg rsp;
                            if (client.readResponse(rsp)) {
                                const std::string* conn = rsp.header("connection");
                                if (conn && conn->find("close") != std::string::npos)
                                    client.close();
                                if (rsp.status == 200) {
                                    outcome = 0;
                                } else if (rsp.status == 429 || rsp.status == 503) {
                                    outcome = 1;
                                    const std::string* ra = rsp.header("retry-after");
                                    hint = parseRetryAfterSeconds(ra ? *ra : "",
                                                                  rsp.body, base);
                                }
                            } else {
                                client.close();
                            }
                        }
                    }
                    if (outcome == 0 || attempt == retries) break;
                    ++localResent;
                    std::this_thread::sleep_for(std::chrono::duration<double>(
                        retryDelaySeconds(static_cast<int>(attempt), base, cap, hint,
                                          (t << 20) ^ seq ^ (attempt << 40))));
                }
                if (outcome == 0)
                    ++localOk;
                else if (outcome == 1)
                    ++localRejected;
                else
                    ++localErrors;
                localUs.push_back(perRequest.elapsedSeconds() * 1e6);
            }
            std::lock_guard<std::mutex> lock(mu);
            ok += localOk;
            rejected += localRejected;
            errors += localErrors;
            resent += localResent;
            latenciesUs.insert(latenciesUs.end(), localUs.begin(), localUs.end());
        });
    }
    for (std::thread& th : threads) th.join();
    const double wallMs = wall.elapsedMilliseconds();

    report.connections = static_cast<int>(params.connections);
    report.requests = static_cast<int>(params.requests);
    report.maxInflight = params.maxInflight;
    report.maxQueue = params.maxQueue;
    report.jsonlMode = params.jsonl;
    report.ok = static_cast<int>(ok);
    report.rejected = static_cast<int>(rejected);
    report.errors = static_cast<int>(errors);
    report.retries = resent;
    report.wallMs = wallMs;
    report.throughputRps = wallMs > 0 ? static_cast<double>(ok) * 1000.0 / wallMs : 0;
    report.latency = latencyFromSamples(latenciesUs);
}

/// RAII scratch directory for the fleet rows' shared persistent cache.
struct ScratchDir {
    std::filesystem::path path;

    ScratchDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("hqs-bench-cache-" + std::to_string(::getpid()));
        std::filesystem::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

bool runRow(int workers, bool cacheOn, const LoadParams& params,
            obs::BenchServiceReport& report)
{
    report = obs::BenchServiceReport{};
    report.workers = workers;
    report.cacheEnabled = cacheOn;

    ServiceOptions sopts;
    sopts.maxInflight = params.maxInflight;
    sopts.maxQueue = params.maxQueue;
    sopts.defaultTimeoutSeconds = 10.0;

    // Fleet rows share entries through a persistent directory (each forked
    // worker owns a copy-on-write in-memory shard); the in-process row
    // needs only the shard.
    std::unique_ptr<ScratchDir> scratch;
    if (cacheOn) {
        cache::CacheConfig cfg;
        if (workers > 0) {
            scratch = std::make_unique<ScratchDir>();
            cfg.dir = scratch->path.string();
        }
        sopts.resultCache = std::make_shared<cache::ResultCache>(cfg);
    }

    if (workers == 0) {
        obs::globalRegistry().reset();
        SolverService service(sopts);
        std::string error;
        if (!service.start(&error)) {
            std::cerr << "bench_service: " << error << "\n";
            return false;
        }
        runLoad(params.jsonl ? service.jsonlPort() : service.httpPort(), params,
                /*retries=*/0, report);
        report.cacheHits = service.counters().cacheHits.load();
        service.stop();
        report.metrics = obs::globalRegistry().snapshot();
        return true;
    }

    SupervisorOptions fopts;
    fopts.service = sopts;
    fopts.workers = workers;
    Supervisor fleet(fopts);
    std::string error;
    if (!fleet.start(&error)) {
        std::cerr << "bench_service: " << error << "\n";
        return false;
    }
    runLoad(params.jsonl ? fleet.jsonlPort() : fleet.httpPort(), params,
            /*retries=*/5, report);
    fleet.beginDrain();
    if (!fleet.waitForExit(20.0)) fleet.stop();
    return true;
}

// ------------------------------------------------------- session matrix ---

constexpr int kFamilyComponents = 4; ///< variable-disjoint XOR chains
constexpr int kFamilySize = 8;       ///< delta instances per mode
constexpr int kCompVars = 11;        ///< 6 universals + 5 aux existentials

/// Component @p c of the session base formula at variable offset @p o: a
/// SAT (X)XOR chain in kFormula's style — aux existentials 7..11 each
/// compute a universal-prefix (x)nor their Henkin dependency set can still
/// express, so every component (and thus every family member) is SAT and
/// certificate extraction has something to do.  Definition 1 + c%4 of
/// component c is an XNOR instead of an XOR, so the four components are
/// pairwise non-isomorphic and the session's per-component memo cannot
/// collapse them onto one canonical entry.  Every variable appears in a
/// clause, so each component is exactly one variable-connected component.
void appendComponent(int c, int o, std::string& prefix, std::string& matrix)
{
    for (int e = 7; e <= 11; ++e) {
        prefix += "d " + std::to_string(o + e);
        for (int u = 1; u <= 6; ++u)
            if (e == 11 || u != e - 4) prefix += " " + std::to_string(o + u);
        prefix += " 0\n";
    }
    const auto def = [&](int z, int x, int y, bool flip) {
        // z = x ^ y (or its negation when flip: an XNOR definition).
        const std::string zs = (flip ? "" : "-") + std::to_string(z);
        const std::string nz = (flip ? "-" : "") + std::to_string(z);
        matrix += "-" + std::to_string(x) + " -" + std::to_string(y) + " " + zs + " 0\n";
        matrix += std::to_string(x) + " " + std::to_string(y) + " " + zs + " 0\n";
        matrix += std::to_string(x) + " -" + std::to_string(y) + " " + nz + " 0\n";
        matrix += "-" + std::to_string(x) + " " + std::to_string(y) + " " + nz + " 0\n";
    };
    def(o + 7, o + 1, o + 2, c % 4 == 0);
    for (int e = 8; e <= 11; ++e) def(o + e, o + e - 1, o + e - 5, e - 7 == 1 + c % 4);
}

/// Delta of family member @p m: two 4-literal weakenings of definition
/// clauses of component m % kFamilyComponents — implied by the base (every
/// member stays SAT) but not duplicates of base clauses, so they survive
/// canonicalization and genuinely dirty the touched component.  The
/// weakened definition rotates per round, keeping the eight effective
/// formulas pairwise distinct.
std::string familyDeltaClauses(int m)
{
    const int c = m % kFamilyComponents;
    const int o = c * kCompVars;
    const int e = 9 + (m / kFamilyComponents); // weakened def: e9 or e10
    const int x = o + e - 1, y = o + e - 5, z = o + e;
    const bool flip = 1 + c % 4 == e - 7; // that def is this component's XNOR
    const std::string zs = (flip ? "" : "-") + std::to_string(z);
    const std::string nz = (flip ? "-" : "") + std::to_string(z);
    const std::string w = std::to_string(o + 11); // widening literal
    return std::to_string(x) + " " + std::to_string(y) + " " + zs + " " + w +
           " 0 " + std::to_string(x) + " -" + std::to_string(y) + " " + nz + " " +
           w + " 0";
}

/// The family's base formula, or — when @p member >= 0 — the effective
/// formula of that member (base plus its delta clauses), as the cold rows
/// solve it.
std::string familyText(int member)
{
    std::string prefix = "a";
    for (int c = 0; c < kFamilyComponents; ++c)
        for (int u = 1; u <= 6; ++u) prefix += " " + std::to_string(c * kCompVars + u);
    prefix += " 0\n";
    std::string matrix;
    for (int c = 0; c < kFamilyComponents; ++c)
        appendComponent(c, c * kCompVars, prefix, matrix);
    int clauses = kFamilyComponents * 20;
    if (member >= 0) {
        // Delta clause text is already whitespace-separated DIMACS
        // ("l1 l2 0 l3 l4 0"), valid as-is in the matrix body.
        clauses += 2;
        matrix += familyDeltaClauses(member) + "\n";
    }
    return "p cnf " + std::to_string(kFamilyComponents * kCompVars) + " " +
           std::to_string(clauses) + "\n" + prefix + matrix;
}

/// One JSONL exchange: send @p row, read one response line into @p reply.
bool exchange(BlockingClient& client, const std::string& row, std::string& reply)
{
    return client.sendAll(row) && client.readLine(reply);
}

/// Run the two session-matrix rows against an in-process service and append
/// them to @p runs: cold (stateless solves of the effective formulas) then
/// session (open + delta/solve/retract per member over one v2 session).
bool runSessionMatrix(std::vector<obs::BenchServiceReport>& runs)
{
    for (int sessionMode = 0; sessionMode <= 1; ++sessionMode) {
        obs::BenchServiceReport report;
        report.connections = 1;
        report.requests = kFamilySize;
        report.jsonlMode = true;
        report.sessionMode = sessionMode == 1;
        report.deltaFamily = kFamilySize;

        ServiceOptions sopts;
        sopts.maxInflight = 1;
        sopts.maxQueue = 8;
        sopts.defaultTimeoutSeconds = 60.0;
        report.maxInflight = sopts.maxInflight;
        report.maxQueue = sopts.maxQueue;

        obs::globalRegistry().reset();
        SolverService service(sopts);
        std::string error;
        if (!service.start(&error)) {
            std::cerr << "bench_service: " << error << "\n";
            return false;
        }

        BlockingClient client;
        if (!client.connect("127.0.0.1", service.jsonlPort())) {
            std::cerr << "bench_service: cannot connect for session matrix\n";
            service.stop();
            return false;
        }

        std::vector<double> latenciesUs;
        int ok = 0, errors = 0;
        std::string sid;
        Timer wall;
        bool transport = true;
        if (report.sessionMode) {
            std::string reply;
            transport = exchange(client, buildJsonlHandshake(2), reply);
            if (transport) {
                SolveRequestOptions open;
                open.op = "open";
                transport = exchange(
                    client, buildJsonlSolveRequest("open", familyText(-1), open), reply);
                if (transport && !jsonStringField(reply, "session", sid)) {
                    std::cerr << "bench_service: open failed: " << reply;
                    transport = false;
                }
            }
        }
        for (int m = 0; transport && m < kFamilySize; ++m) {
            Timer per;
            std::string reply;
            bool solved = false;
            if (!report.sessionMode) {
                SolveRequestOptions ropts;
                if (!exchange(client,
                              buildJsonlSolveRequest("cold-" + std::to_string(m),
                                                     familyText(m), ropts),
                              reply)) {
                    transport = false;
                    break;
                }
                std::string verdict;
                solved = jsonStringField(reply, "result", verdict);
            } else {
                // One `delta` op per member: retract the previous member's
                // clause group, append this member's, solve the result.  The
                // delta op answers with the verdict and reuse accounting, so
                // a member costs one round trip in both modes.
                SolveRequestOptions delta;
                delta.op = "delta";
                delta.session = sid;
                if (m > 0) delta.retractGroup = "m" + std::to_string(m - 1);
                delta.addGroup = "m" + std::to_string(m);
                delta.deltaClauses = familyDeltaClauses(m);
                if (!exchange(client,
                              buildJsonlSolveRequest("delta-" + std::to_string(m), "",
                                                     delta),
                              reply)) {
                    transport = false;
                    break;
                }
                std::string verdict;
                solved = jsonStringField(reply, "result", verdict);
                double n = 0;
                if (jsonNumberField(reply, "reused", n))
                    report.sessionReuses += static_cast<std::uint64_t>(n);
                if (jsonNumberField(reply, "cone_nodes_saved", n))
                    report.coneNodesSaved += static_cast<std::uint64_t>(n);
            }
            latenciesUs.push_back(per.elapsedSeconds() * 1e6);
            if (solved)
                ++ok;
            else
                ++errors;
        }
        if (report.sessionMode && transport && !sid.empty()) {
            SolveRequestOptions close;
            close.op = "close";
            close.session = sid;
            std::string reply;
            exchange(client, buildJsonlSolveRequest("close", "", close), reply);
        }
        const double wallMs = wall.elapsedMilliseconds();
        client.close();
        service.stop();

        if (!transport) {
            std::cerr << "bench_service: session matrix transport failure\n";
            return false;
        }
        report.ok = ok;
        report.errors = errors;
        report.wallMs = wallMs;
        report.throughputRps = wallMs > 0 ? static_cast<double>(ok) * 1000.0 / wallMs : 0;
        report.latency = latencyFromSamples(latenciesUs);
        report.metrics = obs::globalRegistry().snapshot();
        runs.push_back(report);

        std::cout << "session=" << (report.sessionMode ? "reuse" : "cold")
                  << " delta_family=" << kFamilySize << " ok=" << report.ok
                  << " errors=" << report.errors;
        if (report.sessionMode)
            std::cout << " reuses=" << report.sessionReuses
                      << " cone_nodes_saved=" << report.coneNodesSaved;
        std::cout << "\n  wall_ms=" << report.wallMs
                  << " latency_us p50=" << report.latency.p50Us
                  << " p99=" << report.latency.p99Us << "\n";
        if (report.errors != 0) return false;
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    LoadParams params;
    std::vector<int> workerRows = {0, 1, 2, 4};
    std::vector<bool> cacheRows = {false, true};
    bool sessionMatrix = true;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        if (arg.rfind("--connections=", 0) == 0 && parseSize(val("--connections="), n) &&
            n > 0) {
            params.connections = n;
        } else if (arg.rfind("--requests=", 0) == 0 && parseSize(val("--requests="), n)) {
            params.requests = n;
        } else if (arg.rfind("--max-inflight=", 0) == 0 &&
                   parseSize(val("--max-inflight="), n)) {
            params.maxInflight = n;
        } else if (arg.rfind("--queue=", 0) == 0 && parseSize(val("--queue="), n)) {
            params.maxQueue = n;
        } else if (arg == "--jsonl") {
            params.jsonl = true;
        } else if (arg.rfind("--workers=", 0) == 0 &&
                   parseWorkerList(val("--workers="), workerRows)) {
            // rows to run, e.g. --workers=0,1,2,4 or --workers=2
        } else if (arg == "--cache=off") {
            cacheRows = {false};
        } else if (arg == "--cache=on") {
            cacheRows = {true};
        } else if (arg == "--cache=both") {
            cacheRows = {false, true};
        } else if (arg == "--session=off") {
            sessionMatrix = false;
        } else if (arg == "--session=on") {
            sessionMatrix = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = val("--json=");
        } else {
            std::cerr << "usage: bench_service [--connections=N] [--requests=N] "
                         "[--max-inflight=N] [--queue=N] [--jsonl] "
                         "[--workers=LIST] [--cache=off|on|both] "
                         "[--session=off|on] [--json=FILE]\n";
            return 1;
        }
    }

    std::vector<obs::BenchServiceReport> runs;
    bool allResolved = true;
    for (int workers : workerRows) {
        for (bool cacheOn : cacheRows) {
            obs::BenchServiceReport report;
            if (!runRow(workers, cacheOn, params, report)) return 1;
            runs.push_back(report);
            std::cout << "workers=" << workers
                      << " cache=" << (cacheOn ? "on" : "off")
                      << " mode=" << (params.jsonl ? "jsonl" : "http")
                      << " connections=" << report.connections
                      << " requests=" << report.requests << " ok=" << report.ok
                      << " rejected=" << report.rejected
                      << " errors=" << report.errors
                      << " retries=" << report.retries;
            if (cacheOn && workers == 0)
                std::cout << " cache_hits=" << report.cacheHits;
            std::cout << "\n";
            std::cout << "  wall_ms=" << report.wallMs
                      << " throughput_rps=" << report.throughputRps
                      << " latency_us p50=" << report.latency.p50Us
                      << " p99=" << report.latency.p99Us << "\n";
            allResolved =
                allResolved &&
                report.ok + report.rejected == static_cast<int>(params.requests);
        }
    }

    if (sessionMatrix && !runSessionMatrix(runs)) allResolved = false;

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "bench_service: cannot write " << jsonPath << "\n";
            return 1;
        }
        obs::writeBenchServiceJson(out, runs);
        std::cout << "wrote " << jsonPath << "\n";
    }
    return allResolved ? 0 : 1;
}
