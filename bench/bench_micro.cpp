// Microbenchmarks (google-benchmark) for the substrates: AIG construction
// and quantification, the Theorem-6 unit/pure traversal, FRAIG sweeping,
// the CDCL SAT solver, the partial MaxSAT selection, and the end-to-end
// PEC encoding.
#include <benchmark/benchmark.h>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/aig/fraig.hpp"
#include "src/base/fault.hpp"
#include "src/base/rng.hpp"
#include "src/dqbf/dependency_graph.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/pec/pec_encoder.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

/// Deterministic random cone over `vars` variables with `gates` AND/OR/XOR
/// nodes.
AigEdge randomCone(Aig& aig, unsigned vars, unsigned gates, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AigEdge> pool;
    for (Var v = 0; v < vars; ++v) pool.push_back(aig.variable(v));
    for (unsigned i = 0; i < gates; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        switch (rng.below(3)) {
            case 0: pool.push_back(aig.mkAnd(a, b)); break;
            case 1: pool.push_back(aig.mkOr(a, b)); break;
            default: pool.push_back(aig.mkXor(a, b)); break;
        }
    }
    return pool.back();
}

void BM_AigConstruction(benchmark::State& state)
{
    const auto gates = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Aig aig;
        benchmark::DoNotOptimize(randomCone(aig, 32, gates, 42));
    }
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_AigConstruction)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AigCofactor(benchmark::State& state)
{
    Aig aig;
    const AigEdge root = randomCone(aig, 32, static_cast<unsigned>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.cofactor(root, 5, true));
    }
}
BENCHMARK(BM_AigCofactor)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AigQuantifyExistential(benchmark::State& state)
{
    Aig aig;
    const AigEdge root = randomCone(aig, 32, static_cast<unsigned>(state.range(0)), 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.existsVar(root, 3));
    }
}
BENCHMARK(BM_AigQuantifyExistential)->Arg(1000)->Arg(10000);

void BM_UnitPureDetection(benchmark::State& state)
{
    // The paper reports the Theorem-6 traversal at O(|phi| + |V|) and < 4%
    // of runtime; this measures the raw traversal.
    Aig aig;
    const AigEdge root = randomCone(aig, 64, static_cast<unsigned>(state.range(0)), 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.detectUnitPure(root));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnitPureDetection)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FraigReduce(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Aig aig;
        const AigEdge root = randomCone(aig, 16, static_cast<unsigned>(state.range(0)), 17);
        state.ResumeTiming();
        benchmark::DoNotOptimize(fraigReduce(aig, root));
    }
}
BENCHMARK(BM_FraigReduce)->Arg(500)->Arg(2000);

void BM_SatRandom3Sat(benchmark::State& state)
{
    const auto n = static_cast<Var>(state.range(0));
    Rng rng(1234);
    Cnf f;
    f.ensureVars(n);
    for (Var c = 0; c < n * 4; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    for (auto _ : state) {
        SatSolver s;
        s.addCnf(f);
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_MaxSatSelection(benchmark::State& state)
{
    // The paper: MaxSAT selection took < 0.06 s on every instance.
    Rng rng(5);
    DqbfFormula f;
    const auto nu = static_cast<unsigned>(state.range(0));
    std::vector<Var> xs;
    for (unsigned i = 0; i < nu; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < nu; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        f.addExistential(std::move(deps));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(selectEliminationSetMaxSat(f));
    }
}
BENCHMARK(BM_MaxSatSelection)->Arg(8)->Arg(16)->Arg(32);

void BM_PecEncode(benchmark::State& state)
{
    const PecInstance inst =
        makeInstance(Family::Adder, static_cast<unsigned>(state.range(0)), false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(encodePec(inst));
    }
}
BENCHMARK(BM_PecEncode)->Arg(8)->Arg(16)->Arg(32);

void BM_FaultCheckpointDisarmed(benchmark::State& state)
{
    // The aig-alloc checkpoint sits on the AND-node allocation hot path; its
    // disarmed cost (one relaxed atomic load) must stay in the noise.
    fault::disarm();
    for (auto _ : state) {
        fault::checkpoint("aig-alloc");
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultCheckpointDisarmed);

void BM_AigConstructionWithDisarmedCheckpoint(benchmark::State& state)
{
    // End-to-end view of the same question: node construction throughput
    // with the checkpoint compiled in but nothing armed (compare against
    // BM_AigConstruction at the same arg).
    fault::disarm();
    const auto gates = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Aig aig;
        benchmark::DoNotOptimize(randomCone(aig, 32, gates, 42));
    }
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_AigConstructionWithDisarmedCheckpoint)->Arg(10000);

void BM_HqsEndToEnd(benchmark::State& state)
{
    const PecInstance inst =
        makeInstance(Family::Adder, static_cast<unsigned>(state.range(0)), false);
    for (auto _ : state) {
        PecEncoding enc = encodePec(inst);
        HqsSolver solver;
        benchmark::DoNotOptimize(solver.solve(std::move(enc.formula)));
    }
}
BENCHMARK(BM_HqsEndToEnd)->Arg(4)->Arg(8);

} // namespace
} // namespace hqs
