// Microbenchmarks (google-benchmark) for the substrates: AIG construction
// and quantification, the dense strash hit path, Substitution-based
// composition, mark-and-compact garbage collection, the Theorem-6
// unit/pure traversal, FRAIG sweeping, the CDCL SAT solver, the partial
// MaxSAT selection, the end-to-end PEC encoding, and the disarmed cost of
// the fault/observability hooks.
//
//   bench_micro [--json=FILE] [google-benchmark flags]
//
// With --json=FILE the run additionally writes a machine-readable report
// (schema hqs-bench-micro/v2) whose `overhead_ns` block distills the
// per-operation cost of the always-compiled instrumentation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/aig/fraig.hpp"
#include "src/base/fault.hpp"
#include "src/base/rng.hpp"
#include "src/dqbf/dependency_graph.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/report.hpp"
#include "src/pec/pec_encoder.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

/// Deterministic random cone over `vars` variables with `gates` AND/OR/XOR
/// nodes.
AigEdge randomCone(Aig& aig, unsigned vars, unsigned gates, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AigEdge> pool;
    for (Var v = 0; v < vars; ++v) pool.push_back(aig.variable(v));
    for (unsigned i = 0; i < gates; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        switch (rng.below(3)) {
            case 0: pool.push_back(aig.mkAnd(a, b)); break;
            case 1: pool.push_back(aig.mkOr(a, b)); break;
            default: pool.push_back(aig.mkXor(a, b)); break;
        }
    }
    return pool.back();
}

void BM_AigConstruction(benchmark::State& state)
{
    const auto gates = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Aig aig;
        benchmark::DoNotOptimize(randomCone(aig, 32, gates, 42));
    }
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_AigConstruction)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AigCofactor(benchmark::State& state)
{
    Aig aig;
    const AigEdge root = randomCone(aig, 32, static_cast<unsigned>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.cofactor(root, 5, true));
    }
}
BENCHMARK(BM_AigCofactor)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AigQuantifyExistential(benchmark::State& state)
{
    Aig aig;
    const AigEdge root = randomCone(aig, 32, static_cast<unsigned>(state.range(0)), 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.existsVar(root, 3));
    }
}
BENCHMARK(BM_AigQuantifyExistential)->Arg(1000)->Arg(10000);

void BM_StrashHitLookup(benchmark::State& state)
{
    // Pure hit path of the dense strash: every mkAnd below resolves to an
    // existing node, so the loop measures hash + probe + return with no
    // allocation.  The table size scales with the arg.
    Aig aig;
    Rng rng(19);
    std::vector<AigEdge> pool;
    for (Var v = 0; v < 32; ++v) pool.push_back(aig.variable(v));
    std::vector<std::pair<AigEdge, AigEdge>> pairs;
    const auto gates = static_cast<unsigned>(state.range(0));
    for (unsigned i = 0; i < gates; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        pool.push_back(aig.mkAnd(a, b));
        pairs.emplace_back(a, b);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& p = pairs[i];
        i = (i + 1 == pairs.size()) ? 0 : i + 1;
        benchmark::DoNotOptimize(aig.mkAnd(p.first, p.second));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrashHitLookup)->Arg(1000)->Arg(100000);

void BM_AigSubstitute(benchmark::State& state)
{
    // Simultaneous 8-variable substitution through the dense Substitution
    // builder and the manager-owned traversal cache.  After the first
    // iteration the image nodes exist, so this measures the steady-state
    // rebuild a Theorem-1 renaming pays.
    Aig aig;
    const AigEdge root = randomCone(aig, 32, static_cast<unsigned>(state.range(0)), 23);
    for (auto _ : state) {
        Substitution& sub = aig.scratchSubstitution();
        for (Var v = 0; v < 8; ++v)
            sub.set(v, aig.variable(v + 8) ^ ((v & 1) != 0));
        benchmark::DoNotOptimize(aig.substitute(root, sub));
    }
}
BENCHMARK(BM_AigSubstitute)->Arg(1000)->Arg(10000);

void BM_GcMarkCompact(benchmark::State& state)
{
    // Mark-and-compact with half the pool garbage: rebuild the node vector,
    // rewire the kept root, rehash the strash, remap the op cache.
    const auto gates = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Aig aig;
        AigEdge keep = randomCone(aig, 32, gates, 29);
        randomCone(aig, 32, gates, 31); // stranded on purpose
        state.ResumeTiming();
        aig.garbageCollect({&keep});
        benchmark::DoNotOptimize(keep);
    }
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_GcMarkCompact)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_UnitPureDetection(benchmark::State& state)
{
    // The paper reports the Theorem-6 traversal at O(|phi| + |V|) and < 4%
    // of runtime; this measures the raw traversal.
    Aig aig;
    const AigEdge root = randomCone(aig, 64, static_cast<unsigned>(state.range(0)), 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aig.detectUnitPure(root));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnitPureDetection)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FraigReduce(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Aig aig;
        const AigEdge root = randomCone(aig, 16, static_cast<unsigned>(state.range(0)), 17);
        state.ResumeTiming();
        benchmark::DoNotOptimize(fraigReduce(aig, root));
    }
}
BENCHMARK(BM_FraigReduce)->Arg(500)->Arg(2000);

void BM_SatRandom3Sat(benchmark::State& state)
{
    const auto n = static_cast<Var>(state.range(0));
    Rng rng(1234);
    Cnf f;
    f.ensureVars(n);
    for (Var c = 0; c < n * 4; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    for (auto _ : state) {
        SatSolver s;
        s.addCnf(f);
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_MaxSatSelection(benchmark::State& state)
{
    // The paper: MaxSAT selection took < 0.06 s on every instance.
    Rng rng(5);
    DqbfFormula f;
    const auto nu = static_cast<unsigned>(state.range(0));
    std::vector<Var> xs;
    for (unsigned i = 0; i < nu; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < nu; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        f.addExistential(std::move(deps));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(selectEliminationSetMaxSat(f));
    }
}
BENCHMARK(BM_MaxSatSelection)->Arg(8)->Arg(16)->Arg(32);

void BM_PecEncode(benchmark::State& state)
{
    const PecInstance inst =
        makeInstance(Family::Adder, static_cast<unsigned>(state.range(0)), false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(encodePec(inst));
    }
}
BENCHMARK(BM_PecEncode)->Arg(8)->Arg(16)->Arg(32);

void BM_FaultCheckpointDisarmed(benchmark::State& state)
{
    // The aig-alloc checkpoint sits on the AND-node allocation hot path; its
    // disarmed cost (one relaxed atomic load) must stay in the noise.
    fault::disarm();
    for (auto _ : state) {
        fault::checkpoint("aig-alloc");
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultCheckpointDisarmed);

void BM_AigConstructionWithDisarmedCheckpoint(benchmark::State& state)
{
    // End-to-end view of the same question: node construction throughput
    // with the checkpoint compiled in but nothing armed (compare against
    // BM_AigConstruction at the same arg).
    fault::disarm();
    const auto gates = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Aig aig;
        benchmark::DoNotOptimize(randomCone(aig, 32, gates, 42));
    }
    state.SetItemsProcessed(state.iterations() * gates);
}
BENCHMARK(BM_AigConstructionWithDisarmedCheckpoint)->Arg(10000);

void BM_ObsSpanDisarmed(benchmark::State& state)
{
    // OBS_SPAN with tracing off: the constructor must reduce to one relaxed
    // atomic load, the same budget as the disarmed fault checkpoint.
    for (auto _ : state) {
        OBS_SPAN(span, "bench.disarmed");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisarmed);

void BM_ObsCounterAdd(benchmark::State& state)
{
    // OBS_COUNT on the hot path (e.g. aig.ands): one relaxed fetch_add.
    for (auto _ : state) {
        OBS_COUNT("bench.counter", 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state)
{
    // OBS_OBSERVE: three relaxed atomics (count, sum, bucket) plus a CAS max.
    std::int64_t v = 0;
    for (auto _ : state) {
        OBS_OBSERVE("bench.histogram", v);
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanEnabled(benchmark::State& state)
{
    // Armed cost for comparison: clock reads plus a per-thread chunk append.
    // Fixed iteration count bounds the trace buffer growth.
#if HQS_OBS_ENABLED
    hqs::obs::enableTracing(true);
#endif
    for (auto _ : state) {
        OBS_SPAN(span, "bench.enabled");
        benchmark::DoNotOptimize(&span);
    }
#if HQS_OBS_ENABLED
    hqs::obs::enableTracing(false);
    hqs::obs::clearTrace();
#endif
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled)->Iterations(1 << 16);

void BM_HqsEndToEnd(benchmark::State& state)
{
    const PecInstance inst =
        makeInstance(Family::Adder, static_cast<unsigned>(state.range(0)), false);
    for (auto _ : state) {
        PecEncoding enc = encodePec(inst);
        HqsSolver solver;
        benchmark::DoNotOptimize(solver.solve(std::move(enc.formula)));
    }
}
BENCHMARK(BM_HqsEndToEnd)->Arg(4)->Arg(8);

/// Console reporter that additionally captures every per-iteration run for
/// the --json report.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
    std::vector<obs::BenchMicroRow> rows;

    void ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
            obs::BenchMicroRow row;
            row.name = run.benchmark_name();
            row.iterations = static_cast<std::int64_t>(run.iterations);
            if (run.iterations > 0) {
                row.realNs = run.real_accumulated_time * 1e9 /
                             static_cast<double>(run.iterations);
                row.cpuNs = run.cpu_accumulated_time * 1e9 /
                            static_cast<double>(run.iterations);
            }
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end()) row.itemsPerSecond = it->second;
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/// Mean per-iteration CPU time of @p name across the captured rows, or 0
/// when the benchmark did not run (e.g. filtered out).
double meanCpuNs(const std::vector<obs::BenchMicroRow>& rows, const std::string& name)
{
    double sum = 0;
    int n = 0;
    for (const obs::BenchMicroRow& row : rows) {
        if (row.name == name) {
            sum += row.cpuNs;
            ++n;
        }
    }
    return n > 0 ? sum / n : 0.0;
}

} // namespace
} // namespace hqs

int main(int argc, char** argv)
{
    // --json=FILE is ours; everything else passes through to the benchmark
    // library (--benchmark_filter, --benchmark_min_time, ...).
    std::string jsonPath;
    std::vector<char*> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else {
            args.push_back(argv[i]);
        }
    }
    int benchArgc = static_cast<int>(args.size());
    benchmark::Initialize(&benchArgc, args.data());
    if (benchmark::ReportUnrecognizedArguments(benchArgc, args.data())) return 1;

    hqs::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!jsonPath.empty()) {
        hqs::obs::BenchMicroReport report;
        report.benchmarks = reporter.rows;
        report.overheadNs = {
            {"span_disarmed_ns", hqs::meanCpuNs(reporter.rows, "BM_ObsSpanDisarmed")},
            {"span_enabled_ns",
             hqs::meanCpuNs(reporter.rows, "BM_ObsSpanEnabled/iterations:65536")},
            {"counter_add_ns", hqs::meanCpuNs(reporter.rows, "BM_ObsCounterAdd")},
            {"histogram_observe_ns",
             hqs::meanCpuNs(reporter.rows, "BM_ObsHistogramObserve")},
            {"checkpoint_disarmed_ns",
             hqs::meanCpuNs(reporter.rows, "BM_FaultCheckpointDisarmed")},
        };
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        hqs::obs::writeBenchMicroJson(out, report);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
