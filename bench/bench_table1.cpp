// Reproduction of Table I: per benchmark family, the number of instances,
// solved (split SAT/UNSAT), unsolved (split timeout/memout), and the total
// running time on the instances solved by BOTH solvers — for HQS and for
// the iDQ-style instantiation baseline.  Also prints the paper's Section IV
// aggregates: the fraction of solved instances decided in < 1 s, the
// maximum MaxSAT selection time, and the unit/pure share of runtime.
//
// Scaled-down regime (see bench_common.hpp): the absolute numbers shrink,
// but the shape of Table I — HQS solving a strict superset of the baseline
// and being orders of magnitude faster on commonly solved instances —
// reproduces.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "bench/bench_common.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/strategy/spec.hpp"

using namespace hqs;
using namespace hqs::bench;

namespace {

struct FamilyRow {
    int instances = 0;
    int hqsSat = 0, hqsUnsat = 0, hqsTimeout = 0, hqsMemout = 0;
    int idqSat = 0, idqUnsat = 0, idqTimeout = 0, idqMemout = 0;
    double hqsCommonMs = 0, idqCommonMs = 0; // time on commonly solved
    int wrongResults = 0;
};

obs::BenchFamilyRow toReportRow(const std::string& family, const FamilyRow& row)
{
    obs::BenchFamilyRow out;
    out.family = family;
    out.instances = row.instances;
    out.hqs = {row.hqsSat, row.hqsUnsat, row.hqsTimeout, row.hqsMemout, row.hqsCommonMs};
    out.idq = {row.idqSat, row.idqUnsat, row.idqTimeout, row.idqMemout, row.idqCommonMs};
    out.wrongResults = row.wrongResults;
    return out;
}

/// Re-solve one HQS-SAT instance with Skolem recording on, extract its
/// certificate, and run it through the independent parser/checker.  Fills
/// the v2 per-instance certification cells of @p inst.
void certifyInstance(const InstanceSpec& spec, const SuiteParams& params,
                     obs::BenchInstanceRow& inst)
{
    PecEncoding enc = encodePec(makeInstance(spec.family, spec.width, spec.realizable));
    const DqbfFormula formula = std::move(enc.formula);
    HqsOptions opts;
    opts.deadline = Deadline::in(params.timeoutSeconds);
    opts.nodeLimit = params.hqsNodeLimit;
    opts.computeSkolem = true;
    HqsSolver solver(opts);
    Timer extract;
    if (solver.solve(formula) != SolveResult::Sat || !solver.skolemCertificate()) return;
    const std::string text = cert::toCertificateString(
        cert::extractCertificate(formula, *solver.skolemCertificate()));
    inst.certified = true;
    inst.certExtractMs = extract.elapsedMilliseconds();

    cert::Certificate parsed;
    std::string detail;
    cert::CheckResult check;
    check.status = cert::parseCertificateString(text, parsed, detail);
    if (check.status == cert::CheckStatus::Ok)
        check = cert::checkCertificate(parsed, Deadline::in(params.timeoutSeconds));
    inst.certValid = check.ok();
    inst.certCheckMs = check.checkMs;
    inst.certSizeNodes = check.sizeNodes;
}

/// v3 per-engine-family portfolio columns: race the default strategy lineup
/// on @p spec and tally which family's racer decided the race (wins) and
/// which families reached a conclusive verdict before cancellation (solved).
///
/// The race runs in the degradation regime — a node budget two orders of
/// magnitude below the suite's memout proxy — because at the full budget
/// the race is a foregone conclusion (elimination wins every instance it
/// solves, which the Table I columns already report).  Under pressure the
/// families complement: elimination keeps the instances whose cone fits
/// the reduced budget, and the decision-list CEGAR engine takes over where
/// elimination memouts but the learned lists stay small (e.g. wide adder
/// instances).
void raceFamilies(const InstanceSpec& spec, const SuiteParams& params,
                  obs::BenchInstanceRow& inst, std::map<std::string, int>& familySolved,
                  std::map<std::string, int>& familyWins)
{
    const std::size_t pressureLimit = std::max<std::size_t>(256, params.hqsNodeLimit / 128);
    PecEncoding enc = encodePec(makeInstance(spec.family, spec.width, spec.realizable));
    PortfolioOptions popts;
    popts.deadline = Deadline::in(params.timeoutSeconds);
    popts.nodeLimit = pressureLimit;
    popts.engines = PortfolioSolver::enginesFromSpec(strategy::defaultStrategySpec(),
                                                     pressureLimit);
    PortfolioSolver solver(popts);
    solver.solve(enc.formula);
    const PortfolioStats& st = solver.stats();
    if (!st.winnerFamily.empty()) {
        inst.portfolioWinnerFamily = st.winnerFamily;
        ++familyWins[st.winnerFamily];
    }
    std::set<std::string> solved;
    for (const EngineRunStats& es : st.engines)
        if (isConclusive(es.result)) solved.insert(es.family);
    for (const std::string& f : solved) ++familySolved[f];
}

} // namespace

int main(int argc, char** argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else {
            std::fprintf(stderr, "usage: bench_table1 [--json=FILE]\n");
            return 1;
        }
    }

    const SuiteParams params = suiteParamsFromEnv();
    std::printf("Table I reproduction — PEC instances, per-instance limits: %.1f s / %zu "
                "AIG-node (HQS) / %zu ground-clause (iDQ) budgets\n\n",
                params.timeoutSeconds, params.hqsNodeLimit, params.idqGroundClauseLimit);

    std::map<Family, FamilyRow> rows;
    std::map<std::string, int> familySolved, familyWins;
    int solvedUnderOneSecond = 0, hqsSolvedTotal = 0;
    int idqSolvedTotal = 0, hqsOnlySolved = 0;
    double maxMaxSatMs = 0;
    double unitPureShareMax = 0;
    obs::BenchTable1Report report;

    for (const InstanceSpec& spec : buildSuite(params)) {
        const RunResult r = runInstance(spec, params);
        FamilyRow& row = rows[r.family];
        ++row.instances;

        // v2 per-instance certification cells: each SAT verdict is re-solved
        // with Skolem recording and its certificate independently checked.
        // Only paid when the machine-readable report was asked for.
        if (!jsonPath.empty()) {
            obs::BenchInstanceRow inst;
            inst.name = r.name;
            inst.family = toString(r.family);
            inst.hqsResult = toString(r.hqs);
            if (r.hqs == SolveResult::Sat) certifyInstance(spec, params, inst);
            // v3 engine-family columns: every instance is additionally raced
            // across the default portfolio lineup.
            raceFamilies(spec, params, inst, familySolved, familyWins);
            report.instances.push_back(inst);
        }

        const bool hqsSolved = isConclusive(r.hqs);
        const bool idqSolved = isConclusive(r.idq);
        if (hqsSolved) {
            ++hqsSolvedTotal;
            if (r.hqsMs < 1000.0) ++solvedUnderOneSecond;
            (r.hqs == SolveResult::Sat ? row.hqsSat : row.hqsUnsat) += 1;
            if ((r.hqs == SolveResult::Sat) != r.expectedSat) ++row.wrongResults;
        } else {
            (r.hqs == SolveResult::Memout ? row.hqsMemout : row.hqsTimeout) += 1;
        }
        if (idqSolved) {
            ++idqSolvedTotal;
            (r.idq == SolveResult::Sat ? row.idqSat : row.idqUnsat) += 1;
            if ((r.idq == SolveResult::Sat) != r.expectedSat) ++row.wrongResults;
        } else {
            (r.idq == SolveResult::Memout ? row.idqMemout : row.idqTimeout) += 1;
        }
        if (hqsSolved && !idqSolved) ++hqsOnlySolved;
        if (hqsSolved && idqSolved) {
            row.hqsCommonMs += r.hqsMs;
            row.idqCommonMs += r.idqMs;
        }
        maxMaxSatMs = std::max(maxMaxSatMs, r.hqsStats.maxsatMilliseconds);
        if (r.hqsMs > 0) {
            unitPureShareMax =
                std::max(unitPureShareMax, r.hqsStats.unitPureMilliseconds / r.hqsMs);
        }
    }

    std::printf("%-10s %5s | %6s %12s %9s %9s %12s | %6s %12s %9s %9s %12s\n", "family",
                "#inst", "HQS", "(SAT/UNSAT)", "unsolved", "(TO/MO)", "time[ms]", "iDQ",
                "(SAT/UNSAT)", "unsolved", "(TO/MO)", "time[ms]");
    std::printf("%.*s\n", 132,
                "-----------------------------------------------------------------------------"
                "-------------------------------------------------------");
    FamilyRow total;
    int wrongTotal = 0;
    for (Family fam : allFamilies()) {
        const FamilyRow& row = rows[fam];
        report.families.push_back(toReportRow(toString(fam), row));
        const int hqsSolved = row.hqsSat + row.hqsUnsat;
        const int idqSolved = row.idqSat + row.idqUnsat;
        std::printf("%-10s %5d | %6d  (%3d/%4d) %9d  (%3d/%3d) %12.1f | %6d  (%3d/%4d) %9d  "
                    "(%3d/%3d) %12.1f\n",
                    toString(fam).c_str(), row.instances, hqsSolved, row.hqsSat, row.hqsUnsat,
                    row.hqsTimeout + row.hqsMemout, row.hqsTimeout, row.hqsMemout,
                    row.hqsCommonMs, idqSolved, row.idqSat, row.idqUnsat,
                    row.idqTimeout + row.idqMemout, row.idqTimeout, row.idqMemout,
                    row.idqCommonMs);
        total.instances += row.instances;
        total.hqsSat += row.hqsSat;
        total.hqsUnsat += row.hqsUnsat;
        total.hqsTimeout += row.hqsTimeout;
        total.hqsMemout += row.hqsMemout;
        total.idqSat += row.idqSat;
        total.idqUnsat += row.idqUnsat;
        total.idqTimeout += row.idqTimeout;
        total.idqMemout += row.idqMemout;
        total.hqsCommonMs += row.hqsCommonMs;
        total.idqCommonMs += row.idqCommonMs;
        wrongTotal += row.wrongResults;
    }
    std::printf("%-10s %5d | %6d  (%3d/%4d) %9d  (%3d/%3d) %12.1f | %6d  (%3d/%4d) %9d  "
                "(%3d/%3d) %12.1f\n",
                "total", total.instances, total.hqsSat + total.hqsUnsat, total.hqsSat,
                total.hqsUnsat, total.hqsTimeout + total.hqsMemout, total.hqsTimeout,
                total.hqsMemout, total.hqsCommonMs, total.idqSat + total.idqUnsat,
                total.idqSat, total.idqUnsat, total.idqTimeout + total.idqMemout,
                total.idqTimeout, total.idqMemout, total.idqCommonMs);

    std::printf("\nSection IV aggregates:\n");
    if (hqsSolvedTotal > 0) {
        std::printf("  HQS solved within 1 s            : %d of %d solved (%.0f%%; paper: 90%%)\n",
                    solvedUnderOneSecond, hqsSolvedTotal,
                    100.0 * solvedUnderOneSecond / hqsSolvedTotal);
    }
    std::printf("  instances solved only by HQS     : %d (iDQ solved %d, HQS %d)\n",
                hqsOnlySolved, idqSolvedTotal, hqsSolvedTotal);
    std::printf("  max MaxSAT selection time        : %.2f ms (paper: < 60 ms)\n", maxMaxSatMs);
    std::printf("  max unit/pure share of runtime   : %.1f%% (paper: < 4%%)\n",
                100.0 * unitPureShareMax);
    std::printf("  results contradicting ground truth: %d (must be 0)\n", wrongTotal);

    if (!jsonPath.empty()) {
        std::printf("  portfolio race by engine family  :");
        for (const auto& [family, n] : familyWins)
            std::printf(" %s %d/%d", family.c_str(), n,
                        familySolved.count(family) ? familySolved.at(family) : 0);
        std::printf(" (wins/solved)\n");
        report.familySolved.assign(familySolved.begin(), familySolved.end());
        report.familyWins.assign(familyWins.begin(), familyWins.end());
        total.wrongResults = wrongTotal;
        report.families.push_back(toReportRow("total", total));
        report.timeoutSeconds = params.timeoutSeconds;
        report.hqsNodeLimit = params.hqsNodeLimit;
        report.idqGroundClauseLimit = params.idqGroundClauseLimit;
        report.hqsSolvedTotal = hqsSolvedTotal;
        report.idqSolvedTotal = idqSolvedTotal;
        report.solvedUnderOneSecond = solvedUnderOneSecond;
        report.hqsOnlySolved = hqsOnlySolved;
        report.maxMaxSatMs = maxMaxSatMs;
        report.unitPureShareMax = unitPureShareMax;
        report.wrongResults = wrongTotal;
        report.metrics = obs::globalRegistry().snapshot();
        int certified = 0, certValid = 0;
        for (const obs::BenchInstanceRow& inst : report.instances) {
            certified += inst.certified ? 1 : 0;
            certValid += inst.certValid ? 1 : 0;
        }
        std::printf("  Skolem certificates              : %d extracted, %d checked valid\n",
                    certified, certValid);
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
            return 1;
        }
        obs::writeBenchTable1Json(out, report);
        std::printf("\nwrote %s\n", jsonPath.c_str());
    }
    return wrongTotal == 0 ? 0 : 1;
}
