// Shared harness for the paper-reproduction benchmarks: instance suite
// construction and the two competing solvers with the paper's resource
// regime (per-instance wall-clock timeout standing in for the 2 h limit, a
// node/clause budget standing in for the 8 GB memout).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/timer.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"

namespace hqs::bench {

struct SuiteParams {
    /// Per-instance wall-clock limit in seconds (paper: 7200 s).
    double timeoutSeconds = 1.0;
    /// Width sweep per family (paper: 100-300 instances per family).
    unsigned minWidth = 3;
    unsigned maxWidth = 8;
    /// Memout proxies.
    std::size_t hqsNodeLimit = 500000;        ///< AND nodes in the matrix cone
    std::size_t idqGroundClauseLimit = 500000; ///< instantiated clauses
};

inline double envDouble(const char* name, double fallback)
{
    const char* v = std::getenv(name);
    return v ? std::atof(v) : fallback;
}

inline unsigned envUnsigned(const char* name, unsigned fallback)
{
    const char* v = std::getenv(name);
    return v ? static_cast<unsigned>(std::atoi(v)) : fallback;
}

inline SuiteParams suiteParamsFromEnv()
{
    SuiteParams p;
    p.timeoutSeconds = envDouble("HQS_BENCH_TIMEOUT", p.timeoutSeconds);
    p.minWidth = envUnsigned("HQS_BENCH_MINWIDTH", p.minWidth);
    p.maxWidth = envUnsigned("HQS_BENCH_MAXWIDTH", p.maxWidth);
    return p;
}

struct InstanceSpec {
    Family family;
    unsigned width;
    bool realizable;
};

/// The benchmark suite: every family, all widths, SAT and UNSAT variants.
/// The paper's set skews towards UNSAT instances (1342 of 1555 solved were
/// UNSAT); the by-construction unsat variant plus the sweep reproduces the
/// mix without hand-tuning.
inline std::vector<InstanceSpec> buildSuite(const SuiteParams& p)
{
    std::vector<InstanceSpec> specs;
    for (Family fam : allFamilies()) {
        for (unsigned w = p.minWidth; w <= p.maxWidth; ++w) {
            specs.push_back({fam, w, false});
            specs.push_back({fam, w, true});
        }
    }
    return specs;
}

struct RunResult {
    std::string name;
    Family family;
    bool expectedSat = false;
    SolveResult hqs = SolveResult::Unknown;
    SolveResult idq = SolveResult::Unknown;
    double hqsMs = 0;
    double idqMs = 0;
    HqsStats hqsStats;
};

inline RunResult runInstance(const InstanceSpec& spec, const SuiteParams& p,
                             bool runIdq = true)
{
    const PecInstance inst = makeInstance(spec.family, spec.width, spec.realizable);
    RunResult r;
    r.name = inst.name;
    r.family = spec.family;
    r.expectedSat = spec.realizable;

    {
        PecEncoding enc = encodePec(inst);
        HqsOptions opts;
        opts.deadline = Deadline::in(p.timeoutSeconds);
        opts.nodeLimit = p.hqsNodeLimit;
        HqsSolver solver(opts);
        Timer t;
        r.hqs = solver.solve(std::move(enc.formula));
        r.hqsMs = t.elapsedMilliseconds();
        r.hqsStats = solver.stats();
    }
    if (runIdq) {
        PecEncoding enc = encodePec(inst);
        IdqOptions opts;
        opts.deadline = Deadline::in(p.timeoutSeconds);
        opts.groundClauseLimit = p.idqGroundClauseLimit;
        IdqSolver solver(opts);
        Timer t;
        r.idq = solver.solve(enc.formula);
        r.idqMs = t.elapsedMilliseconds();
    }
    return r;
}

} // namespace hqs::bench
