// Reproduction of Fig. 4: the per-instance runtime comparison of iDQ (x)
// vs HQS (y).  Emits one CSV row per instance and an ASCII log-log scatter
// with TO/MO rails, mirroring the paper's plot.  Points below the diagonal
// are HQS wins; the paper reports wins of up to four orders of magnitude.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"

using namespace hqs;
using namespace hqs::bench;

int main()
{
    const SuiteParams params = suiteParamsFromEnv();
    const double limitMs = params.timeoutSeconds * 1000.0;

    std::printf("# Fig. 4 reproduction — runtime scatter, per-instance limit %.1f s\n",
                params.timeoutSeconds);
    std::printf("family,instance,expected,hqs_status,hqs_ms,idq_status,idq_ms\n");

    std::vector<RunResult> results;
    for (const InstanceSpec& spec : buildSuite(params)) {
        RunResult r = runInstance(spec, params);
        std::printf("%s,%s,%s,%s,%.3f,%s,%.3f\n", toString(r.family).c_str(), r.name.c_str(),
                    r.expectedSat ? "SAT" : "UNSAT", toString(r.hqs).c_str(), r.hqsMs,
                    toString(r.idq).c_str(), r.idqMs);
        std::fflush(stdout);
        results.push_back(std::move(r));
    }

    // ASCII scatter, log scale; unsolved instances clamp to the limit rail.
    constexpr int W = 64, H = 24;
    const double loMs = 0.01;
    auto clampMs = [&](SolveResult s, double ms) {
        return isConclusive(s) ? std::clamp(ms, loMs, limitMs) : limitMs;
    };
    auto axis = [&](double ms, int steps) {
        const double t = std::log(ms / loMs) / std::log(limitMs / loMs);
        return std::clamp(static_cast<int>(t * (steps - 1)), 0, steps - 1);
    };

    std::vector<std::string> grid(H, std::string(W, ' '));
    for (int i = 0; i < std::min(W, H); ++i) {
        grid[static_cast<std::size_t>(H - 1 - (i * H) / std::max(W, 1))]
            [static_cast<std::size_t>(i)] = '.';
    }
    int below = 0, above = 0;
    for (const RunResult& r : results) {
        const double x = clampMs(r.idq, r.idqMs);
        const double y = clampMs(r.hqs, r.hqsMs);
        const int cx = axis(x, W);
        const int cy = H - 1 - axis(y, H);
        grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = 'o';
        if (y < x) {
            ++below;
        } else if (y > x) {
            ++above;
        }
    }

    std::printf("\n# ASCII scatter: x = iDQ-like time, y = HQS time (log scale, "
                "%.2f ms .. %.0f ms; right/top edge = TO/MO rail)\n",
                loMs, limitMs);
    std::printf("# 'o' below the diagonal '.' = HQS faster\n");
    for (const std::string& line : grid) std::printf("# |%s|\n", line.c_str());
    std::printf("# instances with HQS faster: %d, iDQ faster: %d (of %zu)\n", below, above,
                results.size());

    // Headline ratio on commonly solved instances.
    double maxRatio = 0;
    for (const RunResult& r : results) {
        if (isConclusive(r.hqs) && isConclusive(r.idq) && r.hqsMs > 0) {
            maxRatio = std::max(maxRatio, r.idqMs / std::max(r.hqsMs, 0.01));
        }
    }
    std::printf("# max iDQ/HQS speed ratio on commonly solved: %.0fx (paper: up to 1e4)\n",
                maxRatio);
    return 0;
}
