// Portfolio racing vs best-single-engine on the PEC families.
//
// For every suite instance this harness (1) races the default engine lineup
// with PortfolioSolver and (2) runs each engine solo under the same budget.
// The interesting number is the regret: portfolio wall-clock vs the best
// solo engine *in hindsight* — the portfolio pays one race's overhead to
// avoid having to know the best engine up front, and on families where the
// engines' strengths are disjoint it beats any fixed choice overall.
//
// Output: one JSON object per instance (JSONL on stdout, '#' comment
// header), each with the winner, portfolio and per-engine wall-clock, each
// loser's cancel latency, and the hindsight-best solo engine.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/runtime/portfolio.hpp"

using namespace hqs;
using namespace hqs::bench;

int main()
{
    const SuiteParams params = suiteParamsFromEnv();

    std::printf("# bench_portfolio — portfolio race vs best single engine, "
                "limit %.1f s/instance\n",
                params.timeoutSeconds);

    double portfolioTotalMs = 0, bestSoloTotalMs = 0;
    std::size_t portfolioSolved = 0, bestSoloSolved = 0, instances = 0;

    for (const InstanceSpec& spec : buildSuite(params)) {
        const PecInstance inst = makeInstance(spec.family, spec.width, spec.realizable);
        const PecEncoding enc = encodePec(inst);
        ++instances;

        // (1) the race.
        PortfolioOptions popts;
        popts.deadline = Deadline::in(params.timeoutSeconds);
        popts.nodeLimit = params.hqsNodeLimit;
        PortfolioSolver portfolio(popts);
        const SolveResult raceResult = portfolio.solve(enc.formula);
        const PortfolioStats& race = portfolio.stats();
        portfolioTotalMs += race.totalMilliseconds;
        if (isConclusive(raceResult)) ++portfolioSolved;

        // (2) every engine solo under the same budget: the hindsight oracle.
        std::string bestName;
        double bestMs = 0;
        SolveResult bestResult = SolveResult::Unknown;
        std::vector<std::pair<std::string, double>> soloTimes;
        for (const PortfolioEngine& e :
             PortfolioSolver::defaultEngines(params.hqsNodeLimit)) {
            Timer t;
            const SolveResult r = e.run(enc.formula, Deadline::in(params.timeoutSeconds));
            const double ms = t.elapsedMilliseconds();
            soloTimes.emplace_back(e.name, ms);
            if (isConclusive(r) && (bestName.empty() || ms < bestMs)) {
                bestName = e.name;
                bestMs = ms;
                bestResult = r;
            }
        }
        if (isConclusive(bestResult)) {
            ++bestSoloSolved;
            bestSoloTotalMs += bestMs;
        } else {
            bestSoloTotalMs += params.timeoutSeconds * 1000.0;
        }

        // JSONL row.
        std::printf("{\"instance\":\"%s\",\"expected\":\"%s\",\"result\":\"%s\","
                    "\"winner\":\"%s\",\"portfolio_ms\":%.3f,"
                    "\"best_single\":\"%s\",\"best_single_ms\":%.3f,\"engines\":[",
                    inst.name.c_str(), spec.realizable ? "SAT" : "UNSAT",
                    toString(raceResult).c_str(),
                    race.winnerName.empty() ? "(none)" : race.winnerName.c_str(),
                    race.totalMilliseconds, bestName.empty() ? "(none)" : bestName.c_str(),
                    bestName.empty() ? 0.0 : bestMs);
        for (std::size_t i = 0; i < race.engines.size(); ++i) {
            const EngineRunStats& es = race.engines[i];
            std::printf("%s{\"name\":\"%s\",\"result\":\"%s\",\"elapsed_ms\":%.3f,"
                        "\"cancel_latency_ms\":%.3f,\"winner\":%s}",
                        i ? "," : "", es.name.c_str(), toString(es.result).c_str(),
                        es.elapsedMilliseconds, es.cancelLatencyMilliseconds,
                        es.winner ? "true" : "false");
        }
        std::printf("]}\n");
        std::fflush(stdout);
    }

    std::printf("# %zu instances: portfolio solved %zu (%.1f s total), "
                "hindsight-best single engine solved %zu (%.1f s total)\n",
                instances, portfolioSolved, portfolioTotalMs / 1000.0, bestSoloSolved,
                bestSoloTotalMs / 1000.0);
    return 0;
}
