// QBF backend comparison: the paper plugs an AIG-elimination solver
// (AIGSOLVE) into HQS but names search-based solvers (DepQBF) as the other
// family, and motivates AIGs over BDDs.  This bench races the repository's
// four QBF engines — AIG elimination, BDD elimination, clausal QDPLL
// search, and AIG cofactor search — on two workloads:
//
//   * random k-CNF QBFs with alternating prefixes (phase-transition mix);
//   * 2-QBF equivalence-checking instances (forall inputs, exists Tseitin
//     auxiliaries: miter of an adder against a buggy copy).
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/qbf/bdd_qbf_solver.hpp"
#include "src/qbf/qdpll_solver.hpp"
#include "src/qbf/search_qbf_solver.hpp"

using namespace hqs;
using namespace hqs::bench;

namespace {

struct EngineResult {
    SolveResult result;
    double ms;
};

struct Row {
    std::string name;
    EngineResult aigElim, bddElim, qdpll, aigSearch;
    bool agree = true;
};

EngineResult timeIt(const std::function<SolveResult()>& run)
{
    Timer t;
    const SolveResult r = run();
    return {r, t.elapsedMilliseconds()};
}

Row runAll(const std::string& name, const QbfProblem& q, double timeoutSeconds)
{
    Row row;
    row.name = name;
    row.aigElim = timeIt([&] {
        Aig aig;
        const AigEdge matrix = buildFromCnf(aig, q.matrix);
        AigQbfOptions opts;
        opts.deadline = Deadline::in(timeoutSeconds);
        AigQbfSolver s(opts);
        return s.solve(aig, matrix, q.prefix);
    });
    row.bddElim = timeIt([&] {
        BddQbfOptions opts;
        opts.deadline = Deadline::in(timeoutSeconds);
        BddQbfSolver s(opts);
        return s.solve(q.matrix, q.prefix);
    });
    row.qdpll = timeIt([&] {
        QdpllSolver s(Deadline::in(timeoutSeconds));
        return s.solve(q.matrix, q.prefix);
    });
    row.aigSearch = timeIt([&] {
        Aig aig;
        const AigEdge matrix = buildFromCnf(aig, q.matrix);
        return searchQbfSolve(aig, matrix, q.prefix, Deadline::in(timeoutSeconds));
    });

    SolveResult reference = SolveResult::Unknown;
    for (const EngineResult* e : {&row.aigElim, &row.bddElim, &row.qdpll, &row.aigSearch}) {
        if (!isConclusive(e->result)) continue;
        if (reference == SolveResult::Unknown) {
            reference = e->result;
        } else if (e->result != reference) {
            row.agree = false;
        }
    }
    return row;
}

QbfProblem randomQbf(Rng& rng, Var n, int clauses)
{
    QbfProblem q;
    q.matrix.ensureVars(n);
    for (int c = 0; c < clauses; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v) {
        q.prefix.addVar(rng.flip() ? QuantKind::Forall : QuantKind::Exists, v);
    }
    return q;
}

/// 2-QBF equivalence check: forall inputs exists aux: Tseitin(spec) &
/// Tseitin(dut) & (out_spec XOR out_dut is FALSE) encoded as clauses; UNSAT
/// of the miter output means equivalent, posed here as the QBF
/// "forall X exists T: defs & ~miter" (Sat iff equivalent).
QbfProblem equivalenceQbf(unsigned width, bool injectBug)
{
    const PecInstance ref = makeInstance(Family::Adder, width, true);
    QbfProblem q;
    std::unordered_map<Circuit::NodeId, Var> fixedA, fixedB;
    std::vector<Var> inputs;
    for (std::size_t i = 0; i < ref.spec.inputs().size(); ++i) {
        const Var v = q.matrix.newVar();
        inputs.push_back(v);
        fixedA.emplace(ref.spec.inputs()[i], v);
        fixedB.emplace(ref.spec.inputs()[i], v);
    }
    auto fresh = [&]() { return q.matrix.newVar(); };
    const auto va = tseitinEncode(ref.spec, q.matrix, fixedA, fresh);
    const auto vb = tseitinEncode(ref.spec, q.matrix, fixedB, fresh);

    // Equality constraints on outputs (XNOR as two implications), with an
    // optional bug: invert one output pairing.
    for (std::size_t j = 0; j < ref.spec.outputs().size(); ++j) {
        Lit a = Lit::pos(va[ref.spec.outputs()[j]]);
        Lit b = Lit::pos(vb[ref.spec.outputs()[j]]);
        if (injectBug && j == 0) b = ~b;
        q.matrix.addClause({~a, b});
        q.matrix.addClause({a, ~b});
    }

    q.prefix.addBlock(QuantKind::Forall, inputs);
    std::vector<Var> aux;
    for (Var v = 0; v < q.matrix.numVars(); ++v) {
        bool isInput = false;
        for (Var in : inputs) {
            if (in == v) {
                isInput = true;
                break;
            }
        }
        if (!isInput) aux.push_back(v);
    }
    q.prefix.addBlock(QuantKind::Exists, aux);
    return q;
}

void printRow(const Row& row)
{
    auto cell = [](const EngineResult& e) {
        static char buf[48];
        std::snprintf(buf, sizeof(buf), "%-7s %9.2f", toString(e.result).c_str(), e.ms);
        return std::string(buf);
    };
    std::printf("%-24s | %s | %s | %s | %s | %s\n", row.name.c_str(),
                cell(row.aigElim).c_str(), cell(row.bddElim).c_str(), cell(row.qdpll).c_str(),
                cell(row.aigSearch).c_str(), row.agree ? "ok" : "DISAGREE");
    std::fflush(stdout);
}

} // namespace

int main()
{
    const SuiteParams params = suiteParamsFromEnv();
    std::printf("QBF backend comparison — per-engine timeout %.1f s\n\n", params.timeoutSeconds);
    std::printf("%-24s | %-17s | %-17s | %-17s | %-17s |\n", "instance", "AIG-elim [26]",
                "BDD-elim [23]", "QDPLL [25]", "AIG-search");
    std::printf("%.*s\n", 110,
                "--------------------------------------------------------------------------"
                "----------------------------------------");

    int disagreements = 0;
    Rng rng(12345);
    for (Var n : {12u, 16u, 20u}) {
        for (int i = 0; i < 3; ++i) {
            // Alternate between under- and over-constrained densities so the
            // suite has both SAT and UNSAT random instances.
            const int clauses = static_cast<int>(n) * (i == 0 ? 2 : 4);
            const QbfProblem q = randomQbf(rng, n, clauses);
            const Row row = runAll("random3qbf_n" + std::to_string(n) + "_" + std::to_string(i),
                                   q, params.timeoutSeconds);
            printRow(row);
            if (!row.agree) ++disagreements;
        }
    }
    for (unsigned w : {4u, 6u, 8u}) {
        for (bool bug : {false, true}) {
            const QbfProblem q = equivalenceQbf(w, bug);
            const Row row = runAll(
                "adder_eq_w" + std::to_string(w) + (bug ? "_bug" : "_ok"), q,
                params.timeoutSeconds);
            printRow(row);
            if (!row.agree) ++disagreements;
        }
    }
    std::printf("\nengine disagreements: %d (must be 0)\n", disagreements);
    return disagreements == 0 ? 0 : 1;
}
