file(REMOVE_RECURSE
  "CMakeFiles/qbf_solve.dir/qbf_solve.cpp.o"
  "CMakeFiles/qbf_solve.dir/qbf_solve.cpp.o.d"
  "qbf_solve"
  "qbf_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbf_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
