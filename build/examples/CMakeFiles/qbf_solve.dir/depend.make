# Empty dependencies file for qbf_solve.
# This may be replaced when dependencies are built.
