file(REMOVE_RECURSE
  "CMakeFiles/dqbf_fuzz.dir/dqbf_fuzz.cpp.o"
  "CMakeFiles/dqbf_fuzz.dir/dqbf_fuzz.cpp.o.d"
  "dqbf_fuzz"
  "dqbf_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqbf_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
