# Empty dependencies file for dqbf_fuzz.
# This may be replaced when dependencies are built.
