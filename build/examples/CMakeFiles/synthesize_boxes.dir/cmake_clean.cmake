file(REMOVE_RECURSE
  "CMakeFiles/synthesize_boxes.dir/synthesize_boxes.cpp.o"
  "CMakeFiles/synthesize_boxes.dir/synthesize_boxes.cpp.o.d"
  "synthesize_boxes"
  "synthesize_boxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_boxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
