# Empty dependencies file for synthesize_boxes.
# This may be replaced when dependencies are built.
