# Empty compiler generated dependencies file for pec_check.
# This may be replaced when dependencies are built.
