file(REMOVE_RECURSE
  "CMakeFiles/pec_check.dir/pec_check.cpp.o"
  "CMakeFiles/pec_check.dir/pec_check.cpp.o.d"
  "pec_check"
  "pec_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
