file(REMOVE_RECURSE
  "CMakeFiles/family_explorer.dir/family_explorer.cpp.o"
  "CMakeFiles/family_explorer.dir/family_explorer.cpp.o.d"
  "family_explorer"
  "family_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
