# Empty compiler generated dependencies file for family_explorer.
# This may be replaced when dependencies are built.
