file(REMOVE_RECURSE
  "CMakeFiles/dqbf_solve.dir/dqbf_solve.cpp.o"
  "CMakeFiles/dqbf_solve.dir/dqbf_solve.cpp.o.d"
  "dqbf_solve"
  "dqbf_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqbf_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
