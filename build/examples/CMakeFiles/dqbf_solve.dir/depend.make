# Empty dependencies file for dqbf_solve.
# This may be replaced when dependencies are built.
