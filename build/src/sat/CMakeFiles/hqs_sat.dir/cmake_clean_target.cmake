file(REMOVE_RECURSE
  "libhqs_sat.a"
)
