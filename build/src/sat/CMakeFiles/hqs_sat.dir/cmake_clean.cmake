file(REMOVE_RECURSE
  "CMakeFiles/hqs_sat.dir/sat_solver.cpp.o"
  "CMakeFiles/hqs_sat.dir/sat_solver.cpp.o.d"
  "libhqs_sat.a"
  "libhqs_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
