# Empty compiler generated dependencies file for hqs_sat.
# This may be replaced when dependencies are built.
