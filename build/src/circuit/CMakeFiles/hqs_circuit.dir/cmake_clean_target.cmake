file(REMOVE_RECURSE
  "libhqs_circuit.a"
)
