
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/hqs_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/hqs_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/families.cpp" "src/circuit/CMakeFiles/hqs_circuit.dir/families.cpp.o" "gcc" "src/circuit/CMakeFiles/hqs_circuit.dir/families.cpp.o.d"
  "/root/repo/src/circuit/tseitin.cpp" "src/circuit/CMakeFiles/hqs_circuit.dir/tseitin.cpp.o" "gcc" "src/circuit/CMakeFiles/hqs_circuit.dir/tseitin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/hqs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
