# Empty compiler generated dependencies file for hqs_circuit.
# This may be replaced when dependencies are built.
