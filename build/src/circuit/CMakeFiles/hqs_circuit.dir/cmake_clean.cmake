file(REMOVE_RECURSE
  "CMakeFiles/hqs_circuit.dir/circuit.cpp.o"
  "CMakeFiles/hqs_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/hqs_circuit.dir/families.cpp.o"
  "CMakeFiles/hqs_circuit.dir/families.cpp.o.d"
  "CMakeFiles/hqs_circuit.dir/tseitin.cpp.o"
  "CMakeFiles/hqs_circuit.dir/tseitin.cpp.o.d"
  "libhqs_circuit.a"
  "libhqs_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
