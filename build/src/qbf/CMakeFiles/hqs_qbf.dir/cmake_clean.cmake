file(REMOVE_RECURSE
  "CMakeFiles/hqs_qbf.dir/aig_qbf_solver.cpp.o"
  "CMakeFiles/hqs_qbf.dir/aig_qbf_solver.cpp.o.d"
  "CMakeFiles/hqs_qbf.dir/bdd_qbf_solver.cpp.o"
  "CMakeFiles/hqs_qbf.dir/bdd_qbf_solver.cpp.o.d"
  "CMakeFiles/hqs_qbf.dir/qbf_oracle.cpp.o"
  "CMakeFiles/hqs_qbf.dir/qbf_oracle.cpp.o.d"
  "CMakeFiles/hqs_qbf.dir/qbf_prefix.cpp.o"
  "CMakeFiles/hqs_qbf.dir/qbf_prefix.cpp.o.d"
  "CMakeFiles/hqs_qbf.dir/qdpll_solver.cpp.o"
  "CMakeFiles/hqs_qbf.dir/qdpll_solver.cpp.o.d"
  "CMakeFiles/hqs_qbf.dir/search_qbf_solver.cpp.o"
  "CMakeFiles/hqs_qbf.dir/search_qbf_solver.cpp.o.d"
  "libhqs_qbf.a"
  "libhqs_qbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_qbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
