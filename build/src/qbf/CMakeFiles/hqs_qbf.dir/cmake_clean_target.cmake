file(REMOVE_RECURSE
  "libhqs_qbf.a"
)
