
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qbf/aig_qbf_solver.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/aig_qbf_solver.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/aig_qbf_solver.cpp.o.d"
  "/root/repo/src/qbf/bdd_qbf_solver.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/bdd_qbf_solver.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/bdd_qbf_solver.cpp.o.d"
  "/root/repo/src/qbf/qbf_oracle.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/qbf_oracle.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/qbf_oracle.cpp.o.d"
  "/root/repo/src/qbf/qbf_prefix.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/qbf_prefix.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/qbf_prefix.cpp.o.d"
  "/root/repo/src/qbf/qdpll_solver.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/qdpll_solver.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/qdpll_solver.cpp.o.d"
  "/root/repo/src/qbf/search_qbf_solver.cpp" "src/qbf/CMakeFiles/hqs_qbf.dir/search_qbf_solver.cpp.o" "gcc" "src/qbf/CMakeFiles/hqs_qbf.dir/search_qbf_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aig/CMakeFiles/hqs_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hqs_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/hqs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/hqs_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
