# Empty compiler generated dependencies file for hqs_qbf.
# This may be replaced when dependencies are built.
