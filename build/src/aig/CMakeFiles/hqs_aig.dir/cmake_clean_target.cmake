file(REMOVE_RECURSE
  "libhqs_aig.a"
)
