
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "src/aig/CMakeFiles/hqs_aig.dir/aig.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/aig.cpp.o.d"
  "/root/repo/src/aig/aiger.cpp" "src/aig/CMakeFiles/hqs_aig.dir/aiger.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/aiger.cpp.o.d"
  "/root/repo/src/aig/cnf_bridge.cpp" "src/aig/CMakeFiles/hqs_aig.dir/cnf_bridge.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/cnf_bridge.cpp.o.d"
  "/root/repo/src/aig/fraig.cpp" "src/aig/CMakeFiles/hqs_aig.dir/fraig.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/fraig.cpp.o.d"
  "/root/repo/src/aig/quantify.cpp" "src/aig/CMakeFiles/hqs_aig.dir/quantify.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/quantify.cpp.o.d"
  "/root/repo/src/aig/unit_pure.cpp" "src/aig/CMakeFiles/hqs_aig.dir/unit_pure.cpp.o" "gcc" "src/aig/CMakeFiles/hqs_aig.dir/unit_pure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/hqs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/hqs_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
