file(REMOVE_RECURSE
  "CMakeFiles/hqs_aig.dir/aig.cpp.o"
  "CMakeFiles/hqs_aig.dir/aig.cpp.o.d"
  "CMakeFiles/hqs_aig.dir/aiger.cpp.o"
  "CMakeFiles/hqs_aig.dir/aiger.cpp.o.d"
  "CMakeFiles/hqs_aig.dir/cnf_bridge.cpp.o"
  "CMakeFiles/hqs_aig.dir/cnf_bridge.cpp.o.d"
  "CMakeFiles/hqs_aig.dir/fraig.cpp.o"
  "CMakeFiles/hqs_aig.dir/fraig.cpp.o.d"
  "CMakeFiles/hqs_aig.dir/quantify.cpp.o"
  "CMakeFiles/hqs_aig.dir/quantify.cpp.o.d"
  "CMakeFiles/hqs_aig.dir/unit_pure.cpp.o"
  "CMakeFiles/hqs_aig.dir/unit_pure.cpp.o.d"
  "libhqs_aig.a"
  "libhqs_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
