# Empty dependencies file for hqs_aig.
# This may be replaced when dependencies are built.
