# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("cnf")
subdirs("sat")
subdirs("maxsat")
subdirs("aig")
subdirs("bdd")
subdirs("qbf")
subdirs("circuit")
subdirs("pec")
subdirs("dqbf")
subdirs("idq")
