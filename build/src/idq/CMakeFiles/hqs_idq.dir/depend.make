# Empty dependencies file for hqs_idq.
# This may be replaced when dependencies are built.
