file(REMOVE_RECURSE
  "CMakeFiles/hqs_idq.dir/idq_solver.cpp.o"
  "CMakeFiles/hqs_idq.dir/idq_solver.cpp.o.d"
  "libhqs_idq.a"
  "libhqs_idq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_idq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
