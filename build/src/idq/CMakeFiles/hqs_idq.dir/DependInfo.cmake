
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idq/idq_solver.cpp" "src/idq/CMakeFiles/hqs_idq.dir/idq_solver.cpp.o" "gcc" "src/idq/CMakeFiles/hqs_idq.dir/idq_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dqbf/CMakeFiles/hqs_dqbf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/hqs_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/hqs_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/qbf/CMakeFiles/hqs_qbf.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hqs_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/maxsat/CMakeFiles/hqs_maxsat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/hqs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
