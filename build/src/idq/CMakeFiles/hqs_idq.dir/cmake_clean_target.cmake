file(REMOVE_RECURSE
  "libhqs_idq.a"
)
