# CMake generated Testfile for 
# Source directory: /root/repo/src/maxsat
# Build directory: /root/repo/build/src/maxsat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
