file(REMOVE_RECURSE
  "libhqs_maxsat.a"
)
