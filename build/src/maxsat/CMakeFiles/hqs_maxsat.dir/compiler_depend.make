# Empty compiler generated dependencies file for hqs_maxsat.
# This may be replaced when dependencies are built.
