file(REMOVE_RECURSE
  "CMakeFiles/hqs_maxsat.dir/maxsat.cpp.o"
  "CMakeFiles/hqs_maxsat.dir/maxsat.cpp.o.d"
  "libhqs_maxsat.a"
  "libhqs_maxsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_maxsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
