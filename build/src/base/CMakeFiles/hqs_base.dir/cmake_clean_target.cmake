file(REMOVE_RECURSE
  "libhqs_base.a"
)
