file(REMOVE_RECURSE
  "CMakeFiles/hqs_base.dir/literal.cpp.o"
  "CMakeFiles/hqs_base.dir/literal.cpp.o.d"
  "CMakeFiles/hqs_base.dir/result.cpp.o"
  "CMakeFiles/hqs_base.dir/result.cpp.o.d"
  "libhqs_base.a"
  "libhqs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
