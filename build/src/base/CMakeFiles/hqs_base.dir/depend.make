# Empty dependencies file for hqs_base.
# This may be replaced when dependencies are built.
