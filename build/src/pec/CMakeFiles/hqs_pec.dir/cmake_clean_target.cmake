file(REMOVE_RECURSE
  "libhqs_pec.a"
)
