file(REMOVE_RECURSE
  "CMakeFiles/hqs_pec.dir/box_synthesis.cpp.o"
  "CMakeFiles/hqs_pec.dir/box_synthesis.cpp.o.d"
  "CMakeFiles/hqs_pec.dir/pec_encoder.cpp.o"
  "CMakeFiles/hqs_pec.dir/pec_encoder.cpp.o.d"
  "libhqs_pec.a"
  "libhqs_pec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_pec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
