# Empty compiler generated dependencies file for hqs_pec.
# This may be replaced when dependencies are built.
