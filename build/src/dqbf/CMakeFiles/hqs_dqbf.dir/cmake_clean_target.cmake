file(REMOVE_RECURSE
  "libhqs_dqbf.a"
)
