
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dqbf/dependency_graph.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dependency_graph.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/dqbf/dqbf_formula.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dqbf_formula.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dqbf_formula.cpp.o.d"
  "/root/repo/src/dqbf/dqbf_oracle.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dqbf_oracle.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/dqbf_oracle.cpp.o.d"
  "/root/repo/src/dqbf/hqs_solver.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/hqs_solver.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/hqs_solver.cpp.o.d"
  "/root/repo/src/dqbf/preprocess.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/preprocess.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/preprocess.cpp.o.d"
  "/root/repo/src/dqbf/skolem.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/skolem.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/skolem.cpp.o.d"
  "/root/repo/src/dqbf/skolem_recorder.cpp" "src/dqbf/CMakeFiles/hqs_dqbf.dir/skolem_recorder.cpp.o" "gcc" "src/dqbf/CMakeFiles/hqs_dqbf.dir/skolem_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qbf/CMakeFiles/hqs_qbf.dir/DependInfo.cmake"
  "/root/repo/build/src/maxsat/CMakeFiles/hqs_maxsat.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/hqs_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/hqs_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hqs_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/hqs_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
