# Empty compiler generated dependencies file for hqs_dqbf.
# This may be replaced when dependencies are built.
