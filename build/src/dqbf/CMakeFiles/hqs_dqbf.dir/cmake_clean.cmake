file(REMOVE_RECURSE
  "CMakeFiles/hqs_dqbf.dir/dependency_graph.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/dqbf_formula.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/dqbf_formula.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/dqbf_oracle.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/dqbf_oracle.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/hqs_solver.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/hqs_solver.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/preprocess.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/preprocess.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/skolem.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/skolem.cpp.o.d"
  "CMakeFiles/hqs_dqbf.dir/skolem_recorder.cpp.o"
  "CMakeFiles/hqs_dqbf.dir/skolem_recorder.cpp.o.d"
  "libhqs_dqbf.a"
  "libhqs_dqbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_dqbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
