# Empty dependencies file for hqs_bdd.
# This may be replaced when dependencies are built.
