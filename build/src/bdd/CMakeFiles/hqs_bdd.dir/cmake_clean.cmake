file(REMOVE_RECURSE
  "CMakeFiles/hqs_bdd.dir/bdd.cpp.o"
  "CMakeFiles/hqs_bdd.dir/bdd.cpp.o.d"
  "libhqs_bdd.a"
  "libhqs_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
