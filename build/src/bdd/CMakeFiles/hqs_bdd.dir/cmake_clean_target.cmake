file(REMOVE_RECURSE
  "libhqs_bdd.a"
)
