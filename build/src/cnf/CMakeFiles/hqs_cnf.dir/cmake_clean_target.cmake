file(REMOVE_RECURSE
  "libhqs_cnf.a"
)
