file(REMOVE_RECURSE
  "CMakeFiles/hqs_cnf.dir/clause.cpp.o"
  "CMakeFiles/hqs_cnf.dir/clause.cpp.o.d"
  "CMakeFiles/hqs_cnf.dir/cnf.cpp.o"
  "CMakeFiles/hqs_cnf.dir/cnf.cpp.o.d"
  "CMakeFiles/hqs_cnf.dir/dimacs.cpp.o"
  "CMakeFiles/hqs_cnf.dir/dimacs.cpp.o.d"
  "libhqs_cnf.a"
  "libhqs_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
