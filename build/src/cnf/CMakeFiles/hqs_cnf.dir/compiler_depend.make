# Empty compiler generated dependencies file for hqs_cnf.
# This may be replaced when dependencies are built.
