file(REMOVE_RECURSE
  "CMakeFiles/bench_qbf_backends.dir/bench_qbf_backends.cpp.o"
  "CMakeFiles/bench_qbf_backends.dir/bench_qbf_backends.cpp.o.d"
  "bench_qbf_backends"
  "bench_qbf_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qbf_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
