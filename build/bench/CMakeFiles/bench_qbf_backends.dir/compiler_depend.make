# Empty compiler generated dependencies file for bench_qbf_backends.
# This may be replaced when dependencies are built.
