# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/cnf_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/maxsat_test[1]_include.cmake")
include("/root/repo/build/tests/aig_test[1]_include.cmake")
include("/root/repo/build/tests/unit_pure_test[1]_include.cmake")
include("/root/repo/build/tests/fraig_test[1]_include.cmake")
include("/root/repo/build/tests/aiger_test[1]_include.cmake")
include("/root/repo/build/tests/qbf_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/qdpll_test[1]_include.cmake")
include("/root/repo/build/tests/dqbf_core_test[1]_include.cmake")
include("/root/repo/build/tests/hqs_solver_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/pec_test[1]_include.cmake")
include("/root/repo/build/tests/skolem_test[1]_include.cmake")
include("/root/repo/build/tests/hqs_skolem_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
