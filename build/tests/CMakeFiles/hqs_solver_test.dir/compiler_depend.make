# Empty compiler generated dependencies file for hqs_solver_test.
# This may be replaced when dependencies are built.
