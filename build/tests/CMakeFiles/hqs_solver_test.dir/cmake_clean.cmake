file(REMOVE_RECURSE
  "CMakeFiles/hqs_solver_test.dir/hqs_solver_test.cpp.o"
  "CMakeFiles/hqs_solver_test.dir/hqs_solver_test.cpp.o.d"
  "hqs_solver_test"
  "hqs_solver_test.pdb"
  "hqs_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
