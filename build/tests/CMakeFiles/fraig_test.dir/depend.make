# Empty dependencies file for fraig_test.
# This may be replaced when dependencies are built.
