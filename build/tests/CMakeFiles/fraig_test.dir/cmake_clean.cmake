file(REMOVE_RECURSE
  "CMakeFiles/fraig_test.dir/fraig_test.cpp.o"
  "CMakeFiles/fraig_test.dir/fraig_test.cpp.o.d"
  "fraig_test"
  "fraig_test.pdb"
  "fraig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
