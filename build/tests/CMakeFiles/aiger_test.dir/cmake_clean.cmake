file(REMOVE_RECURSE
  "CMakeFiles/aiger_test.dir/aiger_test.cpp.o"
  "CMakeFiles/aiger_test.dir/aiger_test.cpp.o.d"
  "aiger_test"
  "aiger_test.pdb"
  "aiger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
