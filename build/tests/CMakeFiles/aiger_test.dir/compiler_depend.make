# Empty compiler generated dependencies file for aiger_test.
# This may be replaced when dependencies are built.
