file(REMOVE_RECURSE
  "CMakeFiles/maxsat_test.dir/maxsat_test.cpp.o"
  "CMakeFiles/maxsat_test.dir/maxsat_test.cpp.o.d"
  "maxsat_test"
  "maxsat_test.pdb"
  "maxsat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
