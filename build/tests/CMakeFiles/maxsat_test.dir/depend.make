# Empty dependencies file for maxsat_test.
# This may be replaced when dependencies are built.
