file(REMOVE_RECURSE
  "CMakeFiles/base_test.dir/base_test.cpp.o"
  "CMakeFiles/base_test.dir/base_test.cpp.o.d"
  "base_test"
  "base_test.pdb"
  "base_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
