# Empty compiler generated dependencies file for aig_test.
# This may be replaced when dependencies are built.
