file(REMOVE_RECURSE
  "CMakeFiles/aig_test.dir/aig_test.cpp.o"
  "CMakeFiles/aig_test.dir/aig_test.cpp.o.d"
  "aig_test"
  "aig_test.pdb"
  "aig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
