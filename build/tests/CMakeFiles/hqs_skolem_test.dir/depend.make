# Empty dependencies file for hqs_skolem_test.
# This may be replaced when dependencies are built.
