file(REMOVE_RECURSE
  "CMakeFiles/hqs_skolem_test.dir/hqs_skolem_test.cpp.o"
  "CMakeFiles/hqs_skolem_test.dir/hqs_skolem_test.cpp.o.d"
  "hqs_skolem_test"
  "hqs_skolem_test.pdb"
  "hqs_skolem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hqs_skolem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
