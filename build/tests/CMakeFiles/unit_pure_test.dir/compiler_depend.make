# Empty compiler generated dependencies file for unit_pure_test.
# This may be replaced when dependencies are built.
