file(REMOVE_RECURSE
  "CMakeFiles/unit_pure_test.dir/unit_pure_test.cpp.o"
  "CMakeFiles/unit_pure_test.dir/unit_pure_test.cpp.o.d"
  "unit_pure_test"
  "unit_pure_test.pdb"
  "unit_pure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_pure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
