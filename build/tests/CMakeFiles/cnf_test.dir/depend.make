# Empty dependencies file for cnf_test.
# This may be replaced when dependencies are built.
