file(REMOVE_RECURSE
  "CMakeFiles/cnf_test.dir/cnf_test.cpp.o"
  "CMakeFiles/cnf_test.dir/cnf_test.cpp.o.d"
  "cnf_test"
  "cnf_test.pdb"
  "cnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
