file(REMOVE_RECURSE
  "CMakeFiles/sat_test.dir/sat_test.cpp.o"
  "CMakeFiles/sat_test.dir/sat_test.cpp.o.d"
  "sat_test"
  "sat_test.pdb"
  "sat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
