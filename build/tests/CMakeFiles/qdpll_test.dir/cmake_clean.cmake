file(REMOVE_RECURSE
  "CMakeFiles/qdpll_test.dir/qdpll_test.cpp.o"
  "CMakeFiles/qdpll_test.dir/qdpll_test.cpp.o.d"
  "qdpll_test"
  "qdpll_test.pdb"
  "qdpll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdpll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
