# Empty dependencies file for qdpll_test.
# This may be replaced when dependencies are built.
