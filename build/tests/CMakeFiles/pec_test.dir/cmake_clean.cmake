file(REMOVE_RECURSE
  "CMakeFiles/pec_test.dir/pec_test.cpp.o"
  "CMakeFiles/pec_test.dir/pec_test.cpp.o.d"
  "pec_test"
  "pec_test.pdb"
  "pec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
