# Empty compiler generated dependencies file for pec_test.
# This may be replaced when dependencies are built.
