file(REMOVE_RECURSE
  "CMakeFiles/dqbf_core_test.dir/dqbf_core_test.cpp.o"
  "CMakeFiles/dqbf_core_test.dir/dqbf_core_test.cpp.o.d"
  "dqbf_core_test"
  "dqbf_core_test.pdb"
  "dqbf_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqbf_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
