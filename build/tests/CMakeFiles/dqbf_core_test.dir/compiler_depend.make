# Empty compiler generated dependencies file for dqbf_core_test.
# This may be replaced when dependencies are built.
