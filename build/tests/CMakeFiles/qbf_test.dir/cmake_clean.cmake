file(REMOVE_RECURSE
  "CMakeFiles/qbf_test.dir/qbf_test.cpp.o"
  "CMakeFiles/qbf_test.dir/qbf_test.cpp.o.d"
  "qbf_test"
  "qbf_test.pdb"
  "qbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
