# Empty dependencies file for qbf_test.
# This may be replaced when dependencies are built.
