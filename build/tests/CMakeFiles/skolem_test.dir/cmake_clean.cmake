file(REMOVE_RECURSE
  "CMakeFiles/skolem_test.dir/skolem_test.cpp.o"
  "CMakeFiles/skolem_test.dir/skolem_test.cpp.o.d"
  "skolem_test"
  "skolem_test.pdb"
  "skolem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skolem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
