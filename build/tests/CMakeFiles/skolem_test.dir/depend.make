# Empty dependencies file for skolem_test.
# This may be replaced when dependencies are built.
