// Tests for the partial MaxSAT solver, including randomized agreement with a
// brute-force optimum.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/maxsat/maxsat.hpp"

namespace hqs {
namespace {

/// Brute-force minimum number of falsified soft clauses subject to hard
/// clauses; returns -1 when the hard clauses are unsatisfiable.
int bruteForceMinCost(Var n, const std::vector<Clause>& hard, const std::vector<Clause>& soft)
{
    int best = -1;
    std::vector<bool> a(n, false);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        auto satisfied = [&](const Clause& c) {
            for (Lit l : c)
                if (a[l.var()] != l.negative()) return true;
            return false;
        };
        bool hardOk = true;
        for (const Clause& c : hard)
            if (!satisfied(c)) {
                hardOk = false;
                break;
            }
        if (!hardOk) continue;
        int cost = 0;
        for (const Clause& c : soft)
            if (!satisfied(c)) ++cost;
        if (best < 0 || cost < best) best = cost;
    }
    return best;
}

TEST(MaxSat, NoSoftClausesJustSat)
{
    MaxSatSolver m;
    m.addHard({Lit::pos(0), Lit::pos(1)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 0u);
    EXPECT_TRUE(res->model[0] || res->model[1]);
}

TEST(MaxSat, HardUnsatReturnsNullopt)
{
    MaxSatSolver m;
    m.addHard({Lit::pos(0)});
    m.addHard({Lit::neg(0)});
    m.addSoft({Lit::pos(1)});
    EXPECT_FALSE(m.solve().has_value());
}

TEST(MaxSat, AllSoftSatisfiable)
{
    MaxSatSolver m;
    m.addSoft({Lit::pos(0)});
    m.addSoft({Lit::pos(1)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 0u);
    EXPECT_TRUE(res->model[0]);
    EXPECT_TRUE(res->model[1]);
}

TEST(MaxSat, ConflictingSoftsCostOne)
{
    MaxSatSolver m;
    m.addSoft({Lit::pos(0)});
    m.addSoft({Lit::neg(0)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 1u);
}

TEST(MaxSat, HardForcesSoftViolation)
{
    // Hard: x0.  Soft: ~x0, ~x0 (twice as separate clauses over var 0 and 1
    // chained by equivalence): cost must reflect forced falsifications.
    MaxSatSolver m;
    m.addHard({Lit::pos(0)});
    m.addHard({Lit::neg(0), Lit::pos(1)}); // x0 -> x1
    m.addSoft({Lit::neg(0)});
    m.addSoft({Lit::neg(1)});
    m.addSoft({Lit::pos(1)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 2u);
    EXPECT_TRUE(res->model[0]);
    EXPECT_TRUE(res->model[1]);
}

TEST(MaxSat, MinimumVertexCoverOnTriangle)
{
    // Vertex cover of a triangle: hard edge constraints (u|v), soft ~v per
    // vertex; optimum cover has size 2.
    MaxSatSolver m;
    m.addHard({Lit::pos(0), Lit::pos(1)});
    m.addHard({Lit::pos(1), Lit::pos(2)});
    m.addHard({Lit::pos(0), Lit::pos(2)});
    for (Var v = 0; v < 3; ++v) m.addSoft({Lit::neg(v)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 2u);
    EXPECT_EQ(res->model[0] + res->model[1] + res->model[2], 2);
}

TEST(MaxSat, ElectionStyleDisjointChoices)
{
    // The HQS Eq.-1 shape: (a & b) | (c) expressed as hard clauses with a
    // selector, softs prefer everything false.
    MaxSatSolver m;
    const Var a = 0, b = 1, c = 2, s = 3;
    m.addHard({Lit::neg(s), Lit::pos(a)});
    m.addHard({Lit::neg(s), Lit::pos(b)});
    m.addHard({Lit::pos(s), Lit::pos(c)});
    for (Var v : {a, b, c}) m.addSoft({Lit::neg(v)});
    auto res = m.solve();
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->cost, 1u); // pick c alone
    EXPECT_TRUE(res->model[c]);
    EXPECT_FALSE(res->model[a]);
    EXPECT_FALSE(res->model[b]);
}

class RandomMaxSatAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomMaxSatAgreement, MatchesBruteForceOptimum)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
    const Var n = 5 + static_cast<Var>(rng.below(4)); // 5..8 vars
    std::vector<Clause> hard, soft;
    const int nh = static_cast<int>(rng.below(6));
    const int ns = 2 + static_cast<int>(rng.below(7));
    for (int i = 0; i < nh; ++i) {
        Clause c;
        for (int j = 0; j < 2 + static_cast<int>(rng.below(2)); ++j)
            c.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        hard.push_back(std::move(c));
    }
    for (int i = 0; i < ns; ++i) {
        Clause c;
        for (int j = 0; j < 1 + static_cast<int>(rng.below(2)); ++j)
            c.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        soft.push_back(std::move(c));
    }

    MaxSatSolver m;
    m.ensureVars(n);
    for (const Clause& c : hard) m.addHard(c);
    for (const Clause& c : soft) m.addSoft(c);
    const auto res = m.solve();
    const int expected = bruteForceMinCost(n, hard, soft);
    if (expected < 0) {
        EXPECT_FALSE(res.has_value());
    } else {
        ASSERT_TRUE(res.has_value());
        EXPECT_EQ(static_cast<int>(res->cost), expected);
        // The returned model must satisfy all hard clauses and falsify
        // exactly `cost` soft clauses.
        auto satisfied = [&](const Clause& c) {
            for (Lit l : c)
                if (res->model[l.var()] != l.negative()) return true;
            return false;
        };
        for (const Clause& c : hard) EXPECT_TRUE(satisfied(c));
        int cost = 0;
        for (const Clause& c : soft)
            if (!satisfied(c)) ++cost;
        EXPECT_EQ(cost, static_cast<int>(res->cost));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMaxSatAgreement, ::testing::Range(0, 40));

} // namespace
} // namespace hqs
