// Tests for the PEC -> DQBF encoder and end-to-end realizability decisions:
// the HQS solver and the iDQ-style baseline must both reproduce the
// by-construction ground truth of every family, and the encoding itself is
// validated against the expansion oracle on the smallest instances.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/dqbf/dependency_graph.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"

namespace hqs {
namespace {

TEST(PecEncoder, StructureOfEncoding)
{
    const PecInstance inst = makeInstance(Family::Adder, 3, true);
    const PecEncoding enc = encodePec(inst);
    EXPECT_EQ(enc.primaryInputs.size(), inst.spec.inputs().size());
    ASSERT_EQ(enc.boxInputCopies.size(), inst.impl.numBoxes());
    ASSERT_EQ(enc.boxOutputVars.size(), inst.impl.numBoxes());
    for (Circuit::BoxId b = 0; b < inst.impl.numBoxes(); ++b) {
        EXPECT_EQ(enc.boxInputCopies[b].size(), inst.impl.boxInputs(b).size());
        EXPECT_EQ(enc.boxOutputVars[b].size(), inst.impl.boxOutputs(b).size());
        // Box outputs depend exactly on their box's copies.
        for (Var y : enc.boxOutputVars[b]) {
            EXPECT_EQ(enc.formula.dependencies(y), enc.boxInputCopies[b]);
        }
    }
    // Multiple boxes -> genuinely non-linear dependencies.
    EXPECT_GT(enc.formula.universals().size(), enc.primaryInputs.size());
}

TEST(PecEncoder, EncodingIsDqbfHard)
{
    // The dependency sets of outputs of different boxes are incomparable, so
    // there is no equivalent QBF prefix (Theorems 3/4) — the paper's
    // motivation for DQBF.
    const PecInstance inst = makeInstance(Family::PecXor, 4, true);
    const PecEncoding enc = encodePec(inst);
    const Var y0 = enc.boxOutputVars[0][0];
    const Var y1 = enc.boxOutputVars[1][0];
    const auto& d0 = enc.formula.dependencies(y0);
    const auto& d1 = enc.formula.dependencies(y1);
    EXPECT_FALSE(std::includes(d0.begin(), d0.end(), d1.begin(), d1.end()));
    EXPECT_FALSE(std::includes(d1.begin(), d1.end(), d0.begin(), d0.end()));
}

/// The encoder's verdict on the tiniest instances matches the expansion
/// oracle applied to the very same DQBF — validating encoder + solvers
/// against an independent semantics.
TEST(PecEncoder, OracleAgreesOnTinyInstances)
{
    for (Family fam : {Family::PecXor, Family::Bitcell}) {
        for (bool realizable : {true, false}) {
            const PecInstance inst = makeInstance(fam, 3, realizable);
            PecEncoding enc = encodePec(inst);
            if (enc.formula.universals().size() > 12) continue;
            const SolveResult oracle = expansionDqbf(enc.formula);
            ASSERT_TRUE(isConclusive(oracle)) << inst.name;
            EXPECT_EQ(oracle == SolveResult::Sat, realizable) << inst.name;
        }
    }
}

/// End-to-end: HQS decides every family instance according to the
/// by-construction ground truth.
class HqsOnFamilies : public ::testing::TestWithParam<std::tuple<int, unsigned, bool>> {};

TEST_P(HqsOnFamilies, DecidesRealizabilityCorrectly)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const unsigned width = std::get<1>(GetParam());
    const bool realizable = std::get<2>(GetParam());
    const PecInstance inst = makeInstance(fam, width, realizable);
    PecEncoding enc = encodePec(inst);

    HqsOptions opts;
    opts.deadline = Deadline::in(60);
    HqsSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    ASSERT_TRUE(isConclusive(r)) << inst.name << " result " << r;
    EXPECT_EQ(r == SolveResult::Sat, realizable) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HqsOnFamilies,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(3u, 4u),
                                            ::testing::Bool()));

/// Multi-box instances: more boxes mean more pairwise-incomparable
/// dependency sets, and realizability ground truth must be preserved.
class HqsOnMultiBox : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(HqsOnMultiBox, ThreeBoxInstancesDecideCorrectly)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const bool realizable = std::get<1>(GetParam());
    if (fam == Family::Lookahead || fam == Family::Z4) {
        GTEST_SKIP() << "family has a fixed two-box structure";
    }
    // pec_xor needs width >= 2*boxes for three segments.
    const unsigned width = (fam == Family::PecXor) ? 6 : 5;
    const PecInstance inst = makeInstance(fam, width, realizable, 3);
    EXPECT_GE(inst.impl.numBoxes(), 3u);

    PecEncoding enc = encodePec(inst);
    // k boxes give at least k*(k-1)/2 incomparable pairs among box outputs.
    EXPECT_GE(incomparablePairs(enc.formula).size(), 3u);

    HqsOptions opts;
    opts.deadline = Deadline::in(20);
    opts.nodeLimit = 200000; // keep the test's memory bounded
    HqsSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    if (!isConclusive(r)) {
        // Three-box instances are substantially harder (more Theorem-1
        // copies); resource exhaustion under the tight test budget is
        // acceptable for the heavy families, wrong answers are not.
        GTEST_SKIP() << inst.name << ": " << r << " under test budget";
    }
    EXPECT_EQ(r == SolveResult::Sat, realizable) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(MultiBox, HqsOnMultiBox,
                         ::testing::Combine(::testing::Range(0, 7), ::testing::Bool()));

TEST(MultiBox, MoreBoxesMoreIncomparablePairs)
{
    const PecEncoding two = encodePec(makeInstance(Family::Adder, 8, false, 2));
    const PecEncoding four = encodePec(makeInstance(Family::Adder, 8, false, 4));
    EXPECT_GT(incomparablePairs(four.formula).size(),
              incomparablePairs(two.formula).size());
}

/// The iDQ-style baseline agrees on small instances.
class IdqOnFamilies : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(IdqOnFamilies, DecidesRealizabilityCorrectly)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const bool realizable = std::get<1>(GetParam());
    const PecInstance inst = makeInstance(fam, 3, realizable);
    PecEncoding enc = encodePec(inst);

    IdqOptions opts;
    opts.deadline = Deadline::in(10);
    IdqSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    // Instantiation-based solving genuinely struggles on several families —
    // in the paper iDQ leaves large parts of z4 (129/240), comp (215/240),
    // C432 (220/240), adder (84/300), bitcell and lookahead unsolved while
    // HQS solves them.  Timeouts on those families are the expected
    // behaviour, not bugs; whenever the solver IS conclusive it must agree
    // with the ground truth.  pec_xor is the family iDQ fully solves in the
    // paper, so there we insist on a verdict.
    if (r == SolveResult::Timeout && fam != Family::PecXor) {
        GTEST_SKIP() << inst.name << ": timeout, consistent with Table I";
    }
    ASSERT_TRUE(isConclusive(r)) << inst.name << " result " << r;
    EXPECT_EQ(r == SolveResult::Sat, realizable) << inst.name;
    EXPECT_GE(solver.stats().iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IdqOnFamilies,
                         ::testing::Combine(::testing::Range(0, 7), ::testing::Bool()));

/// The iDQ baseline agrees with the expansion oracle on random DQBFs (same
/// harness as the HQS agreement sweep).
class IdqAgreement : public ::testing::TestWithParam<int> {};

TEST_P(IdqAgreement, MatchesExpansionOracle)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 19);
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < 3; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < 3; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    const unsigned numClauses = 5 + static_cast<unsigned>(rng.below(8));
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        for (unsigned j = 0; j < 2 + rng.below(2); ++j) {
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        }
        f.matrix().addClause(std::move(cl));
    }
    const SolveResult expected = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(expected));
    IdqSolver solver;
    EXPECT_EQ(solver.solve(f), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdqAgreement, ::testing::Range(0, 60));

TEST(IdqSolver, ResourceLimits)
{
    const PecInstance inst = makeInstance(Family::Adder, 6, false);
    PecEncoding enc = encodePec(inst);
    IdqOptions opts;
    opts.deadline = Deadline::in(1e-9);
    IdqSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    EXPECT_TRUE(r == SolveResult::Timeout || isConclusive(r));

    IdqOptions memOpts;
    memOpts.groundClauseLimit = 1;
    IdqSolver memSolver(memOpts);
    const SolveResult r2 = memSolver.solve(enc.formula);
    EXPECT_TRUE(r2 == SolveResult::Memout || isConclusive(r2));
}

} // namespace
} // namespace hqs
