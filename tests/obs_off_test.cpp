// Compile-out check for -DHQS_OBS=OFF: this translation unit forces
// HQS_OBS_ENABLED=0 before including obs.hpp, so every OBS_* macro here is
// the no-op expansion.  The tests prove the disabled macros still parse
// their arguments (unevaluated), leave the registries untouched, and that
// the obs runtime stays linkable next to disabled call sites — the same
// mix the HQS_OBS=OFF build matrix exercises tree-wide.
#define HQS_OBS_ENABLED 0

#include <gtest/gtest.h>

#include "src/obs/obs.hpp"

using namespace hqs;

namespace {

TEST(ObsOff, MacrosDoNotEvaluateArguments)
{
    int evaluations = 0;
    OBS_COUNT("off.counter", ++evaluations);
    OBS_GAUGE_MAX("off.gauge", ++evaluations);
    OBS_OBSERVE("off.hist", ++evaluations);
    EXPECT_EQ(evaluations, 0);
}

TEST(ObsOff, SpansAreNullAndSilent)
{
    obs::clearTrace();
    {
        OBS_SPAN(span, "off.span");
        span.arg("nodes", 42);
        OBS_PHASE(phase, "off.phase", "off.phase.us");
        phase.arg("gates", 7);
    }
    EXPECT_EQ(obs::traceSpanCount(), 0u);
}

TEST(ObsOff, RegistryStaysEmptyButUsable)
{
    // The runtime API is still there for readers: an explicit registration
    // works even though no disabled macro ever feeds it.
    obs::MetricScope scope;
    OBS_COUNT("off.never", 123);
    EXPECT_TRUE(scope.snapshot().empty());
    const obs::MetricId id = obs::metric("off.direct", obs::MetricKind::Counter);
    scope.registry().add(id, 2);
    EXPECT_EQ(scope.value(id), 2);
}

} // namespace
