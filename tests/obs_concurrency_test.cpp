// Concurrent-writer tests for the observability subsystem.  Compiled into
// the plain obs partition AND into the tsan/asan runtime test binaries with
// the obs sources instrumented, so a data race in the per-thread trace
// buffers or the registry's atomic cells lands red instead of flaky.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"

using namespace hqs;

namespace {

TEST(ObsConcurrency, ParallelSpanWritersWithLiveReader)
{
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 500;

    obs::enableTracing(true);
    obs::clearTrace();

    // The reader polls the buffers while the writers append: the chunk
    // count's release/acquire publication must only ever expose fully
    // written records (TSan checks the protocol, the bound checks sanity).
    std::atomic<bool> done{false};
    std::thread reader([&done] {
        while (!done.load(std::memory_order_acquire)) {
            const std::size_t n = obs::traceSpanCount();
            ASSERT_LE(n, std::size_t{kThreads} * 2 * kSpansPerThread);
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                obs::SpanScope outer("conc.outer");
                obs::SpanScope inner("conc.inner");
                inner.arg("i", i);
            }
        });
    }
    for (std::thread& w : writers) w.join();
    done.store(true, std::memory_order_release);
    reader.join();
    obs::enableTracing(false);

    EXPECT_EQ(obs::traceSpanCount(), std::size_t{kThreads} * 2 * kSpansPerThread);
    obs::clearTrace();
}

TEST(ObsConcurrency, ParallelRegistryWritersLoseNoUpdates)
{
    constexpr int kThreads = 4;
    constexpr int kUpdatesPerThread = 20000;

    const obs::MetricId counter =
        obs::metric("conc.counter", obs::MetricKind::Counter);
    const obs::MetricId gauge = obs::metric("conc.gauge", obs::MetricKind::Gauge);
    const obs::MetricId hist = obs::metric("conc.hist", obs::MetricKind::Histogram);

    obs::MetricScope scope;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&scope, counter, gauge, hist, t] {
            // The portfolio-racer pattern: a worker thread binds into a
            // scope owned by the spawning thread.
            obs::BindRegistry bind(scope.registry());
            for (int i = 0; i < kUpdatesPerThread; ++i) {
                obs::currentRegistry().add(counter, 1);
                obs::currentRegistry().setMax(gauge, t * kUpdatesPerThread + i);
                obs::currentRegistry().observe(hist, i);
            }
        });
    }
    for (std::thread& w : workers) w.join();

    EXPECT_EQ(scope.value(counter),
              std::int64_t{kThreads} * kUpdatesPerThread);
    EXPECT_EQ(scope.value(gauge),
              std::int64_t{kThreads - 1} * kUpdatesPerThread + kUpdatesPerThread - 1);
    EXPECT_EQ(scope.value(hist), std::int64_t{kThreads} * kUpdatesPerThread);
}

TEST(ObsConcurrency, DeathSitesAreThreadLocal)
{
    obs::clearDeathSite();
    std::thread t([] {
        obs::clearDeathSite();
        try {
            obs::SpanScope span("conc.dies");
            throw std::runtime_error("boom");
        } catch (const std::runtime_error&) {
        }
        EXPECT_STREQ(obs::deathSite(), "conc.dies");
    });
    t.join();
    // The other thread's unwinding must not leak into this thread's slot.
    EXPECT_STREQ(obs::deathSite(), "");
}

} // namespace
