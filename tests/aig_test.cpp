// Tests for the AIG manager: construction, hashing, Boolean operations,
// substitution/cofactors/quantification, support, evaluation, simulation,
// CNF bridge, and garbage collection.
#include <gtest/gtest.h>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"

namespace hqs {
namespace {

/// Truth table of @p root over variables 0..n-1 (bit i of result = value on
/// the assignment whose bit pattern is i).
std::uint64_t truthTable(const Aig& aig, AigEdge root, Var n)
{
    std::uint64_t tt = 0;
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        if (aig.evaluate(root, a)) tt |= 1ull << bits;
    }
    return tt;
}

TEST(Aig, Constants)
{
    Aig aig;
    EXPECT_TRUE(aig.isConstant(aig.constTrue()));
    EXPECT_TRUE(aig.isConstant(aig.constFalse()));
    EXPECT_TRUE(aig.constantValue(aig.constTrue()));
    EXPECT_FALSE(aig.constantValue(aig.constFalse()));
    EXPECT_EQ(~aig.constTrue(), aig.constFalse());
}

TEST(Aig, VariablesAreMemoized)
{
    Aig aig;
    const AigEdge x = aig.variable(3);
    EXPECT_EQ(aig.variable(3), x);
    EXPECT_TRUE(aig.isInput(x));
    EXPECT_EQ(aig.inputVariable(x), 3u);
    EXPECT_TRUE(aig.hasVariable(3));
    EXPECT_FALSE(aig.hasVariable(4));
}

TEST(Aig, AndConstantFolding)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    EXPECT_EQ(aig.mkAnd(x, aig.constTrue()), x);
    EXPECT_EQ(aig.mkAnd(aig.constTrue(), x), x);
    EXPECT_EQ(aig.mkAnd(x, aig.constFalse()), aig.constFalse());
    EXPECT_EQ(aig.mkAnd(x, x), x);
    EXPECT_EQ(aig.mkAnd(x, ~x), aig.constFalse());
}

TEST(Aig, StructuralHashingSharesNodes)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge a1 = aig.mkAnd(x, y);
    const AigEdge a2 = aig.mkAnd(y, x); // commuted
    EXPECT_EQ(a1, a2);
    const std::size_t nodes = aig.numNodes();
    (void)aig.mkAnd(x, y);
    EXPECT_EQ(aig.numNodes(), nodes);
}

TEST(Aig, BooleanOperatorSemantics)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge z = aig.variable(2);
    // Truth tables over (x,y) — bit index = x + 2y; over (x,y,z) for ite.
    EXPECT_EQ(truthTable(aig, aig.mkAnd(x, y), 2), 0b1000u);
    EXPECT_EQ(truthTable(aig, aig.mkOr(x, y), 2), 0b1110u);
    EXPECT_EQ(truthTable(aig, aig.mkXor(x, y), 2), 0b0110u);
    EXPECT_EQ(truthTable(aig, aig.mkEquiv(x, y), 2), 0b1001u);
    EXPECT_EQ(truthTable(aig, aig.mkImplies(x, y), 2), 0b1101u);
    // ite(x, y, z): x ? y : z.
    const std::uint64_t tt = truthTable(aig, aig.mkIte(x, y, z), 3);
    for (unsigned bits = 0; bits < 8; ++bits) {
        const bool xv = bits & 1, yv = bits & 2, zv = bits & 4;
        EXPECT_EQ((tt >> bits) & 1u, static_cast<std::uint64_t>(xv ? yv : zv));
    }
}

TEST(Aig, MkAndNAndOrN)
{
    Aig aig;
    std::vector<AigEdge> xs;
    for (Var v = 0; v < 4; ++v) xs.push_back(aig.variable(v));
    EXPECT_EQ(truthTable(aig, aig.mkAndN(xs), 4), 1ull << 15);
    EXPECT_EQ(truthTable(aig, aig.mkOrN(xs), 4), 0xfffeull);
    EXPECT_EQ(aig.mkAndN({}), aig.constTrue());
    EXPECT_EQ(aig.mkOrN({}), aig.constFalse());
}

TEST(Aig, CofactorSemantics)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkOr(aig.mkAnd(x, y), aig.mkAnd(~x, ~y)); // x==y
    // Bit index of the truth table is x + 2y.
    EXPECT_EQ(truthTable(aig, aig.cofactor(f, 0, true), 2), 0b1100u);  // y
    EXPECT_EQ(truthTable(aig, aig.cofactor(f, 0, false), 2), 0b0011u); // ~y
    // Cofactor on an unused variable is the identity.
    EXPECT_EQ(aig.cofactor(f, 5, true), f);
}

TEST(Aig, ComposeSemantics)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge z = aig.variable(2);
    const AigEdge f = aig.mkXor(x, y);
    // f[y := x&z]  ==  x ^ (x&z)
    const AigEdge g = aig.compose(f, 1, aig.mkAnd(x, z));
    const AigEdge expect = aig.mkXor(x, aig.mkAnd(x, z));
    EXPECT_EQ(truthTable(aig, g, 3), truthTable(aig, expect, 3));
}

TEST(Aig, ParallelSubstituteIsSimultaneous)
{
    // Swap x and y in x&~y: must give y&~x (sequential substitution would
    // collapse).
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(x, ~y);
    Substitution swap;
    swap.set(0, y);
    swap.set(1, x);
    const AigEdge g = aig.substitute(f, swap);
    EXPECT_EQ(truthTable(aig, g, 2), truthTable(aig, aig.mkAnd(y, ~x), 2));
}

TEST(Aig, DeprecatedMapSubstituteStillWorks)
{
    // Compatibility shim for the pre-Substitution API; scheduled for
    // removal once downstream users have migrated.
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(x, ~y);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const AigEdge g = aig.substitute(f, {{0u, y}, {1u, x}});
#pragma GCC diagnostic pop
    EXPECT_EQ(truthTable(aig, g, 2), truthTable(aig, aig.mkAnd(y, ~x), 2));
}

TEST(Aig, ScratchSubstitutionResetsBetweenUses)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    Substitution& first = aig.scratchSubstitution();
    first.set(0, y);
    EXPECT_EQ(first.size(), 1u);
    // A second acquisition clears the previous mappings in O(1).
    Substitution& second = aig.scratchSubstitution();
    EXPECT_TRUE(second.empty());
    EXPECT_FALSE(second.maps(0));
    second.set(1, x);
    EXPECT_TRUE(second.maps(1));
    EXPECT_EQ(second.image(1), x);
}

TEST(Aig, QuantificationSemantics)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(x, y);
    // exists x. x&y == y ; forall x. x&y == false
    EXPECT_EQ(truthTable(aig, aig.existsVar(f, 0), 2), truthTable(aig, y, 2));
    EXPECT_EQ(aig.forallVar(f, 0), aig.constFalse());
    // forall x. x|y == y
    const AigEdge g = aig.mkOr(x, y);
    EXPECT_EQ(truthTable(aig, aig.forallVar(g, 0), 2), truthTable(aig, y, 2));
}

TEST(Aig, SupportListsStructuralVariables)
{
    Aig aig;
    const AigEdge x = aig.variable(2);
    const AigEdge y = aig.variable(7);
    const AigEdge f = aig.mkOr(x, aig.mkAnd(y, aig.variable(4)));
    EXPECT_EQ(aig.support(f), (std::vector<Var>{2, 4, 7}));
    EXPECT_TRUE(aig.support(aig.constTrue()).empty());
}

TEST(Aig, ConeSizeCountsAndNodes)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    EXPECT_EQ(aig.coneSize(x), 0u);
    EXPECT_EQ(aig.coneSize(aig.mkAnd(x, y)), 1u);
    const AigEdge f = aig.mkXor(x, y); // 3 AND nodes
    EXPECT_EQ(aig.coneSize(f), 3u);
}

TEST(Aig, SimulateMatchesEvaluate)
{
    Aig aig;
    Rng rng(5);
    // Random 4-variable function.
    const Var n = 4;
    std::vector<AigEdge> vars;
    for (Var v = 0; v < n; ++v) vars.push_back(aig.variable(v));
    AigEdge f = aig.mkXor(aig.mkAnd(vars[0], ~vars[1]), aig.mkOr(vars[2], vars[3]));

    // Pack all 16 assignments into one simulation word.
    std::unordered_map<Var, std::uint64_t> words;
    for (Var v = 0; v < n; ++v) {
        std::uint64_t w = 0;
        for (unsigned bits = 0; bits < 16; ++bits)
            if ((bits >> v) & 1u) w |= 1ull << bits;
        words[v] = w;
    }
    const std::uint64_t sim = aig.simulate(f, words);
    EXPECT_EQ(sim & 0xffffull, truthTable(aig, f, n));
}

TEST(Aig, GarbageCollectKeepsRoots)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    AigEdge keep = aig.mkAnd(x, y);
    const std::uint64_t ttBefore = truthTable(aig, keep, 2);
    // Create garbage.
    for (Var v = 2; v < 30; ++v) (void)aig.mkAnd(aig.variable(v), x);
    const std::size_t before = aig.numNodes();
    aig.garbageCollect({&keep});
    EXPECT_LT(aig.numNodes(), before);
    EXPECT_EQ(truthTable(aig, keep, 2), ttBefore);
    // Manager still consistent: the preserved structure hashes correctly.
    const AigEdge again = aig.mkAnd(aig.variable(0), aig.variable(1));
    EXPECT_EQ(again, keep);
}

TEST(Aig, GarbageCollectComplementedRoot)
{
    Aig aig;
    AigEdge root = ~aig.mkOr(aig.variable(0), aig.variable(1));
    const std::uint64_t tt = truthTable(aig, root, 2);
    aig.garbageCollect({&root});
    EXPECT_EQ(truthTable(aig, root, 2), tt);
}

TEST(CnfBridge, BuildFromCnfMatchesEvaluation)
{
    Cnf f;
    f.addClause({Lit::pos(0), Lit::neg(1)});
    f.addClause({Lit::pos(1), Lit::pos(2)});
    Aig aig;
    const AigEdge root = buildFromCnf(aig, f);
    std::vector<bool> a(3);
    for (unsigned bits = 0; bits < 8; ++bits) {
        for (Var v = 0; v < 3; ++v) a[v] = (bits >> v) & 1u;
        EXPECT_EQ(aig.evaluate(root, a), f.evaluate(a)) << "assignment " << bits;
    }
}

TEST(CnfBridge, EmptyCnfIsTrue)
{
    Cnf f;
    Aig aig;
    EXPECT_EQ(buildFromCnf(aig, f), aig.constTrue());
}

TEST(CnfBridge, EmptyClauseIsFalse)
{
    Cnf f;
    f.addClause(Clause{});
    Aig aig;
    EXPECT_EQ(buildFromCnf(aig, f), aig.constFalse());
}

TEST(CnfBridge, TseitinEncodingIsEquisatisfiable)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkXor(x, y);

    SatSolver sat;
    AigCnfBridge bridge(aig, sat);
    const Lit out = bridge.litFor(f);

    // f is satisfiable and falsifiable.
    EXPECT_EQ(sat.solve({out}), SolveResult::Sat);
    EXPECT_NE(sat.modelValue(bridge.satVarForInput(0)),
              sat.modelValue(bridge.satVarForInput(1)));
    EXPECT_EQ(sat.solve({~out}), SolveResult::Sat);
    EXPECT_EQ(sat.modelValue(bridge.satVarForInput(0)),
              sat.modelValue(bridge.satVarForInput(1)));
}

TEST(CnfBridge, ConstantNodesEncodeCorrectly)
{
    Aig aig;
    SatSolver sat;
    AigCnfBridge bridge(aig, sat);
    EXPECT_EQ(sat.solve({bridge.litFor(aig.constTrue())}), SolveResult::Sat);
    EXPECT_EQ(sat.solve({bridge.litFor(aig.constFalse())}), SolveResult::Unsat);
}

/// Random-expression property test: build a random AIG expression and check
/// cofactor/quantification identities semantically.
class RandomAigIdentities : public ::testing::TestWithParam<int> {};

TEST_P(RandomAigIdentities, ShannonExpansionHolds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
    Aig aig;
    const Var n = 5;
    std::vector<AigEdge> pool;
    for (Var v = 0; v < n; ++v) pool.push_back(aig.variable(v));
    for (int i = 0; i < 12; ++i) {
        AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        switch (rng.below(3)) {
            case 0: pool.push_back(aig.mkAnd(a, b)); break;
            case 1: pool.push_back(aig.mkOr(a, b)); break;
            default: pool.push_back(aig.mkXor(a, b)); break;
        }
    }
    const AigEdge f = pool.back();
    const Var v = static_cast<Var>(rng.below(n));
    const AigEdge x = aig.variable(v);

    // Shannon: f == (x & f|x=1) | (~x & f|x=0)
    const AigEdge expanded =
        aig.mkOr(aig.mkAnd(x, aig.cofactor(f, v, true)), aig.mkAnd(~x, aig.cofactor(f, v, false)));
    EXPECT_EQ(truthTable(aig, f, n), truthTable(aig, expanded, n));

    // Quantification bounds: forall <= f <= exists (as sets of models).
    const std::uint64_t ttF = truthTable(aig, f, n);
    const std::uint64_t ttE = truthTable(aig, aig.existsVar(f, v), n);
    const std::uint64_t ttA = truthTable(aig, aig.forallVar(f, v), n);
    EXPECT_EQ(ttA & ttF, ttA); // forall implies f
    EXPECT_EQ(ttF & ttE, ttF); // f implies exists
    // Quantified results are independent of v.
    std::vector<bool> a(n, false);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        if ((bits >> v) & 1u) continue;
        const std::uint64_t flipped = bits | (1ull << v);
        EXPECT_EQ((ttE >> bits) & 1u, (ttE >> flipped) & 1u);
        EXPECT_EQ((ttA >> bits) & 1u, (ttA >> flipped) & 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomAigIdentities, ::testing::Range(0, 40));

} // namespace
} // namespace hqs
