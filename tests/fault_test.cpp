// Tests for the guarded execution layer: the fault-injection registry, the
// failure taxonomy, runGuarded (exception conversion + RSS watchdog), the
// degradation ladder, batch checkpoint/resume, and the EnvFault suite that
// the faults/* ctest partition drives through HQS_FAULT.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/fault.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/pec/pec_encoder.hpp"
#include "src/runtime/batch.hpp"
#include "src/runtime/guard.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/runtime/thread_pool.hpp"

using namespace hqs;

namespace {

std::string dataPath(const std::string& name)
{
    return std::string(HQS_TEST_DATA_DIR) + "/" + name;
}

/// A formula preprocessing cannot decide, so solving it reaches the main
/// elimination loop (and therefore the FRAIG sweep when the threshold is
/// forced down).
DqbfFormula nontrivialFormula()
{
    return encodePec(makeInstance(Family::Adder, 4, true)).formula;
}

/// Writes @p f to `<tmp>/<dirname>/<filename>` and returns the path.
std::filesystem::path writeFormulaFile(const DqbfFormula& f, const std::string& dirname,
                                       const std::string& filename)
{
    const std::filesystem::path dir = std::filesystem::temp_directory_path() / dirname;
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = dir / filename;
    std::ofstream os(path);
    writeDqdimacs(os, f.toParsed());
    return path;
}

} // namespace

// ------------------------------------------------------------- fault registry

TEST(FaultRegistry, DisarmedCheckpointIsANoop)
{
    fault::disarm();
    EXPECT_NO_THROW(fault::checkpoint("parse"));
    EXPECT_NO_THROW(fault::checkpointAlloc("aig-alloc"));
    EXPECT_EQ(fault::armedSite(), "");
}

TEST(FaultRegistry, ArmedSiteFiresExactlyOnceThenDisarms)
{
    fault::arm("sat");
    EXPECT_EQ(fault::armedSite(), "sat");
    EXPECT_NO_THROW(fault::checkpoint("parse")); // different site: untouched
    EXPECT_THROW(fault::checkpoint("sat"), fault::InjectedFault);
    // One-shot: the registry disarmed itself at the hit.
    EXPECT_EQ(fault::armedSite(), "");
    EXPECT_NO_THROW(fault::checkpoint("sat"));
}

TEST(FaultRegistry, NthHitCountsDynamicHitsOfTheArmedSite)
{
    fault::arm("sat", 3);
    EXPECT_NO_THROW(fault::checkpoint("sat"));
    EXPECT_NO_THROW(fault::checkpoint("parse")); // other sites do not count
    EXPECT_NO_THROW(fault::checkpoint("sat"));
    EXPECT_THROW(fault::checkpoint("sat"), fault::InjectedFault);
    EXPECT_NO_THROW(fault::checkpoint("sat"));
}

TEST(FaultRegistry, InjectedFaultCarriesTheSiteName)
{
    fault::arm("pool-dispatch");
    try {
        fault::checkpoint("pool-dispatch");
        FAIL() << "checkpoint did not throw";
    } catch (const fault::InjectedFault& e) {
        EXPECT_EQ(e.site(), "pool-dispatch");
        EXPECT_NE(std::string(e.what()).find("pool-dispatch"), std::string::npos);
    }
}

TEST(FaultRegistry, CheckpointAllocThrowsBadAlloc)
{
    fault::arm("fraig");
    EXPECT_THROW(fault::checkpointAlloc("fraig"), std::bad_alloc);
    EXPECT_EQ(fault::armedSite(), "");
}

TEST(FaultRegistry, ArmReplacesThePreviousSite)
{
    fault::arm("parse");
    fault::arm("sat");
    EXPECT_EQ(fault::armedSite(), "sat");
    EXPECT_NO_THROW(fault::checkpoint("parse"));
    EXPECT_THROW(fault::checkpoint("sat"), fault::InjectedFault);
}

TEST(FaultRegistry, ScopedFaultDisarmsOnDestruction)
{
    {
        fault::ScopedFault guard("sat");
        EXPECT_EQ(fault::armedSite(), "sat");
    }
    EXPECT_EQ(fault::armedSite(), "");
    EXPECT_NO_THROW(fault::checkpoint("sat"));
}

// ----------------------------------------------------------- HQS_FAULT specs

TEST(FaultSpec, ParsesSiteNthAndKind)
{
    std::string site, error;
    unsigned long nth = 0;
    fault::FaultKind kind = fault::FaultKind::Crash;

    ASSERT_TRUE(fault::detail::parseSpec("sat", &site, &nth, &kind, &error)) << error;
    EXPECT_EQ(site, "sat");
    EXPECT_EQ(nth, 1u);
    EXPECT_EQ(kind, fault::FaultKind::Throw);

    ASSERT_TRUE(fault::detail::parseSpec("aig-alloc:10", &site, &nth, &kind, &error));
    EXPECT_EQ(site, "aig-alloc");
    EXPECT_EQ(nth, 10u);
    EXPECT_EQ(kind, fault::FaultKind::Throw);

    ASSERT_TRUE(fault::detail::parseSpec("sat:3:crash", &site, &nth, &kind, &error));
    EXPECT_EQ(site, "sat");
    EXPECT_EQ(nth, 3u);
    EXPECT_EQ(kind, fault::FaultKind::Crash);

    // `site:crash` is shorthand for `site:1:crash`.
    ASSERT_TRUE(fault::detail::parseSpec("fraig:crash", &site, &nth, &kind, &error));
    EXPECT_EQ(site, "fraig");
    EXPECT_EQ(nth, 1u);
    EXPECT_EQ(kind, fault::FaultKind::Crash);
}

TEST(FaultSpec, RejectsMalformedSpecsWithADiagnostic)
{
    const char* bad[] = {
        "",          // empty site
        ":1",        // empty site with nth
        "sat:0",     // nth is 1-based
        "sat:-1",    // negative
        "sat:two",   // non-numeric nth
        "sat:1:boom",                 // unknown kind token
        "sat:1:crash:extra",          // trailing garbage
        "sat:99999999999999999999",   // out of range
    };
    for (const char* spec : bad) {
        std::string site, error;
        unsigned long nth = 0;
        fault::FaultKind kind = fault::FaultKind::Throw;
        EXPECT_FALSE(fault::detail::parseSpec(spec, &site, &nth, &kind, &error))
            << "accepted: '" << spec << "'";
        EXPECT_FALSE(error.empty()) << "no diagnostic for: '" << spec << "'";
    }
}

TEST(FaultSpec, CrashKindExitsTheProcessWith137)
{
    // The crash kind must not unwind: fork a victim, arm the site, hit the
    // checkpoint, and expect the supervisor-recognizable exit code 137.
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        fault::arm("sat", 1, fault::FaultKind::Crash);
        try {
            fault::checkpoint("sat"); // _exit(137)s; must not throw
        } catch (...) {
            _exit(3); // unwound — wrong
        }
        _exit(4); // returned — wrong
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << status;
    EXPECT_EQ(WEXITSTATUS(status), 137);
}

// --------------------------------------------------------- failure taxonomy

TEST(FailureTaxonomy, ClassifiesTheInterestingExceptionTypes)
{
    auto classify = [](auto&& thrower) {
        try {
            thrower();
        } catch (...) {
            return classifyException(std::current_exception());
        }
        return FailureInfo{};
    };

    const FailureInfo injected =
        classify([] { throw fault::InjectedFault("fraig", 1); });
    EXPECT_EQ(injected.kind, FailureKind::InjectedFault);
    EXPECT_EQ(injected.site, "fraig");

    const FailureInfo parse = classify([] { throw ParseError("bad header"); });
    EXPECT_EQ(parse.kind, FailureKind::ParseError);
    EXPECT_NE(parse.what.find("bad header"), std::string::npos);

    const FailureInfo alloc = classify([] { throw std::bad_alloc(); });
    EXPECT_EQ(alloc.kind, FailureKind::BadAlloc);

    const FailureInfo engine = classify([] { throw std::runtime_error("boom"); });
    EXPECT_EQ(engine.kind, FailureKind::EngineError);
    EXPECT_NE(engine.what.find("boom"), std::string::npos);

    const FailureInfo odd = classify([] { throw 42; });
    EXPECT_EQ(odd.kind, FailureKind::EngineError);
}

TEST(FailureTaxonomy, KindsHaveStableStringForms)
{
    EXPECT_STREQ(toString(FailureKind::None), "none");
    EXPECT_STREQ(toString(FailureKind::ParseError), "parse-error");
    EXPECT_STREQ(toString(FailureKind::BadAlloc), "bad-alloc");
    EXPECT_STREQ(toString(FailureKind::RssLimit), "rss-limit");
    EXPECT_STREQ(toString(FailureKind::InjectedFault), "injected-fault");
    EXPECT_STREQ(toString(FailureKind::EngineError), "engine-error");
    EXPECT_STREQ(toString(FailureKind::Disagreement), "disagreement");
    EXPECT_STREQ(toString(FailureKind::Cancelled), "cancelled");
}

TEST(FailureTaxonomy, CancelReasonSelectsMemoutOverTimeout)
{
    CancelToken user;
    user.requestCancel();
    EXPECT_EQ(user.reason(), CancelReason::User);
    EXPECT_EQ(deadlineExceededResult(Deadline::unlimited().withCancel(user)),
              SolveResult::Timeout);

    CancelToken memout;
    memout.requestCancel(CancelReason::Memout);
    EXPECT_EQ(memout.reason(), CancelReason::Memout);
    EXPECT_EQ(deadlineExceededResult(Deadline::unlimited().withCancel(memout)),
              SolveResult::Memout);

    // First reason sticks: a later cancel cannot rewrite Memout into User.
    memout.requestCancel(CancelReason::User);
    EXPECT_EQ(memout.reason(), CancelReason::Memout);
}

// ----------------------------------------------------------------- runGuarded

TEST(Guard, CleanRunPassesTheResultThrough)
{
    const GuardedOutcome out =
        runGuarded({}, [](const Deadline&) { return SolveResult::Sat; });
    EXPECT_EQ(out.result, SolveResult::Sat);
    EXPECT_FALSE(out.failure);
}

TEST(Guard, BadAllocBecomesMemoutWithStructuredFailure)
{
    const GuardedOutcome out = runGuarded(
        {}, [](const Deadline&) -> SolveResult { throw std::bad_alloc(); });
    EXPECT_EQ(out.result, SolveResult::Memout);
    EXPECT_EQ(out.failure.kind, FailureKind::BadAlloc);
}

TEST(Guard, ParseErrorBecomesUnknownWithStructuredFailure)
{
    const GuardedOutcome out = runGuarded(
        {}, [](const Deadline&) -> SolveResult { throw ParseError("bad file"); });
    EXPECT_EQ(out.result, SolveResult::Unknown);
    EXPECT_EQ(out.failure.kind, FailureKind::ParseError);
    EXPECT_NE(out.failure.what.find("bad file"), std::string::npos);
}

TEST(Guard, InjectedFaultKeepsItsSite)
{
    fault::arm("sat");
    const GuardedOutcome out = runGuarded({}, [](const Deadline&) {
        fault::checkpoint("sat");
        return SolveResult::Sat;
    });
    EXPECT_EQ(out.result, SolveResult::Unknown);
    EXPECT_EQ(out.failure.kind, FailureKind::InjectedFault);
    EXPECT_EQ(out.failure.site, "sat");
}

TEST(Guard, RssWatchdogFiresCooperativeMemout)
{
    GuardOptions opts;
    opts.rssLimitBytes = 1000;
    opts.memoryProbe = [] { return std::size_t{4000}; };
    opts.watchdogPollMilliseconds = 1.0;

    const GuardedOutcome out = runGuarded(opts, [](const Deadline& dl) {
        // A cooperative solver: poll the deadline until the watchdog fires.
        while (!dl.expired()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return deadlineExceededResult(dl);
    });
    EXPECT_EQ(out.result, SolveResult::Memout);
    EXPECT_EQ(out.failure.kind, FailureKind::RssLimit);
    EXPECT_EQ(out.peakRssBytes, 4000u);
}

TEST(Guard, RssWatchdogStaysQuietUnderTheBudget)
{
    GuardOptions opts;
    opts.rssLimitBytes = 1 << 30;
    opts.memoryProbe = [] { return std::size_t{1024}; };
    opts.watchdogPollMilliseconds = 1.0;
    const GuardedOutcome out = runGuarded(opts, [](const Deadline&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return SolveResult::Unsat;
    });
    EXPECT_EQ(out.result, SolveResult::Unsat);
    EXPECT_FALSE(out.failure);
    // 0 only if the watchdog thread never got a poll in before the body
    // returned; it must never exceed the probe reading.
    EXPECT_LE(out.peakRssBytes, 1024u);
}

TEST(Guard, ExternalCancelIsForwardedIntoTheRun)
{
    CancelToken kill;
    GuardOptions opts;
    opts.cancel = kill;
    opts.watchdogPollMilliseconds = 1.0;

    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        kill.requestCancel();
    });
    const GuardedOutcome out = runGuarded(opts, [](const Deadline& dl) {
        while (!dl.expired()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return deadlineExceededResult(dl);
    });
    killer.join();
    EXPECT_EQ(out.result, SolveResult::Timeout);
    EXPECT_EQ(out.failure.kind, FailureKind::Cancelled);
}

TEST(Guard, ReadRssBytesReportsSomethingPlausible)
{
#ifdef __linux__
    const std::size_t rss = readRssBytes();
    EXPECT_GT(rss, 1u << 20); // a gtest binary resides in megabytes
#else
    GTEST_SKIP() << "no cheap RSS probe on this platform";
#endif
}

// ------------------------------------------------------- thread-pool guarding

TEST(ThreadPoolGuard, ThrowingJobIsRecordedNotFatal)
{
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([] { throw std::runtime_error("job exploded"); });
    pool.submit([] { throw std::bad_alloc(); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();

    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(pool.failedJobs(), 2u);
    const std::vector<FailureInfo> failures = pool.failures();
    ASSERT_EQ(failures.size(), 2u);
    int engineErrors = 0, badAllocs = 0;
    for (const FailureInfo& f : failures) {
        if (f.kind == FailureKind::EngineError) ++engineErrors;
        if (f.kind == FailureKind::BadAlloc) ++badAllocs;
    }
    EXPECT_EQ(engineErrors, 1);
    EXPECT_EQ(badAllocs, 1);
}

TEST(ThreadPoolGuard, PoolDispatchFaultLosesOneJobOnly)
{
    fault::ScopedFault guard("pool-dispatch");
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 5; ++i) pool.submit([&] { ran.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(pool.failedJobs(), 1u);
        ASSERT_EQ(pool.failures().size(), 1u);
        EXPECT_EQ(pool.failures()[0].kind, FailureKind::InjectedFault);
        EXPECT_EQ(pool.failures()[0].site, "pool-dispatch");
    }
    EXPECT_EQ(ran.load(), 4); // the faulted dispatch dropped exactly one job
}

// ------------------------------------------------------ portfolio disagreement

TEST(PortfolioGuard, ContradictoryVerdictsYieldUnknownNotACoinFlip)
{
    PortfolioOptions opts;
    opts.engines = {
        {"says-sat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Sat; },
         {}},
        {"says-unsat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Unsat; },
         {}},
    };
    PortfolioSolver solver(opts);
    const DqbfFormula f =
        DqbfFormula::fromParsed(parseDqdimacsFile(dataPath("example1_sat.dqdimacs")));
    EXPECT_EQ(solver.solve(f), SolveResult::Unknown);
    const PortfolioStats& st = solver.stats();
    EXPECT_TRUE(st.disagreement);
    EXPECT_TRUE(st.winnerName.empty());
    EXPECT_EQ(st.failure.kind, FailureKind::Disagreement);
    EXPECT_NE(st.failure.what.find("says-sat"), std::string::npos);
    EXPECT_NE(st.failure.what.find("says-unsat"), std::string::npos);
    for (const EngineRunStats& es : st.engines) EXPECT_FALSE(es.winner);
}

TEST(PortfolioGuard, ThrowingEngineIsRecordedAndTheRaceStillAnswers)
{
    PortfolioOptions opts;
    opts.engines = {
        {"crasher",
         [](const DqbfFormula&, const Deadline&) -> SolveResult {
             throw std::runtime_error("engine bug");
         },
         {}},
        {"steady", [](const DqbfFormula&, const Deadline&) { return SolveResult::Sat; },
         {}},
    };
    PortfolioSolver solver(opts);
    const DqbfFormula f =
        DqbfFormula::fromParsed(parseDqdimacsFile(dataPath("example1_sat.dqdimacs")));
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    const PortfolioStats& st = solver.stats();
    EXPECT_EQ(st.winnerName, "steady");
    EXPECT_FALSE(st.disagreement);
    bool sawFailure = false;
    for (const EngineRunStats& es : st.engines) {
        if (es.name != "crasher") continue;
        sawFailure = true;
        EXPECT_EQ(es.failure.kind, FailureKind::EngineError);
        EXPECT_NE(es.failure.what.find("engine bug"), std::string::npos);
    }
    EXPECT_TRUE(sawFailure);
}

// ---------------------------------------------------------- degradation ladder

TEST(Ladder, DefaultLadderShape)
{
    const std::vector<DegradationRung> ladder = defaultDegradationLadder();
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[0].name, "full");
    EXPECT_TRUE(ladder[0].fraig);
    EXPECT_EQ(ladder[1].name, "no-fraig");
    EXPECT_FALSE(ladder[1].fraig);
    EXPECT_EQ(ladder[2].name, "half-nodes");
    EXPECT_DOUBLE_EQ(ladder[2].nodeLimitScale, 0.5);
    EXPECT_EQ(ladder[3].name, "bdd");
    EXPECT_TRUE(ladder[3].bddBackend);
}

TEST(Ladder, InjectedFraigBadAllocDegradesToNoFraigAndStillAnswers)
{
    // The acceptance scenario: bad_alloc in the FRAIG sweep at the full
    // rung; the ladder retries with FRAIG off and the instance concludes.
    const std::filesystem::path file =
        writeFormulaFile(nontrivialFormula(), "hqs_fault_ladder_test", "adder.dqdimacs");

    BatchOptions opts;
    opts.numWorkers = 1;
    opts.fraigThresholdNodes = 1; // force a sweep even on this small cone
    BatchScheduler scheduler(opts);
    std::ostringstream jsonl;
    fault::ScopedFault guard("fraig");
    const std::vector<BatchJobResult> results = scheduler.run({file.string()}, &jsonl);

    ASSERT_EQ(results.size(), 1u);
    const BatchJobResult& r = results[0];
    EXPECT_TRUE(isConclusive(r.result)) << toString(r.result);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.rung, "no-fraig");
    EXPECT_FALSE(r.failure); // the final attempt was clean

    const std::vector<RungStats>& stats = scheduler.rungStats();
    ASSERT_EQ(stats.size(), 4u);
    EXPECT_EQ(stats[0].attempts, 1u);
    EXPECT_EQ(stats[0].memouts, 1u); // bad_alloc is normalized to Memout
    EXPECT_EQ(stats[0].failures, 1u);
    EXPECT_EQ(stats[1].attempts, 1u);
    EXPECT_EQ(stats[1].conclusive, 1u);
    EXPECT_EQ(stats[2].attempts, 0u);

    EXPECT_NE(jsonl.str().find("\"rung\":\"no-fraig\""), std::string::npos);
    std::filesystem::remove_all(file.parent_path());
}

TEST(Ladder, SingleRungLadderDisablesRetriesAndKeepsTheFailure)
{
    // The --no-retry edge: with a one-rung ladder an injected crash is
    // reported as the final outcome instead of walking the ladder.
    const std::filesystem::path file = writeFormulaFile(
        nontrivialFormula(), "hqs_fault_single_rung_test", "adder.dqdimacs");

    BatchOptions opts;
    opts.numWorkers = 1;
    opts.ladder.resize(1); // --no-retry
    BatchScheduler scheduler(opts);
    fault::ScopedFault guard("sat");
    const std::vector<BatchJobResult> results = scheduler.run({file.string()});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_FALSE(results[0].degraded);
    EXPECT_EQ(results[0].failure.kind, FailureKind::InjectedFault);
    EXPECT_EQ(results[0].failure.site, "sat");
    EXPECT_FALSE(results[0].error.empty());
    std::filesystem::remove_all(file.parent_path());
}

// ------------------------------------------------------------ corrupt corpus

TEST(CorruptCorpus, BatchRecordsEveryParseErrorAndContinues)
{
    const std::vector<std::string> files =
        BatchScheduler::collectInstances(dataPath("corrupt"));
    ASSERT_GE(files.size(), 13u);

    BatchOptions opts;
    opts.numWorkers = 2;
    BatchScheduler scheduler(opts);
    std::ostringstream jsonl;
    const std::vector<BatchJobResult> results = scheduler.run(files, &jsonl);

    ASSERT_EQ(results.size(), files.size());
    for (const BatchJobResult& r : results) {
        EXPECT_EQ(r.result, SolveResult::Unknown) << r.instance;
        EXPECT_EQ(r.failure.kind, FailureKind::ParseError) << r.instance;
        EXPECT_FALSE(r.failure.what.empty()) << r.instance;
        EXPECT_EQ(r.attempts, 1u) << r.instance; // parse errors never retry
        EXPECT_FALSE(r.error.empty()) << r.instance;
    }

    // The JSONL journal carries the structured failure for every line.
    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        ++n;
        EXPECT_NE(line.find("\"failure\":{\"kind\":\"parse-error\""), std::string::npos);
    }
    EXPECT_EQ(n, files.size());
}

// --------------------------------------------------------- journal and resume

TEST(Journal, JsonlRoundTripsTheFailureFields)
{
    BatchJobResult r;
    r.instance = "bench/weird \"name\".dqdimacs";
    r.result = SolveResult::Memout;
    r.wallMilliseconds = 12.5;
    r.engine = "hqs";
    r.attempts = 3;
    r.degraded = true;
    r.rung = "half-nodes";
    r.failure = {FailureKind::BadAlloc, "aig-alloc", "injected\nbad_alloc"};
    r.error = r.failure.what;

    std::ostringstream os;
    writeJsonl(r, os);
    std::string line = os.str();
    ASSERT_FALSE(line.empty());
    line.pop_back(); // strip the newline, as std::getline would

    BatchJobResult back;
    ASSERT_TRUE(readJsonl(line, back));
    EXPECT_EQ(back.instance, r.instance);
    EXPECT_EQ(back.result, SolveResult::Memout);
    EXPECT_EQ(back.engine, "hqs");
    EXPECT_EQ(back.rung, "half-nodes");
    EXPECT_EQ(back.failure.kind, FailureKind::BadAlloc);
    EXPECT_EQ(back.failure.site, "aig-alloc");
    EXPECT_EQ(back.failure.what, "injected\nbad_alloc");
    EXPECT_EQ(back.error, r.error);
}

TEST(Journal, TornAndGarbageLinesAreSkippedAndLastEntryWins)
{
    BatchJobResult a;
    a.instance = "a.dqdimacs";
    a.result = SolveResult::Timeout;
    BatchJobResult a2 = a;
    a2.result = SolveResult::Sat;
    BatchJobResult b;
    b.instance = "b.dqdimacs";
    b.result = SolveResult::Unsat;

    std::ostringstream os;
    writeJsonl(a, os);
    writeJsonl(b, os);
    os << "{\"instance\":\"torn.dqdimacs\",\"result\":\"SA"; // killed mid-write
    os << "\nnot json at all\n";
    writeJsonl(a2, os); // resumed run supersedes a's Timeout

    std::istringstream in(os.str());
    const std::vector<BatchJobResult> journal = readJournal(in);
    ASSERT_EQ(journal.size(), 2u);
    EXPECT_EQ(journal[0].instance, "a.dqdimacs");
    EXPECT_EQ(journal[0].result, SolveResult::Sat); // last entry won
    EXPECT_EQ(journal[1].instance, "b.dqdimacs");

    const std::unordered_set<std::string> done = conclusiveInstances(journal);
    EXPECT_EQ(done.size(), 2u);
    EXPECT_TRUE(done.contains("a.dqdimacs"));
    EXPECT_TRUE(done.contains("b.dqdimacs"));
}

TEST(Journal, KilledBatchResumesToTheSameVerdicts)
{
    // Acceptance scenario: run the batch to completion once, then replay an
    // interrupted journal (one conclusive line + one torn line) and resume.
    // The resumed run must re-solve only the missing instance and the merged
    // journal must match the uninterrupted verdicts.
    const std::vector<std::string> files =
        BatchScheduler::collectInstances(HQS_TEST_DATA_DIR);
    ASSERT_EQ(files.size(), 2u);

    std::ostringstream full;
    BatchOptions opts;
    opts.numWorkers = 2;
    const std::vector<BatchJobResult> uninterrupted =
        BatchScheduler(opts).run(files, &full);
    ASSERT_EQ(uninterrupted.size(), 2u);
    ASSERT_TRUE(isConclusive(uninterrupted[0].result));
    ASSERT_TRUE(isConclusive(uninterrupted[1].result));

    // Interrupted journal: instance 0 committed, instance 1 torn mid-line.
    std::ostringstream interrupted;
    writeJsonl(uninterrupted[0], interrupted);
    {
        std::ostringstream tornLine;
        writeJsonl(uninterrupted[1], tornLine);
        interrupted << tornLine.str().substr(0, tornLine.str().size() / 2);
    }

    std::istringstream in(interrupted.str());
    const std::vector<BatchJobResult> journal = readJournal(in);
    const std::unordered_set<std::string> done = conclusiveInstances(journal);
    EXPECT_EQ(done.size(), 1u);
    EXPECT_TRUE(done.contains(files[0]));

    std::vector<std::string> toRun;
    for (const std::string& f : files)
        if (!done.contains(f)) toRun.push_back(f);
    ASSERT_EQ(toRun.size(), 1u);
    EXPECT_EQ(toRun[0], files[1]);

    // Resume appends to the same journal; last entry wins on re-read.
    std::ostringstream resumed(interrupted.str(), std::ios::app);
    const std::vector<BatchJobResult> fresh =
        BatchScheduler(opts).run(toRun, &resumed);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].result, uninterrupted[1].result);

    std::istringstream mergedIn(resumed.str());
    const std::vector<BatchJobResult> merged = readJournal(mergedIn);
    ASSERT_EQ(merged.size(), 2u);
    for (const BatchJobResult& r : merged) {
        const std::size_t i = (r.instance == files[0]) ? 0 : 1;
        EXPECT_EQ(r.instance, files[i]);
        EXPECT_EQ(r.result, uninterrupted[i].result);
    }
}

// -------------------------------------------------------------------- EnvFault

// Driven by the faults/* ctest partition: the harness sets HQS_FAULT to one
// registered site before launching this binary with --gtest_filter=EnvFault.*.
// Whatever the armed site throws, the batch must survive, report every
// instance, and any conclusive verdict it does produce must be correct.
TEST(EnvFault, BatchSurvivesTheArmedSiteAndVerdictsStayCorrect)
{
    const std::string site = fault::armedSite();
    if (site.empty()) GTEST_SKIP() << "HQS_FAULT not set; run via the faults/* partition";

    const std::vector<std::string> files =
        BatchScheduler::collectInstances(HQS_TEST_DATA_DIR);
    ASSERT_EQ(files.size(), 2u);

    BatchOptions opts;
    opts.numWorkers = 2;
    opts.fraigThresholdNodes = 1; // give the "fraig" site a chance to fire
    BatchScheduler scheduler(opts);
    std::ostringstream jsonl;
    const std::vector<BatchJobResult> results = scheduler.run(files, &jsonl);

    ASSERT_EQ(results.size(), 2u);
    std::size_t conclusive = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BatchJobResult& r = results[i];
        if (isConclusive(r.result)) {
            ++conclusive;
            // files are sorted: example1_sat before example1_unsat
            EXPECT_EQ(r.result, i == 0 ? SolveResult::Sat : SolveResult::Unsat)
                << r.instance << " at site " << site;
        }
    }
    // The fault is one-shot, so at most one job can be affected — and with
    // the ladder armed, crash-style faults usually still conclude.  A
    // "pool-dispatch" fault swallows one whole job, hence >= 1, not == 2.
    EXPECT_GE(conclusive, 1u) << "site " << site;
}
