// Certification subsystem tests: extractor -> serializer -> parser ->
// independent checker round trips, the corrupt-certificate corpus (every
// mutation rejected with its own structured reason), a differential sweep
// certifying every SAT instance under tests/data/, and the portfolio
// disagreement path that arbitrates contradictory verdicts by checking the
// SAT racer's certificate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/runtime/portfolio.hpp"

namespace hqs {
namespace {

std::string dataPath(const std::string& name)
{
    return std::string(HQS_TEST_DATA_DIR) + "/" + name;
}

/// x1 -> y3, x2 -> y4, each existential copying its single dependency.
DqbfFormula copycat()
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x1});
    const Var y2 = f.addExistential({x2});
    f.matrix().addClause({Lit::neg(x1), Lit::pos(y1)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(y1)});
    f.matrix().addClause({Lit::neg(x2), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(x2), Lit::neg(y2)});
    return f;
}

/// Solve @p f with Skolem recording and return the serialized certificate
/// ("" when the verdict is not Sat).
std::string solveAndSerialize(const DqbfFormula& f)
{
    HqsOptions opts;
    opts.computeSkolem = true;
    HqsSolver solver(opts);
    if (solver.solve(f) != SolveResult::Sat || !solver.skolemCertificate()) return {};
    return cert::toCertificateString(
        cert::extractCertificate(f, *solver.skolemCertificate()));
}

TEST(Certificate, RoundTripThroughStringIsAcceptedByTheChecker)
{
    const DqbfFormula f = copycat();
    const std::string text = solveAndSerialize(f);
    ASSERT_FALSE(text.empty());

    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(text, parsed, detail), cert::CheckStatus::Ok)
        << detail;
    EXPECT_EQ(parsed.functions.size(), f.existentials().size());
    EXPECT_EQ(parsed.hash, cert::formulaHash(f.toParsed()));

    const cert::CheckResult res = cert::checkCertificate(parsed);
    EXPECT_TRUE(res.ok()) << cert::toString(res.status) << ": " << res.detail;
}

TEST(Certificate, SerializationIsDeterministic)
{
    const DqbfFormula f = copycat();
    EXPECT_EQ(solveAndSerialize(f), solveAndSerialize(f));
}

TEST(Certificate, HashBindsPrefixAndMatrix)
{
    DqbfFormula f = copycat();
    const std::uint64_t h = cert::formulaHash(f.toParsed());
    // A different dependency set must change the hash.
    DqbfFormula g;
    const Var x1 = g.addUniversal();
    const Var x2 = g.addUniversal();
    g.addExistential({x1, x2}); // copycat's y1 depends on x1 only
    g.addExistential({x2});
    g.matrix().addClause({Lit::neg(x1), Lit::pos(Var(2))});
    g.matrix().addClause({Lit::pos(x1), Lit::neg(Var(2))});
    g.matrix().addClause({Lit::neg(x2), Lit::pos(Var(3))});
    g.matrix().addClause({Lit::pos(x2), Lit::neg(Var(3))});
    EXPECT_NE(cert::formulaHash(g.toParsed()), h);
    // And so must a different matrix.
    DqbfFormula m = copycat();
    m.matrix().addClause({Lit::pos(Var(0))});
    EXPECT_NE(cert::formulaHash(m.toParsed()), h);
}

TEST(Certificate, GarbageIsBadFormatNotACrash)
{
    cert::Certificate parsed;
    std::string detail;
    EXPECT_EQ(cert::parseCertificateString("not a certificate\n", parsed, detail),
              cert::CheckStatus::BadFormat);
    EXPECT_EQ(cert::parseCertificateString("", parsed, detail),
              cert::CheckStatus::Truncated);
}

// ------------------------------------------------- corrupt-certificate corpus

struct CorpusCase {
    const char* file;
    cert::CheckStatus expected;
};

class CertCorpus : public ::testing::TestWithParam<CorpusCase> {};

/// Every corpus mutation must be rejected with its own structured reason —
/// a checker that collapses failure modes cannot be debugged in the field.
TEST_P(CertCorpus, EachMutationRejectsWithItsOwnReason)
{
    const CorpusCase& c = GetParam();
    cert::Certificate parsed;
    std::string detail;
    cert::CheckStatus st =
        cert::parseCertificateFile(dataPath(std::string("cert/") + c.file), parsed, detail);
    if (st == cert::CheckStatus::Ok) {
        const cert::CheckResult res = cert::checkCertificate(parsed);
        st = res.status;
        detail = res.detail;
    }
    EXPECT_EQ(st, c.expected) << c.file << ": " << cert::toString(st) << " (" << detail
                              << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CertCorpus,
    ::testing::Values(
        CorpusCase{"flipped_output.cert", cert::CheckStatus::Refuted},
        CorpusCase{"dropped_function.cert", cert::CheckStatus::MissingFunction},
        CorpusCase{"dependency_violation.cert", cert::CheckStatus::DependencyViolation},
        CorpusCase{"truncated.cert", cert::CheckStatus::Truncated},
        CorpusCase{"wrong_hash.cert", cert::CheckStatus::HashMismatch}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
        std::string name = info.param.file;
        name.resize(name.size() - 5); // strip ".cert"
        return name;
    });

// A valid certificate for a *different* formula must fail the --formula
// binding (hash mismatch), even though it is internally consistent.
TEST(Certificate, CertificateOfOneFormulaRejectsAnother)
{
    const DqbfFormula f = copycat();
    const std::string text = solveAndSerialize(f);
    ASSERT_FALSE(text.empty());
    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(text, parsed, detail), cert::CheckStatus::Ok);

    const ParsedQdimacs other = parseDqdimacsFile(dataPath("example1_unsat.dqdimacs"));
    EXPECT_NE(cert::formulaHash(other), parsed.hash);
}

// ------------------------------------------------------- differential sweep

/// Certify every SAT instance under tests/data/ and check the artifact with
/// the independent checker — the same obligation the CLI round-trip test
/// enforces through the binaries.
TEST(Certificate, EverySatInstanceInTestDataCertifies)
{
    int certified = 0;
    for (const auto& entry : std::filesystem::directory_iterator(HQS_TEST_DATA_DIR)) {
        if (entry.path().extension() != ".dqdimacs") continue;
        const DqbfFormula f =
            DqbfFormula::fromParsed(parseDqdimacsFile(entry.path().string()));
        HqsOptions opts;
        opts.computeSkolem = true;
        HqsSolver solver(opts);
        if (solver.solve(f) != SolveResult::Sat) continue;
        ASSERT_TRUE(solver.skolemCertificate().has_value()) << entry.path();
        const std::string text = cert::toCertificateString(
            cert::extractCertificate(f, *solver.skolemCertificate()));
        cert::Certificate parsed;
        std::string detail;
        ASSERT_EQ(cert::parseCertificateString(text, parsed, detail),
                  cert::CheckStatus::Ok)
            << entry.path() << ": " << detail;
        const cert::CheckResult res = cert::checkCertificate(parsed);
        EXPECT_TRUE(res.ok()) << entry.path() << ": " << cert::toString(res.status)
                              << " (" << res.detail << ")";
        ++certified;
    }
    EXPECT_GE(certified, 1); // the sweep must not silently skip everything
}

// -------------------------------------------- portfolio disagreement judge

/// A runCertify engine backed by the real solver: answers Sat and hands
/// back a genuine certificate.
PortfolioEngine honestCertifier(const char* name)
{
    return {name,
            [](const DqbfFormula& f, const Deadline& dl) {
                HqsOptions opts;
                opts.deadline = dl;
                HqsSolver solver(opts);
                return solver.solve(f);
            },
            [](const DqbfFormula& f, const Deadline& dl, std::string* certOut) {
                HqsOptions opts;
                opts.deadline = dl;
                opts.computeSkolem = true;
                HqsSolver solver(opts);
                const SolveResult r = solver.solve(f);
                if (r == SolveResult::Sat && solver.skolemCertificate() && certOut)
                    *certOut = cert::toCertificateString(
                        cert::extractCertificate(f, *solver.skolemCertificate()));
                return r;
            }};
}

TEST(PortfolioCertJudge, ValidCertificateVindicatesSatOverALyingUnsat)
{
    PortfolioOptions opts;
    opts.certify = true;
    opts.engines = {
        {"liar-unsat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Unsat; },
         {}},
        honestCertifier("honest-sat"),
    };
    PortfolioSolver solver(opts);
    const DqbfFormula f = copycat();
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);

    const PortfolioStats& st = solver.stats();
    EXPECT_TRUE(st.disagreement); // the contradiction is still recorded
    EXPECT_EQ(st.winnerName, "honest-sat");
    EXPECT_FALSE(st.winnerCertificate.empty());
    EXPECT_EQ(st.failure.kind, FailureKind::Disagreement);
    EXPECT_EQ(st.failure.site, "portfolio.certcheck");
    EXPECT_NE(st.failure.what.find("vindicated honest-sat"), std::string::npos)
        << st.failure.what;
    for (const EngineRunStats& es : st.engines) {
        if (es.name == "honest-sat") {
            EXPECT_EQ(es.certCheck, "ok");
        }
    }
}

TEST(PortfolioCertJudge, RejectedCertificateVindicatesTheUnsatSide)
{
    PortfolioOptions opts;
    opts.certify = true;
    opts.engines = {
        {"honest-unsat",
         [](const DqbfFormula&, const Deadline&) { return SolveResult::Unsat; }, {}},
        {"braggart-sat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Sat; },
         [](const DqbfFormula&, const Deadline&, std::string* certOut) {
             if (certOut) *certOut = "dqbf-cert 1\nnot a real certificate\n";
             return SolveResult::Sat;
         }},
    };
    PortfolioSolver solver(opts);
    // Use a formula the fake engines never look at; the judge only inspects
    // the certificates.
    const DqbfFormula f = copycat();
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);

    const PortfolioStats& st = solver.stats();
    EXPECT_TRUE(st.disagreement);
    EXPECT_EQ(st.winnerName, "honest-unsat");
    EXPECT_EQ(st.failure.kind, FailureKind::Disagreement);
    EXPECT_EQ(st.failure.site, "portfolio.certcheck");
    EXPECT_NE(st.failure.what.find("vindicated honest-unsat"), std::string::npos)
        << st.failure.what;
}

TEST(PortfolioCertJudge, NoCertificateKeepsTheOldUnknownBehavior)
{
    PortfolioOptions opts;
    opts.certify = true; // requested, but neither engine can produce one
    opts.engines = {
        {"says-sat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Sat; },
         {}},
        {"says-unsat", [](const DqbfFormula&, const Deadline&) { return SolveResult::Unsat; },
         {}},
    };
    PortfolioSolver solver(opts);
    const DqbfFormula f = copycat();
    EXPECT_EQ(solver.solve(f), SolveResult::Unknown);
    EXPECT_TRUE(solver.stats().disagreement);
    EXPECT_TRUE(solver.stats().winnerName.empty());
}

} // namespace
} // namespace hqs
