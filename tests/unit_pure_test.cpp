// Tests for the Theorem-6 syntactic unit/pure detection on AIGs.
//
// The check is sound but incomplete (paper, Example 4): every variable it
// reports must satisfy the semantic Definition 5, but monotone variables can
// be missed when some path parity disagrees.  The property sweep verifies
// soundness against truth tables; dedicated cases pin down the expected
// positives and a known incompleteness witness.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/aig/aig.hpp"
#include "src/base/rng.hpp"

namespace hqs {
namespace {

std::uint64_t truthTable(const Aig& aig, AigEdge root, Var n)
{
    std::uint64_t tt = 0;
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        if (aig.evaluate(root, a)) tt |= 1ull << bits;
    }
    return tt;
}

bool contains(const std::vector<Var>& vs, Var v)
{
    return std::find(vs.begin(), vs.end(), v) != vs.end();
}

TEST(UnitPure, TopLevelConjunctIsPositiveUnit)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(x, aig.mkOr(y, aig.variable(2)));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.posUnit, 0));
    EXPECT_FALSE(contains(info.posUnit, 1));
    EXPECT_FALSE(contains(info.posUnit, 2));
}

TEST(UnitPure, NegatedConjunctIsNegativeUnit)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(~x, y);
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.negUnit, 0));
    EXPECT_TRUE(contains(info.posUnit, 1));
}

TEST(UnitPure, RootVariableEdgeCases)
{
    Aig aig;
    const AigEdge y = aig.variable(3);
    const UnitPureInfo posInfo = aig.detectUnitPure(y);
    EXPECT_TRUE(contains(posInfo.posUnit, 3));
    EXPECT_TRUE(contains(posInfo.posPure, 3));
    const UnitPureInfo negInfo = aig.detectUnitPure(~y);
    EXPECT_TRUE(contains(negInfo.negUnit, 3));
    EXPECT_TRUE(contains(negInfo.negPure, 3));
}

TEST(UnitPure, ConstantRootReportsNothing)
{
    Aig aig;
    const UnitPureInfo info = aig.detectUnitPure(aig.constTrue());
    EXPECT_TRUE(info.posUnit.empty());
    EXPECT_TRUE(info.negUnit.empty());
    EXPECT_TRUE(info.posPure.empty());
    EXPECT_TRUE(info.negPure.empty());
}

TEST(UnitPure, MonotonePathsGivePurity)
{
    // CNF-style encoding of (y | x1) & (y | x2): every path from y passes an
    // even number of inverters, so y is positive pure; x1, x2 likewise.
    Aig aig;
    const AigEdge y = aig.variable(0);
    const AigEdge x1 = aig.variable(1);
    const AigEdge x2 = aig.variable(2);
    const AigEdge f = aig.mkAnd(aig.mkOr(y, x1), aig.mkOr(y, x2));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.posPure, 0));
    EXPECT_TRUE(contains(info.posPure, 1));
    EXPECT_TRUE(contains(info.posPure, 2));
    EXPECT_TRUE(info.negPure.empty());
}

TEST(UnitPure, AntitonePathsGiveNegativePurity)
{
    // (~y | x): y occurs only negatively.
    Aig aig;
    const AigEdge y = aig.variable(0);
    const AigEdge x = aig.variable(1);
    const AigEdge f = aig.mkOr(~y, x);
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.negPure, 0));
    EXPECT_TRUE(contains(info.posPure, 1));
}

TEST(UnitPure, XorVariableIsNeitherUnitNorPure)
{
    Aig aig;
    const AigEdge f = aig.mkXor(aig.variable(0), aig.variable(1));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(info.posUnit.empty());
    EXPECT_TRUE(info.negUnit.empty());
    EXPECT_TRUE(info.posPure.empty());
    EXPECT_TRUE(info.negPure.empty());
}

TEST(UnitPure, PaperExample4MixedClauseSet)
{
    // The clause set of the paper's Fig. 1 / Example 4:
    // (y1 | x1) & (y1 | x2) & (y2 | ~x1) & (y2 | ~x2).
    // y1, y2 are positive pure; x1 and x2 are mixed-polarity, hence neither.
    Aig aig;
    const AigEdge y1 = aig.variable(0);
    const AigEdge y2 = aig.variable(1);
    const AigEdge x1 = aig.variable(2);
    const AigEdge x2 = aig.variable(3);
    const AigEdge f = aig.mkAnd(aig.mkAnd(aig.mkOr(y1, x1), aig.mkOr(y1, x2)),
                                aig.mkAnd(aig.mkOr(y2, ~x1), aig.mkOr(y2, ~x2)));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.posPure, 0));
    EXPECT_TRUE(contains(info.posPure, 1));
    EXPECT_FALSE(contains(info.posPure, 2));
    EXPECT_FALSE(contains(info.negPure, 2));
    EXPECT_FALSE(contains(info.posPure, 3));
    EXPECT_FALSE(contains(info.negPure, 3));
}

TEST(UnitPure, SyntacticCheckIsIncompleteLikeExample4)
{
    // f = y & (~y | x) == y & x.  Semantically y is positive pure (and
    // unit); the parity check sees an odd path through ~y and misses the
    // purity, while the clean direct path still yields positive unit.
    // This mirrors the incompleteness the paper demonstrates in Example 4.
    Aig aig;
    const AigEdge y = aig.variable(0);
    const AigEdge x = aig.variable(1);
    const AigEdge f = aig.mkAnd(y, aig.mkOr(~y, x));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_TRUE(contains(info.posUnit, 0));
    EXPECT_FALSE(contains(info.posPure, 0)); // missed although semantically pure
    // Semantic confirmation that y *is* positive pure: f[0/y] & ~f[1/y] == 0.
    Aig check;
    const std::uint64_t c0 = truthTable(aig, aig.cofactor(f, 0, false), 2);
    const std::uint64_t c1 = truthTable(aig, aig.cofactor(f, 0, true), 2);
    EXPECT_EQ(c0 & ~c1 & 0xf, 0u);
}

TEST(UnitPure, VariablesOutsideConeNotReported)
{
    Aig aig;
    (void)aig.variable(9); // exists in the manager but not in the cone
    const AigEdge f = aig.mkAnd(aig.variable(0), aig.variable(1));
    const UnitPureInfo info = aig.detectUnitPure(f);
    EXPECT_FALSE(contains(info.posUnit, 9));
    EXPECT_FALSE(contains(info.posPure, 9));
}

/// Soundness sweep: every syntactically detected unit/pure variable
/// satisfies the semantic Definition 5.
class UnitPureSoundness : public ::testing::TestWithParam<int> {};

TEST_P(UnitPureSoundness, DetectionIsSemanticallySound)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    Aig aig;
    const Var n = 5;
    std::vector<AigEdge> pool;
    for (Var v = 0; v < n; ++v) pool.push_back(aig.variable(v));
    for (int i = 0; i < 14; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        pool.push_back(rng.flip() ? aig.mkAnd(a, b) : aig.mkOr(a, b));
    }
    const AigEdge f = pool.back() ^ rng.flip();
    if (aig.isConstant(f)) return;

    const UnitPureInfo info = aig.detectUnitPure(f);
    const std::uint64_t mask = (1ull << (1u << n)) - 1; // all 32 assignments

    for (Var v : info.posUnit) {
        EXPECT_EQ(truthTable(aig, aig.cofactor(f, v, false), n) & mask, 0u)
            << "posUnit v" << v << " must make f[0/v] unsat";
    }
    for (Var v : info.negUnit) {
        EXPECT_EQ(truthTable(aig, aig.cofactor(f, v, true), n) & mask, 0u)
            << "negUnit v" << v << " must make f[1/v] unsat";
    }
    for (Var v : info.posPure) {
        const std::uint64_t c0 = truthTable(aig, aig.cofactor(f, v, false), n);
        const std::uint64_t c1 = truthTable(aig, aig.cofactor(f, v, true), n);
        EXPECT_EQ(c0 & ~c1 & mask, 0u) << "posPure v" << v << " must be monotone";
    }
    for (Var v : info.negPure) {
        const std::uint64_t c0 = truthTable(aig, aig.cofactor(f, v, false), n);
        const std::uint64_t c1 = truthTable(aig, aig.cofactor(f, v, true), n);
        EXPECT_EQ(c1 & ~c0 & mask, 0u) << "negPure v" << v << " must be antitone";
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitPureSoundness, ::testing::Range(0, 80));

} // namespace
} // namespace hqs
