// Tests for the ASCII AIGER (aag) reader/writer: hand-written files,
// round-trips preserving semantics, and error handling.
#include <gtest/gtest.h>

#include "src/aig/aiger.hpp"
#include "src/base/rng.hpp"

namespace hqs {
namespace {

std::uint64_t truthTable(const Aig& aig, AigEdge root, Var n)
{
    std::uint64_t tt = 0;
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        if (aig.evaluate(root, a)) tt |= 1ull << bits;
    }
    return tt;
}

TEST(Aiger, ReadHandWrittenAndGate)
{
    // Single AND of two inputs, output complemented (a NAND).
    const std::string text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
    Aig aig;
    const AigerFile f = readAigerString(text, aig);
    ASSERT_EQ(f.inputs.size(), 2u);
    ASSERT_EQ(f.outputs.size(), 1u);
    EXPECT_EQ(truthTable(aig, f.outputs[0], 2), 0b0111u); // NAND
}

TEST(Aiger, ReadConstantsAndPassThrough)
{
    // Outputs: constant true, constant false, input 0, ~input 0.
    const std::string text = "aag 1 1 0 4 0\n2\n1\n0\n2\n3\n";
    Aig aig;
    const AigerFile f = readAigerString(text, aig);
    ASSERT_EQ(f.outputs.size(), 4u);
    EXPECT_EQ(f.outputs[0], aig.constTrue());
    EXPECT_EQ(f.outputs[1], aig.constFalse());
    EXPECT_EQ(f.outputs[2], aig.variable(0));
    EXPECT_EQ(f.outputs[3], ~aig.variable(0));
}

TEST(Aiger, WriteThenReadPreservesFunctions)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge z = aig.variable(2);
    const AigEdge f1 = aig.mkXor(x, aig.mkAnd(y, z));
    const AigEdge f2 = ~aig.mkOr(x, ~z);
    const std::string text = toAigerString(aig, {f1, f2});

    Aig aig2;
    const AigerFile rf = readAigerString(text, aig2);
    ASSERT_EQ(rf.outputs.size(), 2u);
    // Inputs are renumbered 0..I-1 in support order (0,1,2 here — identity).
    EXPECT_EQ(truthTable(aig2, rf.outputs[0], 3), truthTable(aig, f1, 3));
    EXPECT_EQ(truthTable(aig2, rf.outputs[1], 3), truthTable(aig, f2, 3));
}

TEST(Aiger, WriteConstantOutput)
{
    Aig aig;
    const std::string text = toAigerString(aig, {aig.constTrue()});
    Aig aig2;
    const AigerFile rf = readAigerString(text, aig2);
    EXPECT_EQ(rf.outputs[0], aig2.constTrue());
}

TEST(Aiger, RoundTripRandomCones)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        Aig aig;
        const Var n = 5;
        std::vector<AigEdge> pool;
        for (Var v = 0; v < n; ++v) pool.push_back(aig.variable(v));
        for (int i = 0; i < 20; ++i) {
            const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
            const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
            pool.push_back(rng.flip() ? aig.mkAnd(a, b) : aig.mkOr(a, b));
        }
        const AigEdge f = pool.back() ^ rng.flip();
        // The writer renumbers inputs densely in support order; compare by
        // evaluating the reread function on dense assignments against the
        // original on the corresponding support assignment.
        const std::vector<Var> supp = aig.support(f);
        Aig reread;
        const AigerFile rf = readAigerString(toAigerString(aig, {f}), reread);
        const Var k = static_cast<Var>(supp.size());
        std::vector<bool> denseAssign(k), origAssign;
        for (std::uint64_t bits = 0; bits < (1ull << k); ++bits) {
            for (Var v = 0; v < k; ++v) denseAssign[v] = (bits >> v) & 1u;
            origAssign.assign(supp.empty() ? 0 : supp.back() + 1, false);
            for (std::size_t i = 0; i < supp.size(); ++i) origAssign[supp[i]] = denseAssign[i];
            EXPECT_EQ(reread.evaluate(rf.outputs[0], denseAssign),
                      aig.evaluate(f, origAssign))
                << "trial " << trial << " bits " << bits;
        }
    }
}

TEST(Aiger, RejectsMalformedFiles)
{
    Aig aig;
    EXPECT_THROW(readAigerString("agg 1 1 0 0 0\n2\n", aig), ParseError);
    EXPECT_THROW(readAigerString("aag 2 1 1 0 0\n2\n4 2\n", aig), ParseError); // latches
    EXPECT_THROW(readAigerString("aag 1 1 0 1 0\n3\n2\n", aig), ParseError);   // odd input
    EXPECT_THROW(readAigerString("aag 1 1 0 1 0\n2\n9\n", aig), ParseError);   // out of range
    EXPECT_THROW(readAigerString("aag 3 2 0 0 1\n2\n4\n6 8 2\n", aig), ParseError); // fwd ref
    EXPECT_THROW(readAigerString("aag 1 2 0 0 0\n2\n2\n", aig), ParseError); // dup input
}

} // namespace
} // namespace hqs
