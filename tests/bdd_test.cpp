// Tests for the ROBDD package: canonicity, Boolean operations,
// quantification, satCount, and agreement with the AIG representation and
// the QBF oracle.
#include <gtest/gtest.h>

#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"
#include "src/bdd/bdd.hpp"
#include "src/qbf/bdd_qbf_solver.hpp"
#include "src/qbf/qbf_oracle.hpp"

namespace hqs {
namespace {

std::uint64_t truthTable(const Bdd& bdd, BddRef f, Var n)
{
    std::uint64_t tt = 0;
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        if (bdd.evaluate(f, a)) tt |= 1ull << bits;
    }
    return tt;
}

TEST(Bdd, Terminals)
{
    Bdd bdd;
    EXPECT_TRUE(bdd.isConstant(bdd.constTrue()));
    EXPECT_TRUE(bdd.isConstant(bdd.constFalse()));
    EXPECT_TRUE(bdd.constantValue(bdd.constTrue()));
    EXPECT_FALSE(bdd.constantValue(bdd.constFalse()));
    EXPECT_NE(bdd.constTrue(), bdd.constFalse());
}

TEST(Bdd, CanonicityOfEquivalentFormulas)
{
    Bdd bdd;
    const BddRef x = bdd.variable(0);
    const BddRef y = bdd.variable(1);
    // De Morgan: ~(x & y) == ~x | ~y — canonical form must be identical.
    EXPECT_EQ(bdd.mkNot(bdd.mkAnd(x, y)), bdd.mkOr(bdd.mkNot(x), bdd.mkNot(y)));
    // Double negation.
    EXPECT_EQ(bdd.mkNot(bdd.mkNot(x)), x);
    // x XOR x == false.
    EXPECT_EQ(bdd.mkXor(x, x), bdd.constFalse());
    // Distribution: x&(y|x) == x.
    EXPECT_EQ(bdd.mkAnd(x, bdd.mkOr(y, x)), x);
}

TEST(Bdd, OperationSemantics)
{
    Bdd bdd;
    const BddRef x = bdd.variable(0);
    const BddRef y = bdd.variable(1);
    EXPECT_EQ(truthTable(bdd, bdd.mkAnd(x, y), 2), 0b1000u);
    EXPECT_EQ(truthTable(bdd, bdd.mkOr(x, y), 2), 0b1110u);
    EXPECT_EQ(truthTable(bdd, bdd.mkXor(x, y), 2), 0b0110u);
    EXPECT_EQ(truthTable(bdd, bdd.mkEquiv(x, y), 2), 0b1001u);
    EXPECT_EQ(truthTable(bdd, bdd.mkImplies(x, y), 2), 0b1101u);
    const BddRef z = bdd.variable(2);
    const std::uint64_t tt = truthTable(bdd, bdd.mkIte(x, y, z), 3);
    for (unsigned bits = 0; bits < 8; ++bits) {
        const bool xv = bits & 1, yv = bits & 2, zv = bits & 4;
        EXPECT_EQ((tt >> bits) & 1u, static_cast<std::uint64_t>(xv ? yv : zv));
    }
}

TEST(Bdd, CofactorAndQuantification)
{
    Bdd bdd;
    const BddRef x = bdd.variable(0);
    const BddRef y = bdd.variable(1);
    const BddRef f = bdd.mkEquiv(x, y);
    EXPECT_EQ(bdd.cofactor(f, 0, true), y);
    EXPECT_EQ(bdd.cofactor(f, 0, false), bdd.mkNot(y));
    EXPECT_EQ(bdd.existsVar(f, 0), bdd.constTrue());
    EXPECT_EQ(bdd.forallVar(f, 0), bdd.constFalse());
    // Quantifying an absent variable is the identity.
    EXPECT_EQ(bdd.existsVar(f, 7), f);
}

TEST(Bdd, FromCnfMatchesEvaluation)
{
    Cnf cnf;
    cnf.addClause({Lit::pos(0), Lit::neg(1)});
    cnf.addClause({Lit::pos(1), Lit::pos(2)});
    Bdd bdd;
    const BddRef f = bdd.fromCnf(cnf);
    std::vector<bool> a(3);
    for (unsigned bits = 0; bits < 8; ++bits) {
        for (Var v = 0; v < 3; ++v) a[v] = (bits >> v) & 1u;
        EXPECT_EQ(bdd.evaluate(f, a), cnf.evaluate(a));
    }
}

TEST(Bdd, SupportAndConeSize)
{
    Bdd bdd;
    const BddRef f = bdd.mkAnd(bdd.variable(3), bdd.mkOr(bdd.variable(1), bdd.variable(5)));
    EXPECT_EQ(bdd.support(f), (std::vector<Var>{1, 3, 5}));
    EXPECT_GE(bdd.coneSize(f), 3u);
    EXPECT_EQ(bdd.coneSize(bdd.constTrue()), 0u);
}

TEST(Bdd, SatCount)
{
    Bdd bdd;
    const BddRef x = bdd.variable(0);
    const BddRef y = bdd.variable(1);
    EXPECT_DOUBLE_EQ(bdd.satCount(bdd.mkAnd(x, y), 2), 1.0);
    EXPECT_DOUBLE_EQ(bdd.satCount(bdd.mkOr(x, y), 2), 3.0);
    EXPECT_DOUBLE_EQ(bdd.satCount(bdd.mkXor(x, y), 2), 2.0);
    EXPECT_DOUBLE_EQ(bdd.satCount(bdd.constTrue(), 3), 8.0);
    EXPECT_DOUBLE_EQ(bdd.satCount(bdd.constFalse(), 3), 0.0);
    // Extra variables double the count.
    EXPECT_DOUBLE_EQ(bdd.satCount(x, 4), 8.0);
}

/// Property sweep: random expressions agree between BDD and AIG managers.
class BddAigAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BddAigAgreement, SameTruthTables)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 3);
    Bdd bdd;
    Aig aig;
    const Var n = 6;
    std::vector<BddRef> bpool;
    std::vector<AigEdge> apool;
    for (Var v = 0; v < n; ++v) {
        bpool.push_back(bdd.variable(v));
        apool.push_back(aig.variable(v));
    }
    for (int i = 0; i < 20; ++i) {
        const std::size_t ia = rng.below(bpool.size());
        const std::size_t ib = rng.below(bpool.size());
        const bool na = rng.flip(), nb = rng.flip();
        const BddRef ba = na ? bdd.mkNot(bpool[ia]) : bpool[ia];
        const BddRef bb = nb ? bdd.mkNot(bpool[ib]) : bpool[ib];
        const AigEdge aa = apool[ia] ^ na;
        const AigEdge ab = apool[ib] ^ nb;
        switch (rng.below(3)) {
            case 0:
                bpool.push_back(bdd.mkAnd(ba, bb));
                apool.push_back(aig.mkAnd(aa, ab));
                break;
            case 1:
                bpool.push_back(bdd.mkOr(ba, bb));
                apool.push_back(aig.mkOr(aa, ab));
                break;
            default:
                bpool.push_back(bdd.mkXor(ba, bb));
                apool.push_back(aig.mkXor(aa, ab));
                break;
        }
    }
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        ASSERT_EQ(bdd.evaluate(bpool.back(), a), aig.evaluate(apool.back(), a))
            << "assignment " << bits;
    }

    // Cofactor agreement on a random variable.
    const Var cv = static_cast<Var>(rng.below(n));
    const BddRef bc = bdd.cofactor(bpool.back(), cv, true);
    const AigEdge ac = aig.cofactor(apool.back(), cv, true);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        ASSERT_EQ(bdd.evaluate(bc, a), aig.evaluate(ac, a));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BddAigAgreement, ::testing::Range(0, 40));

TEST(BddFromAig, ConvertsConesFaithfully)
{
    Rng rng(55);
    for (int trial = 0; trial < 10; ++trial) {
        Aig aig;
        Bdd bdd;
        const Var n = 5;
        std::vector<AigEdge> pool;
        for (Var v = 0; v < n; ++v) pool.push_back(aig.variable(v));
        for (int i = 0; i < 15; ++i) {
            const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
            const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
            pool.push_back(rng.flip() ? aig.mkAnd(a, b) : aig.mkOr(a, b));
        }
        const AigEdge f = pool.back() ^ rng.flip();
        const BddRef g = bddFromAig(bdd, aig, f);
        std::vector<bool> a(n);
        for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
            for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
            ASSERT_EQ(bdd.evaluate(g, a), aig.evaluate(f, a)) << trial << ":" << bits;
        }
    }
}

TEST(BddFromAig, ConstantsAndInputs)
{
    Aig aig;
    Bdd bdd;
    EXPECT_EQ(bddFromAig(bdd, aig, aig.constTrue()), bdd.constTrue());
    EXPECT_EQ(bddFromAig(bdd, aig, aig.constFalse()), bdd.constFalse());
    EXPECT_EQ(bddFromAig(bdd, aig, aig.variable(3)), bdd.variable(3));
    EXPECT_EQ(bddFromAig(bdd, aig, ~aig.variable(3)), bdd.mkNot(bdd.variable(3)));
}

// ----- BDD QBF solver --------------------------------------------------------

class BddQbfAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BddQbfAgreement, MatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 419 + 23);
    const Var n = 5 + static_cast<Var>(rng.below(4));
    QbfProblem q;
    q.matrix.ensureVars(n);
    const int m = static_cast<int>(n) * 2 + static_cast<int>(rng.below(2 * n));
    for (int c = 0; c < m; ++c) {
        Clause cl;
        for (int j = 0; j < 2 + static_cast<int>(rng.below(2)); ++j) {
            cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        }
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v) {
        q.prefix.addVar(rng.flip() ? QuantKind::Forall : QuantKind::Exists, v);
    }
    BddQbfSolver solver;
    const SolveResult r = solver.solve(q.matrix, q.prefix);
    ASSERT_TRUE(isConclusive(r));
    EXPECT_EQ(r == SolveResult::Sat, bruteForceQbf(q));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BddQbfAgreement, ::testing::Range(0, 50));

TEST(BddQbfSolver, ResourceLimits)
{
    Rng rng(3);
    QbfProblem q;
    const Var n = 24;
    q.matrix.ensureVars(n);
    for (int c = 0; c < 110; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v)
        q.prefix.addVar(v % 2 ? QuantKind::Exists : QuantKind::Forall, v);

    BddQbfOptions opts;
    opts.deadline = Deadline::in(1e-9);
    BddQbfSolver timed(opts);
    const SolveResult r = timed.solve(q.matrix, q.prefix);
    EXPECT_TRUE(r == SolveResult::Timeout || isConclusive(r));

    BddQbfOptions memOpts;
    memOpts.nodeLimit = 4;
    BddQbfSolver mem(memOpts);
    const SolveResult r2 = mem.solve(q.matrix, q.prefix);
    EXPECT_TRUE(r2 == SolveResult::Memout || isConclusive(r2));
}

} // namespace
} // namespace hqs
