// Tests for Skolem certificates: extraction by expansion, independent
// verification, the iDQ solver's certificates, and black-box synthesis for
// PEC instances.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/skolem.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/box_synthesis.hpp"

namespace hqs {
namespace {

DqbfFormula randomDqbf(Rng& rng, unsigned numUniv, unsigned numExist, unsigned numClauses)
{
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < numUniv; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < numExist; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        for (unsigned j = 0; j < 2 + rng.below(2); ++j)
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

TEST(SkolemFunction, EvaluateIndexesByDependencyOrder)
{
    SkolemFunction fn;
    fn.var = 9;
    fn.deps = {2, 5};
    fn.table = {false, true, false, true}; // equals value of var 2
    std::vector<bool> assignment(6, false);
    EXPECT_FALSE(fn.evaluate(assignment));
    assignment[2] = true;
    EXPECT_TRUE(fn.evaluate(assignment));
    assignment[5] = true;
    EXPECT_TRUE(fn.evaluate(assignment));
    assignment[2] = false;
    EXPECT_FALSE(fn.evaluate(assignment));
}

TEST(Skolem, CopycatCertificateIsIdentity)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    const auto cert = extractSkolemByExpansion(f);
    ASSERT_TRUE(cert.has_value());
    const SkolemFunction* fn = cert->functionFor(y);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->table, (std::vector<bool>{false, true})); // s_y(x) = x
    EXPECT_TRUE(verifySkolemCertificate(f, *cert));
}

TEST(Skolem, UnsatFormulaYieldsNoCertificate)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    EXPECT_FALSE(extractSkolemByExpansion(f).has_value());
}

TEST(Skolem, VerifierRejectsWrongTables)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});

    SkolemCertificate bad;
    bad.functions.push_back(SkolemFunction{y, {x}, {true, false}}); // s_y = ~x
    EXPECT_FALSE(verifySkolemCertificate(f, bad));

    SkolemCertificate incomplete; // misses y entirely
    EXPECT_FALSE(verifySkolemCertificate(f, incomplete));

    SkolemCertificate wrongDeps;
    wrongDeps.functions.push_back(SkolemFunction{y, {}, {true}});
    EXPECT_FALSE(verifySkolemCertificate(f, wrongDeps));
}

TEST(Skolem, VerifierAcceptsConstantMatrixCertificates)
{
    DqbfFormula f;
    f.addUniversal();
    const Var y = f.addExistential({});
    // Empty matrix: any function works.
    SkolemCertificate cert;
    cert.functions.push_back(SkolemFunction{y, {}, {false}});
    EXPECT_TRUE(verifySkolemCertificate(f, cert));
}

class SkolemExtractionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkolemExtractionSweep, ExtractedCertificatesVerify)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 887 + 31);
    DqbfFormula f = randomDqbf(rng, 3, 3, 5 + static_cast<unsigned>(rng.below(9)));
    const SolveResult expected = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(expected));

    const auto cert = extractSkolemByExpansion(f);
    EXPECT_EQ(cert.has_value(), expected == SolveResult::Sat);
    if (cert) {
        EXPECT_TRUE(verifySkolemCertificate(f, *cert));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkolemExtractionSweep, ::testing::Range(0, 60));

class IdqCertificateSweep : public ::testing::TestWithParam<int> {};

TEST_P(IdqCertificateSweep, SatAnswersCarryValidCertificates)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1543 + 11);
    DqbfFormula f = randomDqbf(rng, 3, 3, 4 + static_cast<unsigned>(rng.below(8)));
    IdqSolver solver;
    const SolveResult r = solver.solve(f);
    ASSERT_TRUE(isConclusive(r));
    if (r == SolveResult::Sat) {
        ASSERT_TRUE(solver.certificate().has_value());
        EXPECT_TRUE(verifySkolemCertificate(f, *solver.certificate()));
    } else {
        EXPECT_FALSE(solver.certificate().has_value());
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdqCertificateSweep, ::testing::Range(0, 60));

// ----- black-box synthesis ----------------------------------------------------

TEST(BoxSynthesis, RealizableAdderSynthesizesFullAdderCells)
{
    const PecInstance inst = makeInstance(Family::Adder, 3, true);
    const auto boxes = synthesizeBoxes(inst);
    ASSERT_TRUE(boxes.has_value());
    EXPECT_TRUE(boxesRealizeSpec(inst, *boxes));
    // Only the FIRST box's sum is uniquely determined (its carry-in is the
    // true ripple carry and its sum is a primary output): it must be
    // a XOR b XOR cin (index bits: 0=a, 1=b, 2=cin).  The second box's
    // functions have don't-care freedom — e.g. the solver may pick an
    // inverted carry convention between the first box's carry output and
    // the second box, as long as the pair is consistent (which
    // boxesRealizeSpec above already verified).
    const std::vector<bool>& sum = boxes->tables[0][0];
    for (unsigned idx = 0; idx < 8; ++idx) {
        const bool a = idx & 1, b = idx & 2, cin = idx & 4;
        EXPECT_EQ(sum[idx], (a != b) != cin) << "index " << idx;
    }
}

TEST(BoxSynthesis, UnrealizableInstancesYieldNothing)
{
    EXPECT_FALSE(synthesizeBoxes(makeInstance(Family::Adder, 3, false)).has_value());
    EXPECT_FALSE(synthesizeBoxes(makeInstance(Family::PecXor, 4, false)).has_value());
}

class BoxSynthesisAllFamilies : public ::testing::TestWithParam<int> {};

TEST_P(BoxSynthesisAllFamilies, SynthesizedBoxesRealizeEveryFamily)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(GetParam())];
    const PecInstance inst = makeInstance(fam, 3, true);
    if (encodePec(inst).formula.universals().size() > 16) {
        GTEST_SKIP() << "expansion too large for the extraction oracle";
    }
    const auto boxes = synthesizeBoxes(inst, Deadline::in(60));
    ASSERT_TRUE(boxes.has_value()) << inst.name;
    EXPECT_TRUE(boxesRealizeSpec(inst, *boxes)) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BoxSynthesisAllFamilies, ::testing::Range(0, 7));

TEST(BoxSynthesis, CertificateFromIdqSolverAlsoSynthesizes)
{
    const PecInstance inst = makeInstance(Family::Bitcell, 3, true);
    PecEncoding enc = encodePec(inst);
    IdqOptions opts;
    opts.deadline = Deadline::in(60);
    IdqSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    if (r != SolveResult::Sat) GTEST_SKIP() << "baseline timed out: " << r;
    ASSERT_TRUE(solver.certificate().has_value());
    const auto boxes = boxesFromCertificate(enc, *solver.certificate());
    ASSERT_TRUE(boxes.has_value());
    EXPECT_TRUE(boxesRealizeSpec(inst, *boxes));
}

} // namespace
} // namespace hqs
