# Build-matrix check for -DHQS_OBS=OFF, run as a ctest entry (see
# tests/CMakeLists.txt): configure the tree with the observability macros
# compiled out into a persistent nested build directory, build a
# representative slice (the CLI driver plus the core solver tests), and run
# the solver tests.  The nested directory is reused across runs, so after
# the first configure+build the check is an incremental no-op.
#
# Usage: cmake -DSOURCE_DIR=<repo> -DBUILD_DIR=<dir> -P obs_off_matrix.cmake
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR "obs_off_matrix.cmake needs -DSOURCE_DIR and -DBUILD_DIR")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR} -DHQS_OBS=OFF
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "HQS_OBS=OFF configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
          --target dqbf_solve hqs_solver_test obs_test
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "HQS_OBS=OFF build failed")
endif()

# Tier-1 representative: the core solver suite must pass with the macros
# compiled out, and the obs suite itself must pass against the no-op macros.
execute_process(COMMAND ${BUILD_DIR}/tests/hqs_solver_test RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hqs_solver_test failed under HQS_OBS=OFF")
endif()

execute_process(COMMAND ${BUILD_DIR}/tests/obs_test RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_test failed under HQS_OBS=OFF")
endif()
