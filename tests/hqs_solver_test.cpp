// End-to-end tests for the HQS solver: paper examples, option matrix, and
// randomized agreement with the expansion oracle under every configuration.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"

namespace hqs {
namespace {

DqbfFormula randomDqbf(Rng& rng, unsigned numUniv, unsigned numExist, unsigned numClauses)
{
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < numUniv; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < numExist; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        const unsigned k = 2 + static_cast<unsigned>(rng.below(2));
        for (unsigned j = 0; j < k; ++j) cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

TEST(HqsSolver, CopycatWithDependencyIsSat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
}

TEST(HqsSolver, CopycatWithoutDependencyIsUnsat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
}

TEST(HqsSolver, CrossCopycatNeedsHenkinQuantifiers)
{
    // forall x1 x2 exists y1(x2) y2(x1): y1==x2 & y2==x1 — genuinely
    // non-linear dependencies; SAT.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x2});
    const Var y2 = f.addExistential({x1});
    f.matrix().addClause({Lit::neg(x2), Lit::pos(y1)});
    f.matrix().addClause({Lit::pos(x2), Lit::neg(y1)});
    f.matrix().addClause({Lit::neg(x1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(y2)});
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
}

TEST(HqsSolver, EmptyMatrixIsSat)
{
    DqbfFormula f;
    f.addUniversal();
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_EQ(solver.stats().decidedBy, "preprocess");
}

TEST(HqsSolver, PlainSatFormulaWorks)
{
    // No universals at all: DQBF degenerates to SAT.
    DqbfFormula f;
    const Var a = f.addExistential({});
    const Var b = f.addExistential({});
    f.matrix().addClause({Lit::pos(a), Lit::pos(b)});
    f.matrix().addClause({Lit::neg(a), Lit::pos(b)});
    f.matrix().addClause({Lit::neg(b), Lit::pos(a)});
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
}

TEST(HqsSolver, QbfShapedInputGoesStraightToBackend)
{
    // Linear dependencies: no Theorem-1 elimination should happen.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::pos(x), Lit::pos(y)});
    f.matrix().addClause({Lit::neg(x), Lit::neg(y)});
    HqsOptions opts;
    opts.preprocess = false; // keep the matrix intact so the backend runs
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_EQ(solver.stats().universalsEliminated, 0u);
    EXPECT_EQ(solver.stats().selectedUniversals, 0u);
}

TEST(HqsSolver, NonLinearInputEliminatesSelectedUniversal)
{
    // Example-1 prefix with a matrix that stays undecided through
    // preprocessing: requires one Theorem-1 elimination.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x1});
    const Var y2 = f.addExistential({x2});
    // (y1 xor x1) | (y2 xor x2) is falsified only when both match; make it
    // richer: y1==x1 and y2==x2 (SAT with matching Skolems).
    f.matrix().addClause({Lit::neg(x1), Lit::pos(y1)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(y1)});
    f.matrix().addClause({Lit::neg(x2), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(x2), Lit::neg(y2)});
    HqsOptions opts;
    opts.preprocess = false;
    opts.unitPure = false;
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_EQ(solver.stats().selectedUniversals, 1u);
    EXPECT_EQ(solver.stats().universalsEliminated, 1u);
    EXPECT_GT(solver.stats().copiesIntroduced, 0u);
}

TEST(HqsSolver, SatProbeCatchesPropositionalUnsat)
{
    // A matrix that is propositionally unsatisfiable (no Skolem can help):
    // the Section-IV SAT probe must refute it without any elimination.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y1 = f.addExistential({x});
    const Var y2 = f.addExistential({});
    f.matrix().addClause({Lit::pos(y1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(y1), Lit::neg(y2)});
    f.matrix().addClause({Lit::neg(y1), Lit::pos(y2), Lit::pos(x)});
    f.matrix().addClause({Lit::neg(y1), Lit::neg(y2), Lit::pos(x)});
    f.matrix().addClause({Lit::neg(y1), Lit::pos(y2), Lit::neg(x)});
    f.matrix().addClause({Lit::neg(y1), Lit::neg(y2), Lit::neg(x)});
    HqsOptions opts;
    opts.preprocess = false; // let the probe do the work
    opts.unitPure = false;
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
    EXPECT_EQ(solver.stats().decidedBy, "sat-probe");

    // With the probe disabled the solver still gets the right answer, just
    // through elimination.
    opts.satProbe = false;
    HqsSolver noProbe(opts);
    EXPECT_EQ(noProbe.solve(f), SolveResult::Unsat);
    EXPECT_NE(noProbe.stats().decidedBy, "sat-probe");
}

TEST(HqsSolver, TimeoutIsReported)
{
    Rng rng(77);
    DqbfFormula f = randomDqbf(rng, 10, 10, 60);
    HqsOptions opts;
    opts.deadline = Deadline::in(1e-9);
    HqsSolver solver(opts);
    const SolveResult r = solver.solve(f);
    EXPECT_TRUE(r == SolveResult::Timeout || isConclusive(r));
}

TEST(HqsSolver, NodeLimitGivesMemout)
{
    Rng rng(78);
    DqbfFormula f = randomDqbf(rng, 12, 10, 80);
    HqsOptions opts;
    opts.nodeLimit = 5;
    opts.fraig = false;
    opts.preprocess = false;
    opts.unitPure = false;
    HqsSolver solver(opts);
    const SolveResult r = solver.solve(f);
    EXPECT_TRUE(r == SolveResult::Memout || isConclusive(r));
}

TEST(HqsSolver, StatsTimingIsPopulated)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::pos(x), Lit::pos(y)});
    HqsSolver solver;
    solver.solve(f);
    EXPECT_GE(solver.stats().totalMilliseconds, 0.0);
    EXPECT_FALSE(solver.stats().decidedBy.empty());
}

// ----- randomized agreement across the full option matrix -------------------

struct HqsConfig {
    const char* name;
    HqsOptions options;
};

HqsOptions makeOptions(bool pre, bool up, HqsOptions::Selection sel, HqsOptions::Backend be)
{
    HqsOptions o;
    o.preprocess = pre;
    o.gateDetection = pre;
    o.unitPure = up;
    o.selection = sel;
    o.backend = be;
    return o;
}

class HqsAgreement : public ::testing::TestWithParam<int> {};

TEST_P(HqsAgreement, MatchesExpansionOracleUnderAllConfigurations)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 3);
    const unsigned nu = 2 + static_cast<unsigned>(rng.below(3)); // 2..4
    const unsigned ne = 2 + static_cast<unsigned>(rng.below(3)); // 2..4
    const unsigned nc = 4 + static_cast<unsigned>(rng.below(10));
    DqbfFormula f = randomDqbf(rng, nu, ne, nc);

    const SolveResult expected = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(expected));

    const HqsConfig configs[] = {
        {"default", makeOptions(true, true, HqsOptions::Selection::MaxSat,
                                HqsOptions::Backend::AigElimination)},
        {"no-preprocess", makeOptions(false, true, HqsOptions::Selection::MaxSat,
                                      HqsOptions::Backend::AigElimination)},
        {"no-unitpure", makeOptions(true, false, HqsOptions::Selection::MaxSat,
                                    HqsOptions::Backend::AigElimination)},
        {"bare", makeOptions(false, false, HqsOptions::Selection::MaxSat,
                             HqsOptions::Backend::AigElimination)},
        {"greedy", makeOptions(true, true, HqsOptions::Selection::Greedy,
                               HqsOptions::Backend::AigElimination)},
        {"eliminate-all", makeOptions(true, true, HqsOptions::Selection::All,
                                      HqsOptions::Backend::AigElimination)},
        {"search-backend", makeOptions(true, true, HqsOptions::Selection::MaxSat,
                                       HqsOptions::Backend::Search)},
        {"bdd-backend", makeOptions(true, true, HqsOptions::Selection::MaxSat,
                                    HqsOptions::Backend::BddElimination)},
        {"bdd-backend-bare", makeOptions(false, false, HqsOptions::Selection::MaxSat,
                                         HqsOptions::Backend::BddElimination)},
    };
    for (const HqsConfig& cfg : configs) {
        HqsSolver solver(cfg.options);
        EXPECT_EQ(solver.solve(f), expected) << "config: " << cfg.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HqsAgreement, ::testing::Range(0, 80));

/// Larger instances: HQS (default) vs expansion oracle only.
class HqsAgreementLarger : public ::testing::TestWithParam<int> {};

TEST_P(HqsAgreementLarger, MatchesExpansionOracle)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1201 + 9);
    DqbfFormula f = randomDqbf(rng, 6, 6, 20 + static_cast<unsigned>(rng.below(15)));
    const SolveResult expected = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(expected));
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HqsAgreementLarger, ::testing::Range(0, 40));

} // namespace
} // namespace hqs
