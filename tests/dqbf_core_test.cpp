// Tests for the DQBF core: formula representation, dependency graphs and
// elimination-set selection, CNF preprocessing, and the reference oracles.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/base/rng.hpp"
#include "src/dqbf/dependency_graph.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/preprocess.hpp"

namespace hqs {
namespace {

/// The paper's Example 1: forall x1 x2 exists y1(x1) y2(x2).
DqbfFormula example1Prefix()
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    f.addExistential({x1});
    f.addExistential({x2});
    return f;
}

/// Random DQBF generator used across the property sweeps.
DqbfFormula randomDqbf(Rng& rng, unsigned numUniv, unsigned numExist, unsigned numClauses)
{
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < numUniv; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < numExist; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        const unsigned k = 2 + static_cast<unsigned>(rng.below(2));
        for (unsigned j = 0; j < k; ++j) {
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        }
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

// ----- DqbfFormula -----------------------------------------------------------

TEST(DqbfFormula, PrefixConstruction)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    EXPECT_TRUE(f.isUniversal(x));
    EXPECT_TRUE(f.isExistential(y));
    EXPECT_EQ(f.dependencies(y), (std::vector<Var>{x}));
    EXPECT_TRUE(f.dependsOn(y, x));
    EXPECT_EQ(f.dependersOf(x), (std::vector<Var>{y}));
    EXPECT_TRUE(f.dependsOnAllUniversals(y));
}

TEST(DqbfFormula, RemoveUniversalUpdatesDependencySets)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y = f.addExistential({x1, x2});
    f.removeUniversal(x1);
    EXPECT_FALSE(f.isUniversal(x1));
    EXPECT_EQ(f.dependencies(y), (std::vector<Var>{x2}));
    EXPECT_TRUE(f.dependsOnAllUniversals(y));
}

TEST(DqbfFormula, FromParsedQdimacsBlocksGiveLinearDeps)
{
    // forall x1. exists y1. forall x2. exists y2 — y1 sees {x1}, y2 sees both.
    const auto parsed =
        parseDqdimacsString("p cnf 4 1\na 1 0\ne 2 0\na 3 0\ne 4 0\n1 2 3 4 0\n");
    const DqbfFormula f = DqbfFormula::fromParsed(parsed);
    EXPECT_EQ(f.dependencies(1), (std::vector<Var>{0}));
    EXPECT_EQ(f.dependencies(3), (std::vector<Var>{0, 2}));
}

TEST(DqbfFormula, FromParsedHenkinAndFreeVars)
{
    const auto parsed = parseDqdimacsString("p cnf 4 1\na 1 2 0\nd 3 2 0\n1 3 4 0\n");
    const DqbfFormula f = DqbfFormula::fromParsed(parsed);
    EXPECT_EQ(f.dependencies(2), (std::vector<Var>{1}));
    // Var 4 (index 3) is free -> existential with empty deps.
    EXPECT_TRUE(f.isExistential(3));
    EXPECT_TRUE(f.dependencies(3).empty());
}

TEST(DqbfFormula, ToParsedRoundTrip)
{
    DqbfFormula f = example1Prefix();
    f.matrix().addClause({Lit::pos(0), Lit::pos(2)});
    const DqbfFormula g = DqbfFormula::fromParsed(f.toParsed());
    EXPECT_EQ(g.universals(), f.universals());
    EXPECT_EQ(g.existentials(), f.existentials());
    for (Var y : f.existentials()) EXPECT_EQ(g.dependencies(y), f.dependencies(y));
    EXPECT_EQ(g.matrix().numClauses(), f.matrix().numClauses());
}

TEST(DqbfFormula, ValidateAcceptsWellFormedFormulas)
{
    DqbfFormula f = example1Prefix();
    f.matrix().addClause({Lit::pos(0), Lit::pos(2)});
    EXPECT_TRUE(validate(f).empty());
}

TEST(DqbfFormula, ValidateFlagsUnquantifiedMatrixVars)
{
    DqbfFormula f;
    f.addUniversal();
    f.matrix().addClause({Lit::pos(0), Lit::pos(5)}); // v5 never quantified
    const auto problems = validate(f);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("v5"), std::string::npos);
}

TEST(DqbfFormula, ValidateFlagsNonUniversalDependencies)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y1 = f.addExistential({x});
    const Var y2 = f.addExistential({x, y1}); // y1 is existential: invalid dep
    (void)y2;
    const auto problems = validate(f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("not a universal"), std::string::npos);
}

// ----- dependency graph -----------------------------------------------------

TEST(DependencyGraph, Example1IsCyclic)
{
    const DqbfFormula f = example1Prefix();
    EXPECT_FALSE(hasEquivalentQbfPrefix(f));
    const auto pairs = incomparablePairs(f);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0], (std::pair<Var, Var>{2, 3}));
}

TEST(DependencyGraph, LinearDepsAreAcyclic)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    f.addExistential({x1});
    f.addExistential({x1, x2});
    EXPECT_TRUE(hasEquivalentQbfPrefix(f));
}

TEST(DependencyGraph, EqualDepsAreAcyclic)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    f.addExistential({x});
    f.addExistential({x});
    EXPECT_TRUE(hasEquivalentQbfPrefix(f));
}

TEST(DependencyGraph, LinearizeBuildsTheoremThreePrefix)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var x3 = f.addUniversal();
    const Var y1 = f.addExistential({x1});
    const Var y2 = f.addExistential({x1, x2});
    const QbfPrefix p = linearizePrefix(f);
    // Expected: forall x1 exists y1 forall x2 exists y2 forall x3.
    ASSERT_EQ(p.blocks().size(), 5u);
    EXPECT_EQ(p.blocks()[0].kind, QuantKind::Forall);
    EXPECT_EQ(p.blocks()[0].vars, (std::vector<Var>{x1}));
    EXPECT_EQ(p.blocks()[1].vars, (std::vector<Var>{y1}));
    EXPECT_EQ(p.blocks()[2].vars, (std::vector<Var>{x2}));
    EXPECT_EQ(p.blocks()[3].vars, (std::vector<Var>{y2}));
    EXPECT_EQ(p.blocks()[4].vars, (std::vector<Var>{x3}));
}

TEST(DependencyGraph, LinearizeEmptyDepsFirst)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y0 = f.addExistential({});
    const Var y1 = f.addExistential({x});
    const QbfPrefix p = linearizePrefix(f);
    ASSERT_GE(p.blocks().size(), 3u);
    EXPECT_EQ(p.blocks()[0].kind, QuantKind::Exists);
    EXPECT_EQ(p.blocks()[0].vars, (std::vector<Var>{y0}));
    EXPECT_EQ(p.blocks()[1].vars, (std::vector<Var>{x}));
    EXPECT_EQ(p.blocks()[2].vars, (std::vector<Var>{y1}));
}

TEST(DependencyGraph, MaxSatSelectionOnExample1IsSingleton)
{
    const DqbfFormula f = example1Prefix();
    const auto set = selectEliminationSetMaxSat(f);
    ASSERT_TRUE(set.has_value());
    EXPECT_EQ(set->size(), 1u); // eliminating x1 or x2 suffices
}

TEST(DependencyGraph, MaxSatSelectionEmptyWhenAcyclic)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    f.addExistential({x});
    const auto set = selectEliminationSetMaxSat(f);
    ASSERT_TRUE(set.has_value());
    EXPECT_TRUE(set->empty());
}

/// Applying the selected set must linearize the formula, and the set must be
/// minimum (checked against exhaustive search on small instances).
class MaxSatSelectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxSatSelectionSweep, SelectionIsLinearizingAndMinimum)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 2);
    DqbfFormula f = randomDqbf(rng, 4 + static_cast<unsigned>(rng.below(3)),
                               3 + static_cast<unsigned>(rng.below(3)), 0);
    const auto set = selectEliminationSetMaxSat(f);
    ASSERT_TRUE(set.has_value());

    auto linearizesAfterRemoving = [&](const std::vector<Var>& remove) {
        DqbfFormula g = f; // copy
        for (Var x : remove) g.removeUniversal(x);
        return hasEquivalentQbfPrefix(g);
    };
    EXPECT_TRUE(linearizesAfterRemoving(*set));

    // Exhaustive minimality check.
    const auto& xs = f.universals();
    std::size_t best = xs.size();
    for (std::uint64_t bits = 0; bits < (1ull << xs.size()); ++bits) {
        std::vector<Var> remove;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if ((bits >> i) & 1u) remove.push_back(xs[i]);
        }
        if (remove.size() < best && linearizesAfterRemoving(remove)) best = remove.size();
    }
    EXPECT_EQ(set->size(), best);

    // Greedy must also linearize (though not necessarily minimally).
    EXPECT_TRUE(linearizesAfterRemoving(selectEliminationSetGreedy(f)));
    EXPECT_GE(selectEliminationSetGreedy(f).size(), best);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxSatSelectionSweep, ::testing::Range(0, 30));

TEST(DependencyGraph, OrderByIntroducedCopies)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    f.addExistential({x1});
    f.addExistential({x1, x2});
    f.addExistential({x1});
    // |E_x1| = 3, |E_x2| = 1: x2 must come first.
    const auto ordered = orderEliminationSet(f, {x1, x2});
    EXPECT_EQ(ordered, (std::vector<Var>{x2, x1}));
}

// ----- oracles ---------------------------------------------------------------

TEST(DqbfOracle, PaperStyleCopycatIsSat)
{
    // forall x1 exists y1(x1): y1 == x1.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    EXPECT_TRUE(bruteForceDqbf(f));
    EXPECT_EQ(expansionDqbf(f), SolveResult::Sat);
}

TEST(DqbfOracle, CopycatWithoutDependencyIsUnsat)
{
    // forall x1 exists y1(empty): y1 == x1 — y1 cannot see x1.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    EXPECT_FALSE(bruteForceDqbf(f));
    EXPECT_EQ(expansionDqbf(f), SolveResult::Unsat);
}

TEST(DqbfOracle, CrossDependencyNeedsHenkin)
{
    // forall x1 x2 exists y1(x2) y2(x1): (y1==x2) & (y2==x1) — SAT, but any
    // linearization of the *swapped* variant (y1 sees x1 only, must equal
    // x2) is UNSAT.
    DqbfFormula sat;
    {
        const Var x1 = sat.addUniversal();
        const Var x2 = sat.addUniversal();
        const Var y1 = sat.addExistential({x2});
        const Var y2 = sat.addExistential({x1});
        sat.matrix().addClause({Lit::neg(x2), Lit::pos(y1)});
        sat.matrix().addClause({Lit::pos(x2), Lit::neg(y1)});
        sat.matrix().addClause({Lit::neg(x1), Lit::pos(y2)});
        sat.matrix().addClause({Lit::pos(x1), Lit::neg(y2)});
    }
    EXPECT_TRUE(bruteForceDqbf(sat));
    EXPECT_EQ(expansionDqbf(sat), SolveResult::Sat);

    DqbfFormula unsat;
    {
        const Var x1 = unsat.addUniversal();
        const Var x2 = unsat.addUniversal();
        const Var y1 = unsat.addExistential({x1}); // wrong dependency
        unsat.matrix().addClause({Lit::neg(x2), Lit::pos(y1)});
        unsat.matrix().addClause({Lit::pos(x2), Lit::neg(y1)});
    }
    EXPECT_FALSE(bruteForceDqbf(unsat));
    EXPECT_EQ(expansionDqbf(unsat), SolveResult::Unsat);
}

class OracleAgreement : public ::testing::TestWithParam<int> {};

TEST_P(OracleAgreement, BruteForceMatchesExpansion)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 29);
    // Keep the Skolem enumeration space tiny: 2 universals, <=3 existentials.
    DqbfFormula f = randomDqbf(rng, 2, 2 + static_cast<unsigned>(rng.below(2)),
                               4 + static_cast<unsigned>(rng.below(6)));
    const bool brute = bruteForceDqbf(f);
    const SolveResult exp = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(exp));
    EXPECT_EQ(brute, exp == SolveResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleAgreement, ::testing::Range(0, 50));

// ----- preprocessing ----------------------------------------------------------

TEST(Preprocess, ExistentialUnitIsAssigned)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    const auto res = preprocess(f);
    // y=1 satisfies everything: clause 2 gone (contains ~y? no — contains
    // ~y: removed literal; remaining (x) is a universal unit -> Unsat).
    // Actually (x | ~y) with y=1 shrinks to (x), universal unit: Unsat.
    EXPECT_EQ(res.decided, SolveResult::Unsat);
    EXPECT_GE(res.stats.unitsPropagated, 1u);
}

TEST(Preprocess, UniversalUnitIsUnsat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    f.addExistential({x});
    f.matrix().addClause({Lit::pos(x)});
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Unsat);
}

TEST(Preprocess, EmptyMatrixIsSat)
{
    DqbfFormula f;
    f.addUniversal();
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Sat);
}

TEST(Preprocess, UniversalReductionDropsIndependentUniversals)
{
    // Clause (x1 | y) where y does not depend on x1: x1 is reducible,
    // leaving existential unit y.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y = f.addExistential({x2});
    f.matrix().addClause({Lit::pos(x1), Lit::pos(y)});
    f.matrix().addClause({Lit::neg(y), Lit::pos(x2), Lit::pos(y)}); // tautology, dropped
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Sat); // y := 1 satisfies all
    EXPECT_GE(res.stats.universalLiteralsReduced, 1u);
}

TEST(Preprocess, UniversalReductionToEmptyClauseIsUnsat)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    f.addExistential({});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(x2)});
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Unsat);
}

TEST(Preprocess, EquivalentExistentialsMergeWithIntersection)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x1});
    const Var y2 = f.addExistential({x2});
    // y1 <-> y2 plus a clause keeping the matrix alive.
    f.matrix().addClause({Lit::neg(y1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(y1), Lit::neg(y2)});
    f.matrix().addClause({Lit::pos(y1), Lit::pos(x1), Lit::neg(x2)});
    const auto res = preprocess(f);
    EXPECT_GE(res.stats.equivalencesSubstituted, 1u);
    // After the merge the survivor has the empty intersection dependency
    // set, so universal reduction strips x1/~x2 from the third clause and
    // the resulting unit decides SAT (Skolem: constant 1).
    EXPECT_EQ(res.decided, SolveResult::Sat);

    // With the follow-up steps disabled, the merge itself is observable.
    DqbfFormula g;
    const Var gx1 = g.addUniversal();
    const Var gx2 = g.addUniversal();
    const Var gy1 = g.addExistential({gx1});
    const Var gy2 = g.addExistential({gx2});
    g.matrix().addClause({Lit::neg(gy1), Lit::pos(gy2)});
    g.matrix().addClause({Lit::pos(gy1), Lit::neg(gy2)});
    g.matrix().addClause({Lit::pos(gy1), Lit::pos(gx1), Lit::neg(gx2)});
    PreprocessOptions onlyEquiv;
    onlyEquiv.unitPropagation = false;
    onlyEquiv.universalReduction = false;
    onlyEquiv.gateDetection = false;
    const auto res2 = preprocess(g, onlyEquiv);
    EXPECT_EQ(res2.decided, SolveResult::Unknown);
    const bool y1Alive = g.isExistential(gy1);
    const bool y2Alive = g.isExistential(gy2);
    EXPECT_NE(y1Alive, y2Alive);
    EXPECT_TRUE(g.dependencies(y1Alive ? gy1 : gy2).empty());
}

TEST(Preprocess, ExistentialEqualUniversalRequiresDependency)
{
    // y <-> x with x in D_y: fine (y is substituted).  Without: Unsat.
    DqbfFormula ok;
    {
        const Var x = ok.addUniversal();
        const Var y = ok.addExistential({x});
        const Var z = ok.addExistential({x});
        ok.matrix().addClause({Lit::neg(y), Lit::pos(x)});
        ok.matrix().addClause({Lit::pos(y), Lit::neg(x)});
        ok.matrix().addClause({Lit::pos(y), Lit::pos(z)});
    }
    const auto res1 = preprocess(ok);
    EXPECT_NE(res1.decided, SolveResult::Unsat);

    DqbfFormula bad;
    {
        const Var x = bad.addUniversal();
        const Var y = bad.addExistential({});
        const Var z = bad.addExistential({x});
        bad.matrix().addClause({Lit::neg(y), Lit::pos(x)});
        bad.matrix().addClause({Lit::pos(y), Lit::neg(x)});
        bad.matrix().addClause({Lit::pos(y), Lit::pos(z)});
    }
    const auto res2 = preprocess(bad);
    EXPECT_EQ(res2.decided, SolveResult::Unsat);
}

TEST(Preprocess, TwoUniversalsEquivalentIsUnsat)
{
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y = f.addExistential({x1, x2});
    f.matrix().addClause({Lit::neg(x1), Lit::pos(x2)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(x2)});
    f.matrix().addClause({Lit::pos(y)});
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Unsat);
}

TEST(Preprocess, ContradictorySccIsUnsat)
{
    DqbfFormula f;
    const Var y1 = f.addExistential({});
    const Var y2 = f.addExistential({});
    f.matrix().addClause({Lit::neg(y1), Lit::pos(y2)});
    f.matrix().addClause({Lit::neg(y2), Lit::neg(y1)});
    f.matrix().addClause({Lit::pos(y1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(y1), Lit::neg(y2)});
    const auto res = preprocess(f);
    EXPECT_EQ(res.decided, SolveResult::Unsat);
}

TEST(Preprocess, DetectsAndGate)
{
    // g <-> (a & b) in Tseitin form, plus a clause using g.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var a = f.addExistential({x});
    const Var b = f.addExistential({x});
    const Var g = f.addExistential({x});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    f.matrix().addClause({Lit::pos(g), Lit::neg(a), Lit::neg(b)});
    f.matrix().addClause({Lit::neg(g), Lit::pos(a)});
    f.matrix().addClause({Lit::neg(g), Lit::pos(b)});
    f.matrix().addClause({Lit::pos(g), Lit::pos(x)});
    const auto res = preprocess(f, opts);
    EXPECT_EQ(res.decided, SolveResult::Unknown);
    ASSERT_EQ(res.gates.size(), 1u);
    EXPECT_EQ(res.gates[0].kind, GateKind::Or);
    EXPECT_EQ(res.gates[0].target.var(), g);
    EXPECT_EQ(f.matrix().numClauses(), 1u); // defining clauses removed
}

TEST(Preprocess, DetectsXorGate)
{
    DqbfFormula f;
    const Var a = f.addExistential({});
    const Var b = f.addExistential({});
    const Var g = f.addExistential({});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    // g <-> a xor b.
    f.matrix().addClause({Lit::neg(g), Lit::pos(a), Lit::pos(b)});
    f.matrix().addClause({Lit::neg(g), Lit::neg(a), Lit::neg(b)});
    f.matrix().addClause({Lit::pos(g), Lit::neg(a), Lit::pos(b)});
    f.matrix().addClause({Lit::pos(g), Lit::pos(a), Lit::neg(b)});
    f.matrix().addClause({Lit::pos(g), Lit::pos(a), Lit::pos(b), Lit::neg(a), Lit::neg(g)});
    const auto res = preprocess(f, opts);
    ASSERT_GE(res.gates.size(), 1u);
    EXPECT_EQ(res.gates[0].kind, GateKind::Xor);
}

TEST(Preprocess, GateRejectedWhenDependenciesInsufficient)
{
    // g(x1) <-> (a & b) with a depending on x2 not in D_g: must NOT be
    // detected as a gate.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var a = f.addExistential({x2});
    const Var b = f.addExistential({x1});
    const Var g = f.addExistential({x1});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    f.matrix().addClause({Lit::pos(g), Lit::neg(a), Lit::neg(b)});
    f.matrix().addClause({Lit::neg(g), Lit::pos(a)});
    f.matrix().addClause({Lit::neg(g), Lit::pos(b)});
    const auto res = preprocess(f, opts);
    EXPECT_TRUE(res.gates.empty());
}

TEST(Preprocess, SubsumptionRemovesSupersets)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    const Var z = f.addExistential({x});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    opts.gateDetection = false;
    f.matrix().addClause({Lit::pos(y), Lit::pos(z)});
    f.matrix().addClause({Lit::pos(y), Lit::pos(z), Lit::pos(x)}); // subsumed
    f.matrix().addClause({Lit::neg(y), Lit::pos(x)});
    const auto res = preprocess(f, opts);
    EXPECT_GE(res.stats.clausesSubsumed, 1u);
    EXPECT_EQ(f.matrix().numClauses(), 2u);
}

TEST(Preprocess, SelfSubsumingResolutionStrengthens)
{
    DqbfFormula f;
    const Var a = f.addExistential({});
    const Var b = f.addExistential({});
    const Var c = f.addExistential({});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    opts.gateDetection = false;
    // (a | b) and (~a | b | c): resolving on a gives (b | c)... the second
    // clause strengthens to (b | c) since {b} subset of {b,c}.
    f.matrix().addClause({Lit::pos(a), Lit::pos(b)});
    f.matrix().addClause({Lit::neg(a), Lit::pos(b), Lit::pos(c)});
    const auto res = preprocess(f, opts);
    EXPECT_GE(res.stats.literalsStrengthened, 1u);
    bool foundStrengthened = false;
    for (const Clause& cl : f.matrix()) {
        if (cl.size() == 2 && cl.contains(Lit::pos(b)) && cl.contains(Lit::pos(c))) {
            foundStrengthened = true;
        }
        EXPECT_FALSE(cl.contains(Lit::neg(a)));
    }
    EXPECT_TRUE(foundStrengthened);
}

TEST(Preprocess, DuplicateClausesCollapse)
{
    DqbfFormula f;
    const Var a = f.addExistential({});
    const Var b = f.addExistential({});
    PreprocessOptions opts;
    opts.unitPropagation = opts.universalReduction = opts.equivalences = false;
    opts.gateDetection = false;
    f.matrix().addClause({Lit::pos(a), Lit::pos(b)});
    f.matrix().addClause({Lit::pos(b), Lit::pos(a)});
    preprocess(f, opts);
    EXPECT_EQ(f.matrix().numClauses(), 1u);
}

/// Preprocessing must preserve the DQBF's truth value.  We compare the
/// expansion oracle's verdict before and after preprocessing (with gates
/// re-conjoined as clauses via their defining semantics).
class PreprocessEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessEquivalence, PreservesTruthValue)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 601 + 41);
    DqbfFormula f = randomDqbf(rng, 3, 3, 8 + static_cast<unsigned>(rng.below(8)));
    const SolveResult before = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(before));

    DqbfFormula g = f;
    const auto res = preprocess(g);
    if (res.decided != SolveResult::Unknown) {
        EXPECT_EQ(res.decided, before);
        return;
    }
    // Re-encode detected gates as clauses so the oracle sees the full
    // formula.
    for (const GateDef& gd : res.gates) {
        const Lit t = gd.target;
        if (gd.kind == GateKind::Or) {
            Clause big;
            big.push(~t);
            for (Lit in : gd.inputs) big.push(in);
            g.matrix().addClause(big);
            for (Lit in : gd.inputs) g.matrix().addClause({t, ~in});
        } else {
            const Lit u = gd.inputs[0], v = gd.inputs[1];
            g.matrix().addClause({~t, u, v});
            g.matrix().addClause({~t, ~u, ~v});
            g.matrix().addClause({t, ~u, v});
            g.matrix().addClause({t, u, ~v});
        }
    }
    const SolveResult after = expansionDqbf(g);
    EXPECT_EQ(after, before);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PreprocessEquivalence, ::testing::Range(0, 60));

} // namespace
} // namespace hqs
