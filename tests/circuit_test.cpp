// Tests for the circuit netlist, Tseitin encoding, and the seven benchmark
// family generators.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/circuit/families.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

TEST(Circuit, GateEvaluation)
{
    EXPECT_TRUE(evalGateOp(GateOp::And, {true, true, true}));
    EXPECT_FALSE(evalGateOp(GateOp::And, {true, false}));
    EXPECT_TRUE(evalGateOp(GateOp::Nand, {true, false}));
    EXPECT_TRUE(evalGateOp(GateOp::Or, {false, true}));
    EXPECT_TRUE(evalGateOp(GateOp::Nor, {false, false}));
    EXPECT_TRUE(evalGateOp(GateOp::Xor, {true, true, true}));
    EXPECT_FALSE(evalGateOp(GateOp::Xor, {true, true}));
    EXPECT_TRUE(evalGateOp(GateOp::Xnor, {true, true}));
    EXPECT_FALSE(evalGateOp(GateOp::Not, {true}));
    EXPECT_TRUE(evalGateOp(GateOp::Buf, {true}));
    EXPECT_FALSE(evalGateOp(GateOp::Const0, {}));
    EXPECT_TRUE(evalGateOp(GateOp::Const1, {}));
}

TEST(Circuit, SimulateHalfAdder)
{
    Circuit c;
    const auto a = c.addInput("a");
    const auto b = c.addInput("b");
    c.addOutput(c.gate2(GateOp::Xor, a, b), "sum");
    c.addOutput(c.gate2(GateOp::And, a, b), "carry");
    EXPECT_EQ(c.evaluateOutputs({false, false}), (std::vector<bool>{false, false}));
    EXPECT_EQ(c.evaluateOutputs({true, false}), (std::vector<bool>{true, false}));
    EXPECT_EQ(c.evaluateOutputs({true, true}), (std::vector<bool>{false, true}));
}

TEST(Circuit, BlackBoxSimulationUsesCallback)
{
    Circuit c;
    const auto a = c.addInput();
    const auto b = c.addInput();
    const auto box = c.addBlackBox({a, b}, "bb");
    const auto y = c.blackBoxOutput(box);
    c.addOutput(c.gate2(GateOp::Or, y, a));
    EXPECT_FALSE(c.isComplete());
    EXPECT_EQ(c.numBoxes(), 1u);

    auto nandBox = [](Circuit::BoxId, std::size_t, const std::vector<bool>& ins) {
        return !(ins[0] && ins[1]);
    };
    EXPECT_EQ(c.evaluateOutputs({false, false}, nandBox), (std::vector<bool>{true}));
    EXPECT_EQ(c.evaluateOutputs({true, true}, nandBox), (std::vector<bool>{true}));
}

TEST(Circuit, CountsAndStructure)
{
    Circuit c;
    const auto a = c.addInput();
    const auto b = c.addInput();
    const auto g = c.gate2(GateOp::And, a, b);
    EXPECT_EQ(c.numGates(), 1u);
    EXPECT_EQ(c.op(g), GateOp::And);
    EXPECT_EQ(c.fanins(g), (std::vector<Circuit::NodeId>{a, b}));
}

// ----- Tseitin encoding ------------------------------------------------------

/// Exhaustively check that the Tseitin encoding of a complete circuit is
/// functionally faithful: for every input assignment, the CNF restricted to
/// those inputs is satisfiable and forces the encoded output variables to
/// the simulated values.
void checkTseitinFaithful(const Circuit& c)
{
    ASSERT_TRUE(c.isComplete());
    Cnf cnf;
    std::unordered_map<Circuit::NodeId, Var> fixed;
    std::vector<Var> inputVars;
    for (Circuit::NodeId in : c.inputs()) {
        const Var v = cnf.newVar();
        fixed.emplace(in, v);
        inputVars.push_back(v);
    }
    const std::vector<Var> nodeVar =
        tseitinEncode(c, cnf, fixed, [&]() { return cnf.newVar(); });

    const std::size_t n = c.inputs().size();
    ASSERT_LE(n, 12u);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        std::vector<bool> ins(n);
        for (std::size_t i = 0; i < n; ++i) ins[i] = (bits >> i) & 1u;
        const std::vector<bool> expect = c.evaluateOutputs(ins);

        SatSolver sat;
        sat.addCnf(cnf);
        std::vector<Lit> assumptions;
        for (std::size_t i = 0; i < n; ++i) assumptions.push_back(Lit(inputVars[i], !ins[i]));
        ASSERT_EQ(sat.solve(assumptions), SolveResult::Sat) << "inputs " << bits;
        for (std::size_t j = 0; j < c.outputs().size(); ++j) {
            EXPECT_EQ(sat.modelValue(nodeVar[c.outputs()[j]]).isTrue(), expect[j])
                << "inputs " << bits << " output " << j;
        }
    }
}

TEST(Tseitin, FaithfulOnMixedGates)
{
    Circuit c;
    const auto a = c.addInput();
    const auto b = c.addInput();
    const auto d = c.addInput();
    const auto n1 = c.gate(GateOp::Nand, {a, b, d});
    const auto n2 = c.gate(GateOp::Xor, {a, b, d});
    const auto n3 = c.gate(GateOp::Nor, {n1, n2});
    const auto n4 = c.gate2(GateOp::Xnor, n1, d);
    c.addOutput(c.gate2(GateOp::Or, n3, n4));
    c.addOutput(c.notGate(n2));
    checkTseitinFaithful(c);
}

TEST(Tseitin, FaithfulOnConstantsAndBuffers)
{
    Circuit c;
    const auto a = c.addInput();
    const auto k1 = c.constant(true);
    const auto k0 = c.constant(false);
    c.addOutput(c.gate2(GateOp::And, a, k1));
    c.addOutput(c.gate2(GateOp::Or, a, k0));
    c.addOutput(c.gate(GateOp::Buf, {a}));
    checkTseitinFaithful(c);
}

TEST(Tseitin, FaithfulOnFamilySpecs)
{
    for (Family fam : allFamilies()) {
        const PecInstance inst = makeInstance(fam, 3, true);
        if (inst.spec.inputs().size() <= 12) {
            checkTseitinFaithful(inst.spec);
        }
    }
}

// ----- family generators -----------------------------------------------------

TEST(Families, NamesAndEnumeration)
{
    EXPECT_EQ(allFamilies().size(), 7u);
    EXPECT_EQ(toString(Family::Adder), "adder");
    EXPECT_EQ(toString(Family::PecXor), "pec_xor");
    EXPECT_EQ(toString(Family::C432), "c432");
}

TEST(Families, SpecsAreCompleteImplsHaveBoxes)
{
    for (Family fam : allFamilies()) {
        for (unsigned width : {3u, 4u, 6u}) {
            for (bool realizable : {true, false}) {
                const PecInstance inst = makeInstance(fam, width, realizable);
                EXPECT_TRUE(inst.spec.isComplete()) << inst.name;
                EXPECT_GE(inst.impl.numBoxes(), 2u) << inst.name;
                EXPECT_EQ(inst.spec.inputs().size(), inst.impl.inputs().size()) << inst.name;
                EXPECT_EQ(inst.spec.outputs().size(), inst.impl.outputs().size()) << inst.name;
                EXPECT_EQ(inst.expectedRealizable, realizable);
            }
        }
    }
}

TEST(Families, AdderSpecAdds)
{
    const PecInstance inst = makeInstance(Family::Adder, 4, true);
    // inputs: a0..a3, b0..b3, cin ; outputs s0..s3, cout.
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b : {0u, 3u, 9u, 15u}) {
            for (unsigned cin : {0u, 1u}) {
                std::vector<bool> ins;
                for (unsigned i = 0; i < 4; ++i) ins.push_back((a >> i) & 1u);
                for (unsigned i = 0; i < 4; ++i) ins.push_back((b >> i) & 1u);
                ins.push_back(cin != 0);
                const auto outs = inst.spec.evaluateOutputs(ins);
                unsigned result = 0;
                for (unsigned i = 0; i < 4; ++i) result |= static_cast<unsigned>(outs[i]) << i;
                result |= static_cast<unsigned>(outs[4]) << 4;
                EXPECT_EQ(result, a + b + cin);
            }
        }
    }
}

TEST(Families, BitcellSpecGrantsHighestPriority)
{
    const PecInstance inst = makeInstance(Family::Bitcell, 5, true);
    // Exactly the lowest-index active request is granted.
    for (unsigned req = 0; req < 32; ++req) {
        std::vector<bool> ins;
        for (unsigned i = 0; i < 5; ++i) ins.push_back((req >> i) & 1u);
        const auto outs = inst.spec.evaluateOutputs(ins);
        int expectedWinner = -1;
        for (unsigned i = 0; i < 5; ++i) {
            if ((req >> i) & 1u) {
                expectedWinner = static_cast<int>(i);
                break;
            }
        }
        for (unsigned i = 0; i < 5; ++i) {
            EXPECT_EQ(outs[i], static_cast<int>(i) == expectedWinner) << "req=" << req;
        }
        EXPECT_EQ(outs[5], req != 0); // busy
    }
}

TEST(Families, LookaheadSpecMatchesBitcellSpec)
{
    const PecInstance look = makeInstance(Family::Lookahead, 6, true);
    const PecInstance cell = makeInstance(Family::Bitcell, 6, true);
    for (unsigned req = 0; req < 64; ++req) {
        std::vector<bool> ins;
        for (unsigned i = 0; i < 6; ++i) ins.push_back((req >> i) & 1u);
        const auto a = look.spec.evaluateOutputs(ins);
        const auto b = cell.spec.evaluateOutputs(ins);
        // grants coincide (the extra outputs differ in meaning).
        for (unsigned i = 0; i < 6; ++i) EXPECT_EQ(a[i], b[i]) << "req=" << req;
    }
}

TEST(Families, PecXorSpecIsParity)
{
    const PecInstance inst = makeInstance(Family::PecXor, 5, true);
    for (unsigned x = 0; x < 32; ++x) {
        std::vector<bool> ins;
        bool parity = false;
        for (unsigned i = 0; i < 5; ++i) {
            const bool bit = (x >> i) & 1u;
            ins.push_back(bit);
            parity = parity != bit;
        }
        EXPECT_EQ(inst.spec.evaluateOutputs(ins)[0], parity);
    }
}

TEST(Families, Z4SpecEqualsAdderSpec)
{
    const PecInstance z4 = makeInstance(Family::Z4, 4, true);
    const PecInstance add = makeInstance(Family::Adder, 4, true);
    for (unsigned bits = 0; bits < (1u << 9); ++bits) {
        std::vector<bool> ins;
        for (unsigned i = 0; i < 9; ++i) ins.push_back((bits >> i) & 1u);
        EXPECT_EQ(z4.spec.evaluateOutputs(ins), add.spec.evaluateOutputs(ins));
    }
}

TEST(Families, CompSpecCompares)
{
    const PecInstance inst = makeInstance(Family::Comp, 3, true);
    for (unsigned a = 0; a < 8; ++a) {
        for (unsigned b = 0; b < 8; ++b) {
            std::vector<bool> ins;
            for (unsigned i = 0; i < 3; ++i) ins.push_back((a >> i) & 1u);
            for (unsigned i = 0; i < 3; ++i) ins.push_back((b >> i) & 1u);
            const auto outs = inst.spec.evaluateOutputs(ins);
            EXPECT_EQ(outs[0], a > b) << a << " vs " << b;
            EXPECT_EQ(outs[1], a == b) << a << " vs " << b;
        }
    }
}

TEST(Families, C432SpecPrioritizesGroupsAndLines)
{
    const PecInstance inst = makeInstance(Family::C432, 3, true);
    // Inputs: r0_0..r0_2, en0, r1_0..r1_2, en1, r2_0..r2_2, en2.
    // All groups requesting line 1, all enabled: group 0 line 1 wins.
    std::vector<bool> ins(12, false);
    ins[1] = true;  // r0_1
    ins[3] = true;  // en0
    ins[5] = true;  // r1_1
    ins[7] = true;  // en1
    ins[9] = true;  // r2_1
    ins[11] = true; // en2
    const auto outs = inst.spec.evaluateOutputs(ins);
    // Outputs: ack0_0..ack0_2, ack1_0..2, ack2_0..2.
    EXPECT_TRUE(outs[1]);
    for (unsigned j = 0; j < 9; ++j) {
        if (j != 1) {
            EXPECT_FALSE(outs[j]) << "ack index " << j;
        }
    }

    // Group 0 disabled: group 1 wins.
    ins[3] = false;
    const auto outs2 = inst.spec.evaluateOutputs(ins);
    EXPECT_TRUE(outs2[4]); // ack1_1
    EXPECT_FALSE(outs2[1]);
}

/// Ground truth by simulation: realizable instances really are realizable —
/// plugging the reference implementation into the boxes reproduces the spec.
class FamilyRealizabilityWitness
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(FamilyRealizabilityWitness, SpecCellsImplementTheBoxes)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const unsigned width = std::get<1>(GetParam());
    const PecInstance inst = makeInstance(fam, width, true);
    const std::size_t n = inst.spec.inputs().size();
    if (n > 14) GTEST_SKIP() << "too many inputs for exhaustive check";

    // The reference box implementations, family by family.  Each box output
    // is a function of the box's declared inputs only.
    auto boxFn = [&](Circuit::BoxId b, std::size_t outIdx,
                     const std::vector<bool>& ins) -> bool {
        switch (fam) {
            case Family::Adder: {
                const bool a = ins[0], bb = ins[1], cin = ins[2];
                return outIdx == 0 ? (a != bb) != cin : ((a && bb) || ((a != bb) && cin));
            }
            case Family::Bitcell: {
                const bool req = ins[0], carry = ins[1];
                return outIdx == 0 ? (req && !carry) : (carry || req);
            }
            case Family::Lookahead: {
                // Low box (b==0): ins are the low requests; outputs are the
                // grants then the group-or.  High box (b==1): ins are the
                // high requests plus the group carry (last element).
                const bool isLow = (b == 0);
                const std::size_t numReq = isLow ? ins.size() : ins.size() - 1;
                if (isLow && outIdx == numReq) {
                    bool any = false;
                    for (std::size_t i = 0; i < numReq; ++i) any = any || ins[i];
                    return any;
                }
                bool carry = isLow ? false : ins.back();
                for (std::size_t i = 0; i < numReq; ++i) {
                    const bool grant = ins[i] && !carry;
                    if (outIdx == i) return grant;
                    carry = carry || ins[i];
                }
                return false;
            }
            case Family::PecXor: {
                bool parity = false;
                for (bool v : ins) parity = parity != v;
                return parity;
            }
            case Family::Z4: {
                // Low box: pairs (a_i, b_i) then cin -> carry out of block.
                // High box: pairs then carry-in -> sums then cout.
                const std::size_t pairs = (ins.size() - 1) / 2;
                bool carry = ins.back();
                std::vector<bool> sums;
                for (std::size_t i = 0; i < pairs; ++i) {
                    const bool a = ins[2 * i], bb = ins[2 * i + 1];
                    sums.push_back((a != bb) != carry);
                    carry = (a && bb) || ((a != bb) && carry);
                }
                if (b == 0) return carry; // low box: single carry output
                return outIdx < pairs ? sums[outIdx] : carry;
            }
            case Family::Comp: {
                const bool a = ins[0], bb = ins[1], gt = ins[2], eq = ins[3];
                return outIdx == 0 ? (gt || (eq && a && !bb)) : (eq && (a == bb));
            }
            case Family::C432: {
                const std::size_t numReq = ins.size() - 1;
                const bool sel = ins.back();
                bool blocked = false;
                for (std::size_t i = 0; i < numReq; ++i) {
                    const bool win = ins[i] && !blocked;
                    if (outIdx == i) return win && sel;
                    blocked = blocked || ins[i];
                }
                return false;
            }
        }
        return false;
    };

    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        std::vector<bool> ins(n);
        for (std::size_t i = 0; i < n; ++i) ins[i] = (bits >> i) & 1u;
        ASSERT_EQ(inst.impl.evaluateOutputs(ins, boxFn), inst.spec.evaluateOutputs(ins))
            << inst.name << " inputs " << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyRealizabilityWitness,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(3u, 4u)));

} // namespace
} // namespace hqs
