# cert/link-audit: assert that the dqbf_check binary links no solver
# objects.  The checker's trust model (see src/cert/ and DESIGN.md §8) only
# holds if a bug in the elimination engines cannot also be a bug in the
# checker — so its link line may contain the AIG kernel, the CNF bridge,
# the SAT backend, and obs, but never hqs_dqbf / hqs_qbf / hqs_idq /
# hqs_bdd / hqs_pec / hqs_runtime.
#
# Invoked as: cmake -DBUILD_DIR=<build> -P cert_link_audit.cmake
# Reads the Makefile generator's link.txt for the dqbf_check target, falling
# back to build.ninja for the Ninja generator.

set(link_line "")
file(GLOB_RECURSE link_files "${BUILD_DIR}/examples/CMakeFiles/dqbf_check.dir/link.txt")
if(link_files)
  list(GET link_files 0 link_file)
  file(READ "${link_file}" link_line)
elseif(EXISTS "${BUILD_DIR}/build.ninja")
  # Ninja: extract the build statement block for the dqbf_check link.
  file(READ "${BUILD_DIR}/build.ninja" ninja)
  string(REGEX MATCH "build [^\n]*dqbf_check[^\n]*: CXX_EXECUTABLE_LINKER[^\n]*\n([ ]+[^\n]*\n)*" link_line "${ninja}")
endif()

if(link_line STREQUAL "")
  message(FATAL_ERROR "cert/link-audit: cannot find the dqbf_check link line "
                      "under ${BUILD_DIR} (neither link.txt nor build.ninja)")
endif()

foreach(forbidden hqs_dqbf hqs_qbf hqs_idq hqs_bdd hqs_pec hqs_runtime)
  if(link_line MATCHES "${forbidden}")
    message(FATAL_ERROR "cert/link-audit: dqbf_check links ${forbidden} — the "
                        "independent checker must not share solver code "
                        "(link line: ${link_line})")
  endif()
endforeach()

# Sanity: the line we audited really is a link line for the checker.
if(NOT link_line MATCHES "hqs_cert")
  message(FATAL_ERROR "cert/link-audit: the audited line does not mention "
                      "hqs_cert; the audit is looking at the wrong artifact: "
                      "${link_line}")
endif()

message(STATUS "cert/link-audit: dqbf_check links no solver objects")
