// session/*: the stateful v2 solve-session layer (src/runtime/session.hpp).
//
// The heart of the file is the differential suite: a session's verdict
// after `open + N deltas` — and the Skolem certificate it merges from
// per-component traces — must be indistinguishable from a cold solve of
// the effective formula the session claims to have decided.  Verdicts are
// compared against a fresh HqsSolver on SessionSolveOutcome::effectiveText;
// certificates must parse, pass the independent checker (the dqbf_check
// path), and hash-bind to the effective formula, not the base.
//
// Alongside: component-reuse accounting, transactional delta application,
// SessionManager TTL/LRU with an injected clock, the `session-delta` fault
// checkpoint (run via the faults/session-delta ctest entry), and
// `dqbf_batch --session-group` equivalence against cold batch rows.
//
// The file also compiles into the tsan/* and asan/* runtime binaries, so
// the session layer's single-owner discipline is sanitizer-checked.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/fault.hpp"
#include "src/cert/certificate.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/runtime/batch.hpp"
#include "src/runtime/session.hpp"

using namespace hqs;

namespace {

// Two variable-disjoint, non-isomorphic components (distinct canonical
// keys, so the component memo cannot cross-answer them):
//   A: forall u1 u2, exists e3(u1,u2): e3 <-> (u1 and u2)
//   B: forall u4,    exists e5(u4):    e5 <-> u4          (copycat)
// SAT, and small enough that every delta's cold reference solve is instant.
const char* kTwoComponentBase =
    "p cnf 5 5\n"
    "a 1 2 4 0\n"
    "d 3 1 2 0\n"
    "d 5 4 0\n"
    "-3 1 0\n"
    "-3 2 0\n"
    "3 -1 -2 0\n"
    "4 -5 0\n"
    "-4 5 0\n";

/// Cold reference: solve @p text from scratch with a fresh HqsSolver.
SolveResult coldSolve(const std::string& text)
{
    HqsOptions opts;
    HqsSolver solver(opts);
    return solver.solve(DqbfFormula::fromParsed(parseDqdimacsString(text)));
}

/// Assert the serialized certificate parses, passes the independent
/// checker, and binds to @p effectiveText (the session's claimed effective
/// formula), mirroring what `dqbf_check` would do with the artifact.
void expectCheckableAgainst(const std::string& certificate,
                            const std::string& effectiveText)
{
    ASSERT_FALSE(certificate.empty());
    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(certificate, parsed, detail),
              cert::CheckStatus::Ok)
        << detail;
    const cert::CheckResult res = cert::checkCertificate(parsed);
    EXPECT_TRUE(res.ok()) << cert::toString(res.status) << ": " << res.detail;
    // Certificates of delta solves bind to the *effective* formula.
    const DqbfFormula effective =
        DqbfFormula::fromParsed(parseDqdimacsString(effectiveText));
    EXPECT_EQ(parsed.hash, cert::formulaHash(effective.toParsed()));
}

SessionDelta addGroup(const std::string& name, const std::string& clauses)
{
    SessionDelta d;
    d.addGroup = name;
    d.addClauses = clauses;
    return d;
}

SessionDelta retractGroup(const std::string& name)
{
    SessionDelta d;
    d.retractGroup = name;
    return d;
}

/// RAII scratch directory for the batch --session-group tests.
struct ScratchDir {
    std::filesystem::path path;

    explicit ScratchDir(const std::string& tag)
    {
        path = std::filesystem::temp_directory_path() /
               ("hqs-session-test-" + tag + "-" +
                std::to_string(static_cast<unsigned>(::getpid())));
        std::filesystem::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string write(const std::string& name, const std::string& text) const
    {
        const std::filesystem::path p = path / name;
        std::ofstream out(p);
        out << text;
        return p.string();
    }
};

} // namespace

// --- differential suite -----------------------------------------------------

TEST(SessionDifferential, DeltaVerdictsMatchColdSolvesOfTheEffectiveFormula)
{
    Session s("s-diff", kTwoComponentBase, "");
    EXPECT_FALSE(s.circuitBased());
    EXPECT_EQ(s.baseVars(), 5u);
    EXPECT_EQ(s.baseClauses(), 5u);

    // Each step mutates the effective formula; after every step the session
    // verdict must equal a cold solve of outcome.effectiveText, and SAT
    // verdicts must come with a checkable certificate.
    const std::vector<SessionDelta> steps = {
        // Unit e3 forces u1/u2 true on every branch: UNSAT, touches A only.
        addGroup("conflict-a", "3 0"),
        retractGroup("conflict-a"),
        // u4 or e5 with e5 forced to u4: UNSAT, touches component B only.
        addGroup("conflict-b", "4 5 0"),
        retractGroup("conflict-b"),
        // A weakening of the implied (not e3 or u1), widened with a B
        // literal: still SAT, but the two components merge into one —
        // decomposition must re-form.
        addGroup("bridge", "-3 1 5 0"),
        retractGroup("bridge"),
    };
    const std::vector<SolveResult> expected = {
        SolveResult::Unsat, SolveResult::Sat, SolveResult::Unsat,
        SolveResult::Sat,   SolveResult::Sat, SolveResult::Sat,
    };

    SessionSolveOptions sopts;
    sopts.certify = true;

    // The base solve first: SAT across two components.
    SessionSolveOutcome out = s.solve(sopts);
    EXPECT_EQ(out.result, SolveResult::Sat);
    EXPECT_EQ(out.components, 2u);
    EXPECT_EQ(out.result, coldSolve(out.effectiveText));
    expectCheckableAgainst(out.certificate, out.effectiveText);

    for (std::size_t i = 0; i < steps.size(); ++i) {
        s.applyDelta(steps[i]);
        out = s.solve(sopts);
        EXPECT_EQ(out.result, expected[i]) << "step " << i;
        EXPECT_EQ(out.result, coldSolve(out.effectiveText)) << "step " << i;
        if (out.result == SolveResult::Sat)
            expectCheckableAgainst(out.certificate, out.effectiveText);
    }
    EXPECT_EQ(s.deltasApplied(), steps.size());
}

TEST(SessionDifferential, AssumptionSolvesMatchColdAndBypassNothingStale)
{
    Session s("s-assume", kTwoComponentBase, "");
    SessionSolveOptions sopts;

    // Assuming e5 true forces u4 true for every branch: UNSAT.  The cold
    // solve of effectiveText agreeing proves the assumption was embedded
    // in the effective formula as a unit clause.
    SessionSolveOutcome out = s.solve(sopts, "5");
    EXPECT_TRUE(out.usedAssumptions);
    EXPECT_EQ(out.result, SolveResult::Unsat);
    EXPECT_EQ(out.result, coldSolve(out.effectiveText));

    // The assumption was request-local: the next plain solve is SAT again.
    out = s.solve(sopts);
    EXPECT_FALSE(out.usedAssumptions);
    EXPECT_EQ(out.result, SolveResult::Sat);
    EXPECT_EQ(out.result, coldSolve(out.effectiveText));
}

// --- component reuse --------------------------------------------------------

TEST(SessionReuse, UntouchedComponentsAreAnsweredFromTheMemo)
{
    Session s("s-reuse", kTwoComponentBase, "");
    SessionSolveOptions sopts;

    SessionSolveOutcome out = s.solve(sopts);
    EXPECT_EQ(out.components, 2u);
    EXPECT_EQ(out.reusedComponents, 0u);

    // Touch only component B: component A must come from the memo.
    s.applyDelta(addGroup("b-only", "4 5 0"));
    out = s.solve(sopts);
    EXPECT_EQ(out.result, SolveResult::Unsat);
    EXPECT_EQ(out.components, 2u);
    EXPECT_GE(out.reusedComponents, 1u);

    // Retract: both components are now known, the solve is pure reuse.
    s.applyDelta(retractGroup("b-only"));
    out = s.solve(sopts);
    EXPECT_EQ(out.result, SolveResult::Sat);
    EXPECT_EQ(out.reusedComponents, 2u);
}

TEST(SessionReuse, CertifyRequiresAMatchingSkolemTraceToReuse)
{
    // A memo entry filled without certify carries no Skolem functions; a
    // later certify solve must re-solve instead of reusing it, and still
    // produce a checkable certificate.
    Session s("s-certify", kTwoComponentBase, "");
    SessionSolveOptions plain;
    SessionSolveOutcome out = s.solve(plain);
    EXPECT_EQ(out.result, SolveResult::Sat);

    SessionSolveOptions certify;
    certify.certify = true;
    out = s.solve(certify);
    EXPECT_EQ(out.result, SolveResult::Sat);
    expectCheckableAgainst(out.certificate, out.effectiveText);
}

// --- delta validation -------------------------------------------------------

TEST(SessionDelta, ApplicationIsTransactionalOnClientMistakes)
{
    Session s("s-tx", kTwoComponentBase, "");
    EXPECT_THROW(s.applyDelta(retractGroup("never-added")), SessionError);
    EXPECT_EQ(s.activeGroups(), 0u);
    EXPECT_EQ(s.deltasApplied(), 0u);

    s.applyDelta(addGroup("g", "3 4 0"));
    EXPECT_EQ(s.activeGroups(), 1u);
    // Re-adding an active name is a mistake; the group stays as committed.
    EXPECT_THROW(s.applyDelta(addGroup("g", "1 0")), SessionError);
    EXPECT_EQ(s.activeGroups(), 1u);
    EXPECT_EQ(s.deltasApplied(), 1u);

    // Clauses need a group name; malformed clause text never commits.
    SessionDelta anonymous;
    anonymous.addClauses = "3 0";
    EXPECT_THROW(s.applyDelta(anonymous), SessionError);
    EXPECT_THROW(s.applyDelta(addGroup("h", "3 4")), SessionError); // no 0
    EXPECT_THROW(s.applyDelta(addGroup("h", "3 x 0")), SessionError);
    EXPECT_EQ(s.activeGroups(), 1u);

    // Gate replacement is a DQCIR-session feature.
    SessionDelta gate;
    gate.gate = "g = and(x, y)";
    EXPECT_THROW(s.applyDelta(gate), SessionError);

    // Retract-and-re-add under one name round-trips.
    s.applyDelta(retractGroup("g"));
    s.applyDelta(addGroup("g", "4 5 0"));
    EXPECT_EQ(s.activeGroups(), 1u);
    EXPECT_EQ(s.solve({}).result, SolveResult::Unsat);
}

// --- manager lifecycle ------------------------------------------------------

TEST(SessionManagerLifecycle, LruEvictsTheLeastRecentlyUsedSession)
{
    std::int64_t now = 1'000;
    SessionManagerOptions mopts;
    mopts.maxSessions = 2;
    mopts.clock = [&now] { return now; };
    SessionManager mgr(mopts);

    std::string error;
    const std::string a = mgr.open(kTwoComponentBase, "", 1, &error);
    ASSERT_FALSE(a.empty()) << error;
    now += 10;
    const std::string b = mgr.open(kTwoComponentBase, "", 1, &error);
    ASSERT_FALSE(b.empty()) << error;

    now += 10; // touching a makes b the LRU victim
    EXPECT_NE(mgr.find(a), nullptr);
    now += 10;
    const std::string c = mgr.open(kTwoComponentBase, "", 1, &error);
    ASSERT_FALSE(c.empty()) << error;

    EXPECT_EQ(mgr.size(), 2u);
    EXPECT_EQ(mgr.find(b), nullptr) << "LRU victim must be gone";
    EXPECT_NE(mgr.find(a), nullptr);
    EXPECT_NE(mgr.find(c), nullptr);
    EXPECT_EQ(mgr.stats().evicted, 1u);
}

TEST(SessionManagerLifecycle, TtlExpiresIdleSessionsLazily)
{
    std::int64_t now = 0;
    SessionManagerOptions mopts;
    mopts.ttlSeconds = 10;
    mopts.clock = [&now] { return now; };
    SessionManager mgr(mopts);

    std::string error;
    const std::string id = mgr.open(kTwoComponentBase, "", 1, &error);
    ASSERT_FALSE(id.empty()) << error;

    now += 9'000; // within TTL: find refreshes the stamp
    EXPECT_NE(mgr.find(id), nullptr);
    now += 9'000; // still within TTL of the refreshed stamp
    EXPECT_NE(mgr.find(id), nullptr);
    now += 11'000; // idle past the TTL: gone
    EXPECT_EQ(mgr.find(id), nullptr);
    EXPECT_EQ(mgr.stats().evicted, 1u);
    EXPECT_EQ(mgr.size(), 0u);
}

TEST(SessionManagerLifecycle, CloseAndCloseOwnedTearDownByIdAndOwner)
{
    SessionManager mgr;
    std::string error;
    const std::string a = mgr.open(kTwoComponentBase, "", /*owner=*/7, &error);
    const std::string b = mgr.open(kTwoComponentBase, "", /*owner=*/7, &error);
    const std::string c = mgr.open(kTwoComponentBase, "", /*owner=*/8, &error);
    ASSERT_FALSE(a.empty() || b.empty() || c.empty());
    EXPECT_EQ(mgr.size(), 3u);

    EXPECT_TRUE(mgr.close(a));
    EXPECT_FALSE(mgr.close(a)) << "double close reports already-gone";
    EXPECT_EQ(mgr.closeOwned(7), 1u) << "only b is still owned by 7";
    EXPECT_EQ(mgr.size(), 1u);
    EXPECT_NE(mgr.find(c), nullptr);
    EXPECT_EQ(mgr.stats().closed, 2u) << "a explicitly, b via closeOwned";

    // An op holding the shared_ptr keeps a closed session alive.
    std::shared_ptr<Session> pinned = mgr.find(c);
    EXPECT_TRUE(mgr.close(c));
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(pinned->solve({}).result, SolveResult::Sat);
}

TEST(SessionManagerLifecycle, OpenRejectsGarbageWithAnError)
{
    SessionManager mgr;
    std::string error;
    EXPECT_EQ(mgr.open("p cnf garbage\n", "", 1, &error), "");
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(mgr.size(), 0u);
}

// --- batch --session-group --------------------------------------------------

namespace {

/// Three-member delta family over kTwoComponentBase plus one singleton:
/// fam_1 = base + conflict in A (UNSAT), fam_2 = base + conflict in B
/// (UNSAT), fam_3 = base (SAT).  The singleton keeps the cold path alive in
/// the same run.
std::vector<std::string> writeFamily(const ScratchDir& dir)
{
    const std::string base(kTwoComponentBase);
    auto withExtra = [&](const std::string& clause) {
        std::string text = base;
        text.replace(text.find("p cnf 5 5"), 9, "p cnf 5 6");
        return text + clause + "\n";
    };
    return {
        dir.write("fam_1.dqdimacs", withExtra("3 0")),
        dir.write("fam_2.dqdimacs", withExtra("4 5 0")),
        dir.write("fam_3.dqdimacs", base),
        dir.write("solo.dqdimacs", base),
    };
}

} // namespace

TEST(BatchSessionGroup, FamilyRowsMatchColdBatchVerdictsAndCertify)
{
    const ScratchDir dir("group");
    const std::vector<std::string> files = writeFamily(dir);

    BatchOptions grouped;
    grouped.numWorkers = 1;
    grouped.sessionGroup = true;
    grouped.certify = true;
    std::ostringstream groupedJsonl;
    const std::vector<BatchJobResult> viaSession =
        BatchScheduler(grouped).run(files, &groupedJsonl);

    BatchOptions cold;
    cold.numWorkers = 1;
    cold.certify = true;
    const std::vector<BatchJobResult> viaCold = BatchScheduler(cold).run(files);

    ASSERT_EQ(viaSession.size(), files.size());
    ASSERT_EQ(viaCold.size(), files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        EXPECT_EQ(viaSession[i].result, viaCold[i].result) << files[i];
        EXPECT_EQ(viaSession[i].error, "") << files[i];
    }

    // The three fam_* members solved through one session; the singleton
    // stayed cold.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(viaSession[i].sessionGroup, "fam") << files[i];
        EXPECT_EQ(viaSession[i].rung, "session") << files[i];
        EXPECT_EQ(viaSession[i].engine, "hqs") << files[i];
        EXPECT_GE(viaSession[i].sessionComponents, 1u) << files[i];
    }
    EXPECT_EQ(viaSession[3].sessionGroup, "");

    // SAT members carry a checker-validated certificate, same as cold rows.
    EXPECT_EQ(viaSession[2].result, SolveResult::Sat);
    EXPECT_TRUE(viaSession[2].certificate.present);
    EXPECT_TRUE(viaSession[2].certificate.valid)
        << viaSession[2].certificate.status;

    // Later members reuse the base components the earlier ones solved.
    std::size_t reused = 0;
    for (std::size_t i = 0; i < 3; ++i) reused += viaSession[i].sessionReused;
    EXPECT_GE(reused, 1u);

    // The session block survives the JSONL journal round trip.
    std::istringstream in(groupedJsonl.str());
    const std::vector<BatchJobResult> journal = readJournal(in);
    ASSERT_EQ(journal.size(), files.size());
    bool sawSessionBlock = false;
    for (const BatchJobResult& r : journal)
        if (r.sessionGroup == "fam" && r.sessionComponents > 0) sawSessionBlock = true;
    EXPECT_TRUE(sawSessionBlock);
}

TEST(BatchSessionGroup, PrefixMismatchFallsBackToColdRows)
{
    const ScratchDir dir("mismatch");
    // Same stem, different quantifier prefix: must not form a family.
    const std::string other = "p cnf 2 2\n"
                              "a 1 0\n"
                              "d 2 1 0\n"
                              "1 -2 0\n"
                              "-1 2 0\n";
    const std::vector<std::string> files = {
        dir.write("mix_1.dqdimacs", kTwoComponentBase),
        dir.write("mix_2.dqdimacs", other),
    };
    BatchOptions opts;
    opts.numWorkers = 1;
    opts.sessionGroup = true;
    const std::vector<BatchJobResult> rows = BatchScheduler(opts).run(files);
    ASSERT_EQ(rows.size(), 2u);
    for (const BatchJobResult& r : rows) {
        EXPECT_EQ(r.sessionGroup, "") << r.instance;
        EXPECT_EQ(r.result, SolveResult::Sat) << r.instance;
    }
}

// --- the session-delta fault checkpoint -------------------------------------

// Run via the faults/session-delta ctest entry (HQS_FAULT=session-delta:1).
// The checkpoint fires between delta validation and commit: the injected
// fault must unwind with the session state intact, and the spent one-shot
// site must not affect the next delta.
TEST(EnvFaultSession, DeltaFaultUnwindsTransactionally)
{
    const std::string site = fault::armedSite();
    if (site != "session-delta")
        GTEST_SKIP() << "HQS_FAULT=session-delta not set; run via faults/*";

    Session s("s-fault", kTwoComponentBase, "");
    EXPECT_THROW(s.applyDelta(addGroup("g", "3 4 0")), fault::InjectedFault);
    EXPECT_EQ(s.activeGroups(), 0u);
    EXPECT_EQ(s.deltasApplied(), 0u);

    // The session survived intact: the same delta commits now and the
    // verdict reflects it.
    s.applyDelta(addGroup("g", "3 4 0"));
    EXPECT_EQ(s.activeGroups(), 1u);
    EXPECT_EQ(s.solve({}).result, SolveResult::Unsat);

    // The one-shot spent itself above; re-arm so the batch containment
    // test below still sees an armed site when both run in one process
    // (the faults/session-delta ctest entry).
    fault::arm(site);
}

// The same containment through the batch front end: an armed session-delta
// fault lands as a contained failure row — the family keeps its remaining
// members and the run reports every instance.
TEST(EnvFaultSession, BatchSessionGroupContainsTheFaultInOneRow)
{
    const std::string site = fault::armedSite();
    if (site != "session-delta")
        GTEST_SKIP() << "HQS_FAULT=session-delta not set; run via faults/*";

    const ScratchDir dir("fault");
    const std::vector<std::string> files = writeFamily(dir);
    BatchOptions opts;
    opts.numWorkers = 1;
    opts.sessionGroup = true;
    const std::vector<BatchJobResult> rows = BatchScheduler(opts).run(files);

    ASSERT_EQ(rows.size(), files.size());
    std::size_t conclusive = 0, contained = 0;
    for (const BatchJobResult& r : rows) {
        if (isConclusive(r.result)) ++conclusive;
        if (r.failure.kind != FailureKind::None) ++contained;
    }
    // The one-shot fault can swallow at most one member's delta; everyone
    // else concludes normally.
    EXPECT_GE(conclusive, files.size() - 1) << "fault must stay contained";
    EXPECT_LE(contained, 1u);
}
