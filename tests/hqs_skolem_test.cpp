// Tests for Skolem reconstruction from the HQS elimination trace: the
// solver with computeSkolem must produce certificates that verify, across
// random DQBFs, all preprocessing/optimization configurations, and the PEC
// families (where the certificate doubles as synthesized black boxes).
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/pec/box_synthesis.hpp"
#include "src/pec/pec_encoder.hpp"

namespace hqs {
namespace {

/// Production-path verification: extract the certificate artifact, serialize
/// it, re-parse, and run the independent checker — the same pipeline that
/// `dqbf_solve --certify` + `dqbf_check` exercise.  Replaces the old
/// test-only verifyAigSkolemCertificate route, so every Skolem test is also
/// an end-to-end certification test.
::testing::AssertionResult certifiesThroughProduction(const DqbfFormula& f,
                                                      const AigSkolemCertificate& skolem)
{
    const std::string text =
        cert::toCertificateString(cert::extractCertificate(f, skolem));
    cert::Certificate parsed;
    std::string detail;
    const cert::CheckStatus st = cert::parseCertificateString(text, parsed, detail);
    if (st != cert::CheckStatus::Ok)
        return ::testing::AssertionFailure()
               << "parse failed: " << cert::toString(st) << " (" << detail << ")";
    const cert::CheckResult res = cert::checkCertificate(parsed);
    if (!res.ok())
        return ::testing::AssertionFailure()
               << "check failed: " << cert::toString(res.status) << " (" << res.detail
               << ")";
    return ::testing::AssertionSuccess();
}

DqbfFormula randomDqbf(Rng& rng, unsigned numUniv, unsigned numExist, unsigned numClauses)
{
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < numUniv; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < numExist; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        for (unsigned j = 0; j < 2 + rng.below(2); ++j)
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

TEST(HqsSkolem, CopycatCertificateIsIdentity)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});

    HqsOptions opts;
    opts.computeSkolem = true;
    HqsSolver solver(opts);
    ASSERT_EQ(solver.solve(f), SolveResult::Sat);
    ASSERT_TRUE(solver.skolemCertificate().has_value());
    const auto& cert = *solver.skolemCertificate();
    EXPECT_TRUE(certifiesThroughProduction(f, cert));
    // s_y must be the identity on x.
    const SkolemFunction table = cert.toTable(y, {x});
    EXPECT_EQ(table.table, (std::vector<bool>{false, true}));
}

TEST(HqsSkolem, NoCertificateOnUnsat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    HqsOptions opts;
    opts.computeSkolem = true;
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
    EXPECT_FALSE(solver.skolemCertificate().has_value());
}

TEST(HqsSkolem, NoCertificateWhenNotRequested)
{
    DqbfFormula f;
    f.addExistential({});
    HqsSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_FALSE(solver.skolemCertificate().has_value());
}

TEST(HqsSkolem, CrossDependencyCertificate)
{
    // The genuinely non-linear instance: y1(x2) == x2, y2(x1) == x1.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x2});
    const Var y2 = f.addExistential({x1});
    f.matrix().addClause({Lit::neg(x2), Lit::pos(y1)});
    f.matrix().addClause({Lit::pos(x2), Lit::neg(y1)});
    f.matrix().addClause({Lit::neg(x1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(y2)});

    HqsOptions opts;
    opts.computeSkolem = true;
    HqsSolver solver(opts);
    ASSERT_EQ(solver.solve(f), SolveResult::Sat);
    ASSERT_TRUE(solver.skolemCertificate().has_value());
    EXPECT_TRUE(certifiesThroughProduction(f, *solver.skolemCertificate()));
}

struct SkolemConfig {
    const char* name;
    bool preprocess;
    bool unitPure;
    HqsOptions::Selection selection;
};

class HqsSkolemSweep : public ::testing::TestWithParam<int> {};

TEST_P(HqsSkolemSweep, CertificatesVerifyUnderAllConfigurations)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 2713 + 5);
    const unsigned nu = 2 + static_cast<unsigned>(rng.below(3));
    const unsigned ne = 2 + static_cast<unsigned>(rng.below(3));
    DqbfFormula f = randomDqbf(rng, nu, ne, 4 + static_cast<unsigned>(rng.below(10)));
    const SolveResult expected = expansionDqbf(f);
    ASSERT_TRUE(isConclusive(expected));

    const SkolemConfig configs[] = {
        {"default", true, true, HqsOptions::Selection::MaxSat},
        {"no-preprocess", false, true, HqsOptions::Selection::MaxSat},
        {"no-unitpure", true, false, HqsOptions::Selection::MaxSat},
        {"bare", false, false, HqsOptions::Selection::MaxSat},
        {"eliminate-all", true, true, HqsOptions::Selection::All},
    };
    for (const SkolemConfig& cfg : configs) {
        HqsOptions opts;
        opts.computeSkolem = true;
        opts.preprocess = cfg.preprocess;
        opts.gateDetection = cfg.preprocess;
        opts.unitPure = cfg.unitPure;
        opts.selection = cfg.selection;
        HqsSolver solver(opts);
        ASSERT_EQ(solver.solve(f), expected) << cfg.name;
        if (expected == SolveResult::Sat) {
            ASSERT_TRUE(solver.skolemCertificate().has_value()) << cfg.name;
            EXPECT_TRUE(certifiesThroughProduction(f, *solver.skolemCertificate()))
                << cfg.name;
        } else {
            EXPECT_FALSE(solver.skolemCertificate().has_value()) << cfg.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HqsSkolemSweep, ::testing::Range(0, 60));

/// End-to-end: HQS certificates synthesize working black boxes for every
/// family (this scales further than the expansion-based extractor).
class HqsSkolemFamilies : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(HqsSkolemFamilies, CertificatesSynthesizeBoxes)
{
    const Family fam = allFamilies()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    const unsigned width = std::get<1>(GetParam());
    const PecInstance inst = makeInstance(fam, width, true);
    PecEncoding enc = encodePec(inst);

    HqsOptions opts;
    opts.computeSkolem = true;
    opts.deadline = Deadline::in(60);
    HqsSolver solver(opts);
    const SolveResult r = solver.solve(enc.formula);
    ASSERT_EQ(r, SolveResult::Sat) << inst.name;
    ASSERT_TRUE(solver.skolemCertificate().has_value());
    const AigSkolemCertificate& cert = *solver.skolemCertificate();
    EXPECT_TRUE(certifiesThroughProduction(enc.formula, cert)) << inst.name;

    // Convert the box-output functions to tables and run the completed
    // implementation against the spec.
    SynthesizedBoxes boxes;
    boxes.tables.resize(enc.boxOutputVars.size());
    for (std::size_t b = 0; b < enc.boxOutputVars.size(); ++b) {
        for (Var y : enc.boxOutputVars[b]) {
            boxes.tables[b].push_back(cert.toTable(y, enc.boxInputCopies[b]).table);
        }
    }
    if (inst.spec.inputs().size() <= 14) {
        EXPECT_TRUE(boxesRealizeSpec(inst, boxes)) << inst.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HqsSkolemFamilies,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(3u, 4u)));

} // namespace
} // namespace hqs
