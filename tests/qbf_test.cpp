// Tests for the QBF layer: prefix bookkeeping, the elimination-based AIG
// solver, the search-based cross-check solver, and their agreement with the
// brute-force oracle on randomized prefixes.
#include <gtest/gtest.h>

#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/qbf/qbf_oracle.hpp"
#include "src/qbf/search_qbf_solver.hpp"

namespace hqs {
namespace {

TEST(QbfPrefix, MergesAdjacentSameKindBlocks)
{
    QbfPrefix p;
    p.addBlock(QuantKind::Forall, {0, 1});
    p.addBlock(QuantKind::Forall, {2});
    p.addBlock(QuantKind::Exists, {3});
    ASSERT_EQ(p.numBlocks(), 2u);
    EXPECT_EQ(p.blocks()[0].vars, (std::vector<Var>{0, 1, 2}));
    EXPECT_EQ(p.numAlternations(), 1u);
    EXPECT_EQ(p.numVars(), 4u);
}

TEST(QbfPrefix, KindOfAndContains)
{
    QbfPrefix p;
    p.addBlock(QuantKind::Forall, {0});
    p.addBlock(QuantKind::Exists, {1});
    EXPECT_TRUE(p.contains(0));
    EXPECT_TRUE(p.contains(1));
    EXPECT_FALSE(p.contains(2));
    EXPECT_EQ(p.kindOf(0), QuantKind::Forall);
    EXPECT_EQ(p.kindOf(1), QuantKind::Exists);
}

TEST(QbfPrefix, RemoveVarMergesNeighbours)
{
    QbfPrefix p;
    p.addBlock(QuantKind::Exists, {0});
    p.addBlock(QuantKind::Forall, {1});
    p.addBlock(QuantKind::Exists, {2});
    p.removeVar(1);
    ASSERT_EQ(p.numBlocks(), 1u);
    EXPECT_EQ(p.blocks()[0].kind, QuantKind::Exists);
    EXPECT_EQ(p.blocks()[0].vars, (std::vector<Var>{0, 2}));
}

TEST(QbfPrefix, RemoveLastVarEmptiesPrefix)
{
    QbfPrefix p;
    p.addVar(QuantKind::Forall, 5);
    p.removeVar(5);
    EXPECT_TRUE(p.empty());
}

TEST(QbfFromParsed, FreeVariablesBecomeOuterExistentials)
{
    const auto parsed = parseDqdimacsString("p cnf 3 1\na 2 0\ne 3 0\n1 2 3 0\n");
    const QbfProblem q = qbfFromParsed(parsed);
    ASSERT_EQ(q.prefix.numBlocks(), 3u);
    EXPECT_EQ(q.prefix.blocks()[0].kind, QuantKind::Exists);
    EXPECT_EQ(q.prefix.blocks()[0].vars, (std::vector<Var>{0}));
    EXPECT_EQ(q.prefix.blocks()[1].kind, QuantKind::Forall);
}

TEST(QbfFromParsed, RejectsHenkinLines)
{
    const auto parsed = parseDqdimacsString("p cnf 2 1\na 1 0\nd 2 1 0\n1 2 0\n");
    EXPECT_THROW(qbfFromParsed(parsed), ParseError);
}

// ----- Elimination solver on hand-crafted formulas -------------------------

/// Helper: solve `prefix : matrix-built-from-cnf` with the AIG solver.
SolveResult solveElim(const QbfProblem& q, AigQbfOptions opts = {})
{
    Aig aig;
    const AigEdge matrix = buildFromCnf(aig, q.matrix);
    AigQbfSolver solver(opts);
    return solver.solve(aig, matrix, q.prefix);
}

TEST(AigQbfSolver, ForallExistsEquality)
{
    // forall x exists y: (x<->y)  — SAT (y copies x).
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0), Lit::neg(1)});
    q.matrix.addClause({Lit::neg(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Forall, 0);
    q.prefix.addVar(QuantKind::Exists, 1);
    EXPECT_EQ(solveElim(q), SolveResult::Sat);
}

TEST(AigQbfSolver, ExistsForallEqualityIsUnsat)
{
    // exists y forall x: (x<->y) — UNSAT.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0), Lit::neg(1)});
    q.matrix.addClause({Lit::neg(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Exists, 1);
    q.prefix.addVar(QuantKind::Forall, 0);
    EXPECT_EQ(solveElim(q), SolveResult::Unsat);
}

TEST(AigQbfSolver, TrueAndFalseConstants)
{
    QbfProblem taut;
    taut.prefix.addVar(QuantKind::Forall, 0);
    EXPECT_EQ(solveElim(taut), SolveResult::Sat);

    QbfProblem contra;
    contra.matrix.addClause(Clause{});
    contra.prefix.addVar(QuantKind::Exists, 0);
    EXPECT_EQ(solveElim(contra), SolveResult::Unsat);
}

TEST(AigQbfSolver, TwoAlternations)
{
    // forall x exists y forall z: (x | y | z)&(~x | ~y | ~z) — y = ~x works:
    // clause1 = x|~x|z.. wait: y=~x gives (x|~x|z)=T and (~x|x|~z)=T. SAT.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0), Lit::pos(1), Lit::pos(2)});
    q.matrix.addClause({Lit::neg(0), Lit::neg(1), Lit::neg(2)});
    q.prefix.addVar(QuantKind::Forall, 0);
    q.prefix.addVar(QuantKind::Exists, 1);
    q.prefix.addVar(QuantKind::Forall, 2);
    EXPECT_EQ(solveElim(q), SolveResult::Sat);
    EXPECT_TRUE(bruteForceQbf(q));
}

TEST(AigQbfSolver, UnsupportedPrefixVariablesAreDropped)
{
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0)});
    q.prefix.addVar(QuantKind::Forall, 5); // not in the matrix
    q.prefix.addVar(QuantKind::Exists, 0);
    AigQbfSolver solver;
    Aig aig;
    const AigEdge m = buildFromCnf(aig, q.matrix);
    EXPECT_EQ(solver.solve(aig, m, q.prefix), SolveResult::Sat);
}

TEST(AigQbfSolver, UnitPureShortcutsCountInStats)
{
    // exists y forall x: y & (x | y): y is positive unit.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(1)});
    q.matrix.addClause({Lit::pos(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Exists, 1);
    q.prefix.addVar(QuantKind::Forall, 0);
    Aig aig;
    const AigEdge m = buildFromCnf(aig, q.matrix);
    AigQbfSolver solver;
    EXPECT_EQ(solver.solve(aig, m, q.prefix), SolveResult::Sat);
    EXPECT_GE(solver.stats().unitEliminations, 1u);
}

TEST(AigQbfSolver, UniversalUnitIsUnsat)
{
    // forall x: x  — universal unit, unsatisfied.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0)});
    q.prefix.addVar(QuantKind::Forall, 0);
    EXPECT_EQ(solveElim(q), SolveResult::Unsat);
}

TEST(AigQbfSolver, DeadlineYieldsTimeout)
{
    // A moderately large random QBF with an expired deadline.
    Rng rng(9);
    QbfProblem q;
    const Var n = 24;
    q.matrix.ensureVars(n);
    for (int c = 0; c < 100; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v)
        q.prefix.addVar(v % 2 == 0 ? QuantKind::Forall : QuantKind::Exists, v);
    AigQbfOptions opts;
    opts.deadline = Deadline::in(1e-9);
    const SolveResult r = solveElim(q, opts);
    EXPECT_TRUE(r == SolveResult::Timeout || isConclusive(r));
}

TEST(AigQbfSolver, NodeLimitYieldsMemout)
{
    Rng rng(11);
    QbfProblem q;
    const Var n = 20;
    q.matrix.ensureVars(n);
    for (int c = 0; c < 90; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v)
        q.prefix.addVar(v % 2 == 0 ? QuantKind::Forall : QuantKind::Exists, v);
    AigQbfOptions opts;
    opts.nodeLimit = 10; // absurdly small: must trip unless solved instantly
    opts.fraig = false;
    const SolveResult r = solveElim(q, opts);
    EXPECT_TRUE(r == SolveResult::Memout || isConclusive(r));
}

// ----- Randomized agreement: elimination vs search vs oracle ---------------

class RandomQbfAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomQbfAgreement, AllThreeSolversAgree)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
    const Var n = 5 + static_cast<Var>(rng.below(4)); // 5..8 vars
    QbfProblem q;
    q.matrix.ensureVars(n);
    const int m = static_cast<int>(n) * 2 + static_cast<int>(rng.below(2 * n));
    for (int c = 0; c < m; ++c) {
        Clause cl;
        const int k = 2 + static_cast<int>(rng.below(2));
        for (int j = 0; j < k; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v) {
        q.prefix.addVar(rng.flip() ? QuantKind::Forall : QuantKind::Exists, v);
    }

    const bool expected = bruteForceQbf(q);

    EXPECT_EQ(solveElim(q) == SolveResult::Sat, expected);

    Aig aig;
    const AigEdge matrix = buildFromCnf(aig, q.matrix);
    EXPECT_EQ(searchQbfSolve(aig, matrix, q.prefix) == SolveResult::Sat, expected);

    // Elimination with optimizations off must agree, too.
    AigQbfOptions plain;
    plain.unitPure = false;
    plain.fraig = false;
    EXPECT_EQ(solveElim(q, plain) == SolveResult::Sat, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomQbfAgreement, ::testing::Range(0, 60));

} // namespace
} // namespace hqs
