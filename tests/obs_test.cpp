// Observability subsystem tests: metrics registry semantics, the span
// tracer (including death-site capture), DIMACS-safe stat lines, and the
// golden-file schema checks for the Chrome trace and the BENCH_*.json
// reports.
//
// Golden files live in tests/data/golden/.  Run with
// HQS_UPDATE_GOLDEN=1 in the environment to rewrite them from the current
// output after an intentional format change.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/obs/obs.hpp"
#include "src/obs/report.hpp"

using namespace hqs;

namespace {

std::string goldenPath(const std::string& name)
{
    return std::string(HQS_TEST_DATA_DIR) + "/golden/" + name;
}

/// Compare @p actual against the golden file byte-for-byte; with
/// HQS_UPDATE_GOLDEN set, rewrite the golden file instead.
void expectMatchesGolden(const std::string& actual, const std::string& name)
{
    const std::string path = goldenPath(name);
    if (std::getenv("HQS_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with HQS_UPDATE_GOLDEN=1)";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(want.str(), actual) << "golden mismatch for " << name;
}

// --- metrics registry -------------------------------------------------------

TEST(ObsMetrics, CounterAccumulates)
{
    const obs::MetricId id = obs::metric("test.counter.a", obs::MetricKind::Counter);
    obs::MetricScope scope;
    scope.registry().add(id, 2);
    scope.registry().add(id, 3);
    EXPECT_EQ(scope.value(id), 5);
}

TEST(ObsMetrics, KindMismatchThrows)
{
    obs::metric("test.kind.fixed", obs::MetricKind::Counter);
    EXPECT_EQ(obs::metric("test.kind.fixed", obs::MetricKind::Counter).kind,
              obs::MetricKind::Counter);
    EXPECT_THROW(obs::metric("test.kind.fixed", obs::MetricKind::Gauge),
                 std::logic_error);
}

TEST(ObsMetrics, GaugeKeepsHighWaterMark)
{
    const obs::MetricId id = obs::metric("test.gauge.peak", obs::MetricKind::Gauge);
    obs::MetricScope scope;
    scope.registry().setMax(id, 5);
    scope.registry().setMax(id, 9);
    scope.registry().setMax(id, 3);
    EXPECT_EQ(scope.value(id), 9);
}

TEST(ObsMetrics, HistogramTracksCountSumMaxBuckets)
{
    const obs::MetricId id = obs::metric("test.hist.lat", obs::MetricKind::Histogram);
    obs::MetricScope scope;
    scope.registry().observe(id, 1);
    scope.registry().observe(id, 7);
    scope.registry().observe(id, 100);
    EXPECT_EQ(scope.value(id), 3); // value() of a histogram is its count
    EXPECT_EQ(scope.registry().histogramSum(id), 108);

    bool found = false;
    for (const obs::MetricValue& m : scope.snapshot()) {
        if (m.name != "test.hist.lat") continue;
        found = true;
        EXPECT_EQ(m.kind, obs::MetricKind::Histogram);
        EXPECT_EQ(m.count, 3);
        EXPECT_EQ(m.sum, 108);
        EXPECT_EQ(m.max, 100);
        std::int64_t inBuckets = 0;
        for (std::int64_t b : m.buckets) inBuckets += b;
        EXPECT_EQ(inBuckets, 3);
    }
    EXPECT_TRUE(found);
}

TEST(ObsMetrics, BucketIndexIsMonotonicAndClamped)
{
    EXPECT_EQ(obs::Registry::bucketIndex(-5), 0u);
    EXPECT_EQ(obs::Registry::bucketIndex(0), 0u);
    std::uint32_t prev = 0;
    for (std::int64_t v = 1; v < (std::int64_t{1} << 40); v *= 2) {
        const std::uint32_t b = obs::Registry::bucketIndex(v);
        EXPECT_GE(b, prev);
        EXPECT_LT(b, obs::kHistogramBuckets);
        prev = b;
    }
    EXPECT_EQ(obs::Registry::bucketIndex(std::int64_t{1} << 40),
              obs::kHistogramBuckets - 1);
}

TEST(ObsMetrics, SnapshotIsSortedAndSkipsZeros)
{
    const obs::MetricId za = obs::metric("test.z.sorted", obs::MetricKind::Counter);
    const obs::MetricId ab = obs::metric("test.a.sorted", obs::MetricKind::Counter);
    const obs::MetricId untouched =
        obs::metric("test.m.untouched", obs::MetricKind::Counter);
    obs::MetricScope scope;
    scope.registry().add(za, 1);
    scope.registry().add(ab, 1);

    const std::vector<obs::MetricValue> snap = scope.snapshot();
    std::size_t posA = snap.size(), posZ = snap.size();
    for (std::size_t i = 0; i < snap.size(); ++i) {
        if (snap[i].name == "test.a.sorted") posA = i;
        if (snap[i].name == "test.z.sorted") posZ = i;
        EXPECT_NE(snap[i].name, "test.m.untouched");
    }
    ASSERT_LT(posA, snap.size());
    ASSERT_LT(posZ, snap.size());
    EXPECT_LT(posA, posZ);

    bool sawUntouched = false;
    for (const obs::MetricValue& m : scope.snapshot(/*skipZero=*/false))
        if (m.name == "test.m.untouched") sawUntouched = true;
    EXPECT_TRUE(sawUntouched);
    EXPECT_EQ(scope.value(untouched), 0);
}

TEST(ObsMetrics, MergeAddsCountersAndMaxesGauges)
{
    const obs::MetricId c = obs::metric("test.merge.counter", obs::MetricKind::Counter);
    const obs::MetricId g = obs::metric("test.merge.gauge", obs::MetricKind::Gauge);
    const obs::MetricId h = obs::metric("test.merge.hist", obs::MetricKind::Histogram);
    obs::Registry a, b;
    a.add(c, 2);
    b.add(c, 3);
    a.setMax(g, 10);
    b.setMax(g, 7);
    a.observe(h, 4);
    b.observe(h, 20);
    b.mergeInto(a);
    EXPECT_EQ(a.value(c), 5);
    EXPECT_EQ(a.value(g), 10);
    EXPECT_EQ(a.value(h), 2);
    EXPECT_EQ(a.histogramSum(h), 24);
    for (const obs::MetricValue& m : a.snapshot()) {
        if (m.name == "test.merge.hist") {
            EXPECT_EQ(m.max, 20);
        }
    }
}

TEST(ObsMetrics, ScopesNestAndMergeIntoParent)
{
    const obs::MetricId id = obs::metric("test.scope.nest", obs::MetricKind::Counter);
    obs::MetricScope outer;
    {
        obs::MetricScope inner;
        obs::currentRegistry().add(id, 3);
        EXPECT_EQ(inner.value(id), 3);
        EXPECT_EQ(outer.value(id), 0); // not merged yet
    }
    EXPECT_EQ(outer.value(id), 3);
}

TEST(ObsMetrics, BindRegistryRoutesWorkerThread)
{
    const obs::MetricId id = obs::metric("test.bind.worker", obs::MetricKind::Counter);
    obs::MetricScope scope;
    std::thread worker([&scope, id] {
        obs::BindRegistry bind(scope.registry());
        obs::currentRegistry().add(id, 7);
    });
    worker.join();
    EXPECT_EQ(scope.value(id), 7);
}

#if HQS_OBS_ENABLED
TEST(ObsMetrics, MacrosUpdateCurrentScope)
{
    obs::MetricScope scope;
    OBS_COUNT("test.macro.count", 1);
    OBS_COUNT("test.macro.count", 4);
    OBS_GAUGE_MAX("test.macro.gauge", 11);
    OBS_GAUGE_MAX("test.macro.gauge", 6);
    OBS_OBSERVE("test.macro.hist", 42);
    EXPECT_EQ(scope.value(obs::metric("test.macro.count", obs::MetricKind::Counter)), 5);
    EXPECT_EQ(scope.value(obs::metric("test.macro.gauge", obs::MetricKind::Gauge)), 11);
    EXPECT_EQ(scope.value(obs::metric("test.macro.hist", obs::MetricKind::Histogram)),
              1);
}
#endif // HQS_OBS_ENABLED

TEST(ObsMetrics, PhaseScopeAccumulatesDuration)
{
    const obs::MetricId id = obs::metric("test.phase.us", obs::MetricKind::Counter);
    obs::MetricScope scope;
    {
        obs::PhaseScope phase("test.phase.span", id);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // 2 ms of wall time must register at least ~1000 µs even on a coarse
    // clock.
    EXPECT_GE(scope.value(id), 1000);
}

// --- span tracer ------------------------------------------------------------

TEST(ObsTrace, DisabledSpansRecordNothing)
{
    obs::enableTracing(false);
    obs::clearTrace();
    {
        obs::SpanScope a("quiet.outer");
        obs::SpanScope b("quiet.inner");
    }
    EXPECT_EQ(obs::traceSpanCount(), 0u);
}

TEST(ObsTrace, RecordsNestedSpansWithArgs)
{
    obs::enableTracing(true);
    obs::clearTrace();
    {
        obs::SpanScope outer("t.outer");
        {
            obs::SpanScope inner("t.inner");
            inner.arg("nodes", 42);
        }
    }
    obs::enableTracing(false);
    EXPECT_EQ(obs::traceSpanCount(), 2u);

    std::ostringstream os;
    obs::writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"t.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"t.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"nodes\":42}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    obs::clearTrace();
}

TEST(ObsTrace, CurrentSpanNameTracksInnermost)
{
    EXPECT_STREQ(obs::currentSpanName(), "");
    obs::SpanScope outer("n.outer");
    EXPECT_STREQ(obs::currentSpanName(), "n.outer");
    {
        obs::SpanScope inner("n.inner");
        EXPECT_STREQ(obs::currentSpanName(), "n.inner");
    }
    EXPECT_STREQ(obs::currentSpanName(), "n.outer");
}

TEST(ObsTrace, DeathSiteNamesInnermostUnwoundSpan)
{
    obs::clearDeathSite();
    try {
        obs::SpanScope outer("die.outer");
        obs::SpanScope inner("die.inner");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }
    EXPECT_STREQ(obs::deathSite(), "die.inner");
    obs::clearDeathSite();
    EXPECT_STREQ(obs::deathSite(), "");
}

TEST(ObsTrace, SpanAfterCatchDoesNotFakeDeathSite)
{
    obs::clearDeathSite();
    try {
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
        obs::SpanScope cleanup("handled.cleanup");
    }
    {
        obs::SpanScope calm("calm.span");
    }
    EXPECT_STREQ(obs::deathSite(), "");
}

// --- reports ----------------------------------------------------------------

TEST(ObsReport, StatLinesAreDimacsComments)
{
    std::vector<obs::MetricValue> metrics;
    obs::MetricValue c;
    c.name = "hqs.elim.universal";
    c.kind = obs::MetricKind::Counter;
    c.value = 3;
    metrics.push_back(c);
    obs::MetricValue h;
    h.name = "pool.queue_latency_us";
    h.kind = obs::MetricKind::Histogram;
    h.count = 2;
    h.sum = 30;
    h.max = 25;
    metrics.push_back(h);

    std::ostringstream os;
    obs::writeStatLines(os, metrics);
    EXPECT_EQ(os.str(), "c stat hqs.elim.universal 3\n"
                        "c stat pool.queue_latency_us.count 2\n"
                        "c stat pool.queue_latency_us.sum 30\n"
                        "c stat pool.queue_latency_us.max 25\n");
}

TEST(ObsReport, ChromeTraceMatchesGoldenSchema)
{
    obs::enableTracing(true);
    obs::clearTrace();
    {
        obs::SpanScope solve("hqs.solve");
        {
            obs::SpanScope prep("hqs.preprocess");
            prep.arg("gates", 5);
        }
        {
            obs::SpanScope qbf("hqs.qbf_backend");
        }
    }
    obs::enableTracing(false);

    std::ostringstream os;
    obs::writeChromeTrace(os);
    obs::clearTrace();

    // Timestamps, durations, and thread ordinals vary run to run; zero them
    // so the golden comparison pins structure and schema only.
    std::string json = os.str();
    for (const char* key : {"\"ts\":", "\"dur\":", "\"tid\":"}) {
        std::size_t pos = 0;
        while ((pos = json.find(key, pos)) != std::string::npos) {
            pos += std::string(key).size();
            std::size_t end = pos;
            while (end < json.size() &&
                   (std::isdigit(static_cast<unsigned char>(json[end])) ||
                    json[end] == '.'))
                ++end;
            json.replace(pos, end - pos, "0");
        }
    }
    expectMatchesGolden(json, "chrome_trace.json");
}

TEST(ObsReport, BenchTable1MatchesGoldenSchema)
{
    obs::BenchTable1Report report;
    report.timeoutSeconds = 2.5;
    report.hqsNodeLimit = 200000;
    report.idqGroundClauseLimit = 400000;
    obs::BenchFamilyRow row;
    row.family = "adder";
    row.instances = 4;
    row.hqs = {2, 1, 1, 0, 123.5};
    row.idq = {1, 1, 1, 1, 980.25};
    row.wrongResults = 0;
    report.families.push_back(row);
    // v2: per-instance certification rows (one certified SAT, one UNSAT
    // with the certification cells at their defaults).
    obs::BenchInstanceRow sat;
    sat.name = "adder_w3_sat";
    sat.family = "adder";
    sat.hqsResult = "SAT";
    sat.certified = true;
    sat.certValid = true;
    sat.certExtractMs = 1.5;
    sat.certCheckMs = 2.25;
    sat.certSizeNodes = 169;
    sat.portfolioWinnerFamily = "cegar";
    report.instances.push_back(sat);
    obs::BenchInstanceRow unsat;
    unsat.name = "adder_w3_unsat";
    unsat.family = "adder";
    unsat.hqsResult = "UNSAT";
    report.instances.push_back(unsat);
    // v3: per-engine-family portfolio columns.
    report.familySolved = {{"cegar", 1}, {"elimination", 2}};
    report.familyWins = {{"cegar", 1}, {"elimination", 1}};
    report.hqsSolvedTotal = 3;
    report.idqSolvedTotal = 2;
    report.solvedUnderOneSecond = 3;
    report.hqsOnlySolved = 1;
    report.maxMaxSatMs = 12.75;
    report.unitPureShareMax = 0.03125;
    report.wrongResults = 0;
    obs::MetricValue m;
    m.name = "hqs.elim.universal";
    m.kind = obs::MetricKind::Counter;
    m.value = 17;
    report.metrics.push_back(m);

    std::ostringstream os;
    obs::writeBenchTable1Json(os, report);
    expectMatchesGolden(os.str(), "bench_table1.json");
}

TEST(ObsReport, BenchMicroMatchesGoldenSchema)
{
    obs::BenchMicroReport report;
    report.overheadNs = {{"span_disarmed_ns", 2.25}, {"counter_add_ns", 9.5}};
    obs::BenchMicroRow row;
    row.name = "BM_ObsSpanDisarmed";
    row.iterations = 1000000;
    row.realNs = 2.25;
    row.cpuNs = 2.125;
    row.itemsPerSecond = 444444444.0;
    report.benchmarks.push_back(row);
    obs::BenchMicroRow bare;
    bare.name = "BM_FraigReduce/500";
    bare.iterations = 32;
    bare.realNs = 1500000.5;
    bare.cpuNs = 1499000.25;
    report.benchmarks.push_back(bare);
    obs::BenchMicroRow kernel;
    kernel.name = "BM_GcMarkCompact/10000";
    kernel.iterations = 128;
    kernel.realNs = 80000.0;
    kernel.cpuNs = 79500.0;
    kernel.itemsPerSecond = 125000000.0;
    report.benchmarks.push_back(kernel);

    std::ostringstream os;
    obs::writeBenchMicroJson(os, report);
    expectMatchesGolden(os.str(), "bench_micro.json");
}

TEST(ObsReport, MetricsJsonRendersHistograms)
{
    std::vector<obs::MetricValue> metrics;
    obs::MetricValue h;
    h.name = "lat";
    h.kind = obs::MetricKind::Histogram;
    h.count = 2;
    h.sum = 6;
    h.max = 5;
    h.buckets[1] = 1;
    h.buckets[3] = 1;
    metrics.push_back(h);
    std::ostringstream os;
    obs::writeMetricsJson(os, metrics);
    // Trailing zero buckets are trimmed: buckets up to index 3 survive.
    EXPECT_EQ(os.str(), "{\n"
                        "  \"lat\": {\n"
                        "    \"count\": 2,\n"
                        "    \"sum\": 6,\n"
                        "    \"max\": 5,\n"
                        "    \"buckets\": [\n"
                        "      0,\n"
                        "      1,\n"
                        "      0,\n"
                        "      1\n"
                        "    ]\n"
                        "  }\n"
                        "}\n");
}

} // namespace
