// Unit tests for src/cnf: clause normalization, CNF evaluation, and the
// DIMACS/QDIMACS/DQDIMACS reader/writer.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "src/cnf/clause.hpp"
#include "src/cnf/cnf.hpp"
#include "src/cnf/dimacs.hpp"

namespace hqs {
namespace {

TEST(Clause, NormalizeSortsAndDeduplicates)
{
    Clause c{Lit::pos(3), Lit::neg(1), Lit::pos(3), Lit::pos(0)};
    EXPECT_FALSE(c.normalize());
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0], Lit::pos(0));
    EXPECT_EQ(c[1], Lit::neg(1));
    EXPECT_EQ(c[2], Lit::pos(3));
}

TEST(Clause, NormalizeDetectsTautology)
{
    Clause c{Lit::pos(2), Lit::neg(2)};
    EXPECT_TRUE(c.normalize());
}

TEST(Clause, EmptyClause)
{
    Clause c;
    EXPECT_FALSE(c.normalize());
    EXPECT_TRUE(c.empty());
}

TEST(Clause, Contains)
{
    Clause c{Lit::pos(1), Lit::neg(2)};
    EXPECT_TRUE(c.contains(Lit::pos(1)));
    EXPECT_TRUE(c.contains(Lit::neg(2)));
    EXPECT_FALSE(c.contains(Lit::neg(1)));
}

TEST(Cnf, AddClauseGrowsVars)
{
    Cnf f;
    f.addClause({Lit::pos(4)});
    EXPECT_EQ(f.numVars(), 5u);
    EXPECT_EQ(f.numClauses(), 1u);
}

TEST(Cnf, TautologiesAreDropped)
{
    Cnf f;
    EXPECT_FALSE(f.addClause({Lit::pos(0), Lit::neg(0)}));
    EXPECT_EQ(f.numClauses(), 0u);
}

TEST(Cnf, EvaluateRespectsSemantics)
{
    // (x0 | ~x1) & (x1 | x2)
    Cnf f;
    f.addClause({Lit::pos(0), Lit::neg(1)});
    f.addClause({Lit::pos(1), Lit::pos(2)});
    EXPECT_TRUE(f.evaluate({true, true, false}));
    EXPECT_TRUE(f.evaluate({false, false, true}));
    EXPECT_FALSE(f.evaluate({false, true, false}));
    EXPECT_FALSE(f.evaluate({false, false, false}));
}

TEST(Cnf, EmptyClauseDetected)
{
    Cnf f;
    f.addClause(Clause{});
    EXPECT_TRUE(f.hasEmptyClause());
    EXPECT_FALSE(f.evaluate({}));
}

TEST(Dimacs, ParsePlainCnf)
{
    const auto p = parseDqdimacsString("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(p.matrix.numVars(), 3u);
    ASSERT_EQ(p.matrix.numClauses(), 2u);
    EXPECT_TRUE(p.blocks.empty());
    EXPECT_TRUE(p.henkin.empty());
    EXPECT_TRUE(p.matrix.clause(0).contains(Lit::pos(0)));
    EXPECT_TRUE(p.matrix.clause(0).contains(Lit::neg(1)));
}

TEST(Dimacs, ParseQdimacsPrefix)
{
    const auto p = parseDqdimacsString("p cnf 4 1\na 1 2 0\ne 3 4 0\n1 3 0\n");
    ASSERT_EQ(p.blocks.size(), 2u);
    EXPECT_EQ(p.blocks[0].kind, QuantKind::Forall);
    EXPECT_EQ(p.blocks[0].vars, (std::vector<Var>{0, 1}));
    EXPECT_EQ(p.blocks[1].kind, QuantKind::Exists);
    EXPECT_EQ(p.blocks[1].vars, (std::vector<Var>{2, 3}));
}

TEST(Dimacs, ParseDqdimacsHenkinLines)
{
    // Example 1 from the paper: forall x1 x2 exists y1(x1) y2(x2).
    const auto p = parseDqdimacsString(
        "p cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n1 3 0\n-2 4 0\n");
    ASSERT_EQ(p.henkin.size(), 2u);
    EXPECT_EQ(p.henkin[0].var, 2u);
    EXPECT_EQ(p.henkin[0].deps, (std::vector<Var>{0}));
    EXPECT_EQ(p.henkin[1].var, 3u);
    EXPECT_EQ(p.henkin[1].deps, (std::vector<Var>{1}));
}

TEST(Dimacs, RoundTripPreservesStructure)
{
    const std::string text =
        "p cnf 5 3\na 1 2 0\ne 5 0\nd 3 1 0\nd 4 2 0\n1 3 5 0\n-2 4 0\n-3 -4 0\n";
    const auto p1 = parseDqdimacsString(text);
    const auto p2 = parseDqdimacsString(toDqdimacsString(p1));
    EXPECT_EQ(p1.blocks, p2.blocks);
    EXPECT_EQ(p1.henkin, p2.henkin);
    ASSERT_EQ(p1.matrix.numClauses(), p2.matrix.numClauses());
    for (std::size_t i = 0; i < p1.matrix.numClauses(); ++i)
        EXPECT_EQ(p1.matrix.clause(i), p2.matrix.clause(i));
}

TEST(Dimacs, MissingHeaderThrows)
{
    EXPECT_THROW(parseDqdimacsString("1 2 0\n"), ParseError);
    EXPECT_THROW(parseDqdimacsString("p dnf 1 1\n1 0\n"), ParseError);
}

TEST(Dimacs, OutOfRangeLiteralThrows)
{
    EXPECT_THROW(parseDqdimacsString("p cnf 2 1\n3 0\n"), ParseError);
    EXPECT_THROW(parseDqdimacsString("p cnf 2 1\na 5 0\n1 0\n"), ParseError);
    EXPECT_THROW(parseDqdimacsString("p cnf 2 1\nd 1 5 0\n1 0\n"), ParseError);
}

TEST(Dimacs, UnterminatedClauseThrows)
{
    EXPECT_THROW(parseDqdimacsString("p cnf 2 1\n1 2\n"), ParseError);
}

TEST(Dimacs, BadTokenThrows)
{
    EXPECT_THROW(parseDqdimacsString("p cnf 2 1\n1 x 0\n"), ParseError);
}

TEST(Dimacs, CommentsIgnoredEverywhere)
{
    const auto p = parseDqdimacsString(
        "c head\np cnf 2 1\nc mid\na 1 0\nc before clause\n1 -2 0\n");
    EXPECT_EQ(p.blocks.size(), 1u);
    EXPECT_EQ(p.matrix.numClauses(), 1u);
}

TEST(Dimacs, FileNotFoundThrows)
{
    EXPECT_THROW(parseDqdimacsFile("/nonexistent/file.dqdimacs"), ParseError);
}

// Every file in the corrupt-input corpus must be rejected with a ParseError
// (not accepted, not crash).  Each file exercises one throw branch of
// parseDqdimacs; the batch scheduler's survival on the same corpus is
// covered in fault_test.cpp.
TEST(Dimacs, CorruptCorpusIsRejectedWithParseError)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(HQS_TEST_DATA_DIR) / "corrupt";
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".dqdimacs") continue;
        ++count;
        EXPECT_THROW(parseDqdimacsFile(entry.path().string()), ParseError)
            << "accepted corrupt file " << entry.path();
    }
    EXPECT_GE(count, 13u); // one per ParseError branch of the parser
}

} // namespace
} // namespace hqs
