// End-to-end integration tests through the file formats: parse DQDIMACS /
// QDIMACS from disk, solve with every engine, and round-trip generated PEC
// instances through the text format.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/aig/cnf_bridge.hpp"

namespace hqs {
namespace {

std::string dataPath(const std::string& file)
{
    const char* dir = std::getenv("HQS_TEST_DATA");
    if (dir) return std::string(dir) + "/" + file;
    return std::string(HQS_TEST_DATA_DIR) + "/" + file;
}

TEST(Integration, DqdimacsFileSolvesAsSat)
{
    const auto parsed = parseDqdimacsFile(dataPath("example1_sat.dqdimacs"));
    DqbfFormula f = DqbfFormula::fromParsed(parsed);
    EXPECT_EQ(f.universals().size(), 2u);
    EXPECT_EQ(f.existentials().size(), 2u);

    HqsSolver hqs;
    EXPECT_EQ(hqs.solve(f), SolveResult::Sat);
    IdqSolver idq;
    EXPECT_EQ(idq.solve(f), SolveResult::Sat);
    EXPECT_TRUE(bruteForceDqbf(f));
}

TEST(Integration, DqdimacsFileSolvesAsUnsat)
{
    const auto parsed = parseDqdimacsFile(dataPath("example1_unsat.dqdimacs"));
    DqbfFormula f = DqbfFormula::fromParsed(parsed);
    HqsSolver hqs;
    EXPECT_EQ(hqs.solve(f), SolveResult::Unsat);
    IdqSolver idq;
    EXPECT_EQ(idq.solve(f), SolveResult::Unsat);
    EXPECT_FALSE(bruteForceDqbf(f));
}

TEST(Integration, QdimacsThroughDqbfSolver)
{
    // A QBF is a DQBF; the HQS pipeline must handle plain QDIMACS input.
    {
        const auto parsed = parseDqdimacsFile(dataPath("qbf_2alt_sat.qdimacs"));
        DqbfFormula f = DqbfFormula::fromParsed(parsed);
        HqsSolver solver;
        EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    }
    {
        const auto parsed = parseDqdimacsFile(dataPath("qbf_unsat.qdimacs"));
        DqbfFormula f = DqbfFormula::fromParsed(parsed);
        HqsSolver solver;
        EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
    }
}

TEST(Integration, QdimacsThroughQbfSolver)
{
    const auto parsed = parseDqdimacsFile(dataPath("qbf_2alt_sat.qdimacs"));
    const QbfProblem q = qbfFromParsed(parsed);
    Aig aig;
    const AigEdge matrix = buildFromCnf(aig, q.matrix);
    AigQbfSolver solver;
    EXPECT_EQ(solver.solve(aig, matrix, q.prefix), SolveResult::Sat);
}

TEST(Integration, PecInstanceRoundTripsThroughDqdimacs)
{
    // Generate, serialize, re-parse, solve: verdicts must survive the text
    // format.
    for (bool realizable : {true, false}) {
        const PecInstance inst = makeInstance(Family::Bitcell, 3, realizable);
        PecEncoding enc = encodePec(inst);

        const std::string text = toDqdimacsString(enc.formula.toParsed());
        DqbfFormula reparsed = DqbfFormula::fromParsed(parseDqdimacsString(text));
        EXPECT_EQ(reparsed.universals().size(), enc.formula.universals().size());
        EXPECT_EQ(reparsed.existentials().size(), enc.formula.existentials().size());

        HqsOptions opts;
        opts.deadline = Deadline::in(30);
        HqsSolver direct(opts), viaText(opts);
        const SolveResult a = direct.solve(std::move(enc.formula));
        const SolveResult b = viaText.solve(std::move(reparsed));
        EXPECT_EQ(a, b) << inst.name;
        EXPECT_EQ(a == SolveResult::Sat, realizable) << inst.name;
    }
}

} // namespace
} // namespace hqs
