# cert/cli-roundtrip: end-to-end certification through the binaries.
#   1. dqbf_solve --certify=FILE on the SAT sample must exit 10 (SAT) and
#      write a certificate that dqbf_check accepts (exit 0).
#   2. dqbf_check --formula must enforce the hash binding against the
#      original instance.
#   3. Every corpus mutation under data/cert/ must be rejected with exit 2
#      (structured rejection), never a crash or an accept.
#
# Invoked as: cmake -DDQBF_SOLVE=... -DDQBF_CHECK=... -DDATA_DIR=...
#             -DWORK_DIR=... -P cert_cli_roundtrip.cmake

file(MAKE_DIRECTORY "${WORK_DIR}")
set(cert "${WORK_DIR}/example1_sat.cert")
set(instance "${DATA_DIR}/example1_sat.dqdimacs")

execute_process(COMMAND "${DQBF_SOLVE}" "--certify=${cert}" "${instance}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 10)
  message(FATAL_ERROR "dqbf_solve --certify exited ${rc} (want 10/SAT): ${out}")
endif()

execute_process(COMMAND "${DQBF_CHECK}" "${cert}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqbf_check rejected a fresh certificate (exit ${rc}): ${out}")
endif()

execute_process(COMMAND "${DQBF_CHECK}" "--formula=${instance}" "${cert}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqbf_check --formula rejected the matching instance "
                      "(exit ${rc}): ${out}")
endif()

execute_process(COMMAND "${DQBF_CHECK}"
                "--formula=${DATA_DIR}/example1_unsat.dqdimacs" "${cert}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "dqbf_check --formula accepted a certificate for a "
                      "different instance (exit ${rc}): ${out}")
endif()

file(GLOB corpus "${DATA_DIR}/cert/*.cert")
list(LENGTH corpus n)
if(n LESS 5)
  message(FATAL_ERROR "corrupt-certificate corpus is missing files (found ${n})")
endif()
foreach(bad ${corpus})
  execute_process(COMMAND "${DQBF_CHECK}" "${bad}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "dqbf_check on ${bad} exited ${rc} (want 2): ${out}")
  endif()
endforeach()

message(STATUS "cert/cli-roundtrip: solve -> check round trip and corpus rejections ok")
