// Result-cache and strategy-spec tests: canonicalization invariance (the
// syntactic permutations PEC workloads actually produce must collide on one
// key; semantically distinct formulas must not), the LRU/TTL/byte-budget
// eviction discipline under an injected clock, typed rejection of damaged
// persistent entries, certificate hash-binding re-verification, field-tagged
// strategy-spec validation, batch dedup/cache behavior, and a service
// loopback proving a repeated instance is answered from the cache with its
// certificate intact.  The EnvFaultCache suite at the bottom runs only under
// the faults/* ctest partition (HQS_FAULT=cache-load:1 / cache-store:1) and
// asserts a cache-layer fault degrades to a miss instead of failing the job.
//
// The whole file also compiles into the tsan/* and asan/* runtime binaries,
// so the cache's one-mutex shard and the shared persistent directory are
// sanitizer-checked under the concurrent batch scheduler.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/fault.hpp"
#include "src/cache/canonical.hpp"
#include "src/cache/result_cache.hpp"
#include "src/cert/certificate.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/runtime/batch.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/service/client.hpp"
#include "src/service/http.hpp"
#include "src/service/server.hpp"
#include "src/strategy/spec.hpp"

using namespace hqs;

namespace {

// Forall u1 u2 exists e3(u1) e4(u2): (u1 <-> e3) and (u2 <-> e4) — SAT.
const char* kBaseFormula =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

// Forall u1 exists e2 with empty support: e2 <-> u1 — UNSAT.
const char* kUnsatFormula =
    "p cnf 2 2\n"
    "a 1 0\n"
    "d 2 0\n"
    "1 -2 0\n"
    "-1 2 0\n";

// kBaseFormula with clauses reordered and literals shuffled inside clauses.
const char* kClausePermuted =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "-4 2 0\n"
    "3 -1 0\n"
    "4 -2 0\n"
    "-3 1 0\n";

// kBaseFormula under the variable renaming 1->2, 2->4, 3->1, 4->3.
const char* kRenumbered =
    "p cnf 4 4\n"
    "a 2 4 0\n"
    "d 1 2 0\n"
    "d 3 4 0\n"
    "2 -1 0\n"
    "-2 1 0\n"
    "4 -3 0\n"
    "-4 3 0\n";

// Same dependencies, but the `d` lines list their sets in another order.
const char* kDepOrder =
    "p cnf 5 4\n"
    "a 1 2 0\n"
    "d 3 1 2 0\n"
    "d 4 2 1 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

const char* kDepOrderSwapped =
    "p cnf 5 4\n"
    "a 1 2 0\n"
    "d 4 1 2 0\n"
    "d 3 2 1 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

cache::CanonicalKey keyOf(const std::string& text)
{
    return cache::canonicalKey(parseDqdimacsString(text));
}

/// Self-deleting temporary directory for persistent-store tests.
struct TempDir {
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("hqs-cache-test-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter()++));
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    static int& counter()
    {
        static int n = 0;
        return n;
    }

    std::string str() const { return path.string(); }
};

std::string writeInstance(const TempDir& dir, const std::string& name,
                          const std::string& text)
{
    const std::string p = (dir.path / name).string();
    std::ofstream out(p);
    out << text;
    return p;
}

/// 16 lowercase hex digits, matching the certificate's `hash` line format.
std::string hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

/// A syntactically plausible artifact opening: enough for the cheap
/// hash-binding vet, which never parses past the second line.
std::string fakeArtifact(std::uint64_t embeddedHash)
{
    return "dqbf-cert 1\nhash " + hex16(embeddedHash) +
           "\nvars 1\nfunctions 0\nend dqbf-cert\n";
}

} // namespace

// --- canonicalization -------------------------------------------------------

TEST(Canonical, ClausePermutationCollides)
{
    EXPECT_FALSE(keyOf(kBaseFormula).empty());
    EXPECT_EQ(keyOf(kBaseFormula), keyOf(kClausePermuted));
}

TEST(Canonical, VariableRenumberingCollides)
{
    EXPECT_EQ(keyOf(kBaseFormula), keyOf(kRenumbered));
}

TEST(Canonical, DependencySetOrderCollides)
{
    EXPECT_EQ(keyOf(kDepOrder), keyOf(kDepOrderSwapped));
}

TEST(Canonical, EBlockAndDLineSpellingsCollide)
{
    // `e 3 4` after `a 1 2` gives both existentials the full implicit
    // dependency set {1,2}; the same semantics spelled with explicit `d`
    // lines must land on the same key.
    const char* eBlock =
        "p cnf 4 2\n"
        "a 1 2 0\n"
        "e 3 4 0\n"
        "1 -3 0\n"
        "2 -4 0\n";
    const char* dLines =
        "p cnf 4 2\n"
        "a 1 2 0\n"
        "d 3 1 2 0\n"
        "d 4 1 2 0\n"
        "1 -3 0\n"
        "2 -4 0\n";
    EXPECT_EQ(keyOf(eBlock), keyOf(dLines));
}

TEST(Canonical, DuplicateClausesCollapse)
{
    const char* doubled =
        "p cnf 4 5\n"
        "a 1 2 0\n"
        "d 3 1 0\n"
        "d 4 2 0\n"
        "1 -3 0\n"
        "1 -3 0\n"
        "-1 3 0\n"
        "2 -4 0\n"
        "-2 4 0\n";
    EXPECT_EQ(keyOf(kBaseFormula), keyOf(doubled));
}

TEST(Canonical, SignFlipDiffers)
{
    const char* flipped =
        "p cnf 4 4\n"
        "a 1 2 0\n"
        "d 3 1 0\n"
        "d 4 2 0\n"
        "1 3 0\n" // was 1 -3
        "-1 3 0\n"
        "2 -4 0\n"
        "-2 4 0\n";
    EXPECT_NE(keyOf(kBaseFormula), keyOf(flipped));
}

TEST(Canonical, DependencySetContentDiffers)
{
    const char* crossed =
        "p cnf 4 4\n"
        "a 1 2 0\n"
        "d 3 2 0\n" // was d 3 1
        "d 4 2 0\n"
        "1 -3 0\n"
        "-1 3 0\n"
        "2 -4 0\n"
        "-2 4 0\n";
    EXPECT_NE(keyOf(kBaseFormula), keyOf(crossed));
}

TEST(Canonical, HexRoundTrip)
{
    const cache::CanonicalKey key = keyOf(kBaseFormula);
    const std::string hex = cache::toHex(key);
    EXPECT_EQ(hex.size(), 32u);
    cache::CanonicalKey back;
    ASSERT_TRUE(cache::keyFromHex(hex, &back));
    EXPECT_EQ(key, back);
    EXPECT_FALSE(cache::keyFromHex("not-a-key", &back));
    EXPECT_FALSE(cache::keyFromHex(hex.substr(1), &back));
}

TEST(Canonical, FormRecordsShape)
{
    const cache::CanonicalForm form =
        cache::canonicalize(parseDqdimacsString(kBaseFormula));
    EXPECT_EQ(form.numVars, 4u);
    EXPECT_EQ(form.numClauses, 4u);
    EXPECT_FALSE(form.text.empty());
    EXPECT_EQ(form.key, keyOf(kBaseFormula));
}

// --- in-memory shard --------------------------------------------------------

namespace {

cache::CacheEntry satEntry(const std::string& engine = "hqs",
                           std::size_t padBytes = 0)
{
    cache::CacheEntry e;
    e.result = SolveResult::Sat;
    e.engine = engine;
    e.solveMilliseconds = 1.5;
    e.certificate = std::string(padBytes, 'x');
    return e;
}

cache::CanonicalKey syntheticKey(std::uint64_t n)
{
    return cache::CanonicalKey{n * 0x9e37u + 1, n + 1};
}

} // namespace

TEST(ResultCache, HitMissAndStats)
{
    cache::ResultCache c;
    const cache::CanonicalKey key = keyOf(kBaseFormula);
    EXPECT_FALSE(c.lookup(key).has_value());
    c.store(key, satEntry("hqs-bdd"));
    const auto hit = c.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result, SolveResult::Sat);
    EXPECT_EQ(hit->engine, "hqs-bdd");
    EXPECT_GT(hit->storedUnixMs, 0);

    const cache::CacheStats s = c.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(c.entryCount(), 1u);
    EXPECT_GT(s.bytes, 0u);
}

TEST(ResultCache, ByteBudgetEvictsLeastRecentlyUsed)
{
    cache::CacheConfig cfg;
    // Each padded entry is ~4KB + overhead; budget fits two, never three.
    cfg.maxBytes = 10 * 1024;
    cache::ResultCache c(cfg);

    c.store(syntheticKey(1), satEntry("e1", 4096));
    c.store(syntheticKey(2), satEntry("e2", 4096));
    // Touch 1 so 2 becomes the LRU victim.
    ASSERT_TRUE(c.lookup(syntheticKey(1)).has_value());
    c.store(syntheticKey(3), satEntry("e3", 4096));

    EXPECT_TRUE(c.lookup(syntheticKey(1)).has_value());
    EXPECT_FALSE(c.lookup(syntheticKey(2)).has_value());
    EXPECT_TRUE(c.lookup(syntheticKey(3)).has_value());
    EXPECT_GE(c.stats().evictions, 1u);
    EXPECT_LE(c.stats().bytes, cfg.maxBytes);
}

TEST(ResultCache, TtlExpiresEntriesUnderInjectedClock)
{
    std::int64_t now = 1'000'000;
    cache::CacheConfig cfg;
    cfg.ttlSeconds = 10;
    cfg.clock = [&now] { return now; };
    cache::ResultCache c(cfg);

    c.store(syntheticKey(7), satEntry());
    EXPECT_TRUE(c.lookup(syntheticKey(7)).has_value());

    now += 9'000; // within the TTL
    EXPECT_TRUE(c.lookup(syntheticKey(7)).has_value());

    now += 2'000; // 11s after the store
    EXPECT_FALSE(c.lookup(syntheticKey(7)).has_value());
    EXPECT_GE(c.stats().expired, 1u);
    EXPECT_EQ(c.entryCount(), 0u);
}

TEST(ResultCache, StoreOverwritesInPlace)
{
    cache::ResultCache c;
    c.store(syntheticKey(5), satEntry("first"));
    c.store(syntheticKey(5), satEntry("second"));
    EXPECT_EQ(c.entryCount(), 1u);
    const auto hit = c.lookup(syntheticKey(5));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->engine, "second");
}

// --- persistent store -------------------------------------------------------

TEST(ResultCache, PersistentRoundTripAcrossInstances)
{
    TempDir dir;
    const cache::CanonicalKey key = keyOf(kBaseFormula);
    {
        cache::CacheConfig cfg;
        cfg.dir = dir.str();
        cache::ResultCache writer(cfg);
        cache::CacheEntry e = satEntry("hqs");
        e.certFormulaHash = 0xabcdef;
        e.certificate = fakeArtifact(0xabcdef);
        writer.store(key, e);
    }
    // A fresh instance sharing the directory (a forked fleet worker) sees
    // the entry even though its in-memory shard is empty.
    cache::CacheConfig cfg;
    cfg.dir = dir.str();
    cache::ResultCache reader(cfg);
    const auto hit = reader.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result, SolveResult::Sat);
    EXPECT_EQ(hit->certFormulaHash, 0xabcdefu);
    EXPECT_EQ(hit->certificate, fakeArtifact(0xabcdef));
    EXPECT_EQ(reader.stats().persistHits, 1u);

    // And the hit was promoted into the shard: a second lookup stays local.
    ASSERT_TRUE(reader.lookup(key).has_value());
    EXPECT_EQ(reader.stats().persistHits, 1u);
}

TEST(ResultCache, PersistentMissAndExpiry)
{
    TempDir dir;
    std::int64_t now = 5'000'000;
    cache::CacheConfig cfg;
    cfg.dir = dir.str();
    cfg.ttlSeconds = 10;
    cfg.clock = [&now] { return now; };
    cache::ResultCache c(cfg);

    cache::CacheEntry out;
    EXPECT_EQ(c.loadPersistent(syntheticKey(9), &out), cache::LoadStatus::Miss);

    c.store(syntheticKey(9), satEntry());
    EXPECT_EQ(c.loadPersistent(syntheticKey(9), &out), cache::LoadStatus::Hit);
    now += 11'000;
    EXPECT_EQ(c.loadPersistent(syntheticKey(9), &out), cache::LoadStatus::Expired);
}

TEST(ResultCache, DamagedPersistentEntriesRejectTyped)
{
    TempDir dir;
    cache::CacheConfig cfg;
    cfg.dir = dir.str();
    cache::ResultCache c(cfg);
    const cache::CanonicalKey key = syntheticKey(11);
    c.store(key, satEntry("hqs", 64));

    const std::string path =
        dir.str() + "/" + cache::toHex(key) + ".hqscache";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string good = buf.str();
    in.close();

    const auto rewrite = [&](const std::string& bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    };
    cache::CacheEntry entry;

    // Truncated: the payload ends early.
    rewrite(good.substr(0, good.size() / 2));
    EXPECT_EQ(c.loadPersistent(key, &entry), cache::LoadStatus::Truncated);

    // Corrupt a byte inside the checksummed payload (the stored
    // certificate bytes): structurally the file still parses, so only the
    // whole-payload checksum can catch it.
    {
        std::string bad = good;
        const std::size_t pad = bad.find("xxxx");
        ASSERT_NE(pad, std::string::npos);
        bad[pad + 1] ^= 0x5a;
        rewrite(bad);
        EXPECT_EQ(c.loadPersistent(key, &entry), cache::LoadStatus::ChecksumMismatch);
    }

    // Garbage header.
    rewrite("not a cache entry at all\n");
    EXPECT_EQ(c.loadPersistent(key, &entry), cache::LoadStatus::BadFormat);

    // Every damaged load counted as a persist error, and none of them
    // produced a hit.
    EXPECT_GE(c.stats().persistErrors, 3u);

    // A wrong-key file (e.g. a collision-renamed artifact) is refused even
    // when its bytes are internally consistent.
    rewrite(good);
    EXPECT_EQ(c.loadPersistent(key, &entry), cache::LoadStatus::Hit);
    EXPECT_EQ(cache::parseEntry(good, syntheticKey(12), &entry),
              cache::LoadStatus::KeyMismatch);
}

TEST(ResultCache, SerializeParseRoundTrip)
{
    const cache::CanonicalKey key = keyOf(kBaseFormula);
    cache::CacheEntry e = satEntry("portfolio:hqs-bdd");
    e.certFormulaHash = 0x1234;
    e.certificate = fakeArtifact(0x1234);
    e.storedUnixMs = 42;
    const std::string bytes = cache::serializeEntry(key, e);

    cache::CacheEntry back;
    ASSERT_EQ(cache::parseEntry(bytes, key, &back), cache::LoadStatus::Hit);
    EXPECT_EQ(back.result, e.result);
    EXPECT_EQ(back.engine, e.engine);
    EXPECT_EQ(back.certFormulaHash, e.certFormulaHash);
    EXPECT_EQ(back.certificate, e.certificate);
    EXPECT_EQ(back.storedUnixMs, e.storedUnixMs);
}

// --- certificate hash binding -----------------------------------------------

TEST(CacheCertificate, VetServesOnlyOnFullHashAgreement)
{
    const std::uint64_t h = cert::formulaHash(parseDqdimacsString(kBaseFormula));

    cache::CacheEntry e = satEntry();
    e.certFormulaHash = h;
    e.certificate = fakeArtifact(h);
    EXPECT_EQ(cache::vetCachedCertificate(e, h), cache::CertReuse::Served);

    // No certificate at all: nothing to vet.
    cache::CacheEntry bare = satEntry();
    EXPECT_EQ(cache::vetCachedCertificate(bare, h), cache::CertReuse::None);

    // Request hash differs from the recorded one: typed rejection, never a
    // served artifact.
    EXPECT_EQ(cache::vetCachedCertificate(e, h ^ 1), cache::CertReuse::HashMismatch);

    // Recorded hash matches but the artifact embeds another formula's hash
    // (canonically equal instances with different variable numbering).
    cache::CacheEntry crossed = satEntry();
    crossed.certFormulaHash = h;
    crossed.certificate = fakeArtifact(h ^ 1);
    EXPECT_EQ(cache::vetCachedCertificate(crossed, h),
              cache::CertReuse::HashMismatch);

    // An artifact that lost its header cannot be vetted.
    cache::CacheEntry mangled = satEntry();
    mangled.certFormulaHash = h;
    mangled.certificate = "garbage bytes";
    EXPECT_EQ(cache::vetCachedCertificate(mangled, h),
              cache::CertReuse::MalformedArtifact);
}

// --- strategy specs ---------------------------------------------------------

TEST(StrategySpec, DefaultSpecReproducesHardWiredBehavior)
{
    const strategy::StrategySpec spec = strategy::defaultStrategySpec();
    EXPECT_EQ(spec.name, "default");

    // The hard-coded portfolio lineup is *built from* the default spec, so
    // the two can only agree; this test pins the equivalence against future
    // edits to either side.
    const std::vector<PortfolioEngine> wired = PortfolioSolver::defaultEngines();
    const std::vector<PortfolioEngine> specd =
        PortfolioSolver::enginesFromSpec(spec, /*nodeLimit=*/0);
    ASSERT_EQ(wired.size(), specd.size());
    for (std::size_t i = 0; i < wired.size(); ++i)
        EXPECT_EQ(wired[i].name, specd[i].name) << "rung " << i;

    const std::vector<DegradationRung> ladder = defaultDegradationLadder();
    ASSERT_EQ(spec.ladder.size(), ladder.size());
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        EXPECT_EQ(spec.ladder[i].name, ladder[i].name) << "rung " << i;
        EXPECT_EQ(spec.ladder[i].fraig, ladder[i].fraig) << "rung " << i;
        EXPECT_EQ(spec.ladder[i].nodeLimitScale, ladder[i].nodeLimitScale)
            << "rung " << i;
    }
    EXPECT_EQ(spec.cache.mode, strategy::CachePolicy::Mode::On);
}

TEST(StrategySpec, ParsesFullSpec)
{
    const std::string text = R"({
      "name": "lean",
      "engines": [
        {"name": "fast", "engine": "hqs", "selection": "greedy", "fraig": false},
        {"engine": "hqs-bdd", "node_limit_scale": 0.5}
      ],
      "ladder": [
        {"name": "full"},
        {"name": "half", "node_limit_scale": 0.5, "backoff_seconds": 0.01}
      ],
      "cache": {"mode": "bypass", "ttl_seconds": 60, "max_bytes": 1048576},
      "defaults": {"timeout_seconds": 5, "rss_limit_mb": 512, "node_limit": 100000}
    })";
    strategy::StrategySpec spec;
    std::vector<strategy::SpecError> errors;
    ASSERT_TRUE(strategy::parseStrategySpec(text, &spec, &errors))
        << strategy::toString(errors);
    EXPECT_EQ(spec.name, "lean");
    ASSERT_EQ(spec.engines.size(), 2u);
    EXPECT_EQ(spec.engines[0].name, "fast");
    EXPECT_EQ(spec.engines[0].selection, "greedy");
    EXPECT_FALSE(spec.engines[0].fraig);
    EXPECT_EQ(spec.engines[1].name, "hqs-bdd"); // defaults to the engine id
    EXPECT_EQ(spec.engines[1].nodeLimitScale, 0.5);
    ASSERT_EQ(spec.ladder.size(), 2u);
    EXPECT_EQ(spec.ladder[1].nodeLimitScale, 0.5);
    EXPECT_EQ(spec.cache.mode, strategy::CachePolicy::Mode::Bypass);
    EXPECT_EQ(spec.cache.ttlSeconds, 60);
    EXPECT_EQ(spec.cache.maxBytes, 1048576u);
    EXPECT_EQ(spec.defaults.timeoutSeconds, 5);
    EXPECT_EQ(spec.defaults.rssLimitBytes, 512u << 20);
    EXPECT_EQ(spec.defaults.nodeLimit, 100000u);
}

namespace {

/// True when some error's field exactly matches @p field.
bool hasErrorField(const std::vector<strategy::SpecError>& errors,
                   const std::string& field)
{
    for (const strategy::SpecError& e : errors)
        if (e.field == field) return true;
    return false;
}

} // namespace

TEST(StrategySpec, ValidationErrorsAreFieldTagged)
{
    strategy::StrategySpec spec;
    std::vector<strategy::SpecError> errors;

    // Unknown engine id, tagged with its array position.
    EXPECT_FALSE(strategy::parseStrategySpec(
        R"({"engines": [{"engine": "warp-drive"}]})", &spec, &errors));
    EXPECT_TRUE(hasErrorField(errors, "engines[0].engine"))
        << strategy::toString(errors);

    // Bad cache mode.
    errors.clear();
    EXPECT_FALSE(strategy::parseStrategySpec(
        R"({"cache": {"mode": "sometimes"}})", &spec, &errors));
    EXPECT_TRUE(hasErrorField(errors, "cache.mode")) << strategy::toString(errors);

    // Empty ladder array: a spec must keep at least one rung.
    errors.clear();
    EXPECT_FALSE(strategy::parseStrategySpec(R"({"ladder": []})", &spec, &errors));
    EXPECT_TRUE(hasErrorField(errors, "ladder")) << strategy::toString(errors);

    // Duplicate rung names are ambiguous metric labels.
    errors.clear();
    EXPECT_FALSE(strategy::parseStrategySpec(
        R"({"engines": [{"engine": "hqs", "name": "a"},
                        {"engine": "hqs-bdd", "name": "a"}]})",
        &spec, &errors));
    EXPECT_TRUE(hasErrorField(errors, "engines[1].name"))
        << strategy::toString(errors);

    // Malformed JSON is one "(json)" error, not a crash.
    errors.clear();
    EXPECT_FALSE(strategy::parseStrategySpec("{nope", &spec, &errors));
    EXPECT_TRUE(hasErrorField(errors, "(json)")) << strategy::toString(errors);

    // Unreadable file path.
    errors.clear();
    EXPECT_FALSE(strategy::loadStrategySpecFile("/nonexistent/spec.json", &spec,
                                                &errors));
    EXPECT_TRUE(hasErrorField(errors, "(file)")) << strategy::toString(errors);
}

TEST(StrategySpec, OmittedSectionsInheritDefaults)
{
    strategy::StrategySpec spec;
    std::vector<strategy::SpecError> errors;
    ASSERT_TRUE(strategy::parseStrategySpec(R"({"name": "tiny"})", &spec, &errors))
        << strategy::toString(errors);
    const strategy::StrategySpec dflt = strategy::defaultStrategySpec();
    EXPECT_EQ(spec.engines.size(), dflt.engines.size());
    EXPECT_EQ(spec.ladder.size(), dflt.ladder.size());
    EXPECT_EQ(spec.cache.mode, dflt.cache.mode);
    EXPECT_EQ(spec.cache.maxBytes, dflt.cache.maxBytes);
}

// --- batch dedup and cache --------------------------------------------------

TEST(BatchCache, DedupSolvesOnceAndFansTheRowOut)
{
    TempDir dir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);
    const std::string b = writeInstance(dir, "b.dqdimacs", kClausePermuted);
    const std::string c = writeInstance(dir, "c.dqdimacs", kRenumbered);

    BatchOptions opts;
    opts.numWorkers = 2;
    BatchScheduler scheduler(opts);
    const auto results = scheduler.run({a, b, c});
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].dedupOf, "");
    EXPECT_EQ(results[0].result, SolveResult::Sat);
    for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
        EXPECT_EQ(results[i].dedupOf, a) << i;
        EXPECT_EQ(results[i].result, SolveResult::Sat) << i;
        EXPECT_EQ(results[i].engine, results[0].engine) << i;
        EXPECT_EQ(results[i].instance, i == 1 ? b : c);
    }
}

TEST(BatchCache, NoDedupSolvesEveryRowItself)
{
    TempDir dir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);
    const std::string b = writeInstance(dir, "b.dqdimacs", kClausePermuted);

    BatchOptions opts;
    opts.dedup = false;
    BatchScheduler scheduler(opts);
    const auto results = scheduler.run({a, b});
    ASSERT_EQ(results.size(), 2u);
    for (const BatchJobResult& r : results) {
        EXPECT_EQ(r.dedupOf, "");
        EXPECT_FALSE(r.cached);
        EXPECT_EQ(r.result, SolveResult::Sat);
        EXPECT_GE(r.attempts, 1u);
    }
}

TEST(BatchCache, SecondRunIsAnsweredFromThePersistentCache)
{
    TempDir dir;
    TempDir cacheDir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);
    const std::string u = writeInstance(dir, "u.dqdimacs", kUnsatFormula);

    BatchOptions opts;
    cache::CacheConfig cfg;
    cfg.dir = cacheDir.str();
    opts.resultCache = std::make_shared<cache::ResultCache>(cfg);

    {
        BatchScheduler first(opts);
        const auto results = first.run({a, u});
        ASSERT_EQ(results.size(), 2u);
        EXPECT_FALSE(results[0].cached);
        EXPECT_FALSE(results[1].cached);
        EXPECT_EQ(results[0].result, SolveResult::Sat);
        EXPECT_EQ(results[1].result, SolveResult::Unsat);
    }

    // A brand-new scheduler and cache instance: only the directory is
    // shared, exactly like a fleet worker starting cold.
    BatchOptions again;
    again.resultCache = std::make_shared<cache::ResultCache>(cfg);
    BatchScheduler second(again);
    const auto results = second.run({a, u});
    ASSERT_EQ(results.size(), 2u);
    for (const BatchJobResult& r : results) {
        EXPECT_TRUE(r.cached) << r.instance;
        EXPECT_EQ(r.rung, "cache") << r.instance;
        EXPECT_EQ(r.attempts, 0u) << r.instance;
    }
    EXPECT_EQ(results[0].result, SolveResult::Sat);
    EXPECT_EQ(results[1].result, SolveResult::Unsat);
}

TEST(BatchCache, CachedCertifiedVerdictReverifiesTheBinding)
{
    TempDir dir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);

    BatchOptions opts;
    opts.certify = true;
    opts.resultCache = std::make_shared<cache::ResultCache>();

    {
        BatchScheduler first(opts);
        const auto results = first.run({a});
        ASSERT_EQ(results.size(), 1u);
        ASSERT_TRUE(results[0].certificate.present);
        EXPECT_TRUE(results[0].certificate.valid);
    }

    BatchScheduler second(opts);
    const auto results = second.run({a});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].cached);
    // The cached artifact passed vetCachedCertificate *and* the independent
    // checker before being re-attached to the row.
    ASSERT_TRUE(results[0].certificate.present);
    EXPECT_TRUE(results[0].certificate.valid) << results[0].certificate.status;
}

TEST(BatchCache, CacheOffStrategyNeverConsultsTheCache)
{
    TempDir dir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);

    BatchOptions opts;
    opts.resultCache = std::make_shared<cache::ResultCache>();
    strategy::StrategySpec spec = strategy::defaultStrategySpec();
    spec.cache.mode = strategy::CachePolicy::Mode::Off;
    opts.strategy = spec;

    BatchScheduler first(opts);
    ASSERT_EQ(first.run({a}).size(), 1u);
    BatchScheduler second(opts);
    const auto results = second.run({a});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].cached);
    EXPECT_EQ(opts.resultCache->entryCount(), 0u);
    EXPECT_EQ(opts.resultCache->stats().stores, 0u);
}

// --- service loopback -------------------------------------------------------

TEST(CacheService, RepeatedInstanceIsAnsweredFromCacheWithCertificateIntact)
{
    service::ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    opts.resultCache = std::make_shared<cache::ResultCache>();
    service::SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    service::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    service::SolveRequestOptions ropts;
    ropts.certify = true;

    // First request solves and stores.
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kBaseFormula, ropts, true)));
    service::HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200) << rsp.body;
    std::string verdict;
    ASSERT_TRUE(service::jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    EXPECT_EQ(rsp.body.find("\"cached\":true"), std::string::npos) << rsp.body;
    std::string firstCert;
    ASSERT_TRUE(service::jsonStringField(rsp.body, "bytes", firstCert)) << rsp.body;

    // A canonically equal (renumbered) resubmission is served from the
    // cache.  Variable numbering matches the stored artifact's formula here
    // (hash binding re-verified server-side), so the certificate rides
    // along byte-for-byte.
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kBaseFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200) << rsp.body;
    ASSERT_TRUE(service::jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    EXPECT_NE(rsp.body.find("\"cached\":true"), std::string::npos) << rsp.body;
    std::string secondCert;
    ASSERT_TRUE(service::jsonStringField(rsp.body, "bytes", secondCert)) << rsp.body;
    EXPECT_EQ(firstCert, secondCert);

    // The re-served artifact still passes the independent checker.
    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(secondCert, parsed, detail),
              cert::CheckStatus::Ok)
        << detail;
    EXPECT_TRUE(cert::checkCertificate(parsed).ok());

    EXPECT_EQ(service.counters().cacheHits.load(), 1u);
    EXPECT_EQ(service.counters().cacheStores.load(), 1u);
    EXPECT_EQ(service.counters().cacheCertServed.load(), 1u);
    EXPECT_EQ(service.counters().cacheCertRejects.load(), 0u);

    // /stats reports the cache block.
    ASSERT_TRUE(client.sendAll("GET /stats HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_NE(rsp.body.find("\"cache_hits\": 1"), std::string::npos) << rsp.body;
    EXPECT_NE(rsp.body.find("\"cache\": {"), std::string::npos) << rsp.body;

    service.stop();
}

TEST(CacheService, CacheControlOffForcesAFreshSolve)
{
    service::ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    opts.resultCache = std::make_shared<cache::ResultCache>();
    service::SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    service::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    service::SolveRequestOptions ropts;
    service::HttpResponseMsg rsp;
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kUnsatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200) << rsp.body;

    // `cache-control: off` skips both the read and the write.
    ropts.cacheControl = "off";
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kUnsatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200) << rsp.body;
    EXPECT_EQ(rsp.body.find("\"cached\":true"), std::string::npos) << rsp.body;
    EXPECT_EQ(service.counters().cacheHits.load(), 0u);

    // An unknown mode is a 400 from the shared request validation.
    ropts.cacheControl = "bogus";
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kUnsatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 400) << rsp.body;

    service.stop();
}

TEST(CacheService, StrategySelectionByNameAndUnknownStrategyRejected)
{
    service::ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    strategy::StrategySpec lean = strategy::defaultStrategySpec();
    lean.name = "lean";
    opts.strategies["default"] = strategy::defaultStrategySpec();
    opts.strategies["lean"] = lean;
    service::SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    service::BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    service::SolveRequestOptions ropts;
    ropts.engine = "portfolio:2";
    ropts.strategy = "lean";
    service::HttpResponseMsg rsp;
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kBaseFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200) << rsp.body;
    std::string verdict;
    ASSERT_TRUE(service::jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");

    ropts.strategy = "nosuch";
    ASSERT_TRUE(client.sendAll(service::buildHttpSolveRequest(kBaseFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 400) << rsp.body;
    EXPECT_NE(rsp.body.find("unknown strategy"), std::string::npos) << rsp.body;

    service.stop();
}

// --- fault injection (faults/* partition) ------------------------------------

// Run only under the faults/* ctest rows (HQS_FAULT=cache-load:1 or
// cache-store:1).  Whatever the armed cache checkpoint throws, the batch
// must still decide every instance — a damaged cache layer degrades to a
// miss; it never takes a verdict down with it.
TEST(EnvFaultCache, CacheLayerFaultDegradesToAMiss)
{
    const std::string site = fault::armedSite();
    if (site.empty())
        GTEST_SKIP() << "HQS_FAULT not set; run via the faults/* partition";
    ASSERT_TRUE(site == "cache-load" || site == "cache-store")
        << "unexpected armed site " << site;

    TempDir dir;
    TempDir cacheDir;
    const std::string a = writeInstance(dir, "a.dqdimacs", kBaseFormula);
    const std::string b = writeInstance(dir, "b.dqdimacs", kUnsatFormula);

    cache::CacheConfig cfg;
    cfg.dir = cacheDir.str();
    BatchOptions opts;
    opts.dedup = false;
    opts.resultCache = std::make_shared<cache::ResultCache>(cfg);

    // Warm run (under cache-load:1 the first read throws; under
    // cache-store:1 the first write throws) followed by a reuse run.  Both
    // must answer everything conclusively either way.
    for (int round = 0; round < 2; ++round) {
        BatchScheduler scheduler(opts);
        const auto results = scheduler.run({a, b});
        ASSERT_EQ(results.size(), 2u) << "round " << round;
        EXPECT_EQ(results[0].result, SolveResult::Sat) << "round " << round;
        EXPECT_EQ(results[1].result, SolveResult::Unsat) << "round " << round;
    }
}
