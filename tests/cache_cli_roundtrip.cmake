# cache/cli-roundtrip: the result cache through the binaries.
#   1. A plain dqbf_solve --cache-dir run stores a verdict-only entry.
#   2. dqbf_solve --certify on the same instance must NOT serve the bare
#      cached verdict: it falls through to a fresh solve, writes a
#      certificate that dqbf_check accepts, and upgrades the cache entry.
#   3. A second --certify run serves the byte-identical artifact from the
#      cache, and dqbf_check still accepts it.
#
# Invoked as: cmake -DDQBF_SOLVE=... -DDQBF_CHECK=... -DDATA_DIR=...
#             -DWORK_DIR=... -P cache_cli_roundtrip.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cachedir "${WORK_DIR}/cache")
set(instance "${DATA_DIR}/example1_sat.dqdimacs")
set(cert1 "${WORK_DIR}/first.cert")
set(cert2 "${WORK_DIR}/second.cert")

execute_process(COMMAND "${DQBF_SOLVE}" "--cache-dir=${cachedir}" "${instance}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 10)
  message(FATAL_ERROR "seeding solve exited ${rc} (want 10/SAT): ${out}")
endif()

execute_process(COMMAND "${DQBF_SOLVE}" "--cache-dir=${cachedir}"
                "--certify=${cert1}" "${instance}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 10)
  message(FATAL_ERROR "certify over verdict-only entry exited ${rc}: ${out}")
endif()
if(NOT out MATCHES "solving fresh to certify")
  message(FATAL_ERROR "certify request served the bare cached verdict: ${out}")
endif()
if(NOT EXISTS "${cert1}")
  message(FATAL_ERROR "certify fallthrough wrote no certificate: ${out}")
endif()

execute_process(COMMAND "${DQBF_CHECK}" "--formula=${instance}" "${cert1}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqbf_check rejected the fallthrough certificate "
                      "(exit ${rc}): ${out}")
endif()

execute_process(COMMAND "${DQBF_SOLVE}" "--cache-dir=${cachedir}"
                "--certify=${cert2}" "${instance}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 10)
  message(FATAL_ERROR "second certify run exited ${rc}: ${out}")
endif()
if(NOT out MATCHES "bytes from cache")
  message(FATAL_ERROR "second certify run did not reuse the cached artifact: ${out}")
endif()

file(READ "${cert1}" a)
file(READ "${cert2}" b)
if(NOT a STREQUAL b)
  message(FATAL_ERROR "cached artifact differs from the freshly extracted one")
endif()

execute_process(COMMAND "${DQBF_CHECK}" "--formula=${instance}" "${cert2}"
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dqbf_check rejected the cache-served certificate "
                      "(exit ${rc}): ${out}")
endif()

message(STATUS "cache/cli-roundtrip: verdict-only entry -> certify fallthrough -> cached artifact reuse ok")
