// Unit tests for src/base: literals, three-valued logic, RNG, deadlines.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/base/literal.hpp"
#include "src/base/result.hpp"
#include "src/base/rng.hpp"
#include "src/base/timer.hpp"

namespace hqs {
namespace {

TEST(Lit, EncodesVarAndSign)
{
    const Lit p = Lit::pos(7);
    EXPECT_EQ(p.var(), 7u);
    EXPECT_TRUE(p.positive());
    EXPECT_FALSE(p.negative());

    const Lit n = Lit::neg(7);
    EXPECT_EQ(n.var(), 7u);
    EXPECT_TRUE(n.negative());
    EXPECT_NE(p, n);
}

TEST(Lit, NegationIsInvolution)
{
    for (Var v : {0u, 1u, 5u, 1000u}) {
        const Lit p = Lit::pos(v);
        EXPECT_EQ(~p, Lit::neg(v));
        EXPECT_EQ(~~p, p);
    }
}

TEST(Lit, XorWithBoolFlipsSign)
{
    const Lit p = Lit::pos(3);
    EXPECT_EQ(p ^ true, Lit::neg(3));
    EXPECT_EQ(p ^ false, p);
    EXPECT_EQ((p ^ true) ^ true, p);
}

TEST(Lit, CodeIsDenseAndInvertible)
{
    EXPECT_EQ(Lit::pos(0).code(), 0u);
    EXPECT_EQ(Lit::neg(0).code(), 1u);
    EXPECT_EQ(Lit::pos(1).code(), 2u);
    EXPECT_EQ(Lit::fromCode(Lit::neg(42).code()), Lit::neg(42));
}

TEST(Lit, DimacsRoundTrip)
{
    EXPECT_EQ(Lit::pos(0).toDimacs(), 1);
    EXPECT_EQ(Lit::neg(0).toDimacs(), -1);
    EXPECT_EQ(Lit::fromDimacs(5), Lit::pos(4));
    EXPECT_EQ(Lit::fromDimacs(-5), Lit::neg(4));
    for (int d : {1, -1, 17, -23}) EXPECT_EQ(Lit::fromDimacs(d).toDimacs(), d);
}

TEST(Lit, UndefIsDistinct)
{
    EXPECT_TRUE(kUndefLit.isUndef());
    EXPECT_FALSE(Lit::pos(0).isUndef());
}

TEST(Lit, Ordering)
{
    EXPECT_LT(Lit::pos(0), Lit::neg(0));
    EXPECT_LT(Lit::neg(0), Lit::pos(1));
}

TEST(Lit, StreamOutput)
{
    std::ostringstream os;
    os << Lit::pos(2) << ' ' << Lit::neg(3);
    EXPECT_EQ(os.str(), "v2 ~v3");
}

TEST(Lbool, ThreeValues)
{
    EXPECT_TRUE(lbool::True.isTrue());
    EXPECT_TRUE(lbool::False.isFalse());
    EXPECT_TRUE(lbool::Undef.isUndef());
    EXPECT_NE(lbool::True, lbool::False);
    EXPECT_NE(lbool::True, lbool::Undef);
}

TEST(Lbool, NegationAndXor)
{
    EXPECT_EQ(~lbool::True, lbool::False);
    EXPECT_EQ(~lbool::False, lbool::True);
    EXPECT_EQ(~lbool::Undef, lbool::Undef);
    EXPECT_EQ(lbool::True ^ true, lbool::False);
    EXPECT_EQ(lbool::False ^ true, lbool::True);
    EXPECT_EQ(lbool::Undef ^ true, lbool::Undef);
    EXPECT_EQ(lbool::True ^ false, lbool::True);
}

TEST(Result, ToString)
{
    EXPECT_EQ(toString(SolveResult::Sat), "SAT");
    EXPECT_EQ(toString(SolveResult::Unsat), "UNSAT");
    EXPECT_EQ(toString(SolveResult::Timeout), "TIMEOUT");
    EXPECT_EQ(toString(SolveResult::Memout), "MEMOUT");
    EXPECT_TRUE(isConclusive(SolveResult::Sat));
    EXPECT_TRUE(isConclusive(SolveResult::Unsat));
    EXPECT_FALSE(isConclusive(SolveResult::Timeout));
    EXPECT_FALSE(isConclusive(SolveResult::Memout));
    EXPECT_FALSE(isConclusive(SolveResult::Unknown));
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        if (a.next() != b.next()) ++differing;
    EXPECT_GT(differing, 8);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, FlipIsRoughlyBalanced)
{
    Rng r(3);
    int heads = 0;
    for (int i = 0; i < 1000; ++i) heads += r.flip() ? 1 : 0;
    EXPECT_GT(heads, 400);
    EXPECT_LT(heads, 600);
}

TEST(Deadline, UnlimitedNeverExpires)
{
    EXPECT_FALSE(Deadline::unlimited().expired());
    EXPECT_TRUE(Deadline::unlimited().isUnlimited());
}

TEST(Deadline, PastDeadlineExpires)
{
    // "in 0 or negative seconds" means unlimited per the API contract.
    EXPECT_TRUE(Deadline::in(-1).isUnlimited());
    const Deadline d = Deadline::in(1e-9);
    // A nanosecond deadline must expire essentially immediately.
    Timer t;
    while (!d.expired() && t.elapsedSeconds() < 1.0) {
    }
    EXPECT_TRUE(d.expired());
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    EXPECT_GE(t.elapsedSeconds(), 0.0);
    t.reset();
    EXPECT_LT(t.elapsedSeconds(), 1.0);
}

} // namespace
} // namespace hqs
