// Tests for the CEGAR engine family (clausal abstraction + decision lists)
// and its DQCIR circuit front end:
//
//  * CegarSolver unit tests: hand-built instances with known verdicts,
//    budget/deadline behavior, restartability, and stats.
//  * The differential fuzz sweep: random small DQBFs cross-checked against
//    the expansion oracle and the HQS elimination engine, with every SAT
//    verdict certified through the production extract/serialize/check
//    pipeline (the decision lists as Skolem functions).
//  * DQCIR parsing and lowering: samples, prefix semantics, gate forms,
//    content sniffing, the corrupt-input corpus (one file per ParseError
//    branch), and solving parsed circuits with both engine families.
//  * Fault checkpoints `cegar-refine` and `dqcir-parse`: ScopedFault unit
//    tests plus the EnvFaultCegar suite the faults/* ctest rows rerun with
//    HQS_FAULT armed, proving injected faults surface as structured
//    FailureInfo instead of killing the process.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/base/fault.hpp"
#include "src/base/rng.hpp"
#include "src/cegar/cegar_solver.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/circuit/dqcir_parser.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/runtime/guard.hpp"

namespace hqs {
namespace {

/// Production-path verification (same pipeline as `dqbf_solve --certify`
/// + `dqbf_check`): extract, serialize, re-parse, check independently.
::testing::AssertionResult certifiesThroughProduction(const DqbfFormula& f,
                                                      const AigSkolemCertificate& skolem)
{
    const std::string text =
        cert::toCertificateString(cert::extractCertificate(f, skolem));
    cert::Certificate parsed;
    std::string detail;
    const cert::CheckStatus st = cert::parseCertificateString(text, parsed, detail);
    if (st != cert::CheckStatus::Ok)
        return ::testing::AssertionFailure()
               << "parse failed: " << cert::toString(st) << " (" << detail << ")";
    const cert::CheckResult res = cert::checkCertificate(parsed);
    if (!res.ok())
        return ::testing::AssertionFailure()
               << "check failed: " << cert::toString(res.status) << " (" << res.detail
               << ")";
    return ::testing::AssertionSuccess();
}

DqbfFormula randomDqbf(Rng& rng, unsigned numUniv, unsigned numExist, unsigned numClauses)
{
    DqbfFormula f;
    std::vector<Var> xs, ys;
    for (unsigned i = 0; i < numUniv; ++i) xs.push_back(f.addUniversal());
    for (unsigned i = 0; i < numExist; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        ys.push_back(f.addExistential(std::move(deps)));
    }
    std::vector<Var> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    for (unsigned c = 0; c < numClauses; ++c) {
        Clause cl;
        for (unsigned j = 0; j < 2 + rng.below(2); ++j)
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

/// y(x) forced to equal x — SAT, identity Skolem function.
DqbfFormula copycat()
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    return f;
}

// --------------------------------------------------------------- CEGAR

TEST(Cegar, CopycatSatWithCertificate)
{
    const DqbfFormula f = copycat();
    CegarOptions opts;
    opts.computeSkolem = true;
    CegarSolver solver(opts);
    ASSERT_EQ(solver.solve(f), SolveResult::Sat);
    ASSERT_TRUE(solver.skolemCertificate().has_value());
    EXPECT_TRUE(certifiesThroughProduction(f, *solver.skolemCertificate()));
    EXPECT_GE(solver.stats().refinements, 1u);
    EXPECT_GE(solver.stats().abstractionVars, 1u);
}

TEST(Cegar, FreeExistentialCannotCopyUniversal)
{
    // y has no dependencies but must equal x: FALSE.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({});
    f.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    f.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    CegarSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
    EXPECT_GE(solver.stats().counterexamples, 1u);
}

TEST(Cegar, UniversalOnlyClauseIsUnsat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    f.addExistential({x});
    f.matrix().addClause({Lit::pos(x)});
    CegarSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
}

TEST(Cegar, EmptyMatrixIsSat)
{
    DqbfFormula f;
    const Var x = f.addUniversal();
    f.addExistential({x});
    CegarOptions opts;
    opts.computeSkolem = true;
    CegarSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    ASSERT_TRUE(solver.skolemCertificate().has_value());
    EXPECT_TRUE(certifiesThroughProduction(f, *solver.skolemCertificate()));
}

TEST(Cegar, EmptyClauseIsUnsat)
{
    DqbfFormula f;
    f.addUniversal();
    f.matrix().addClause({});
    CegarSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
}

TEST(Cegar, CrossDependencySat)
{
    // y1(x2) == x2 and y2(x1) == x1: satisfiable, but only by genuinely
    // non-linear (Henkin) Skolem functions.
    DqbfFormula f;
    const Var x1 = f.addUniversal();
    const Var x2 = f.addUniversal();
    const Var y1 = f.addExistential({x2});
    const Var y2 = f.addExistential({x1});
    f.matrix().addClause({Lit::neg(x2), Lit::pos(y1)});
    f.matrix().addClause({Lit::pos(x2), Lit::neg(y1)});
    f.matrix().addClause({Lit::neg(x1), Lit::pos(y2)});
    f.matrix().addClause({Lit::pos(x1), Lit::neg(y2)});
    CegarOptions opts;
    opts.computeSkolem = true;
    CegarSolver solver(opts);
    ASSERT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_TRUE(certifiesThroughProduction(f, *solver.skolemCertificate()));
}

TEST(Cegar, RuleLimitReturnsMemout)
{
    // Clause {y} with D_y = {x}: the false default fails under both values
    // of x, so the solver must learn one rule per projection — two rules.
    DqbfFormula f;
    const Var x = f.addUniversal();
    const Var y = f.addExistential({x});
    f.matrix().addClause({Lit::pos(y)});

    CegarOptions limited;
    limited.ruleLimit = 1;
    CegarSolver solver(limited);
    EXPECT_EQ(solver.solve(f), SolveResult::Memout);

    CegarSolver unlimited;
    EXPECT_EQ(unlimited.solve(f), SolveResult::Sat);
    EXPECT_EQ(unlimited.stats().rulesLearned, 2u);
}

TEST(Cegar, ExpiredDeadlineReturnsTimeout)
{
    CegarOptions opts;
    opts.deadline = Deadline::in(1e-9);
    CegarSolver solver(opts);
    EXPECT_EQ(solver.solve(copycat()), SolveResult::Timeout);
}

TEST(Cegar, SolveIsRestartable)
{
    CegarOptions opts;
    opts.computeSkolem = true;
    CegarSolver solver(opts);
    const DqbfFormula sat = copycat();
    EXPECT_EQ(solver.solve(sat), SolveResult::Sat);

    DqbfFormula unsat;
    const Var x = unsat.addUniversal();
    const Var y = unsat.addExistential({});
    unsat.matrix().addClause({Lit::neg(x), Lit::pos(y)});
    unsat.matrix().addClause({Lit::pos(x), Lit::neg(y)});
    EXPECT_EQ(solver.solve(unsat), SolveResult::Unsat);
    EXPECT_FALSE(solver.skolemCertificate().has_value());

    EXPECT_EQ(solver.solve(sat), SolveResult::Sat);
    EXPECT_TRUE(certifiesThroughProduction(sat, *solver.skolemCertificate()));
}

// The tentpole's correctness anchor: CEGAR vs the expansion oracle vs the
// HQS elimination engine over random small instances, with every SAT
// verdict's decision lists certified end to end.
TEST(Cegar, DifferentialFuzzAgainstOracleAndHqs)
{
    Rng rng(20260808);
    for (int iter = 0; iter < 150; ++iter) {
        const unsigned numUniv = 1 + static_cast<unsigned>(rng.below(3));
        const unsigned numExist = 1 + static_cast<unsigned>(rng.below(3));
        const unsigned numClauses = 3 + static_cast<unsigned>(rng.below(6));
        const DqbfFormula f = randomDqbf(rng, numUniv, numExist, numClauses);

        const SolveResult oracle = expansionDqbf(f);
        ASSERT_TRUE(oracle == SolveResult::Sat || oracle == SolveResult::Unsat);

        HqsSolver hqsSolver;
        EXPECT_EQ(hqsSolver.solve(f), oracle) << "HQS disagrees at iter " << iter;

        CegarOptions opts;
        opts.computeSkolem = true;
        CegarSolver cegar(opts);
        EXPECT_EQ(cegar.solve(f), oracle) << "CEGAR disagrees at iter " << iter;
        if (oracle == SolveResult::Sat) {
            ASSERT_TRUE(cegar.skolemCertificate().has_value()) << "iter " << iter;
            EXPECT_TRUE(certifiesThroughProduction(f, *cegar.skolemCertificate()))
                << "iter " << iter;
        }
    }
}

// --------------------------------------------------------------- DQCIR

const char* kSatCircuit =
    "#QCIR-G14\n"
    "forall(x1, x2)\n"
    "depend(y1, x1)\n"
    "depend(y2, x2)\n"
    "output(phi)\n"
    "g1 = xor(x1, y1)\n"
    "g2 = xor(x2, y2)\n"
    "phi = and(-g1, -g2)\n";

DqbfFormula circuitFormula(const std::string& text)
{
    return DqbfFormula::fromParsed(lowerDqcir(parseDqcirString(text)));
}

TEST(Dqcir, ParsesAndLowersSatExample)
{
    const ParsedDqcir parsed = parseDqcirString(kSatCircuit);
    EXPECT_EQ(parsed.inputs.size(), 4u);
    EXPECT_EQ(parsed.gateCount, 3u);
    EXPECT_TRUE(parsed.inputs[0].universal);
    EXPECT_TRUE(parsed.inputs[1].universal);
    EXPECT_FALSE(parsed.inputs[2].universal);
    EXPECT_EQ(parsed.inputs[2].deps, (std::vector<std::size_t>{0}));
    EXPECT_EQ(parsed.inputs[3].deps, (std::vector<std::size_t>{1}));

    const ParsedQdimacs lowered = lowerDqcir(parsed);
    ASSERT_FALSE(lowered.blocks.empty());
    EXPECT_EQ(lowered.blocks[0].kind, QuantKind::Forall);
    EXPECT_EQ(lowered.blocks[0].vars, (std::vector<Var>{0, 1}));
    ASSERT_EQ(lowered.henkin.size(), 2u);
    EXPECT_EQ(lowered.henkin[0].deps, (std::vector<Var>{0}));
    EXPECT_EQ(lowered.henkin[1].deps, (std::vector<Var>{1}));

    const DqbfFormula f = DqbfFormula::fromParsed(lowered);
    HqsSolver hqs;
    EXPECT_EQ(hqs.solve(f), SolveResult::Sat);
    CegarSolver cegar;
    EXPECT_EQ(cegar.solve(f), SolveResult::Sat);
}

TEST(Dqcir, FreeExistentialCircuitIsUnsat)
{
    const DqbfFormula f = circuitFormula(
        "#QCIR-G14\n"
        "forall(x)\n"
        "free(y)\n"
        "output(-g1)\n"
        "g1 = xor(x, y)\n");
    HqsSolver hqs;
    EXPECT_EQ(hqs.solve(f), SolveResult::Unsat);
    CegarSolver cegar;
    EXPECT_EQ(cegar.solve(f), SolveResult::Unsat);
}

TEST(Dqcir, ExistsDependsOnUniversalsToItsLeftOnly)
{
    const ParsedDqcir parsed = parseDqcirString(
        "#QCIR-G14\n"
        "forall(x1)\n"
        "exists(y)\n"
        "forall(x2)\n"
        "output(g)\n"
        "g = or(x1, -x2, y)\n");
    ASSERT_EQ(parsed.inputs.size(), 3u);
    EXPECT_EQ(parsed.inputs[1].deps, (std::vector<std::size_t>{0}));

    const ParsedQdimacs lowered = lowerDqcir(parsed);
    ASSERT_EQ(lowered.henkin.size(), 1u);
    EXPECT_EQ(lowered.henkin[0].deps, (std::vector<Var>{0}));
}

TEST(Dqcir, IteGateSolvesAsExpected)
{
    // phi = ite(x, y, -y): y(x) must be 1 at x = 1 and 0 at x = 0 — SAT
    // with y = x.
    const DqbfFormula f = circuitFormula(
        "#QCIR-G14\n"
        "forall(x)\n"
        "depend(y, x)\n"
        "output(phi)\n"
        "ny = and(-y)\n"
        "phi = ite(x, y, ny)\n");
    CegarSolver cegar;
    EXPECT_EQ(cegar.solve(f), SolveResult::Sat);
    HqsSolver hqs;
    EXPECT_EQ(hqs.solve(f), SolveResult::Sat);
}

TEST(Dqcir, ConstantGates)
{
    EXPECT_EQ(CegarSolver().solve(circuitFormula("#QCIR-G14\n"
                                                 "forall(x)\n"
                                                 "output(g)\n"
                                                 "g = and()\n")),
              SolveResult::Sat);
    EXPECT_EQ(CegarSolver().solve(circuitFormula("#QCIR-G14\n"
                                                 "forall(x)\n"
                                                 "output(g)\n"
                                                 "g = or()\n")),
              SolveResult::Unsat);
}

TEST(Dqcir, ContentSniffing)
{
    EXPECT_TRUE(looksLikeDqcir(kSatCircuit));
    EXPECT_TRUE(looksLikeDqcir("\n  \n#QCIR-G14\noutput(g)\ng = and()\n"));
    EXPECT_FALSE(looksLikeDqcir("c comment\np cnf 2 1\na 1 0\n1 -2 0\n"));
    EXPECT_FALSE(looksLikeDqcir(""));
}

TEST(Dqcir, FileNotFoundThrows)
{
    EXPECT_THROW(parseDqcirFile("/nonexistent/file.dqcir"), ParseError);
}

// Every .dqcir file in the corrupt-input corpus must be rejected with a
// typed ParseError (not accepted, not crash); each exercises one throw
// branch of the DQCIR parser.
TEST(Dqcir, CorruptCorpusIsRejectedWithParseError)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(HQS_TEST_DATA_DIR) / "corrupt";
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".dqcir") continue;
        ++count;
        EXPECT_THROW(parseDqcirFile(entry.path().string()), ParseError)
            << "accepted corrupt file " << entry.path();
    }
    EXPECT_GE(count, 20u); // one per ParseError branch of the parser
}

// The sample circuits under data/dqcir/ round-trip through parse + lower +
// both engine families with the verdict their names claim.
TEST(Dqcir, SampleFilesSolveWithBothEngineFamilies)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(HQS_TEST_DATA_DIR) / "dqcir";
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".dqcir") continue;
        ++count;
        const DqbfFormula f =
            DqbfFormula::fromParsed(lowerDqcir(parseDqcirFile(entry.path().string())));
        const bool expectSat =
            entry.path().filename().string().find("unsat") == std::string::npos;
        const SolveResult expected = expectSat ? SolveResult::Sat : SolveResult::Unsat;
        HqsSolver hqs;
        EXPECT_EQ(hqs.solve(f), expected) << entry.path();
        CegarSolver cegar;
        EXPECT_EQ(cegar.solve(f), expected) << entry.path();
    }
    EXPECT_GE(count, 2u);
}

// --------------------------------------------------------------- faults

TEST(CegarFault, RefineCheckpointThrowsInjectedFault)
{
    fault::ScopedFault armed("cegar-refine");
    CegarSolver solver;
    const DqbfFormula f = copycat();
    EXPECT_THROW(solver.solve(f), fault::InjectedFault);
    fault::disarm();
    EXPECT_EQ(solver.solve(f), SolveResult::Sat); // recovers once disarmed
}

TEST(DqcirFault, ParseCheckpointThrowsInjectedFault)
{
    fault::ScopedFault armed("dqcir-parse");
    EXPECT_THROW(parseDqcirString(kSatCircuit), fault::InjectedFault);
    fault::disarm();
    EXPECT_EQ(parseDqcirString(kSatCircuit).inputs.size(), 4u);
}

// Rerun by the faults/cegar-refine-1 and faults/dqcir-parse-1 ctest rows
// with HQS_FAULT armed through the environment: the injected fault must
// surface as a structured FailureInfo out of runGuarded, never unwind.
TEST(EnvFaultCegar, ArmedSiteSurfacesAsStructuredFailure)
{
    const std::string site = fault::armedSite();
    if (site.empty()) GTEST_SKIP() << "no HQS_FAULT armed";

    const GuardedOutcome out = runGuarded(GuardOptions{}, [&](const Deadline& dl) {
        const DqbfFormula f = circuitFormula(kSatCircuit);
        CegarOptions opts;
        opts.deadline = dl;
        CegarSolver solver(opts);
        return solver.solve(f);
    });
    ASSERT_TRUE(out.failure) << "armed site " << site << " never fired";
    EXPECT_EQ(out.failure.kind, FailureKind::InjectedFault);
    EXPECT_EQ(out.failure.site, site);
    EXPECT_FALSE(isConclusive(out.result));
}

} // namespace
} // namespace hqs
