// Tests for the clausal QDPLL solver: hand cases, QBF-specific propagation
// behaviour, and randomized agreement with the brute-force oracle and the
// other three QBF engines.
#include <gtest/gtest.h>

#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/qbf/bdd_qbf_solver.hpp"
#include "src/qbf/qbf_oracle.hpp"
#include "src/qbf/qdpll_solver.hpp"
#include "src/qbf/search_qbf_solver.hpp"

namespace hqs {
namespace {

TEST(Qdpll, EmptyMatrixIsSat)
{
    QbfProblem q;
    q.prefix.addVar(QuantKind::Forall, 0);
    q.matrix.ensureVars(1);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Sat);
}

TEST(Qdpll, EmptyClauseIsUnsat)
{
    QbfProblem q;
    q.matrix.addClause(Clause{});
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Unsat);
}

TEST(Qdpll, ForallExistsCopycat)
{
    // forall x exists y: x == y  — SAT.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0), Lit::neg(1)});
    q.matrix.addClause({Lit::neg(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Forall, 0);
    q.prefix.addVar(QuantKind::Exists, 1);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Sat);
    EXPECT_GT(solver.stats().decisions, 0u);
}

TEST(Qdpll, ExistsForallCopycatIsUnsat)
{
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0), Lit::neg(1)});
    q.matrix.addClause({Lit::neg(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Exists, 1);
    q.prefix.addVar(QuantKind::Forall, 0);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Unsat);
}

TEST(Qdpll, AllExistentialFalseClauseConflicts)
{
    // exists y forall x: (y) & (~y | x): after y=1 the second clause has
    // only the universal x left -> the adversary falsifies it: UNSAT.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(0)});
    q.matrix.addClause({Lit::neg(0), Lit::pos(1)});
    q.prefix.addVar(QuantKind::Exists, 0);
    q.prefix.addVar(QuantKind::Forall, 1);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Unsat);
}

TEST(Qdpll, InnerUniversalsAreReducibleForUnits)
{
    // forall x1 exists y forall x2: (y | x2) — y is unit (x2 is inner), so
    // y=1 and the formula is SAT.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(1), Lit::pos(2)});
    q.prefix.addVar(QuantKind::Forall, 0);
    q.prefix.addVar(QuantKind::Exists, 1);
    q.prefix.addVar(QuantKind::Forall, 2);
    q.matrix.ensureVars(3);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Sat);
}

TEST(Qdpll, OuterUniversalBlocksUnit)
{
    // forall x exists y: (y | x) & (~y | ~x): satisfiable with y = ~x; the
    // clause (y | x) must NOT imply y while x is undecided-outer.
    QbfProblem q;
    q.matrix.addClause({Lit::pos(1), Lit::pos(0)});
    q.matrix.addClause({Lit::neg(1), Lit::neg(0)});
    q.prefix.addVar(QuantKind::Forall, 0);
    q.prefix.addVar(QuantKind::Exists, 1);
    QdpllSolver solver;
    EXPECT_EQ(solver.solve(q.matrix, q.prefix), SolveResult::Sat);
}

TEST(Qdpll, DeadlineYieldsTimeout)
{
    Rng rng(17);
    QbfProblem q;
    const Var n = 30;
    q.matrix.ensureVars(n);
    for (int c = 0; c < 120; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v)
        q.prefix.addVar(v % 2 ? QuantKind::Exists : QuantKind::Forall, v);
    QdpllSolver solver(Deadline::in(1e-9));
    const SolveResult r = solver.solve(q.matrix, q.prefix);
    EXPECT_TRUE(r == SolveResult::Timeout || isConclusive(r));
}

/// Four-engine agreement sweep: QDPLL vs AIG elimination vs BDD elimination
/// vs AIG search, all against the brute-force oracle.
class QbfEngineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(QbfEngineAgreement, AllEnginesAgreeWithOracle)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 41);
    const Var n = 5 + static_cast<Var>(rng.below(4));
    QbfProblem q;
    q.matrix.ensureVars(n);
    const int m = static_cast<int>(n) * 2 + static_cast<int>(rng.below(2 * n));
    for (int c = 0; c < m; ++c) {
        Clause cl;
        for (int j = 0; j < 2 + static_cast<int>(rng.below(2)); ++j) {
            cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        }
        q.matrix.addClause(std::move(cl));
    }
    for (Var v = 0; v < n; ++v) {
        q.prefix.addVar(rng.flip() ? QuantKind::Forall : QuantKind::Exists, v);
    }
    const bool expected = bruteForceQbf(q);

    QdpllSolver qdpll;
    EXPECT_EQ(qdpll.solve(q.matrix, q.prefix) == SolveResult::Sat, expected) << "qdpll";

    BddQbfSolver bdd;
    EXPECT_EQ(bdd.solve(q.matrix, q.prefix) == SolveResult::Sat, expected) << "bdd";

    Aig aig;
    const AigEdge matrix = buildFromCnf(aig, q.matrix);
    AigQbfSolver aigElim;
    EXPECT_EQ(aigElim.solve(aig, matrix, q.prefix) == SolveResult::Sat, expected)
        << "aig-elimination";
    EXPECT_EQ(searchQbfSolve(aig, matrix, q.prefix) == SolveResult::Sat, expected)
        << "aig-search";
}

INSTANTIATE_TEST_SUITE_P(Sweep, QbfEngineAgreement, ::testing::Range(0, 60));

} // namespace
} // namespace hqs
