// Tests for FRAIG-style SAT sweeping: the reduction must preserve semantics
// and merge functionally equivalent nodes.
#include <gtest/gtest.h>

#include "src/aig/fraig.hpp"
#include "src/base/rng.hpp"

namespace hqs {
namespace {

std::uint64_t truthTable(const Aig& aig, AigEdge root, Var n)
{
    std::uint64_t tt = 0;
    std::vector<bool> a(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) a[v] = (bits >> v) & 1u;
        if (aig.evaluate(root, a)) tt |= 1ull << bits;
    }
    return tt;
}

TEST(Fraig, LeavesAreFixpoints)
{
    Aig aig;
    EXPECT_EQ(fraigReduce(aig, aig.constTrue()), aig.constTrue());
    const AigEdge x = aig.variable(0);
    EXPECT_EQ(fraigReduce(aig, x), x);
    EXPECT_EQ(fraigReduce(aig, ~x), ~x);
}

TEST(Fraig, CollapsesSemanticConstant)
{
    // (x | y) & (~x) & (~y) == false, but not by structural folding alone.
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkAnd(aig.mkAnd(aig.mkOr(x, y), ~x), ~y);
    EXPECT_EQ(fraigReduce(aig, f), aig.constFalse());
}

TEST(Fraig, CollapsesSemanticTautology)
{
    // (x & y) | ~x | ~y == true.
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkOr(aig.mkOr(aig.mkAnd(x, y), ~x), ~y);
    EXPECT_EQ(fraigReduce(aig, f), aig.constTrue());
}

TEST(Fraig, CollapsesConeToProjection)
{
    // (x & y) | (x & ~y) == x.
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge f = aig.mkOr(aig.mkAnd(x, y), aig.mkAnd(x, ~y));
    EXPECT_EQ(fraigReduce(aig, f), x);
}

TEST(Fraig, MergesEquivalentSubfunctions)
{
    // Two different structures for XOR feed an AND; after reduction the two
    // subcones must share nodes, making the AND fold to the XOR itself.
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge xor1 = aig.mkOr(aig.mkAnd(x, ~y), aig.mkAnd(~x, y));
    const AigEdge xor2 = ~aig.mkOr(aig.mkAnd(x, y), aig.mkAnd(~x, ~y));
    const AigEdge f = aig.mkAnd(xor1, xor2);
    FraigStats stats;
    const AigEdge g = fraigReduce(aig, f, {}, &stats);
    EXPECT_EQ(truthTable(aig, g, 2), 0b0110u);
    EXPECT_GT(stats.merged, 0u);
    EXPECT_LE(aig.coneSize(g), 3u); // a single XOR structure
}

TEST(Fraig, StatsCountRefutations)
{
    // Craft two functions with identical signatures on few sim words is
    // hard to force; instead verify refuted+merged+timedOut <= candidates.
    Aig aig;
    Rng rng(7);
    std::vector<AigEdge> pool;
    for (Var v = 0; v < 4; ++v) pool.push_back(aig.variable(v));
    for (int i = 0; i < 30; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        pool.push_back(rng.flip() ? aig.mkAnd(a, b) : aig.mkOr(a, b));
    }
    FraigStats stats;
    (void)fraigReduce(aig, pool.back(), {}, &stats);
    EXPECT_LE(stats.merged + stats.refuted + stats.timedOut, stats.candidates + stats.merged);
}

class FraigSemanticsPreserved : public ::testing::TestWithParam<int> {};

TEST_P(FraigSemanticsPreserved, ReductionKeepsFunctionAndNeverGrows)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 3);
    Aig aig;
    const Var n = 5;
    std::vector<AigEdge> pool;
    for (Var v = 0; v < n; ++v) pool.push_back(aig.variable(v));
    for (int i = 0; i < 25; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        switch (rng.below(3)) {
            case 0: pool.push_back(aig.mkAnd(a, b)); break;
            case 1: pool.push_back(aig.mkOr(a, b)); break;
            default: pool.push_back(aig.mkXor(a, b)); break;
        }
    }
    const AigEdge f = pool.back() ^ rng.flip();
    const std::uint64_t before = truthTable(aig, f, n);
    const std::size_t sizeBefore = aig.coneSize(f);
    const AigEdge g = fraigReduce(aig, f);
    EXPECT_EQ(truthTable(aig, g, n), before);
    EXPECT_LE(aig.coneSize(g), sizeBefore);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FraigSemanticsPreserved, ::testing::Range(0, 40));

} // namespace
} // namespace hqs
