// Supervised-fleet tests: pre-fork serving over a shared SO_REUSEPORT
// group, SIGKILL crash containment (the acceptance scenario: a worker dying
// mid-solve leaves the fleet serving and surfaces the killed request as a
// structured worker-crash failure), respawn with backoff, the crash-loop
// circuit breaker and its 503 degraded responder, drain propagation, and
// the shared-memory scoreboard the containment is built on.
//
// Everything runs real fork()ed workers against loopback sockets, so these
// cases are registered RUN_SERIAL and sized in hundreds of milliseconds,
// not CI-hostile sleeps.  The file also compiles into the asan/* runtime
// binary (not tsan/*: TSan refuses threads after a multithreaded fork).
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/service/client.hpp"
#include "src/service/http.hpp"
#include "src/service/scoreboard.hpp"
#include "src/service/supervisor.hpp"

using namespace hqs;
using namespace hqs::service;
using namespace std::chrono_literals;

namespace {

// Forall u1 u2 exists e3(u1) e4(u2): (u1 <-> e3) and (u2 <-> e4) — SAT.
const char* kSatFormula =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

/// Marker body for the fork-safe slow override below.  Never parsed — the
/// override replaces parse+solve entirely.
const char* kSlowFormula = "slow";

/// Poll @p cond for up to @p seconds.
bool eventually(const std::function<bool()>& cond, double seconds = 10.0)
{
    Timer t;
    while (t.elapsedSeconds() < seconds) {
        if (cond()) return true;
        std::this_thread::sleep_for(1ms);
    }
    return cond();
}

/// Fork-safe solve override: no captures, so it works identically in the
/// forked workers (captured test-process state would be a silent copy).
/// "slow" requests hold their admission slot for several seconds — long
/// enough to SIGKILL the worker underneath them, short enough to bound a
/// hung test.
SolveResult forkSafeSolve(const std::string& formula, const SolveRequestOptions&,
                          const Deadline& deadline)
{
    if (formula == "slow") {
        Timer t;
        while (t.elapsedSeconds() < 8.0 && !deadline.expired())
            std::this_thread::sleep_for(1ms);
    }
    return SolveResult::Sat;
}

SupervisorOptions fastFleetOptions(int workers)
{
    SupervisorOptions opts;
    opts.workers = workers;
    opts.service.maxInflight = 2;
    opts.service.solveOverride = forkSafeSolve;
    opts.backoffInitialSeconds = 0.05;
    opts.backoffMaxSeconds = 0.5;
    return opts;
}

/// One-shot GET against 127.0.0.1:@p port.
bool httpGet(std::uint16_t port, const std::string& target, HttpResponseMsg& rsp)
{
    BlockingClient client;
    if (!client.connect("127.0.0.1", port)) return false;
    if (!client.sendAll("GET " + target +
                        " HTTP/1.1\r\nHost: hqs\r\nConnection: close\r\n\r\n"))
        return false;
    return client.readResponse(rsp);
}

/// POST /solve with the bounded-retry client path (riding through worker
/// startup and respawn windows).  Returns the final status, or 0 when every
/// attempt failed at the transport level.
int solveWithRetry(std::uint16_t port, const std::string& formula, int retries = 8)
{
    for (int attempt = 0; attempt <= retries; ++attempt) {
        BlockingClient client;
        SolveRequestOptions ropts;
        HttpResponseMsg rsp;
        if (client.connect("127.0.0.1", port) &&
            client.sendAll(buildHttpSolveRequest(formula, ropts, false)) &&
            client.readResponse(rsp)) {
            if (rsp.status != 503 && rsp.status != 429) return rsp.status;
        }
        if (attempt == retries) break;
        double hint = 0;
        if (rsp.status == 503 || rsp.status == 429) {
            const std::string* ra = rsp.header("retry-after");
            hint = parseRetryAfterSeconds(ra ? *ra : "", rsp.body, 0.02);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(retryDelaySeconds(
            attempt, 0.02, 0.25, hint, static_cast<std::uint64_t>(attempt) + 1)));
    }
    return 0;
}

bool allSlotsUp(const Supervisor& fleet)
{
    const std::vector<SlotStatus> slots = fleet.slots();
    for (const SlotStatus& s : slots)
        if (s.state != SlotStatus::State::Up) return false;
    return !slots.empty();
}

} // namespace

// --- scoreboard -------------------------------------------------------------

TEST(Scoreboard, ClaimFillReleaseLifecycle)
{
    WorkerScoreboard board;
    const std::uint64_t hash = scoreboardHash("p cnf 1 1\n1 0\n");
    const std::size_t idx = board.claim(hash, "portfolio");
    ASSERT_LT(idx, WorkerScoreboard::kJournalSlots);
    EXPECT_EQ(board.journal[idx].state.load(), ScoreboardEntry::Filled);
    EXPECT_EQ(board.journal[idx].requestHash.load(), hash);
    EXPECT_STREQ(board.journal[idx].site, "portfolio");
    EXPECT_EQ(board.solvesStarted.load(), 1u);

    board.release(idx);
    EXPECT_EQ(board.journal[idx].state.load(), ScoreboardEntry::Free);
    EXPECT_EQ(board.solvesFinished.load(), 1u);
}

TEST(Scoreboard, FullJournalDegradesGracefully)
{
    WorkerScoreboard board;
    for (std::size_t i = 0; i < WorkerScoreboard::kJournalSlots; ++i)
        ASSERT_LT(board.claim(i, "s"), WorkerScoreboard::kJournalSlots);
    // The 65th in-flight solve goes unjournaled, it does not block or evict.
    EXPECT_EQ(board.claim(999, "s"), WorkerScoreboard::kJournalSlots);
    board.release(WorkerScoreboard::kJournalSlots); // no-op, no crash
    board.release(3);
    EXPECT_LT(board.claim(1000, "s"), WorkerScoreboard::kJournalSlots);
}

TEST(Scoreboard, SiteLabelTruncatesNotOverflows)
{
    WorkerScoreboard board;
    const std::string longSite(200, 'x');
    const std::size_t idx = board.claim(1, longSite.c_str());
    ASSERT_LT(idx, WorkerScoreboard::kJournalSlots);
    EXPECT_EQ(std::string(board.journal[idx].site).size(),
              sizeof(board.journal[idx].site) - 1);
}

TEST(Scoreboard, HashIsFnv1a64)
{
    // Known FNV-1a 64 vectors: empty = offset basis, "a" = 0xaf63dc4c8601ec8c.
    EXPECT_EQ(scoreboardHash(""), 14695981039346656037ull);
    EXPECT_EQ(scoreboardHash("a"), 0xaf63dc4c8601ec8cull);
}

// --- fleet serving ----------------------------------------------------------

TEST(SupervisorFleet, ServesHttpAndJsonlAcrossWorkers)
{
    Supervisor fleet(fastFleetOptions(2));
    std::string error;
    ASSERT_TRUE(fleet.start(&error)) << error;
    ASSERT_TRUE(eventually([&] { return allSlotsUp(fleet); }, 15.0));

    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(solveWithRetry(fleet.httpPort(), kSatFormula), 200) << "i=" << i;

    // JSONL port serves through the same REUSEPORT group.
    BlockingClient jsonl;
    ASSERT_TRUE(jsonl.connect("127.0.0.1", fleet.jsonlPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(jsonl.sendAll(buildJsonlSolveRequest("j1", kSatFormula, ropts)));
    std::string row, verdict;
    ASSERT_TRUE(jsonl.readLine(row));
    ASSERT_TRUE(jsonStringField(row, "result", verdict)) << row;

    // Fleet health and merged metrics on the admin port.
    HttpResponseMsg health;
    ASSERT_TRUE(httpGet(fleet.adminPort(), "/healthz", health));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos) << health.body;

    HttpResponseMsg metrics;
    ASSERT_TRUE(httpGet(fleet.adminPort(), "/metrics", metrics));
    EXPECT_EQ(metrics.status, 200);
    // Master-side fleet gauges plus per-worker samples tagged worker="N".
    EXPECT_NE(metrics.body.find("hqs_service_worker_live"), std::string::npos);
    EXPECT_NE(metrics.body.find("worker=\"0\""), std::string::npos) << metrics.body;
    EXPECT_NE(metrics.body.find("worker=\"1\""), std::string::npos);

    fleet.beginDrain();
    EXPECT_TRUE(fleet.waitForExit(15.0));
    EXPECT_EQ(fleet.totalCrashes(), 0u);
}

// --- crash containment (the acceptance scenario) ----------------------------

TEST(SupervisorFleet, SigkillMidSolveIsContainedAndReported)
{
    Supervisor fleet(fastFleetOptions(2));
    std::string error;
    ASSERT_TRUE(fleet.start(&error)) << error;
    ASSERT_TRUE(eventually([&] { return allSlotsUp(fleet); }, 15.0));

    // Hold a solve open in whichever worker the kernel hashed us to...
    BlockingClient victim;
    ASSERT_TRUE(victim.connect("127.0.0.1", fleet.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(victim.sendAll(buildHttpSolveRequest(kSlowFormula, ropts, false)));
    // ...give the worker a moment to admit and journal it, then SIGKILL the
    // whole fleet (we cannot know which worker holds the solve; killing both
    // is strictly harsher than the scenario demands).
    std::this_thread::sleep_for(300ms);
    for (const SlotStatus& s : fleet.slots()) {
        ASSERT_GT(s.pid, 0);
        ASSERT_EQ(::kill(s.pid, SIGKILL), 0);
    }

    // The victim request dies with its worker: connection reset, and the
    // supervisor stamps it as a structured worker-crash failure carrying the
    // request's journal hash.
    HttpResponseMsg rsp;
    EXPECT_FALSE(victim.readResponse(rsp));
    ASSERT_TRUE(eventually([&] { return !fleet.crashReports().empty(); }, 10.0));
    const std::vector<WorkerCrashReport> reports = fleet.crashReports();
    bool found = false;
    for (const WorkerCrashReport& r : reports) {
        EXPECT_EQ(r.failure.kind, FailureKind::WorkerCrash);
        EXPECT_FALSE(r.failure.what.empty());
        if (r.requestHash == scoreboardHash(kSlowFormula)) {
            found = true;
            EXPECT_FALSE(r.failure.site.empty());
        }
    }
    EXPECT_TRUE(found) << "no crash report carries the in-flight request hash; "
                       << reports.size() << " reports";

    // Containment: both slots respawn within the backoff bound and the fleet
    // is serving again — the listener never went away.
    ASSERT_TRUE(eventually([&] { return allSlotsUp(fleet); }, 10.0));
    EXPECT_GE(fleet.totalRespawns(), 2u);
    EXPECT_GE(fleet.totalCrashes(), 2u);
    EXPECT_EQ(solveWithRetry(fleet.httpPort(), kSatFormula), 200);

    fleet.beginDrain();
    EXPECT_TRUE(fleet.waitForExit(15.0));
}

// --- crash-loop breaker -----------------------------------------------------

TEST(SupervisorFleet, CrashLoopTripsBreakerInto503Degraded)
{
    SupervisorOptions opts = fastFleetOptions(1);
    opts.breakerDeaths = 3;
    opts.breakerWindowSeconds = 60.0;
    opts.breakerCooldownSeconds = 30.0; // long: the test must see Degraded
    Supervisor fleet(opts);
    std::string error;
    ASSERT_TRUE(fleet.start(&error)) << error;

    // Kill the worker every time it comes up until the breaker trips.
    for (int death = 0; death < 3; ++death) {
        ASSERT_TRUE(eventually([&] { return allSlotsUp(fleet); }, 15.0))
            << "death " << death;
        const int pid = fleet.slots()[0].pid;
        ASSERT_GT(pid, 0);
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        ASSERT_TRUE(eventually([&] { return fleet.totalCrashes() >= death + 1u; }, 10.0));
    }
    ASSERT_TRUE(eventually([&] { return fleet.degradedSlots() == 1; }, 10.0));
    EXPECT_NE(fleet.healthzJson().find("\"status\": \"degraded\""), std::string::npos)
        << fleet.healthzJson();

    // With zero live workers the master itself answers the service port:
    // 503 + Retry-After, never a dark listener.
    BlockingClient client;
    ASSERT_TRUE(eventually(
        [&] { return client.connect("127.0.0.1", fleet.httpPort()); }, 5.0));
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, false)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 503);
    ASSERT_NE(rsp.header("retry-after"), nullptr);

    // /healthz on the admin port tells the same story.
    HttpResponseMsg health;
    ASSERT_TRUE(httpGet(fleet.adminPort(), "/healthz", health));
    EXPECT_NE(health.body.find("\"status\": \"degraded\""), std::string::npos);
    EXPECT_NE(health.body.find("\"state\": \"degraded\""), std::string::npos);

    fleet.stop();
}

// --- drain propagation ------------------------------------------------------

TEST(SupervisorFleet, DrainPropagatesAndFlushesInFlightSolves)
{
    Supervisor fleet(fastFleetOptions(2));
    std::string error;
    ASSERT_TRUE(fleet.start(&error)) << error;
    ASSERT_TRUE(eventually([&] { return allSlotsUp(fleet); }, 15.0));

    // Hold a solve open, then drain mid-flight: the worker must finish and
    // flush it before exiting, exactly like single-process SIGTERM drain.
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", fleet.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ropts.timeoutSeconds = 2.0; // bounds the "slow" override via the deadline
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSlowFormula, ropts, false)));
    std::this_thread::sleep_for(200ms);

    fleet.beginDrain();
    EXPECT_TRUE(fleet.draining());

    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp)) << "in-flight solve was torn by drain";
    EXPECT_EQ(rsp.status, 200);

    EXPECT_TRUE(fleet.waitForExit(15.0));
    EXPECT_EQ(fleet.totalCrashes(), 0u);
    for (const SlotStatus& s : fleet.slots())
        EXPECT_EQ(s.state, SlotStatus::State::Exited);
}
