// Differential and invariant tests for the rebuilt AIG kernel: the dense
// open-addressing strash, the generation-stamped traversal cache, the
// compose/cofactor operation cache, mark-compact garbage collection, the
// concurrent cofactorInto/importCone pair, and the live-node budget
// semantics built on top of them.  Substitute/cofactor results are checked
// two ways: point-wise against semantic evaluation over every assignment,
// and via SAT equivalence through the CNF bridge.
#include <gtest/gtest.h>

#include <vector>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/base/rng.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

constexpr Var kVars = 6; // 64 assignments: exhaustive checks stay cheap

/// Random cone over variables 0..kVars-1 built from @p ops and/xor steps.
AigEdge randomCone(Aig& aig, Rng& rng, std::size_t ops)
{
    std::vector<AigEdge> pool;
    for (Var v = 0; v < kVars; ++v) pool.push_back(aig.variable(v));
    pool.push_back(aig.constTrue());
    for (std::size_t i = 0; i < ops; ++i) {
        const AigEdge a = pool[rng.below(pool.size())] ^ rng.flip();
        const AigEdge b = pool[rng.below(pool.size())] ^ rng.flip();
        pool.push_back(rng.flip() ? aig.mkAnd(a, b) : aig.mkXor(a, b));
    }
    return pool.back() ^ rng.flip();
}

std::vector<bool> assignmentFromBits(unsigned bits)
{
    std::vector<bool> a(kVars);
    for (Var v = 0; v < kVars; ++v) a[v] = (bits >> v) & 1u;
    return a;
}

std::uint64_t truthTable(const Aig& aig, AigEdge root)
{
    std::uint64_t tt = 0;
    for (unsigned bits = 0; bits < (1u << kVars); ++bits) {
        if (aig.evaluate(root, assignmentFromBits(bits))) tt |= 1ull << bits;
    }
    return tt;
}

bool satEquivalent(Aig& aig, AigEdge a, AigEdge b)
{
    const AigEdge diff = aig.mkXor(a, b);
    if (aig.isConstant(diff)) return !aig.constantValue(diff);
    SatSolver sat;
    AigCnfBridge bridge(aig, sat);
    return sat.solve({bridge.litFor(diff)}) == SolveResult::Unsat;
}

// ---------------------------------------------------------------- strash --

TEST(AigKernel, StrashDeduplicatesAndCountsProbes)
{
    Aig aig;
    const AigEdge x = aig.variable(0);
    const AigEdge y = aig.variable(1);
    const AigEdge e = aig.mkAnd(x, y);
    const std::size_t n = aig.numNodes();
    // Same fanins (in either order) must return the identical node.
    EXPECT_EQ(aig.mkAnd(x, y), e);
    EXPECT_EQ(aig.mkAnd(y, x), e);
    EXPECT_EQ(aig.numNodes(), n);
    EXPECT_GT(aig.kernelStats().strashProbes, 0u);
}

TEST(AigKernel, StrashGrowsUnderLoad)
{
    Aig aig;
    Rng rng(7);
    randomCone(aig, rng, 20000);
    const AigKernelStats& st = aig.kernelStats();
    EXPECT_GE(st.strashResizes, 1u); // initial table is 1024 slots
    EXPECT_EQ(st.peakAllocatedNodes, aig.numNodes());
}

// ----------------------------------------------- substitute / cofactor ---

TEST(AigKernel, SubstituteMatchesSemanticEvaluation)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Aig aig;
        Rng rng(seed);
        const AigEdge f = randomCone(aig, rng, 60);

        Substitution sub;
        std::vector<AigEdge> images(kVars);
        for (Var v = 0; v < kVars; ++v) {
            images[v] = aig.variable(v);
            if (rng.flip()) {
                images[v] = randomCone(aig, rng, 10);
                sub.set(v, images[v]);
            }
        }
        const AigEdge g = aig.substitute(f, sub);

        for (unsigned bits = 0; bits < (1u << kVars); ++bits) {
            const std::vector<bool> a = assignmentFromBits(bits);
            std::vector<bool> mapped(kVars);
            for (Var v = 0; v < kVars; ++v) mapped[v] = aig.evaluate(images[v], a);
            EXPECT_EQ(aig.evaluate(g, a), aig.evaluate(f, mapped))
                << "seed " << seed << " bits " << bits;
        }
    }
}

TEST(AigKernel, CofactorMatchesSemanticEvaluation)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Aig aig;
        Rng rng(seed * 31);
        const AigEdge f = randomCone(aig, rng, 60);
        const Var v = static_cast<Var>(rng.below(kVars));
        const bool value = rng.flip();
        const AigEdge cof = aig.cofactor(f, v, value);

        for (unsigned bits = 0; bits < (1u << kVars); ++bits) {
            std::vector<bool> a = assignmentFromBits(bits);
            a[v] = value;
            EXPECT_EQ(aig.evaluate(cof, assignmentFromBits(bits)), aig.evaluate(f, a))
                << "seed " << seed << " bits " << bits;
        }
    }
}

TEST(AigKernel, DoubleSwapIsSatEquivalentToOriginal)
{
    // Swapping two variables twice must give back the original function;
    // checked through the CNF bridge rather than point-wise evaluation.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Aig aig;
        Rng rng(seed * 97);
        const AigEdge f = randomCone(aig, rng, 80);
        Substitution swap;
        swap.set(0, aig.variable(1));
        swap.set(1, aig.variable(0));
        const AigEdge once = aig.substitute(f, swap);
        swap.clear();
        swap.set(0, aig.variable(1));
        swap.set(1, aig.variable(0));
        const AigEdge twice = aig.substitute(once, swap);
        EXPECT_TRUE(satEquivalent(aig, f, twice)) << "seed " << seed;
    }
}

TEST(AigKernel, OpCacheHitsOnRepeatedCofactors)
{
    Aig aig;
    Rng rng(11);
    const AigEdge f = randomCone(aig, rng, 200);
    const AigEdge first = aig.cofactor(f, 0, true);
    const std::uint64_t missesAfterFirst = aig.kernelStats().opCacheMisses;
    const AigEdge second = aig.cofactor(f, 0, true);
    EXPECT_EQ(first, second);
    EXPECT_GT(aig.kernelStats().opCacheHits, 0u);
    // The repeat run must be answered from the cache, not recomputed.
    EXPECT_EQ(aig.kernelStats().opCacheMisses, missesAfterFirst);
}

// ---------------------------------------------------------------- GC -----

TEST(AigKernel, GcPreservesSemanticsAndReclaimsGarbage)
{
    Aig aig;
    Rng rng(23);
    AigEdge f = randomCone(aig, rng, 120);
    const std::uint64_t ttBefore = truthTable(aig, f);
    randomCone(aig, rng, 3000); // stranded garbage
    const std::size_t before = aig.numNodes();

    aig.garbageCollect({&f});

    EXPECT_LT(aig.numNodes(), before);
    EXPECT_EQ(truthTable(aig, f), ttBefore);
    const AigKernelStats& st = aig.kernelStats();
    EXPECT_EQ(st.gcRuns, 1u);
    EXPECT_EQ(st.gcReclaimedNodes, before - aig.numNodes());
    EXPECT_LE(st.peakLiveNodes, st.peakAllocatedNodes);
}

TEST(AigKernel, GcRehashesStrashAndRewiresRoots)
{
    Aig aig;
    AigEdge x = aig.variable(0);
    AigEdge y = aig.variable(1);
    AigEdge e = aig.mkAnd(x, y);
    Rng rng(5);
    randomCone(aig, rng, 500); // garbage so indices actually move

    aig.garbageCollect({&x, &y, &e});

    // Registered edges were rewired to the compacted pool...
    EXPECT_EQ(aig.variable(0), x);
    EXPECT_EQ(aig.variable(1), y);
    // ...and the rebuilt strash finds the surviving AND instead of
    // allocating a duplicate.
    const std::size_t n = aig.numNodes();
    EXPECT_EQ(aig.mkAnd(x, y), e);
    EXPECT_EQ(aig.numNodes(), n);
}

TEST(AigKernel, RepeatedSubstituteGcCyclesStaySound)
{
    // The long-haul invariant the solver relies on: interleaving
    // substitutions, cofactors, and GCs never changes the function.
    Aig aig;
    Rng rng(41);
    AigEdge f = randomCone(aig, rng, 100);
    std::uint64_t tt = truthTable(aig, f);
    for (int round = 0; round < 8; ++round) {
        // Swap a random pair of variables twice: a semantic no-op.
        const Var a = static_cast<Var>(rng.below(kVars));
        const Var b = static_cast<Var>((a + 1 + rng.below(kVars - 1)) % kVars);
        for (int rep = 0; rep < 2; ++rep) {
            Substitution& sub = aig.scratchSubstitution();
            sub.set(a, aig.variable(b));
            sub.set(b, aig.variable(a));
            f = aig.substitute(f, sub);
        }
        randomCone(aig, rng, 400); // strand garbage
        aig.garbageCollect({&f});
        ASSERT_EQ(truthTable(aig, f), tt) << "round " << round;
        // A cofactor answered through the (GC-remapped) op cache must agree
        // with semantic evaluation as well.
        const AigEdge cof = aig.cofactor(f, 0, true);
        for (unsigned bits = 0; bits < (1u << kVars); ++bits) {
            std::vector<bool> asg = assignmentFromBits(bits);
            asg[0] = true;
            ASSERT_EQ(aig.evaluate(cof, assignmentFromBits(bits)), aig.evaluate(f, asg))
                << "round " << round << " bits " << bits;
        }
    }
}

// ----------------------------------------- cofactorInto / importCone -----

TEST(AigKernel, CofactorIntoMatchesInManagerCofactor)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Aig aig;
        Rng rng(seed * 13);
        const AigEdge f = randomCone(aig, rng, 80);
        const Var v = static_cast<Var>(rng.below(kVars));
        const bool value = rng.flip();

        Aig side;
        const AigEdge out = aig.cofactorInto(side, f, v, value);
        const AigEdge ref = aig.cofactor(f, v, value);
        EXPECT_EQ(truthTable(side, out), truthTable(aig, ref)) << "seed " << seed;

        // Importing the side cone back re-establishes sharing in the main
        // manager and preserves the function.
        const AigEdge back = aig.importCone(side, out);
        EXPECT_TRUE(satEquivalent(aig, back, ref)) << "seed " << seed;
    }
}

TEST(AigKernel, ParallelCofactorPathAgreesWithOracle)
{
    // Force every Theorem-1 elimination down the concurrent build path and
    // cross-check verdicts against the expansion oracle.
    auto randomDqbf = [](Rng& rng) {
        DqbfFormula f;
        std::vector<Var> xs, ys;
        for (int i = 0; i < 3; ++i) xs.push_back(f.addUniversal());
        for (int i = 0; i < 3; ++i) {
            std::vector<Var> deps;
            for (Var x : xs)
                if (rng.flip()) deps.push_back(x);
            ys.push_back(f.addExistential(std::move(deps)));
        }
        std::vector<Var> all = xs;
        all.insert(all.end(), ys.begin(), ys.end());
        for (int c = 0; c < 10; ++c) {
            Clause cl;
            for (int j = 0; j < 3; ++j)
                cl.push(Lit(all[rng.below(all.size())], rng.flip()));
            f.matrix().addClause(std::move(cl));
        }
        return f;
    };

    Rng rng(2026);
    for (int round = 0; round < 15; ++round) {
        const DqbfFormula f = randomDqbf(rng);
        const SolveResult expected = expansionDqbf(f, Deadline::unlimited());
        HqsOptions opts;
        opts.parallelCofactorNodes = 1; // every Theorem-1 pair goes parallel
        HqsSolver solver(opts);
        EXPECT_EQ(solver.solve(f), expected) << "round " << round;
    }

    // Random instances are often decided by preprocessing before any
    // universal elimination, so pin the stat down with an instance that
    // provably reaches Theorem 1: incomparable dependency sets ({x1} vs
    // {x2}) rule out an equivalent QBF prefix, the biconditionals leave no
    // unit or pure literal, and neither existential sees every universal.
    DqbfFormula forced;
    const Var x1 = forced.addUniversal();
    const Var x2 = forced.addUniversal();
    const Var y1 = forced.addExistential({x1});
    const Var y2 = forced.addExistential({x2});
    auto iff = [&forced](Var a, Var b) {
        Clause c1;
        c1.push(Lit::neg(a));
        c1.push(Lit::pos(b));
        forced.matrix().addClause(std::move(c1));
        Clause c2;
        c2.push(Lit::pos(a));
        c2.push(Lit::neg(b));
        forced.matrix().addClause(std::move(c2));
    };
    iff(y1, x1); // y1 <-> x1 — realizable, y1 sees x1
    iff(y2, x2); // y2 <-> x2 — realizable, y2 sees x2
    HqsOptions opts;
    opts.parallelCofactorNodes = 1;
    // The biconditionals are Theorem-6 units (and CNF preprocessing finds
    // the same equivalences); switch those passes off so the elimination
    // loop, not preprocessing, decides the instance.
    opts.preprocess = false;
    opts.unitPure = false;
    opts.satProbe = false;
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(forced), expansionDqbf(forced, Deadline::unlimited()));
    EXPECT_GT(solver.stats().parallelCofactorBuilds, 0u);
}

// ------------------------------------------------------- node budget -----

TEST(AigKernel, NodeLimitIgnoresReclaimableGarbage)
{
    // Regression: the node budget reads *live* nodes.  A manager bloated
    // with stranded allocations but holding a tiny live cone must garbage
    // collect and keep solving, not report Memout.
    Aig aig;
    Rng rng(3);
    randomCone(aig, rng, 5000); // dropped on the floor
    AigEdge matrix = aig.mkAnd(aig.variable(0), aig.variable(1));
    ASSERT_GT(aig.numNodes(), 1000u);

    QbfPrefix prefix;
    prefix.addBlock(QuantKind::Exists, {0, 1});
    AigQbfOptions opts;
    opts.nodeLimit = 1000;
    opts.fraig = false;
    opts.unitPure = false;
    AigQbfSolver solver(opts);
    EXPECT_EQ(solver.solve(aig, matrix, prefix), SolveResult::Sat);
    EXPECT_LE(aig.numNodes(), 1000u); // the GC actually ran
}

TEST(AigKernel, NodeLimitStillTripsOnOversizedLiveCone)
{
    Aig aig;
    AigEdge matrix = aig.constTrue();
    for (Var v = 0; v < 300; ++v) {
        matrix = aig.mkAnd(matrix, aig.variable(v) ^ (v % 2 == 0));
    }
    QbfPrefix prefix;
    std::vector<Var> vars;
    for (Var v = 0; v < 300; ++v) vars.push_back(v);
    prefix.addBlock(QuantKind::Exists, std::move(vars));

    AigQbfOptions opts;
    opts.nodeLimit = 100;
    opts.fraig = false;
    opts.unitPure = false; // units would legitimately shrink the cone
    AigQbfSolver solver(opts);
    EXPECT_EQ(solver.solve(aig, matrix, prefix), SolveResult::Memout);
}

} // namespace
} // namespace hqs
