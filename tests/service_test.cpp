// Solver-service tests: HTTP codec units, loopback end-to-end round trips,
// and the serving guarantees — bounded admission (429 + Retry-After under
// flood), disconnect-storm cancellation through CancelReason::Disconnected,
// graceful drain (programmatic and via SIGTERM), and the /metrics
// Prometheus schema.  The whole file also compiles into the tsan/* and
// asan/* runtime binaries, so the epoll loop's single-writer discipline is
// sanitizer-checked, not just asserted in comments.
//
// Golden files live in tests/data/golden/; regenerate with
// HQS_UPDATE_GOLDEN=1 after an intentional schema change.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/result_cache.hpp"
#include "src/cert/certificate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/service/client.hpp"
#include "src/service/http.hpp"
#include "src/service/server.hpp"

using namespace hqs;
using namespace hqs::service;
using namespace std::chrono_literals;

namespace {

// Forall u1 u2 exists e3(u1) e4(u2): (u1 <-> e3) and (u2 <-> e4) — SAT.
const char* kSatFormula =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

// Forall u1 exists e2 with empty support: e2 <-> u1 — UNSAT.
const char* kUnsatFormula =
    "p cnf 2 2\n"
    "a 1 0\n"
    "d 2 0\n"
    "1 -2 0\n"
    "-1 2 0\n";

// DQCIR copycat: forall x, exists y with D_y = {x}: y <-> x — SAT.
const char* kDqcirSat =
    "#QCIR-G14\n"
    "forall(x)\n"
    "depend(y, x)\n"
    "output(-g)\n"
    "g = xor(x, y)\n";

// Same matrix but free(y): y cannot see x it must mirror — UNSAT.
const char* kDqcirUnsat =
    "#QCIR-G14\n"
    "forall(x)\n"
    "free(y)\n"
    "output(-g)\n"
    "g = xor(x, y)\n";

std::string goldenPath(const std::string& name)
{
    return std::string(HQS_TEST_DATA_DIR) + "/golden/" + name;
}

void expectMatchesGolden(const std::string& actual, const std::string& name)
{
    const std::string path = goldenPath(name);
    if (std::getenv("HQS_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with HQS_UPDATE_GOLDEN=1)";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(want.str(), actual) << "golden mismatch for " << name;
}

/// Poll @p cond (a counter predicate) for up to @p seconds.
bool eventually(const std::function<bool()>& cond, double seconds = 10.0)
{
    Timer t;
    while (t.elapsedSeconds() < seconds) {
        if (cond()) return true;
        std::this_thread::sleep_for(1ms);
    }
    return cond();
}

} // namespace

// --- HTTP codec -------------------------------------------------------------

TEST(ServiceHttp, ParsesRequestAndPipelinedSuccessor)
{
    HttpParser parser;
    std::string buf = "POST /solve HTTP/1.1\r\nContent-Length: 3\r\n"
                      "timeout-ms: 250\r\n\r\nabcGET /healthz HTTP/1.1\r\n\r\n";
    HttpRequest req;
    ASSERT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::Ready);
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/solve");
    EXPECT_EQ(req.body, "abc");
    ASSERT_NE(req.header("timeout-ms"), nullptr);
    EXPECT_EQ(*req.header("timeout-ms"), "250");
    EXPECT_TRUE(req.keepAlive());

    ASSERT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::Ready);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_TRUE(buf.empty());
}

TEST(ServiceHttp, IncompleteBodyNeedsMore)
{
    HttpParser parser;
    std::string buf = "POST /solve HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
    HttpRequest req;
    EXPECT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::NeedMore);
}

TEST(ServiceHttp, EnforcesLimits)
{
    {
        HttpParser parser(/*maxHeaderBytes=*/64, /*maxBodyBytes=*/1024);
        std::string buf = "GET / HTTP/1.1\r\nx: " + std::string(200, 'a') + "\r\n\r\n";
        HttpRequest req;
        EXPECT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::Error);
        EXPECT_EQ(parser.errorStatus(), 431);
    }
    {
        HttpParser parser(/*maxHeaderBytes=*/1024, /*maxBodyBytes=*/8);
        std::string buf = "POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        HttpRequest req;
        EXPECT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::Error);
        EXPECT_EQ(parser.errorStatus(), 413);
    }
    {
        HttpParser parser;
        std::string buf = "not-http\r\n\r\n";
        HttpRequest req;
        EXPECT_EQ(parser.consumeRequest(buf, req), HttpParser::Status::Error);
        EXPECT_EQ(parser.errorStatus(), 400);
    }
}

TEST(ServiceHttp, JsonlRowRoundTrip)
{
    SolveRequestOptions opts;
    opts.timeoutSeconds = 0.25;
    opts.engine = "portfolio:2";
    const std::string row = buildJsonlSolveRequest("job-1", kSatFormula, opts);
    EXPECT_EQ(row.find('\n'), row.size() - 1) << "row must be a single line";

    std::string id, formula, engine;
    double timeoutMs = 0;
    EXPECT_TRUE(jsonStringField(row, "id", id));
    EXPECT_TRUE(jsonStringField(row, "formula", formula));
    EXPECT_TRUE(jsonStringField(row, "engine", engine));
    EXPECT_TRUE(jsonNumberField(row, "timeout_ms", timeoutMs));
    EXPECT_EQ(id, "job-1");
    EXPECT_EQ(formula, kSatFormula);
    EXPECT_EQ(engine, "portfolio:2");
    EXPECT_EQ(timeoutMs, 250);
}

// --- loopback round trips ---------------------------------------------------

TEST(ServiceLoopback, HttpSolveRoundTrip)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    // SAT and UNSAT verdicts on one keep-alive connection.
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");

    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kUnsatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "UNSAT");

    // The portfolio engine answers too and reports its winner.
    ropts.engine = "portfolio:2";
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    std::string engine;
    EXPECT_TRUE(jsonStringField(rsp.body, "engine", engine));
    EXPECT_FALSE(engine.empty());

    // Unknown engine is a 400, not a hang.
    ropts.engine = "no-such-engine";
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 400);

    // /healthz and /stats.
    ASSERT_TRUE(client.sendAll("GET /healthz HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    EXPECT_EQ(rsp.body, "ok\n");
    ASSERT_TRUE(client.sendAll("GET /stats HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    EXPECT_NE(rsp.body.find("\"solves_completed\""), std::string::npos);

    service.stop();
    EXPECT_EQ(service.counters().solvesCompleted.load(), 3u);
    EXPECT_EQ(service.counters().badRequests.load(), 1u);
}

TEST(ServiceLoopback, DqcirRoundTripSniffedExplicitAndCacheBypassed)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    opts.resultCache = std::make_shared<cache::ResultCache>();
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    // Content-sniffed: no format header, the '#QCIR' header line decides.
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirSat, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200) << rsp.body;
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");

    // Resubmitting the identical circuit must solve fresh, not hit the
    // cache: circuit requests bypass the result cache entirely.
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirSat, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200) << rsp.body;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    EXPECT_EQ(rsp.body.find("\"cached\":true"), std::string::npos) << rsp.body;

    // Explicit format=dqcir, solved by the CEGAR engine with a certificate.
    ropts.format = "dqcir";
    ropts.engine = "cegar";
    ropts.certify = true;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirSat, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200) << rsp.body;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    std::string engine;
    ASSERT_TRUE(jsonStringField(rsp.body, "engine", engine));
    EXPECT_EQ(engine, "cegar");
    std::string certBytes;
    EXPECT_TRUE(jsonStringField(rsp.body, "bytes", certBytes)) << rsp.body;
    EXPECT_FALSE(certBytes.empty());

    ropts.certify = false;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirUnsat, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200) << rsp.body;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "UNSAT");

    // Forcing format=dqdimacs on a circuit body is a structured parse
    // failure in the response, not a crash or a hang.
    ropts.engine.clear();
    ropts.format = "dqdimacs";
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirSat, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200) << rsp.body;
    EXPECT_NE(rsp.body.find("\"kind\":\"parse-error\""), std::string::npos) << rsp.body;

    // An unknown format is rejected up front.
    ropts.format = "xml";
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kDqcirSat, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 400) << rsp.body;

    // The same circuit round-trips over the JSONL front end.
    BlockingClient jclient;
    ASSERT_TRUE(jclient.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    SolveRequestOptions jropts;
    jropts.format = "dqcir";
    ASSERT_TRUE(jclient.sendAll(buildJsonlSolveRequest("c-1", kDqcirSat, jropts)));
    std::string row;
    ASSERT_TRUE(jclient.readLine(row));
    ASSERT_TRUE(jsonStringField(row, "result", verdict)) << row;
    EXPECT_EQ(verdict, "SAT");

    service.stop();
    // No circuit verdict entered or left the cache.
    EXPECT_EQ(service.counters().cacheHits.load(), 0u);
    EXPECT_EQ(service.counters().cacheStores.load(), 0u);
}

TEST(ServiceLoopback, JsonlPipelinedRoundTrip)
{
    ServiceOptions opts;
    opts.maxInflight = 4;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;

    // Pipeline several rows, then collect every tagged response.
    SolveRequestOptions ropts;
    const int kRows = 6;
    std::string burst;
    for (int i = 0; i < kRows; ++i) {
        burst += buildJsonlSolveRequest("row-" + std::to_string(i),
                                        i % 2 == 0 ? kSatFormula : kUnsatFormula, ropts);
    }
    ASSERT_TRUE(client.sendAll(burst));

    std::vector<std::string> verdicts(kRows);
    for (int i = 0; i < kRows; ++i) {
        std::string row;
        ASSERT_TRUE(client.readLine(row)) << "missing response row " << i;
        std::string id, verdict;
        ASSERT_TRUE(jsonStringField(row, "id", id)) << row;
        ASSERT_TRUE(jsonStringField(row, "result", verdict)) << row;
        ASSERT_TRUE(id.rfind("row-", 0) == 0);
        const int idx = std::atoi(id.c_str() + 4);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, kRows);
        verdicts[static_cast<std::size_t>(idx)] = verdict;
    }
    for (int i = 0; i < kRows; ++i)
        EXPECT_EQ(verdicts[static_cast<std::size_t>(i)], i % 2 == 0 ? "SAT" : "UNSAT");

    // A row without a formula gets an error row, and the connection lives on.
    ASSERT_TRUE(client.sendAll("{\"id\":\"bad\"}\n"));
    std::string row;
    ASSERT_TRUE(client.readLine(row));
    EXPECT_NE(row.find("\"error\""), std::string::npos);

    service.stop();
}

// --- certification over the wire --------------------------------------------

// The certify header turns a SAT response into verdict + checkable artifact:
// the returned bytes must parse and pass the independent checker on the
// client side, not just claim a self_check on the server side.
TEST(ServiceLoopback, CertifyHttpRoundTripDeliversACheckableCertificate)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    opts.certSelfCheck = true;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    SolveRequestOptions ropts;
    ropts.certify = true;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    EXPECT_NE(rsp.body.find("\"self_check\":\"ok\""), std::string::npos) << rsp.body;

    // Recover the artifact and check it with the independent checker.
    std::string certText;
    ASSERT_TRUE(jsonStringField(rsp.body, "bytes", certText)) << rsp.body;
    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(certText, parsed, detail), cert::CheckStatus::Ok)
        << detail;
    const cert::CheckResult check = cert::checkCertificate(parsed);
    EXPECT_TRUE(check.ok()) << cert::toString(check.status) << ": " << check.detail;

    // UNSAT with certify is still a plain verdict — no certificate block.
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kUnsatFormula, ropts, true)));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "UNSAT");
    EXPECT_EQ(rsp.body.find("\"certificate\""), std::string::npos) << rsp.body;

    // A malformed certify header is a 400, not a silent default.
    ASSERT_TRUE(client.sendAll("POST /solve HTTP/1.1\r\nContent-Length: 0\r\n"
                               "certify: maybe\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 400);

    service.stop();
    EXPECT_EQ(service.counters().certificatesIssued.load(), 1u);
    EXPECT_EQ(service.counters().certSelfCheckFails.load(), 0u);
}

TEST(ServiceLoopback, CertifyOverCapKeepsTheVerdictAndReturns413)
{
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.defaultTimeoutSeconds = 30;
    opts.maxCertificateBytes = 10; // every real certificate exceeds this
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    SolveRequestOptions ropts;
    ropts.certify = true;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 413);
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict)) << rsp.body;
    EXPECT_EQ(verdict, "SAT"); // the verdict survives even when the cert cannot
    std::string reason;
    ASSERT_TRUE(jsonStringField(rsp.body, "certificate_error", reason)) << rsp.body;
    EXPECT_NE(reason.find("exceeds cap"), std::string::npos) << reason;

    // The cap and the rejection both show up in /stats.
    ASSERT_TRUE(client.sendAll("GET /stats HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    EXPECT_NE(rsp.body.find("\"cert_too_large\": 1"), std::string::npos) << rsp.body;
    EXPECT_NE(rsp.body.find("\"max_certificate_bytes\": 10"), std::string::npos)
        << rsp.body;

    service.stop();
    EXPECT_EQ(service.counters().certTooLarge.load(), 1u);
    EXPECT_EQ(service.counters().certificatesIssued.load(), 0u);
}

TEST(ServiceLoopback, JsonlCertifyRowCarriesTheCertificateBlock)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;

    SolveRequestOptions ropts;
    ropts.certify = true;
    ASSERT_TRUE(client.sendAll(buildJsonlSolveRequest("c-1", kSatFormula, ropts)));
    std::string row;
    ASSERT_TRUE(client.readLine(row));
    std::string id, verdict;
    ASSERT_TRUE(jsonStringField(row, "id", id));
    EXPECT_EQ(id, "c-1");
    ASSERT_TRUE(jsonStringField(row, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    double sizeBytes = 0;
    ASSERT_TRUE(jsonNumberField(row, "size_bytes", sizeBytes)) << row;
    EXPECT_GT(sizeBytes, 0);
    std::string certText;
    ASSERT_TRUE(jsonStringField(row, "bytes", certText)) << row;
    cert::Certificate parsed;
    std::string detail;
    EXPECT_EQ(cert::parseCertificateString(certText, parsed, detail), cert::CheckStatus::Ok)
        << detail;
    EXPECT_EQ(static_cast<double>(certText.size()), sizeBytes);

    service.stop();
    EXPECT_EQ(service.counters().certificatesIssued.load(), 1u);
}

TEST(ServiceLoopback, RejectsNonFiniteTimeoutHeader)
{
    ServiceOptions opts;
    opts.maxInflight = 1;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;

    // strtod happily parses "nan" and "inf"; the parse layer passes them
    // through and api::SolveRequest::validate() — the one non-finite-budget
    // gate shared by every entry point — bounces them as 400, so they never
    // become an undefined Deadline.
    for (const char* bad : {"nan", "inf", "-inf"}) {
        const std::string body = kSatFormula;
        std::string req = "POST /solve HTTP/1.1\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\ntimeout-ms: " + bad +
                          "\r\n\r\n" + body;
        ASSERT_TRUE(client.sendAll(req));
        HttpResponseMsg rsp;
        ASSERT_TRUE(client.readResponse(rsp)) << bad;
        EXPECT_EQ(rsp.status, 400) << bad;
        EXPECT_NE(rsp.body.find("timeout must be finite"), std::string::npos) << bad;
    }
    service.stop();
    EXPECT_EQ(service.counters().solvesAdmitted.load(), 0u);
}

TEST(ServiceLoopback, HttpInputBoundedWhileSolveOutstanding)
{
    // parseLoop holds pipelined HTTP input behind an outstanding solve; a
    // hostile peer streaming bytes into that window must hit the buffer cap
    // (413 + close), not balloon c.in until the solve finishes.
    std::atomic<bool> release{false};
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.maxBodyBytes = 4096;
    opts.solveOverride = [&](const std::string&, const SolveRequestOptions&,
                             const Deadline& dl) {
        while (!release.load(std::memory_order_acquire) && !dl.cancelled())
            std::this_thread::sleep_for(1ms);
        return SolveResult::Sat;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    ASSERT_TRUE(eventually([&] { return service.counters().pendingSolves.load() == 1; }));

    // Stream well past maxHeaderBytes + maxBodyBytes while the solve blocks.
    // sendAll may fail partway once the server tears the connection down.
    const std::string chunk(64 * 1024, 'x');
    for (int i = 0; i < 8; ++i) {
        if (!client.sendAll(chunk)) break;
        if (service.counters().badRequests.load() > 0) break;
    }
    ASSERT_TRUE(eventually([&] { return service.counters().badRequests.load() == 1; }));

    // The server answers 413 and closes.  If it closed with garbage still
    // unread in its receive buffer the close degrades to a RST that may
    // outrun the 413, so a reset counts as torn-down too.
    HttpResponseMsg rsp;
    if (client.readResponse(rsp)) {
        EXPECT_EQ(rsp.status, 413);
        EXPECT_NE(rsp.body.find("exceeds limit"), std::string::npos);
        EXPECT_FALSE(client.readResponse(rsp)) << "connection must close after 413";
    }

    release.store(true, std::memory_order_release);
    ASSERT_TRUE(eventually([&] { return service.counters().pendingSolves.load() == 0; }));
    service.stop();
}

TEST(ServiceLoopback, JsonlMalformedBurstSurvivesPeerReset)
{
    // Regression for a use-after-free: a JSONL client pipelines several
    // malformed rows and resets the connection; if an error-row flush fails
    // mid-burst the parse loop must stop, not keep using the destroyed conn.
    ServiceOptions opts;
    opts.maxInflight = 2;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    std::string burst;
    for (int i = 0; i < 64; ++i) burst += "{\"id\":\"bad-" + std::to_string(i) + "\"}\n";
    for (int attempt = 0; attempt < 20; ++attempt) {
        BlockingClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
        ASSERT_TRUE(client.sendAll(burst));
        // SO_LINGER 0 turns close() into a RST, so the server's error-row
        // writes race against a dead socket.
        struct linger lin{};
        lin.l_onoff = 1;
        lin.l_linger = 0;
        ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &lin, sizeof lin);
        client.close();
    }

    // The service survives the storm and still answers a polite client.
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildJsonlSolveRequest("ok", kSatFormula, ropts)));
    std::string row;
    ASSERT_TRUE(client.readLine(row));
    std::string verdict;
    ASSERT_TRUE(jsonStringField(row, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    service.stop();
}

// --- backpressure -----------------------------------------------------------

TEST(ServiceLoopback, FloodGets429WithRetryAfterAndExactlyOneResponseEach)
{
    std::atomic<bool> release{false};
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.maxQueue = 0;
    opts.retryAfterSeconds = 2.0;
    opts.solveOverride = [&](const std::string&, const SolveRequestOptions&,
                             const Deadline& dl) {
        while (!release.load(std::memory_order_acquire) && !dl.expired())
            std::this_thread::sleep_for(1ms);
        return dl.cancelled() ? SolveResult::Unknown : SolveResult::Sat;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    // 64 concurrent clients, one solve each, against a single admission slot
    // that is held open: exactly one is admitted, the rest bounce with 429,
    // and every single one hears back.
    const std::size_t kClients = 64;
    std::atomic<std::size_t> ok{0}, busy{0}, retryAfterSeen{0}, failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
        threads.emplace_back([&] {
            BlockingClient client;
            if (!client.connect("127.0.0.1", service.httpPort())) {
                failures.fetch_add(1);
                return;
            }
            SolveRequestOptions ropts;
            if (!client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, false))) {
                failures.fetch_add(1);
                return;
            }
            HttpResponseMsg rsp;
            if (!client.readResponse(rsp)) {
                failures.fetch_add(1);
                return;
            }
            if (rsp.status == 200) {
                ok.fetch_add(1);
            } else if (rsp.status == 429) {
                busy.fetch_add(1);
                if (rsp.header("retry-after") && *rsp.header("retry-after") == "2")
                    retryAfterSeen.fetch_add(1);
                double retryMs = 0;
                if (!jsonNumberField(rsp.body, "retry_after_ms", retryMs) ||
                    retryMs != 2000)
                    failures.fetch_add(1);
            } else {
                failures.fetch_add(1);
            }
        });
    }
    // Let the flood finish rejecting, then release the one admitted solve.
    ASSERT_TRUE(eventually([&] {
        return service.counters().rejectedBusy.load() +
                   service.counters().solvesAdmitted.load() >=
               kClients;
    }));
    release.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(ok.load(), 1u);
    EXPECT_EQ(busy.load(), kClients - 1);
    EXPECT_EQ(retryAfterSeen.load(), busy.load());
    EXPECT_EQ(service.counters().solvesAdmitted.load(), 1u);
    EXPECT_EQ(service.counters().rejectedBusy.load(), kClients - 1);
    service.stop();
}

TEST(ServiceLoopback, JsonlBusyRowCarriesRetryAfter)
{
    std::atomic<bool> release{false};
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.maxQueue = 0;
    opts.retryAfterSeconds = 0.5;
    opts.solveOverride = [&](const std::string&, const SolveRequestOptions&,
                             const Deadline& dl) {
        while (!release.load(std::memory_order_acquire) && !dl.expired())
            std::this_thread::sleep_for(1ms);
        return dl.cancelled() ? SolveResult::Unknown : SolveResult::Sat;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildJsonlSolveRequest("first", kSatFormula, ropts) +
                               buildJsonlSolveRequest("second", kSatFormula, ropts)));

    // The second row bounces immediately with the busy error.
    std::string row;
    ASSERT_TRUE(client.readLine(row));
    std::string id, errField;
    ASSERT_TRUE(jsonStringField(row, "id", id));
    EXPECT_EQ(id, "second");
    ASSERT_TRUE(jsonStringField(row, "error", errField));
    EXPECT_EQ(errField, "busy");
    double retryMs = 0;
    ASSERT_TRUE(jsonNumberField(row, "retry_after_ms", retryMs));
    EXPECT_EQ(retryMs, 500);

    release.store(true, std::memory_order_release);
    ASSERT_TRUE(client.readLine(row));
    ASSERT_TRUE(jsonStringField(row, "id", id));
    EXPECT_EQ(id, "first");
    std::string verdict;
    ASSERT_TRUE(jsonStringField(row, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    service.stop();
}

// --- disconnect cancellation ------------------------------------------------

TEST(ServiceLoopback, DisconnectStormCancelsInFlightSolves)
{
    ServiceOptions opts;
    opts.maxInflight = 8;
    opts.maxQueue = 64;
    opts.defaultTimeoutSeconds = 60; // backstop only; cancellation must win
    opts.solveOverride = [](const std::string&, const SolveRequestOptions&,
                            const Deadline& dl) {
        while (!dl.expired()) std::this_thread::sleep_for(1ms);
        return dl.cancelled() ? SolveResult::Unknown : SolveResult::Timeout;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    // A storm of clients that fire a solve and hang up without reading.
    const std::size_t kClients = 32;
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
        threads.emplace_back([&] {
            BlockingClient client;
            if (!client.connect("127.0.0.1", service.httpPort())) return;
            SolveRequestOptions ropts;
            client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true));
            client.close(); // mid-solve hangup
        });
    }
    for (std::thread& t : threads) t.join();

    // Every solve the server admitted must be cancelled by the hangups and
    // unwind long before the 60 s deadline backstop.
    ASSERT_TRUE(eventually([&] {
        const ServiceCounters& c = service.counters();
        return c.solvesAdmitted.load() == c.solvesCompleted.load() &&
               c.pendingSolves.load() == 0 && c.solvesAdmitted.load() > 0;
    }))
        << "admitted=" << service.counters().solvesAdmitted.load()
        << " completed=" << service.counters().solvesCompleted.load();
    EXPECT_GT(service.counters().disconnectCancels.load(), 0u);
    EXPECT_EQ(service.counters().disconnectCancels.load(),
              service.counters().solvesAdmitted.load());

    // The service is still healthy for a well-behaved client afterwards.
    // (The override never returns Sat un-cancelled, so use /healthz.)
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    ASSERT_TRUE(client.sendAll("GET /healthz HTTP/1.1\r\n\r\n"));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    service.stop();
}

// --- graceful drain ---------------------------------------------------------

TEST(ServiceLoopback, DrainFinishesInFlightAndRejectsNew)
{
    std::atomic<bool> release{false};
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.solveOverride = [&](const std::string&, const SolveRequestOptions&,
                             const Deadline& dl) {
        while (!release.load(std::memory_order_acquire) && !dl.expired())
            std::this_thread::sleep_for(1ms);
        return dl.cancelled() ? SolveResult::Unknown : SolveResult::Sat;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient inflight;
    ASSERT_TRUE(inflight.connect("127.0.0.1", service.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(inflight.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    ASSERT_TRUE(eventually([&] { return service.counters().pendingSolves.load() == 1; }));

    // Second client connects before the drain begins; its request arrives
    // after and must be answered 503, exactly once.
    BlockingClient late;
    ASSERT_TRUE(late.connect("127.0.0.1", service.httpPort(), &error)) << error;
    service.beginDrain();
    EXPECT_TRUE(service.draining());
    ASSERT_TRUE(late.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(late.readResponse(rsp));
    EXPECT_EQ(rsp.status, 503);
    ASSERT_TRUE(late.sendAll("GET /healthz HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(late.readResponse(rsp));
    EXPECT_EQ(rsp.status, 503);

    // The in-flight solve still completes and its response is flushed
    // before the loop exits.
    release.store(true, std::memory_order_release);
    ASSERT_TRUE(inflight.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");

    EXPECT_TRUE(service.waitForDrained(/*timeoutSeconds=*/10));
    EXPECT_EQ(service.counters().solvesCompleted.load(), 1u);
    EXPECT_EQ(service.counters().rejectedDraining.load(), 1u);
}

TEST(ServiceLoopback, SigtermDrainsAndSecondSignalCancels)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 60; // backstop; the signals must win
    opts.solveOverride = [](const std::string&, const SolveRequestOptions&,
                            const Deadline& dl) {
        while (!dl.expired()) std::this_thread::sleep_for(1ms);
        return SolveResult::Unknown;
    };
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;
    SolverService::installSignalDrain(&service);

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    ASSERT_TRUE(eventually([&] { return service.counters().pendingSolves.load() == 1; }));

    // First SIGTERM: graceful drain — the solve keeps running.
    std::raise(SIGTERM);
    ASSERT_TRUE(eventually([&] { return service.draining(); }));
    EXPECT_EQ(service.counters().pendingSolves.load(), 1u);

    // Second SIGTERM escalates: the in-flight solve is cancelled, its
    // response flushed, and the loop exits.
    std::raise(SIGTERM);
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    EXPECT_TRUE(service.waitForDrained(/*timeoutSeconds=*/10));
    SolverService::installSignalDrain(nullptr);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
}

// The supervised-fleet drain path leans on this guarantee: a SIGTERM
// arriving while a certify solve is in flight must still deliver the full
// response with an intact, independently checkable certificate — never a
// torn artifact, never a dropped connection.
TEST(ServiceLoopback, SigtermDrainFlushesInFlightCertifyIntact)
{
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.defaultTimeoutSeconds = 30;
    opts.certSelfCheck = true;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;
    SolverService::installSignalDrain(&service);

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ropts.certify = true;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, false)));
    // Drain the moment the solve is admitted (or already done — either way
    // the response must be flushed complete before the loop exits).
    ASSERT_TRUE(eventually([&] {
        return service.counters().solvesAdmitted.load() >= 1;
    }));
    std::raise(SIGTERM);

    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp)) << "certify response torn by drain";
    EXPECT_EQ(rsp.status, 200);
    std::string verdict;
    ASSERT_TRUE(jsonStringField(rsp.body, "result", verdict));
    EXPECT_EQ(verdict, "SAT");
    EXPECT_NE(rsp.body.find("\"self_check\":\"ok\""), std::string::npos) << rsp.body;
    std::string certText;
    ASSERT_TRUE(jsonStringField(rsp.body, "bytes", certText)) << rsp.body;
    cert::Certificate parsed;
    std::string detail;
    ASSERT_EQ(cert::parseCertificateString(certText, parsed, detail),
              cert::CheckStatus::Ok)
        << detail;
    const cert::CheckResult check = cert::checkCertificate(parsed);
    EXPECT_TRUE(check.ok()) << cert::toString(check.status) << ": " << check.detail;

    EXPECT_TRUE(service.waitForDrained(/*timeoutSeconds=*/10));
    SolverService::installSignalDrain(nullptr);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
}

// --- metrics ----------------------------------------------------------------

TEST(ServiceLoopback, MetricsEndpointSpeaksPrometheus)
{
    ServiceOptions opts;
    opts.maxInflight = 1;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    SolveRequestOptions ropts;
    ASSERT_TRUE(client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, true)));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200);

    ASSERT_TRUE(client.sendAll("GET /metrics HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.readResponse(rsp));
    ASSERT_EQ(rsp.status, 200);
    ASSERT_NE(rsp.header("content-type"), nullptr);
    EXPECT_NE(rsp.header("content-type")->find("text/plain"), std::string::npos);
#if HQS_OBS_ENABLED
    // Counter and histogram samples in Prometheus text exposition format.
    EXPECT_NE(rsp.body.find("# TYPE hqs_service_requests counter"),
              std::string::npos)
        << rsp.body;
    EXPECT_NE(rsp.body.find("# TYPE hqs_service_solve_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(rsp.body.find("hqs_service_solve_latency_us_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(rsp.body.find("hqs_service_solve_latency_us_count 1"),
              std::string::npos);
#endif
    service.stop();
}

TEST(ServicePrometheus, WriterFormatsAllKinds)
{
    std::vector<obs::MetricValue> metrics;
    obs::MetricValue counter;
    counter.name = "service.requests";
    counter.kind = obs::MetricKind::Counter;
    counter.value = 7;
    metrics.push_back(counter);
    obs::MetricValue gauge;
    gauge.name = "service.pending.max";
    gauge.kind = obs::MetricKind::Gauge;
    gauge.value = 3;
    metrics.push_back(gauge);
    obs::MetricValue hist;
    hist.name = "service.solve_latency_us";
    hist.kind = obs::MetricKind::Histogram;
    hist.count = 3;
    hist.sum = 11;
    hist.max = 8;
    hist.buckets[1] = 1; // one observation of 1
    hist.buckets[2] = 1; // one in [2,4)
    hist.buckets[4] = 1; // one in [8,16)
    metrics.push_back(hist);

    std::ostringstream os;
    obs::writePrometheusText(os, metrics);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE hqs_service_requests counter\n"
                        "hqs_service_requests 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE hqs_service_pending_max gauge\n"
                        "hqs_service_pending_max 3\n"),
              std::string::npos);
    // Registry bucket i counts [2^(i-1), 2^i), emitted at the le="2^i" edge:
    // the observation of 1 lands at le="2", the one in [2,4) at le="4".
    EXPECT_NE(text.find("hqs_service_solve_latency_us_bucket{le=\"2\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("hqs_service_solve_latency_us_bucket{le=\"4\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("hqs_service_solve_latency_us_bucket{le=\"16\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("hqs_service_solve_latency_us_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("hqs_service_solve_latency_us_sum 11\n"), std::string::npos);
    EXPECT_NE(text.find("hqs_service_solve_latency_us_count 3\n"), std::string::npos);
}

TEST(ServicePrometheus, HistogramQuantilesFromLog2Buckets)
{
    obs::MetricValue hist;
    hist.kind = obs::MetricKind::Histogram;
    hist.count = 100;
    hist.sum = 0;
    hist.max = 900;
    hist.buckets[5] = 90;  // 90 observations in [16, 32)
    hist.buckets[10] = 10; // 10 observations in [512, 1024)
    EXPECT_EQ(obs::histogramQuantile(hist, 0.50), 32);
    EXPECT_EQ(obs::histogramQuantile(hist, 0.90), 32);
    // The top occupied bucket's upper edge is clamped to the observed max.
    EXPECT_EQ(obs::histogramQuantile(hist, 0.99), 900);
    EXPECT_EQ(obs::histogramQuantile(hist, 1.0), 900);
}

// --- protocol versioning & solve sessions -----------------------------------

namespace {

/// Start an in-process service, connect a JSONL client, run @p body.
void withJsonlService(const std::function<void(SolverService&, BlockingClient&)>& body,
                      ServiceOptions opts = {})
{
    if (opts.maxInflight == 0) opts.maxInflight = 4;
    if (opts.defaultTimeoutSeconds == 0) opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    body(service, client);
    service.stop();
}

/// Send one JSONL row, read one response row.
std::string roundTrip(BlockingClient& client, const std::string& row)
{
    EXPECT_TRUE(client.sendAll(row));
    std::string reply;
    EXPECT_TRUE(client.readLine(reply));
    return reply;
}

/// Open a session over @p formula and return its id ("" on failure).
std::string openSession(BlockingClient& client, const std::string& formula)
{
    SolveRequestOptions open;
    open.op = "open";
    const std::string reply =
        roundTrip(client, buildJsonlSolveRequest("open-1", formula, open));
    std::string sid;
    jsonStringField(reply, "session", sid);
    return sid;
}

} // namespace

// Locks both protocol shapes: a v1 row (formula, no op) keeps its exact v1
// fields and gains only the "protocol":"v1-compat" tag; a v2 row is tagged
// "v2".  Registered as the ctest entry service/protocol-compat.
TEST(ProtocolCompat, V1RowsAnswerV1CompatAndV2RowsAnswerV2)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        // v1 shape: formula row -> verdict row tagged v1-compat.
        SolveRequestOptions ropts;
        std::string reply =
            roundTrip(client, buildJsonlSolveRequest("v1-row", kSatFormula, ropts));
        std::string verdict, protocol;
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "SAT");
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v1-compat");

        // v1 error rows carry the same tag.
        reply = roundTrip(client, "{\"id\":\"bad\"}\n");
        EXPECT_NE(reply.find("\"error\""), std::string::npos) << reply;
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v1-compat");

        // v2 shape: an op row is tagged v2.
        SolveRequestOptions open;
        open.op = "open";
        reply = roundTrip(client, buildJsonlSolveRequest("v2-row", kSatFormula, open));
        std::string sid;
        ASSERT_TRUE(jsonStringField(reply, "session", sid)) << reply;
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v2");
    });
}

TEST(ProtocolCompat, HandshakeRowNegotiatesTheVersion)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        std::string protocol;
        std::string reply = roundTrip(client, buildJsonlHandshake(2));
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v2");
        EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;

        reply = roundTrip(client, buildJsonlHandshake(1));
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v1-compat");

        // An unsupported version is an error row, and the connection lives.
        reply = roundTrip(client, buildJsonlHandshake(9));
        EXPECT_NE(reply.find("unsupported protocol version"), std::string::npos)
            << reply;
        reply = roundTrip(client, buildJsonlHandshake(2));
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v2");
    });
}

TEST(ProtocolCompat, DeprecatedCacheControlSpellingStillParsesAndWarns)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        // The v1 spelling still works for one release, but the row is
        // field-tagged deprecated.
        const std::string reply = roundTrip(
            client, "{\"id\":\"dep\",\"cache_control\":\"off\",\"formula\":\"" +
                        jsonEscape(kSatFormula) + "\"}\n");
        std::string verdict;
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "SAT");
        EXPECT_NE(reply.find("\"deprecated\":[\"cache_control\"]"), std::string::npos)
            << reply;
    });
}

TEST(ProtocolCompat, DeprecatedHttpCacheControlHeaderWarns)
{
    ServiceOptions opts;
    opts.maxInflight = 2;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", service.httpPort(), &error)) << error;
    const std::string body = kSatFormula;
    ASSERT_TRUE(client.sendAll("POST /solve HTTP/1.1\r\ncache-control: off\r\n"
                               "Content-Length: " +
                               std::to_string(body.size()) + "\r\n\r\n" + body));
    HttpResponseMsg rsp;
    ASSERT_TRUE(client.readResponse(rsp));
    EXPECT_EQ(rsp.status, 200);
    const std::string* dep = rsp.header("deprecation");
    ASSERT_NE(dep, nullptr) << rsp.body;
    EXPECT_NE(dep->find("cache-control"), std::string::npos) << *dep;
    service.stop();
}

TEST(ServiceSession, OpenDeltaSolveCloseRoundTrip)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        const std::string sid = openSession(client, kSatFormula);
        ASSERT_FALSE(sid.empty());

        // Solve the base: SAT.
        SolveRequestOptions solve;
        solve.op = "solve";
        solve.session = sid;
        std::string reply = roundTrip(client, buildJsonlSolveRequest("s-1", "", solve));
        std::string verdict, protocol;
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "SAT");
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v2");

        // Delta: contradictory units on e3 flip the verdict to UNSAT, and
        // the delta row carries the reuse accounting block.
        SolveRequestOptions delta;
        delta.op = "delta";
        delta.session = sid;
        delta.addGroup = "conflict";
        delta.deltaClauses = "3 0 -3 0";
        reply = roundTrip(client, buildJsonlSolveRequest("d-1", "", delta));
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "UNSAT");
        EXPECT_NE(reply.find("\"delta\":{"), std::string::npos) << reply;

        // Retracting the group restores the base verdict, now served from
        // the session's per-component memo.
        SolveRequestOptions retract;
        retract.op = "delta";
        retract.session = sid;
        retract.retractGroup = "conflict";
        reply = roundTrip(client, buildJsonlSolveRequest("d-2", "", retract));
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "SAT");
        double reused = 0;
        ASSERT_TRUE(jsonNumberField(reply, "reused", reused)) << reply;
        EXPECT_GT(reused, 0) << reply;

        // Close answers closed:true once, then the id is gone.
        SolveRequestOptions close;
        close.op = "close";
        close.session = sid;
        reply = roundTrip(client, buildJsonlSolveRequest("c-1", "", close));
        EXPECT_NE(reply.find("\"closed\":true"), std::string::npos) << reply;
        reply = roundTrip(client, buildJsonlSolveRequest("s-2", "", solve));
        std::string kind;
        ASSERT_TRUE(jsonStringField(reply, "error_kind", kind)) << reply;
        EXPECT_EQ(kind, "session-gone");
    });
}

// The fix under test: a delta against an evicted or never-opened session is
// a typed `session-gone` row, not a generic parse error, and the connection
// survives.
TEST(ServiceSession, UnknownSessionIsATypedGoneRow)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        SolveRequestOptions delta;
        delta.op = "delta";
        delta.session = "s-999";
        delta.addGroup = "g";
        delta.deltaClauses = "1 0";
        const std::string reply =
            roundTrip(client, buildJsonlSolveRequest("gone-1", "", delta));
        std::string kind, protocol, sid;
        ASSERT_TRUE(jsonStringField(reply, "error_kind", kind)) << reply;
        EXPECT_EQ(kind, "session-gone");
        ASSERT_TRUE(jsonStringField(reply, "session", sid)) << reply;
        EXPECT_EQ(sid, "s-999");
        ASSERT_TRUE(jsonStringField(reply, "protocol", protocol)) << reply;
        EXPECT_EQ(protocol, "v2");

        // Still serving: a plain v1 solve follows on the same connection.
        SolveRequestOptions ropts;
        const std::string next =
            roundTrip(client, buildJsonlSolveRequest("after", kSatFormula, ropts));
        std::string verdict;
        ASSERT_TRUE(jsonStringField(next, "result", verdict)) << next;
        EXPECT_EQ(verdict, "SAT");
    });
}

TEST(ServiceSession, ClientMistakesAreTypedDeltaInvalidRows)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        const std::string sid = openSession(client, kSatFormula);
        ASSERT_FALSE(sid.empty());

        SolveRequestOptions bad;
        bad.op = "delta";
        bad.session = sid;
        bad.retractGroup = "never-added";
        std::string reply = roundTrip(client, buildJsonlSolveRequest("bad-1", "", bad));
        std::string kind;
        ASSERT_TRUE(jsonStringField(reply, "error_kind", kind)) << reply;
        EXPECT_EQ(kind, "delta-invalid");

        // The failed delta must not have corrupted the session.
        SolveRequestOptions solve;
        solve.op = "solve";
        solve.session = sid;
        reply = roundTrip(client, buildJsonlSolveRequest("s-1", "", solve));
        std::string verdict;
        ASSERT_TRUE(jsonStringField(reply, "result", verdict)) << reply;
        EXPECT_EQ(verdict, "SAT");
    });
}

TEST(ServiceSession, OpsOnOneSessionAnswerInSubmissionOrder)
{
    withJsonlService([](SolverService&, BlockingClient& client) {
        const std::string sid = openSession(client, kSatFormula);
        ASSERT_FALSE(sid.empty());

        // Pipeline four ops without reading; the per-session FIFO must
        // answer them strictly in submission order.
        SolveRequestOptions solve;
        solve.op = "solve";
        solve.session = sid;
        std::string burst;
        for (int i = 0; i < 4; ++i)
            burst += buildJsonlSolveRequest("ord-" + std::to_string(i), "", solve);
        ASSERT_TRUE(client.sendAll(burst));
        for (int i = 0; i < 4; ++i) {
            std::string reply;
            ASSERT_TRUE(client.readLine(reply));
            std::string id;
            ASSERT_TRUE(jsonStringField(reply, "id", id)) << reply;
            EXPECT_EQ(id, "ord-" + std::to_string(i));
        }
    });
}

TEST(ServiceSession, DisconnectClosesOwnedSessions)
{
    ServiceOptions opts;
    opts.maxInflight = 4;
    opts.defaultTimeoutSeconds = 30;
    SolverService service(opts);
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;

    BlockingClient first;
    ASSERT_TRUE(first.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    SolveRequestOptions open;
    open.op = "open";
    std::string reply;
    ASSERT_TRUE(first.sendAll(buildJsonlSolveRequest("open-1", kSatFormula, open)));
    ASSERT_TRUE(first.readLine(reply));
    std::string sid;
    ASSERT_TRUE(jsonStringField(reply, "session", sid)) << reply;
    first.close();

    // The loop closes owned sessions when the connection dies; poll until a
    // second connection observes the id as gone.
    BlockingClient second;
    ASSERT_TRUE(second.connect("127.0.0.1", service.jsonlPort(), &error)) << error;
    SolveRequestOptions solve;
    solve.op = "solve";
    solve.session = sid;
    ASSERT_TRUE(eventually([&] {
        if (!second.sendAll(buildJsonlSolveRequest("probe", "", solve))) return false;
        std::string row;
        if (!second.readLine(row)) return false;
        std::string kind;
        return jsonStringField(row, "error_kind", kind) && kind == "session-gone";
    }));
    service.stop();
}

// --- bench report schema ----------------------------------------------------

TEST(ServiceReport, BenchServiceMatchesGoldenSchema)
{
    // v2 is a multi-run report: one "runs" entry per fleet size.  The
    // baseline row (workers=0, in-process service) carries a registry
    // snapshot; fleet rows do not — the solves happen in forked workers.
    obs::BenchServiceReport baseline;
    baseline.connections = 8;
    baseline.requests = 256;
    baseline.maxInflight = 4;
    baseline.maxQueue = 64;
    baseline.jsonlMode = false;
    baseline.workers = 0;
    baseline.ok = 250;
    baseline.rejected = 6;
    baseline.errors = 0;
    baseline.retries = 0;
    baseline.wallMs = 1234.5;
    baseline.throughputRps = 202.5;
    baseline.latency.p50Us = 2048;
    baseline.latency.p90Us = 4096;
    baseline.latency.p99Us = 8192;
    baseline.latency.maxUs = 9000;
    baseline.latency.meanUs = 2500.25;

    obs::MetricValue counter;
    counter.name = "service.requests";
    counter.kind = obs::MetricKind::Counter;
    counter.value = 256;
    baseline.metrics.push_back(counter);
    obs::MetricValue hist;
    hist.name = "service.solve_latency_us";
    hist.kind = obs::MetricKind::Histogram;
    hist.count = 250;
    hist.sum = 625062;
    hist.max = 9000;
    hist.buckets[11] = 200;
    hist.buckets[12] = 40;
    hist.buckets[13] = 10;
    baseline.metrics.push_back(hist);

    obs::BenchServiceReport fleet = baseline;
    fleet.metrics.clear();
    fleet.workers = 2;
    fleet.cacheEnabled = true;
    fleet.cacheHits = 254;
    fleet.ok = 256;
    fleet.rejected = 0;
    fleet.retries = 3;
    fleet.wallMs = 1500.25;
    fleet.throughputRps = 170.6;

    // v4 adds the session matrix: a session-reuse row over a delta family
    // carries the family size in "params" and the reuse accounting
    // ("session_reuses", "cone_nodes_saved") next to the latency block.
    obs::BenchServiceReport session;
    session.connections = 1;
    session.requests = 8;
    session.maxInflight = 1;
    session.maxQueue = 8;
    session.jsonlMode = true;
    session.sessionMode = true;
    session.deltaFamily = 8;
    session.sessionReuses = 20;
    session.coneNodesSaved = 1040;
    session.ok = 8;
    session.wallMs = 4.5;
    session.throughputRps = 1777.7;
    session.latency.p50Us = 480;
    session.latency.p90Us = 900;
    session.latency.p99Us = 1100;
    session.latency.maxUs = 1200;
    session.latency.meanUs = 560.5;

    std::ostringstream os;
    obs::writeBenchServiceJson(os, {baseline, fleet, session});
    expectMatchesGolden(os.str(), "bench_service.json");
}
