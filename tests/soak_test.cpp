// service/soak: crash-storm soak against a live supervised fleet.
//
// For ~8 seconds a killer thread SIGKILLs random Up workers while client
// threads keep solving through the bounded-retry path.  The serving
// guarantees under that storm:
//
//   * zero unserved requests — every request ends in a verdict or a
//     structured 503/busy rejection, never a final transport failure (the
//     listener never goes dark: live workers, or the master's degraded
//     responder, always answer);
//   * respawns recover monotonically and keep pace with the kills;
//   * after drain, no orphan worker processes remain.
//
// The breaker is configured wide open (the storm is meant to exercise
// respawn, not degradation) and backoff is fast, so the storm stays a storm.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/service/client.hpp"
#include "src/service/http.hpp"
#include "src/service/supervisor.hpp"

using namespace hqs;
using namespace hqs::service;
using namespace std::chrono_literals;

namespace {

// Forall u1 u2 exists e3(u1) e4(u2): (u1 <-> e3) and (u2 <-> e4) — SAT.
const char* kSatFormula =
    "p cnf 4 4\n"
    "a 1 2 0\n"
    "d 3 1 0\n"
    "d 4 2 0\n"
    "1 -3 0\n"
    "-1 3 0\n"
    "2 -4 0\n"
    "-2 4 0\n";

constexpr double kStormSeconds = 8.0;

/// One request through the bounded-retry path.  Returns true when the
/// request was SERVED: a 200 verdict, or a structured 429/503 rejection
/// (the listener answered; admission said no).  False only when every
/// attempt died at the transport level — the downtime the soak forbids.
bool solveServed(std::uint16_t port, std::atomic<std::uint64_t>& retries,
                 std::atomic<std::uint64_t>& verdicts, std::uint64_t seed)
{
    const int kAttempts = 40;
    const double base = 0.01, cap = 0.25;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        BlockingClient client;
        SolveRequestOptions ropts;
        HttpResponseMsg rsp;
        double hint = 0;
        if (client.connect("127.0.0.1", port) &&
            client.sendAll(buildHttpSolveRequest(kSatFormula, ropts, false)) &&
            client.readResponse(rsp)) {
            if (rsp.status == 200) {
                verdicts.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            if (rsp.status == 429 || rsp.status == 503) {
                const std::string* ra = rsp.header("retry-after");
                hint = parseRetryAfterSeconds(ra ? *ra : "", rsp.body, base);
                // Served (structurally rejected) — but keep retrying for a
                // verdict while the budget lasts; the last rejection still
                // counts as served below.
                if (attempt == kAttempts - 1) return true;
            }
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            retryDelaySeconds(attempt, base, cap, hint, seed ^ attempt)));
    }
    return false;
}

} // namespace

TEST(ServiceSoak, CrashStormKeepsServingRespawnsMonotonicNoOrphans)
{
    SupervisorOptions opts;
    opts.workers = 2;
    opts.service.maxInflight = 2;
    opts.backoffInitialSeconds = 0.02;
    opts.backoffMaxSeconds = 0.2;
    opts.breakerDeaths = 1000; // the storm must exercise respawn, not trip
    opts.breakerWindowSeconds = 1.0;
    Supervisor fleet(opts);
    std::string error;
    ASSERT_TRUE(fleet.start(&error)) << error;

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> served{0}, unserved{0}, verdicts{0}, retries{0};
    std::atomic<std::uint64_t> kills{0};
    std::vector<int> killedPids;
    std::mutex killedMu;

    // The storm: SIGKILL a random Up worker every ~300 ms.
    std::thread killer([&] {
        std::mt19937 rng(12345);
        while (!stop.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(300ms);
            std::vector<SlotStatus> slots = fleet.slots();
            std::vector<int> up;
            for (const SlotStatus& s : slots)
                if (s.state == SlotStatus::State::Up && s.pid > 0) up.push_back(s.pid);
            if (up.empty()) continue;
            const int pid = up[rng() % up.size()];
            if (::kill(pid, SIGKILL) == 0) {
                kills.fetch_add(1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(killedMu);
                killedPids.push_back(pid);
            }
        }
    });

    // Respawn counter samples must be non-decreasing (checked live, while
    // the storm runs — not just at the end).
    std::atomic<bool> monotonic{true};
    std::thread sampler([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const std::uint64_t now = fleet.totalRespawns();
            if (now < last) monotonic.store(false, std::memory_order_relaxed);
            last = now;
            std::this_thread::sleep_for(50ms);
        }
    });

    const std::size_t kClients = 2;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Timer t;
            std::uint64_t seq = 0;
            while (t.elapsedSeconds() < kStormSeconds) {
                if (solveServed(fleet.httpPort(), retries, verdicts,
                                (c + 1) * 1000003ull + seq))
                    served.fetch_add(1, std::memory_order_relaxed);
                else
                    unserved.fetch_add(1, std::memory_order_relaxed);
                ++seq;
            }
        });
    }
    for (std::thread& th : clients) th.join();
    stop.store(true, std::memory_order_release);
    killer.join();
    sampler.join();

    EXPECT_GE(kills.load(), 3u) << "storm too weak to mean anything";
    EXPECT_EQ(unserved.load(), 0u)
        << "listener went dark: " << unserved.load() << " of "
        << served.load() + unserved.load() << " requests got no answer at all";
    EXPECT_GE(verdicts.load(), 1u);
    EXPECT_TRUE(monotonic.load());
    // Every kill is a crash the supervisor saw; respawns keep pace.
    ASSERT_TRUE([&] {
        Timer t;
        while (t.elapsedSeconds() < 10.0) {
            if (fleet.totalCrashes() >= kills.load()) return true;
            std::this_thread::sleep_for(5ms);
        }
        return fleet.totalCrashes() >= kills.load();
    }()) << "crashes=" << fleet.totalCrashes() << " kills=" << kills.load();

    fleet.beginDrain();
    ASSERT_TRUE(fleet.waitForExit(20.0));

    // No orphans: every pid the fleet ever ran is gone.  (The supervisor
    // reaped them; kill(pid, 0) must fail with ESRCH.  PID reuse inside a
    // 10-second test is not a realistic hazard.)
    std::vector<int> pids;
    {
        std::lock_guard<std::mutex> lock(killedMu);
        pids = killedPids;
    }
    for (const SlotStatus& s : fleet.slots())
        if (s.pid > 0) pids.push_back(s.pid);
    for (int pid : pids) {
        errno = 0;
        EXPECT_NE(::kill(pid, 0), 0) << "orphan worker pid " << pid;
        EXPECT_EQ(errno, ESRCH) << "pid " << pid;
    }
    // And the supervisor has no unreaped children left behind.
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
}
