// Tests for the parallel runtime: CancelToken/Deadline semantics, the
// bounded ThreadPool, portfolio racing, and the batch scheduler.
//
// Cancellation tests assert the contract "a fired token yields Timeout —
// not a wrong answer and not a hang".  Where a test needs a formula that is
// guaranteed not to be decided before the first deadline check, it probes
// the PEC families for an instance the solver cannot finish in 100 ms and
// skips (rather than flakes) if every probe solves instantly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"
#include "src/runtime/batch.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/runtime/thread_pool.hpp"

using namespace hqs;

namespace {

std::string dataPath(const std::string& name)
{
    return std::string(HQS_TEST_DATA_DIR) + "/" + name;
}

/// A PEC-family formula HQS cannot decide within 100 ms (cached), or
/// nullopt when the machine solves every probe instantly.
const std::optional<DqbfFormula>& hardFormula()
{
    static const std::optional<DqbfFormula> cached = []() -> std::optional<DqbfFormula> {
        for (Family fam : {Family::C432, Family::Comp, Family::Lookahead}) {
            for (unsigned w : {8u, 10u, 12u, 14u}) {
                DqbfFormula f = encodePec(makeInstance(fam, w, false)).formula;
                HqsOptions opts;
                opts.deadline = Deadline::in(0.1);
                HqsSolver solver(opts);
                if (solver.solve(f) == SolveResult::Timeout) return f;
            }
        }
        return std::nullopt;
    }();
    return cached;
}

/// A small-but-nontrivial formula that preprocessing cannot decide (so a
/// pre-fired token is observed before any verdict).
DqbfFormula nontrivialFormula()
{
    return encodePec(makeInstance(Family::Adder, 4, true)).formula;
}

} // namespace

// ---------------------------------------------------------------- CancelToken

TEST(CancelToken, FiringExpiresAnUnlimitedDeadline)
{
    CancelToken token;
    const Deadline d = Deadline::unlimited().withCancel(token);
    EXPECT_FALSE(d.expired());
    EXPECT_FALSE(d.cancelled());
    EXPECT_FALSE(d.isUnlimited()); // can expire now
    token.requestCancel();
    EXPECT_TRUE(d.expired());
    EXPECT_TRUE(d.cancelled());
}

TEST(CancelToken, CopiesShareTheFlag)
{
    CancelToken token;
    const CancelToken copy = token;
    const Deadline d = Deadline::in(3600).withCancel(token);
    copy.requestCancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(d.expired());
    token.reset();
    EXPECT_FALSE(copy.cancelled());
    EXPECT_FALSE(d.expired());
}

TEST(CancelToken, TimeBudgetStillApplies)
{
    CancelToken token;
    const Deadline d = Deadline::in(0.005).withCancel(token);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(d.expired());
    EXPECT_FALSE(d.cancelled());
}

TEST(CancelToken, PlainDeadlineUnaffected)
{
    const Deadline d = Deadline::unlimited();
    EXPECT_TRUE(d.isUnlimited());
    EXPECT_FALSE(d.expired());
    EXPECT_FALSE(d.cancelled());
}

// ----------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryJob)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pool.submit([&] { count.fetch_add(1); }));
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPool, BoundedQueueAppliesBackPressure)
{
    // Queue of 2 with slow jobs: submit() must block rather than grow the
    // queue, and every job must still run exactly once.
    std::atomic<int> count{0};
    {
        ThreadPool pool(1, 2);
        for (int i = 0; i < 20; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                count.fetch_add(1);
            });
        }
        pool.wait();
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, SubmitFromManyThreads)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4, 8);
        std::vector<std::thread> producers;
        for (int p = 0; p < 8; ++p) {
            producers.emplace_back([&] {
                for (int i = 0; i < 250; ++i)
                    pool.submit([&] { count.fetch_add(1); });
            });
        }
        for (std::thread& t : producers) t.join();
        pool.wait();
    }
    EXPECT_EQ(count.load(), 2000);
}

TEST(ThreadPool, DestructWhileBusyDrainsAcceptedJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2, 4);
        for (int i = 0; i < 16; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                count.fetch_add(1);
            });
        }
        // No wait(): the destructor must finish all accepted jobs.
    }
    EXPECT_EQ(count.load(), 16);
}

// -------------------------------------------------- solver cancellation

TEST(Cancellation, HqsPreFiredTokenYieldsTimeout)
{
    CancelToken token;
    token.requestCancel();
    HqsOptions opts;
    opts.deadline = Deadline::unlimited().withCancel(token);
    HqsSolver solver(opts);
    EXPECT_EQ(solver.solve(nontrivialFormula()), SolveResult::Timeout);
}

TEST(Cancellation, IdqPreFiredTokenYieldsTimeout)
{
    CancelToken token;
    token.requestCancel();
    IdqOptions opts;
    opts.deadline = Deadline::unlimited().withCancel(token);
    IdqSolver solver(opts);
    EXPECT_EQ(solver.solve(nontrivialFormula()), SolveResult::Timeout);
}

TEST(Cancellation, HqsCancelMidEliminationYieldsTimeoutPromptly)
{
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    CancelToken token;
    HqsOptions opts;
    opts.deadline = Deadline::unlimited().withCancel(token);
    HqsSolver solver(opts);

    SolveResult result = SolveResult::Unknown;
    Timer t;
    std::thread runner([&] { result = solver.solve(*hardFormula()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.requestCancel();
    runner.join();
    EXPECT_EQ(result, SolveResult::Timeout);
    // Granularity bound: generous for sanitizer builds, but far below the
    // minutes an uncancellable elimination could take.
    EXPECT_LT(t.elapsedSeconds(), 30.0);
}

TEST(Cancellation, IdqCancelMidRunYieldsTimeoutPromptly)
{
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    CancelToken token;
    IdqOptions opts;
    opts.deadline = Deadline::unlimited().withCancel(token);
    IdqSolver solver(opts);

    SolveResult result = SolveResult::Unknown;
    Timer t;
    std::thread runner([&] { result = solver.solve(*hardFormula()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.requestCancel();
    runner.join();
    EXPECT_EQ(result, SolveResult::Timeout);
    EXPECT_LT(t.elapsedSeconds(), 30.0);
}

TEST(Cancellation, DeadlineGranularityOnHugeCones)
{
    // Satellite regression: a 50 ms budget on an instance with huge cones
    // must yield Timeout without overshooting by orders of magnitude.
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    HqsOptions opts;
    opts.deadline = Deadline::in(0.05);
    HqsSolver solver(opts);
    Timer t;
    EXPECT_EQ(solver.solve(*hardFormula()), SolveResult::Timeout);
    EXPECT_LT(t.elapsedSeconds(), 30.0);
}

// ------------------------------------------------------------------ portfolio

TEST(Portfolio, AgreesWithDefaultEngineOnSatExample)
{
    const DqbfFormula f =
        DqbfFormula::fromParsed(parseDqdimacsFile(dataPath("example1_sat.dqdimacs")));
    PortfolioSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    const PortfolioStats& st = solver.stats();
    EXPECT_FALSE(st.winnerName.empty());
    EXPECT_EQ(st.engines.size(), 6u);
    EXPECT_FALSE(st.disagreement);
    int winners = 0;
    for (const EngineRunStats& es : st.engines) {
        if (es.winner) {
            ++winners;
            EXPECT_EQ(es.name, st.winnerName);
            EXPECT_EQ(es.result, SolveResult::Sat);
        }
    }
    EXPECT_EQ(winners, 1);
}

TEST(Portfolio, AgreesWithDefaultEngineOnUnsatExample)
{
    const DqbfFormula f =
        DqbfFormula::fromParsed(parseDqdimacsFile(dataPath("example1_unsat.dqdimacs")));
    PortfolioSolver solver;
    EXPECT_EQ(solver.solve(f), SolveResult::Unsat);
    EXPECT_FALSE(solver.stats().winnerName.empty());
}

TEST(Portfolio, MaxEnginesTruncatesTheLineup)
{
    const DqbfFormula f =
        DqbfFormula::fromParsed(parseDqdimacsFile(dataPath("example1_sat.dqdimacs")));
    PortfolioOptions opts;
    opts.maxEngines = 2;
    PortfolioSolver solver(opts);
    EXPECT_EQ(solver.solve(f), SolveResult::Sat);
    EXPECT_EQ(solver.stats().engines.size(), 2u);
}

TEST(Portfolio, ExternalKillSwitchCancelsTheRace)
{
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    PortfolioOptions opts;
    opts.cancel = CancelToken();
    PortfolioSolver solver(opts);

    SolveResult result = SolveResult::Unknown;
    Timer t;
    std::thread runner([&] { result = solver.solve(*hardFormula()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    opts.cancel->requestCancel();
    runner.join();
    EXPECT_EQ(result, SolveResult::Timeout);
    EXPECT_TRUE(solver.stats().winnerName.empty());
    EXPECT_LT(t.elapsedSeconds(), 60.0);
}

TEST(Portfolio, SharedTimeBudgetYieldsTimeout)
{
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    PortfolioOptions opts;
    opts.deadline = Deadline::in(0.05);
    opts.maxEngines = 2; // keep the single-core race short
    PortfolioSolver solver(opts);
    Timer t;
    EXPECT_EQ(solver.solve(*hardFormula()), SolveResult::Timeout);
    EXPECT_LT(t.elapsedSeconds(), 60.0);
}

// ---------------------------------------------------------------------- batch

TEST(Batch, CollectInstancesFindsTheExampleFiles)
{
    const std::vector<std::string> files =
        BatchScheduler::collectInstances(HQS_TEST_DATA_DIR);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_NE(files[0].find("example1_sat"), std::string::npos);
    EXPECT_NE(files[1].find("example1_unsat"), std::string::npos);
}

TEST(Batch, SolvesADirectoryAndStreamsJsonl)
{
    BatchOptions opts;
    opts.numWorkers = 2;
    BatchScheduler scheduler(opts);
    std::ostringstream jsonl;
    const std::vector<BatchJobResult> results =
        scheduler.run(BatchScheduler::collectInstances(HQS_TEST_DATA_DIR), &jsonl);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].result, SolveResult::Sat);
    EXPECT_EQ(results[1].result, SolveResult::Unsat);
    for (const BatchJobResult& r : results) {
        EXPECT_EQ(r.engine, "hqs");
        EXPECT_EQ(r.attempts, 1u);
        EXPECT_FALSE(r.degraded);
        EXPECT_TRUE(r.error.empty());
    }

    // Two well-formed lines, one JSON object each.
    std::istringstream lines(jsonl.str());
    std::string line;
    int n = 0;
    while (std::getline(lines, line)) {
        ++n;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"instance\":"), std::string::npos);
        EXPECT_NE(line.find("\"result\":"), std::string::npos);
        EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);
    }
    EXPECT_EQ(n, 2);
}

TEST(Batch, PortfolioModeReportsTheWinner)
{
    BatchOptions opts;
    opts.numWorkers = 1;
    opts.portfolio = true;
    opts.portfolioEngines = 2;
    BatchScheduler scheduler(opts);
    const std::vector<BatchJobResult> results =
        scheduler.run(BatchScheduler::collectInstances(HQS_TEST_DATA_DIR));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].result, SolveResult::Sat);
    EXPECT_EQ(results[1].result, SolveResult::Unsat);
    for (const BatchJobResult& r : results) EXPECT_FALSE(r.engine.empty());
}

TEST(Batch, ParseFailureIsReportedNotThrown)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "hqs_batch_parse_test";
    std::filesystem::create_directories(dir);
    const std::filesystem::path bad = dir / "bad.dqdimacs";
    std::ofstream(bad) << "p cnf not-a-number\n";

    BatchScheduler scheduler;
    const std::vector<BatchJobResult> results = scheduler.run({bad.string()});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].result, SolveResult::Unknown);
    EXPECT_EQ(results[0].failure.kind, FailureKind::ParseError);
    EXPECT_EQ(results[0].attempts, 1u); // parse errors are terminal, no retry
    EXPECT_FALSE(results[0].error.empty());
    std::filesystem::remove_all(dir);
}

TEST(Batch, MemoutWalksTheWholeLadderWithDegradedConfigs)
{
    if (!hardFormula()) GTEST_SKIP() << "no instance slow enough on this machine";
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "hqs_batch_memout_test";
    std::filesystem::create_directories(dir);
    const std::filesystem::path file = dir / "hard.dqdimacs";
    {
        std::ofstream os(file);
        writeDqdimacs(os, hardFormula()->toParsed());
    }

    BatchOptions opts;
    opts.nodeLimit = 10; // absurdly small: every rung memouts, fast
    BatchScheduler scheduler(opts);
    std::ostringstream jsonl;
    const std::vector<BatchJobResult> results = scheduler.run({file.string()}, &jsonl);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].result, SolveResult::Memout);
    EXPECT_EQ(results[0].attempts, 4u); // full -> no-fraig -> half-nodes -> bdd
    EXPECT_TRUE(results[0].degraded);
    EXPECT_EQ(results[0].rung, "bdd");
    EXPECT_NE(jsonl.str().find("\"degraded\":true"), std::string::npos);
    EXPECT_NE(jsonl.str().find("\"rung\":\"bdd\""), std::string::npos);

    const std::vector<RungStats>& stats = scheduler.rungStats();
    ASSERT_EQ(stats.size(), 4u);
    for (const RungStats& rs : stats) {
        EXPECT_EQ(rs.attempts, 1u) << rs.name;
        EXPECT_EQ(rs.memouts, 1u) << rs.name;
        EXPECT_EQ(rs.conclusive, 0u) << rs.name;
    }
    std::filesystem::remove_all(dir);
}

TEST(Batch, PreFiredCancelSkipsAllJobs)
{
    BatchOptions opts;
    opts.cancel.requestCancel();
    BatchScheduler scheduler(opts);
    const std::vector<BatchJobResult> results =
        scheduler.run(BatchScheduler::collectInstances(HQS_TEST_DATA_DIR));
    ASSERT_EQ(results.size(), 2u);
    for (const BatchJobResult& r : results) {
        EXPECT_EQ(r.result, SolveResult::Timeout);
        EXPECT_EQ(r.failure.kind, FailureKind::Cancelled);
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(Batch, JsonlEscapesSpecialCharacters)
{
    BatchJobResult r;
    r.instance = "dir/\"quoted\"\\name\n.dqdimacs";
    r.result = SolveResult::Sat;
    r.engine = "hqs";
    r.attempts = 1;
    std::ostringstream os;
    writeJsonl(r, os);
    const std::string line = os.str();
    EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(line.find("\\\\name"), std::string::npos);
    EXPECT_NE(line.find("\\n"), std::string::npos);
    EXPECT_EQ(line.find('\n'), line.size() - 1); // exactly one real newline
}

TEST(Batch, JsonlRowIsOneAtomicLine)
{
    // toJsonlLine is the single-write row used for torn-row-free journals:
    // it must equal the streamed form byte for byte, carry exactly one real
    // newline (the terminator), and round-trip through readJsonl.
    BatchJobResult r;
    r.instance = "multi\nline\ninstance.dqdimacs";
    r.result = SolveResult::Memout;
    r.wallMilliseconds = 12.5;
    r.engine = "hqs";
    r.attempts = 2;
    r.degraded = true;
    r.rung = "no-fraig";
    r.failure = {FailureKind::ClientGone, "service", "client disconnected"};
    r.error = "client disconnected";

    const std::string row = toJsonlLine(r);
    std::ostringstream os;
    writeJsonl(r, os);
    EXPECT_EQ(row, os.str());
    EXPECT_EQ(row.find('\n'), row.size() - 1);

    BatchJobResult back;
    ASSERT_TRUE(readJsonl(row.substr(0, row.size() - 1), back));
    EXPECT_EQ(back.instance, r.instance);
    EXPECT_EQ(back.result, SolveResult::Memout);
    EXPECT_EQ(back.failure.kind, FailureKind::ClientGone);
    EXPECT_EQ(back.rung, "no-fraig");
}

TEST(Guard, DisconnectedCancelMapsToClientGone)
{
    CancelToken cancel;
    cancel.requestCancel(CancelReason::Disconnected);
    GuardOptions opts;
    opts.cancel = cancel;
    const GuardedOutcome out = runGuarded(opts, [](const Deadline& d) {
        EXPECT_TRUE(d.expired());
        return deadlineExceededResult(d);
    });
    EXPECT_EQ(out.result, SolveResult::Timeout);
    EXPECT_EQ(out.failure.kind, FailureKind::ClientGone);
    EXPECT_EQ(out.failure.site, "service");
    EXPECT_STREQ(toString(out.failure.kind), "client-gone");
}

TEST(Guard, DisconnectedCancelForwardedMidRun)
{
    // The watchdog forwards an external Disconnected cancel into the run
    // with its reason intact, so the solver's deadline reports the right
    // CancelReason and the outcome carries the client-gone failure.
    CancelToken cancel;
    GuardOptions opts;
    opts.cancel = cancel;
    opts.watchdogPollMilliseconds = 1.0;
    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cancel.requestCancel(CancelReason::Disconnected);
    });
    const GuardedOutcome out = runGuarded(opts, [](const Deadline& d) {
        while (!d.expired()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_EQ(d.cancelReason(), CancelReason::Disconnected);
        return deadlineExceededResult(d);
    });
    killer.join();
    EXPECT_EQ(out.failure.kind, FailureKind::ClientGone);
}
