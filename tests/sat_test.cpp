// Unit and property tests for the CDCL SAT solver, cross-checked against the
// brute-force oracle on randomized small formulas.
#include <gtest/gtest.h>

#include "src/base/rng.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

TEST(SatSolver, EmptyFormulaIsSat)
{
    SatSolver s;
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, SingleUnit)
{
    SatSolver s;
    s.addClause({Lit::pos(0)});
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(Var(0)).isTrue());
}

TEST(SatSolver, ContradictoryUnitsAreUnsat)
{
    SatSolver s;
    EXPECT_TRUE(s.addClause({Lit::pos(0)}));
    EXPECT_FALSE(s.addClause({Lit::neg(0)}));
    EXPECT_TRUE(s.inConflict());
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, SimpleImplicationChain)
{
    // x0 & (x0->x1) & (x1->x2) & (x2->x3)
    SatSolver s;
    s.addClause({Lit::pos(0)});
    s.addClause({Lit::neg(0), Lit::pos(1)});
    s.addClause({Lit::neg(1), Lit::pos(2)});
    s.addClause({Lit::neg(2), Lit::pos(3)});
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    for (Var v = 0; v < 4; ++v) EXPECT_TRUE(s.modelValue(v).isTrue());
}

TEST(SatSolver, PigeonHole3Into2IsUnsat)
{
    // p_{ij}: pigeon i (0..2) in hole j (0..1).
    SatSolver s;
    auto p = [](int i, int j) { return Lit::pos(static_cast<Var>(2 * i + j)); };
    for (int i = 0; i < 3; ++i) s.addClause({p(i, 0), p(i, 1)});
    for (int j = 0; j < 2; ++j)
        for (int i1 = 0; i1 < 3; ++i1)
            for (int i2 = i1 + 1; i2 < 3; ++i2) s.addClause({~p(i1, j), ~p(i2, j)});
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat)
{
    SatSolver s;
    constexpr int P = 5, H = 4;
    auto p = [](int i, int j) { return Lit::pos(static_cast<Var>(H * i + j)); };
    for (int i = 0; i < P; ++i) {
        std::vector<Lit> c;
        for (int j = 0; j < H; ++j) c.push_back(p(i, j));
        s.addClause(std::move(c));
    }
    for (int j = 0; j < H; ++j)
        for (int i1 = 0; i1 < P; ++i1)
            for (int i2 = i1 + 1; i2 < P; ++i2) s.addClause({~p(i1, j), ~p(i2, j)});
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, ModelSatisfiesFormula)
{
    Cnf f;
    Rng rng(42);
    const Var n = 12;
    f.ensureVars(n);
    for (int c = 0; c < 40; ++c) {
        Clause cl;
        for (int k = 0; k < 3; ++k) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    SatSolver s;
    s.addCnf(f);
    if (s.solve() == SolveResult::Sat) {
        EXPECT_TRUE(f.evaluate(s.modelBools()));
    }
}

TEST(SatSolver, AssumptionsRestrictModels)
{
    SatSolver s;
    s.addClause({Lit::pos(0), Lit::pos(1)});
    EXPECT_EQ(s.solve({Lit::neg(0)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(Var(1)).isTrue());
    EXPECT_EQ(s.solve({Lit::neg(0), Lit::neg(1)}), SolveResult::Unsat);
    // Solver remains usable after an assumption-UNSAT.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, IncrementalClauseAddition)
{
    SatSolver s;
    s.addClause({Lit::pos(0), Lit::pos(1)});
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    s.addClause({Lit::neg(0)});
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(Var(1)).isTrue());
    s.addClause({Lit::neg(1)});
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(SatSolver, TopLevelValueAfterPropagation)
{
    SatSolver s;
    s.addClause({Lit::pos(0)});
    s.addClause({Lit::neg(0), Lit::pos(1)});
    EXPECT_TRUE(s.topLevelValue(Lit::pos(0)).isTrue());
    EXPECT_TRUE(s.topLevelValue(Lit::pos(1)).isTrue());
    EXPECT_TRUE(s.topLevelValue(Lit::neg(1)).isFalse());
    EXPECT_TRUE(s.topLevelValue(Lit::pos(2)).isUndef());
}

TEST(SatSolver, DuplicateAndTautologicalClauses)
{
    SatSolver s;
    EXPECT_TRUE(s.addClause({Lit::pos(0), Lit::neg(0)})); // tautology: no-op
    EXPECT_TRUE(s.addClause({Lit::pos(1), Lit::pos(1), Lit::pos(1)}));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(Var(1)).isTrue());
}

TEST(SatSolver, BruteForceOracleSanity)
{
    Cnf sat;
    sat.addClause({Lit::pos(0), Lit::pos(1)});
    sat.addClause({Lit::neg(0)});
    EXPECT_TRUE(bruteForceSat(sat));

    Cnf unsat;
    unsat.addClause({Lit::pos(0)});
    unsat.addClause({Lit::neg(0)});
    EXPECT_FALSE(bruteForceSat(unsat));
}

/// Property sweep: random k-CNF agrees with the brute-force oracle.
class RandomCnfAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfAgreement, MatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    // Vary density around the 3-SAT phase transition to get a healthy
    // SAT/UNSAT mix.
    const Var n = 6 + static_cast<Var>(rng.below(6));            // 6..11 vars
    const int m = static_cast<int>(n * (3 + rng.below(3)));      // 3n..5n clauses
    const int k = 2 + static_cast<int>(rng.below(2));            // 2..3 literals
    Cnf f;
    f.ensureVars(n);
    for (int c = 0; c < m; ++c) {
        Clause cl;
        for (int j = 0; j < k; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    SatSolver s;
    s.addCnf(f);
    const SolveResult r = s.solve();
    ASSERT_TRUE(r == SolveResult::Sat || r == SolveResult::Unsat);
    EXPECT_EQ(r == SolveResult::Sat, bruteForceSat(f));
    if (r == SolveResult::Sat) EXPECT_TRUE(f.evaluate(s.modelBools()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCnfAgreement, ::testing::Range(0, 60));

/// Assumptions behave like added unit clauses.
class RandomAssumptionAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssumptionAgreement, AssumptionEqualsUnitClause)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
    const Var n = 8;
    Cnf f;
    f.ensureVars(n);
    for (int c = 0; c < 28; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    std::vector<Lit> assumptions;
    for (int j = 0; j < 2; ++j) assumptions.push_back(Lit(static_cast<Var>(rng.below(n)), rng.flip()));

    SatSolver withAssumptions;
    withAssumptions.addCnf(f);
    const SolveResult r1 = withAssumptions.solve(assumptions);

    Cnf g = f;
    for (Lit a : assumptions) g.addClause({a});
    EXPECT_EQ(r1 == SolveResult::Sat, bruteForceSat(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomAssumptionAgreement, ::testing::Range(0, 30));

TEST(SatSolver, LargeRandomSatisfiableInstance)
{
    // Under-constrained 3-SAT (ratio 2.0): solvable quickly, checks that the
    // solver scales beyond toy sizes and the model is genuine.
    Rng rng(2024);
    const Var n = 600;
    Cnf f;
    f.ensureVars(n);
    for (int c = 0; c < 1200; ++c) {
        Clause cl;
        for (int j = 0; j < 3; ++j) cl.push(Lit(static_cast<Var>(rng.below(n)), rng.flip()));
        f.addClause(std::move(cl));
    }
    SatSolver s;
    s.addCnf(f);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(f.evaluate(s.modelBools()));
}

TEST(SatSolver, DeadlineProducesTimeout)
{
    // A hard pigeonhole instance with an (essentially) immediate deadline.
    SatSolver s;
    constexpr int P = 11, H = 10;
    auto p = [](int i, int j) { return Lit::pos(static_cast<Var>(H * i + j)); };
    for (int i = 0; i < P; ++i) {
        std::vector<Lit> c;
        for (int j = 0; j < H; ++j) c.push_back(p(i, j));
        s.addClause(std::move(c));
    }
    for (int j = 0; j < H; ++j)
        for (int i1 = 0; i1 < P; ++i1)
            for (int i2 = i1 + 1; i2 < P; ++i2) s.addClause({~p(i1, j), ~p(i2, j)});
    const SolveResult r = s.solve({}, Deadline::in(0.01));
    // Either it times out (expected) or the solver is startlingly fast.
    EXPECT_TRUE(r == SolveResult::Timeout || r == SolveResult::Unsat);
}

TEST(SatSolver, StatsAreTracked)
{
    SatSolver s;
    s.addClause({Lit::pos(0), Lit::pos(1)});
    s.addClause({Lit::neg(0), Lit::pos(1)});
    s.addClause({Lit::pos(0), Lit::neg(1)});
    s.solve();
    EXPECT_GT(s.stats().decisions + s.stats().propagations, 0u);
}

} // namespace
} // namespace hqs
