// Tests for the unified solve-request surface (src/runtime/api.hpp).
// Every entry point — dqbf_solve, dqbf_batch, dqbf_serve's defaults, the
// portfolio, and the service's HTTP-header/JSONL parsers — funnels budgets
// through SolveRequest::validate(), so the non-finite/negative-budget and
// unknown-engine rules are asserted exactly once, here.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/runtime/api.hpp"
#include "src/runtime/portfolio.hpp"

namespace hqs::api {
namespace {

TEST(SolveRequest, DefaultRequestIsValid)
{
    SolveRequest request;
    EXPECT_TRUE(request.validate().empty());
    EXPECT_EQ(request.firstError(), "");
    ASSERT_TRUE(request.parsedEngine().has_value());
    EXPECT_EQ(request.parsedEngine()->kind, EngineSpec::Kind::Hqs);
}

TEST(SolveRequest, RejectsNonFiniteTimeout)
{
    // The single shared gate: "nan"/"inf" survive the syntax parsers by
    // design (std::stod accepts them), and validate() is the one place in
    // the tree that bounces them — for every front end at once.
    for (const char* bad : {"nan", "inf", "-inf"}) {
        SolveRequest request;
        ASSERT_TRUE(parseSeconds(bad, &request.timeoutSeconds)) << bad;
        const std::vector<RequestError> errors = request.validate();
        ASSERT_EQ(errors.size(), 1u) << bad;
        EXPECT_EQ(errors[0].field, "timeout") << bad;
        EXPECT_EQ(errors[0].message, "timeout must be finite") << bad;
    }
}

TEST(SolveRequest, RejectsNegativeTimeout)
{
    SolveRequest request;
    request.timeoutSeconds = -1.0;
    const std::vector<RequestError> errors = request.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].field, "timeout");
}

TEST(SolveRequest, RejectsUnknownEngineWithFieldTag)
{
    SolveRequest request;
    request.engine = "minisat";
    const std::vector<RequestError> errors = request.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].field, "engine");
    EXPECT_NE(errors[0].message.find("minisat"), std::string::npos);
    EXPECT_FALSE(request.parsedEngine().has_value());
}

TEST(SolveRequest, CollectsEveryViolation)
{
    SolveRequest request;
    request.engine = "bogus";
    request.timeoutSeconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(request.validate().size(), 2u);
    EXPECT_EQ(request.firstError().substr(0, 7), "engine:");
}

TEST(EngineSpecParsing, AcceptsTheFullEngineMenu)
{
    const struct {
        const char* text;
        EngineSpec::Kind kind;
    } ok[] = {
        {"", EngineSpec::Kind::Hqs},         {"hqs", EngineSpec::Kind::Hqs},
        {"hqs-bdd", EngineSpec::Kind::HqsBdd}, {"idq", EngineSpec::Kind::Idq},
        {"expand", EngineSpec::Kind::Expand}, {"portfolio", EngineSpec::Kind::Portfolio},
    };
    for (const auto& c : ok) {
        const auto spec = parseEngineSpec(c.text);
        ASSERT_TRUE(spec.has_value()) << c.text;
        EXPECT_EQ(spec->kind, c.kind) << c.text;
        EXPECT_EQ(spec->portfolioEngines, 0u) << c.text;
    }

    const auto capped = parseEngineSpec("portfolio:3");
    ASSERT_TRUE(capped.has_value());
    EXPECT_EQ(capped->kind, EngineSpec::Kind::Portfolio);
    EXPECT_EQ(capped->portfolioEngines, 3u);

    for (const char* bad : {"portfolio:", "portfolio:0", "portfolio:x", "sat", "HQS"}) {
        EXPECT_FALSE(parseEngineSpec(bad).has_value()) << bad;
    }
}

TEST(ParseHelpers, FullStringSyntaxOnly)
{
    double seconds = 0;
    EXPECT_TRUE(parseSeconds("2.5", &seconds));
    EXPECT_DOUBLE_EQ(seconds, 2.5);
    EXPECT_FALSE(parseSeconds("", &seconds));
    EXPECT_FALSE(parseSeconds("2.5s", &seconds));
    EXPECT_FALSE(parseSeconds("x", &seconds));
    // Deliberately syntax-only: the semantic verdict belongs to validate().
    EXPECT_TRUE(parseSeconds("nan", &seconds));
    EXPECT_TRUE(std::isnan(seconds));

    EXPECT_TRUE(parseMilliseconds("1500", &seconds));
    EXPECT_DOUBLE_EQ(seconds, 1.5);

    std::size_t n = 0;
    EXPECT_TRUE(parseSize("42", &n));
    EXPECT_EQ(n, 42u);
    EXPECT_FALSE(parseSize("42k", &n));
    EXPECT_FALSE(parseSize("", &n));

    std::size_t bytes = 0;
    EXPECT_TRUE(parseMegabytes("8", &bytes));
    EXPECT_EQ(bytes, 8u * 1024 * 1024);
    EXPECT_FALSE(parseMegabytes("99999999999999999999", &bytes)); // overflow
}

TEST(SolveRequest, TranslatesIntoPortfolioOptions)
{
    SolveRequest request;
    request.engine = "portfolio:2";
    request.timeoutSeconds = 60;
    request.nodeLimit = 12345;
    ASSERT_TRUE(request.validate().empty());
    const PortfolioOptions popts = PortfolioSolver::optionsFromRequest(request);
    EXPECT_EQ(popts.maxEngines, 2u);
    EXPECT_EQ(popts.nodeLimit, 12345u);
    EXPECT_FALSE(popts.deadline.expired());
}

} // namespace
} // namespace hqs::api
