#include "src/cert/certificate.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "src/aig/aiger.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/obs/obs.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs::cert {
namespace {

constexpr std::uint8_t kKindNone = 0;
constexpr std::uint8_t kKindUniversal = 1;
constexpr std::uint8_t kKindExistential = 2;

/// 64-bit FNV-1a over a tagged word stream.
class Fnv1a {
public:
    void word(std::uint64_t w)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (w >> (8 * i)) & 0xffu;
            h_ *= 1099511628211ull;
        }
    }
    void tag(char c) { word(static_cast<std::uint64_t>(static_cast<unsigned char>(c))); }
    std::uint64_t value() const { return h_; }

private:
    std::uint64_t h_ = 1469598103934665603ull;
};

std::string hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

NormalizedPrefix normalizePrefix(const ParsedQdimacs& parsed)
{
    NormalizedPrefix out;
    std::vector<std::uint8_t> kind;
    auto kindOf = [&](Var v) -> std::uint8_t {
        return v < kind.size() ? kind[v] : kKindNone;
    };
    auto setKind = [&](Var v, std::uint8_t k) {
        if (v >= kind.size()) kind.resize(v + 1, kKindNone);
        kind[v] = k;
    };
    auto addExistential = [&](Var v, std::vector<Var> deps) {
        if (kindOf(v) != kKindNone) return; // first declaration wins
        setKind(v, kKindExistential);
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        out.existentials.push_back(v);
        out.deps.push_back(std::move(deps));
    };

    // QDIMACS blocks: an `e` variable depends on every universal to its left.
    for (const PrefixBlockSpec& b : parsed.blocks) {
        if (b.kind == QuantKind::Forall) {
            for (Var v : b.vars) {
                if (kindOf(v) != kKindNone) continue;
                setKind(v, kKindUniversal);
                out.universals.push_back(v);
            }
        } else {
            for (Var v : b.vars) addExistential(v, out.universals);
        }
    }
    // Henkin lines: explicit dependency sets.
    for (const DependencySpec& d : parsed.henkin) addExistential(d.var, d.deps);
    // Free matrix variables: existentials with empty dependencies.
    for (Var v = 0; v < parsed.matrix.numVars(); ++v) {
        if (kindOf(v) == kKindNone) addExistential(v, {});
    }
    return out;
}

std::uint64_t formulaHash(const ParsedQdimacs& parsed)
{
    const NormalizedPrefix p = normalizePrefix(parsed);
    Fnv1a h;
    h.tag('U');
    h.word(p.universals.size());
    for (Var v : p.universals) h.word(v);
    h.tag('E');
    h.word(p.existentials.size());
    for (std::size_t i = 0; i < p.existentials.size(); ++i) {
        h.word(p.existentials[i]);
        h.word(p.deps[i].size());
        for (Var d : p.deps[i]) h.word(d);
    }
    h.tag('M');
    h.word(parsed.matrix.numVars());
    h.word(parsed.matrix.numClauses());
    for (const Clause& c : parsed.matrix.clauses()) {
        h.word(c.size());
        for (Lit l : c) h.word(l.code());
    }
    return h.value();
}

void writeCertificate(std::ostream& os, const Certificate& cert)
{
    os << "dqbf-cert 1\n";
    os << "hash " << hex16(cert.hash) << '\n';
    os << "verdict SAT\n";

    std::string formula = toDqdimacsString(cert.formula);
    if (!formula.empty() && formula.back() != '\n') formula.push_back('\n');
    const std::size_t lines =
        static_cast<std::size_t>(std::count(formula.begin(), formula.end(), '\n'));
    os << "formula " << lines << '\n' << formula;

    os << "skolem " << cert.functions.size() << '\n';
    writeAiger(os, *cert.aig, cert.functions);
    os << "end dqbf-cert\n";
}

std::string toCertificateString(const Certificate& cert)
{
    std::ostringstream os;
    writeCertificate(os, cert);
    return os.str();
}

const char* toString(CheckStatus s)
{
    switch (s) {
    case CheckStatus::Ok: return "ok";
    case CheckStatus::Truncated: return "truncated";
    case CheckStatus::BadFormat: return "bad-format";
    case CheckStatus::HashMismatch: return "hash-mismatch";
    case CheckStatus::MissingFunction: return "missing-function";
    case CheckStatus::DependencyViolation: return "dependency-violation";
    case CheckStatus::Refuted: return "refuted";
    case CheckStatus::SolverTimeout: return "solver-timeout";
    }
    return "unknown";
}

CheckStatus parseCertificate(std::istream& is, Certificate& out, std::string& detail)
{
    std::string line;
    auto nextLine = [&](const char* what) {
        if (!std::getline(is, line)) {
            detail = std::string("file ends before ") + what;
            return false;
        }
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
    };

    if (!nextLine("the dqbf-cert header")) return CheckStatus::Truncated;
    if (line != "dqbf-cert 1") {
        detail = "not a dqbf-cert version 1 artifact: \"" + line + "\"";
        return CheckStatus::BadFormat;
    }

    if (!nextLine("the hash line")) return CheckStatus::Truncated;
    {
        std::istringstream ls(line);
        std::string key, hex;
        if (!(ls >> key >> hex) || key != "hash" || hex.size() != 16 ||
            hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
            detail = "malformed hash line: \"" + line + "\"";
            return CheckStatus::BadFormat;
        }
        out.hash = std::stoull(hex, nullptr, 16);
    }

    if (!nextLine("the verdict line")) return CheckStatus::Truncated;
    if (line != "verdict SAT") {
        detail = "unsupported verdict line: \"" + line + "\"";
        return CheckStatus::BadFormat;
    }

    if (!nextLine("the formula header")) return CheckStatus::Truncated;
    std::size_t formulaLines = 0;
    {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key >> formulaLines) || key != "formula") {
            detail = "malformed formula header: \"" + line + "\"";
            return CheckStatus::BadFormat;
        }
    }
    std::string formulaText;
    for (std::size_t i = 0; i < formulaLines; ++i) {
        if (!nextLine("the end of the embedded formula")) return CheckStatus::Truncated;
        formulaText += line;
        formulaText += '\n';
    }
    try {
        out.formula = parseDqdimacsString(formulaText);
    } catch (const ParseError& e) {
        detail = std::string("embedded formula: ") + e.what();
        return CheckStatus::BadFormat;
    }

    if (!nextLine("the skolem header")) return CheckStatus::Truncated;
    std::size_t declaredFunctions = 0;
    {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key >> declaredFunctions) || key != "skolem") {
            detail = "malformed skolem header: \"" + line + "\"";
            return CheckStatus::BadFormat;
        }
    }

    out.aig = std::make_shared<Aig>();
    AigerFile af;
    try {
        af = readAiger(is, *out.aig);
    } catch (const ParseError& e) {
        if (is.eof()) {
            detail = std::string("file ends inside the aag block (") + e.what() + ")";
            return CheckStatus::Truncated;
        }
        detail = std::string("aag block: ") + e.what();
        return CheckStatus::BadFormat;
    }
    if (af.outputs.size() != declaredFunctions) {
        detail = "skolem header declares " + std::to_string(declaredFunctions) +
                 " functions but the aag block has " + std::to_string(af.outputs.size()) +
                 " outputs";
        return CheckStatus::BadFormat;
    }

    // Symbol table: AIGER input k is original variable inputMap[k].
    std::vector<Var> inputMap(af.inputs.size());
    for (std::size_t k = 0; k < af.inputs.size(); ++k) {
        std::string sym, name;
        if (!(is >> sym >> name)) {
            detail = "file ends inside the aag symbol table";
            return CheckStatus::Truncated;
        }
        unsigned long idx = 0, var = 0;
        if (std::sscanf(sym.c_str(), "i%lu", &idx) != 1 || idx != k ||
            std::sscanf(name.c_str(), "v%lu", &var) != 1) {
            detail = "malformed aag symbol entry: \"" + sym + ' ' + name + "\"";
            return CheckStatus::BadFormat;
        }
        inputMap[k] = static_cast<Var>(var);
    }

    // Remap the parsed functions from AIGER input numbering (input k is
    // external variable k) to the original variables, simultaneously so
    // overlapping ranges cannot alias.
    out.functions.clear();
    if (inputMap.empty()) {
        out.functions = af.outputs;
    } else {
        Substitution sub;
        for (std::size_t k = 0; k < inputMap.size(); ++k) {
            sub.set(static_cast<Var>(k), out.aig->variable(inputMap[k]));
        }
        for (AigEdge e : af.outputs) out.functions.push_back(out.aig->substitute(e, sub));
    }

    std::string endWord, endName;
    if (!(is >> endWord >> endName)) {
        detail = "file ends before the end marker";
        return CheckStatus::Truncated;
    }
    if (endWord != "end" || endName != "dqbf-cert") {
        detail = "bad end marker: \"" + endWord + ' ' + endName + "\"";
        return CheckStatus::BadFormat;
    }
    detail.clear();
    return CheckStatus::Ok;
}

CheckStatus parseCertificateString(const std::string& text, Certificate& out,
                                   std::string& detail)
{
    std::istringstream is(text);
    return parseCertificate(is, out, detail);
}

CheckStatus parseCertificateFile(const std::string& path, Certificate& out,
                                 std::string& detail)
{
    std::ifstream is(path);
    if (!is) {
        detail = "cannot open " + path;
        return CheckStatus::BadFormat;
    }
    return parseCertificate(is, out, detail);
}

std::size_t countAndNodes(const Aig& aig, const std::vector<AigEdge>& outputs)
{
    std::unordered_set<std::uint32_t> seen;
    std::vector<AigEdge> stack(outputs.begin(), outputs.end());
    std::size_t ands = 0;
    while (!stack.empty()) {
        const AigEdge e = stack.back();
        stack.pop_back();
        if (!seen.insert(e.nodeIndex()).second) continue;
        if (aig.isAnd(e)) {
            ++ands;
            stack.push_back(aig.fanin0(e));
            stack.push_back(aig.fanin1(e));
        }
    }
    return ands;
}

CheckResult checkCertificate(const Certificate& cert, Deadline deadline)
{
    Timer timer;
    CheckResult res;
    auto fail = [&](CheckStatus s, std::string why) {
        res.status = s;
        res.detail = std::move(why);
        res.checkMs = timer.elapsedMilliseconds();
        OBS_OBSERVE("cert.check_ms", res.checkMs);
        return res;
    };

    const std::uint64_t expected = formulaHash(cert.formula);
    if (expected != cert.hash) {
        return fail(CheckStatus::HashMismatch,
                    "certificate hash " + hex16(cert.hash) +
                        " does not match formula hash " + hex16(expected));
    }

    const NormalizedPrefix p = normalizePrefix(cert.formula);
    if (cert.functions.size() != p.existentials.size()) {
        return fail(CheckStatus::MissingFunction,
                    "certificate carries " + std::to_string(cert.functions.size()) +
                        " functions for " + std::to_string(p.existentials.size()) +
                        " existential variables");
    }

    Aig& mgr = *cert.aig;
    res.sizeNodes = countAndNodes(mgr, cert.functions);
    OBS_GAUGE_MAX("cert.size_nodes", res.sizeNodes);

    const std::unordered_set<Var> universal(p.universals.begin(), p.universals.end());
    for (std::size_t k = 0; k < p.existentials.size(); ++k) {
        const std::vector<Var>& deps = p.deps[k];
        for (Var v : mgr.support(cert.functions[k])) {
            if (!universal.count(v) ||
                !std::binary_search(deps.begin(), deps.end(), v)) {
                return fail(CheckStatus::DependencyViolation,
                            "function for v" + std::to_string(p.existentials[k]) +
                                " depends on v" + std::to_string(v) +
                                ", outside its declared dependency set");
            }
        }
    }

    Substitution sub;
    for (std::size_t k = 0; k < p.existentials.size(); ++k) {
        sub.set(p.existentials[k], cert.functions[k]);
    }
    const AigEdge matrix = buildFromCnf(mgr, cert.formula.matrix);
    const AigEdge substituted = mgr.substitute(matrix, sub);
    for (Var v : mgr.support(substituted)) {
        if (!universal.count(v)) {
            return fail(CheckStatus::DependencyViolation,
                        "substituted matrix still depends on non-universal v" +
                            std::to_string(v));
        }
    }

    if (mgr.isConstant(substituted)) {
        if (!mgr.constantValue(substituted)) {
            return fail(CheckStatus::Refuted, "substituted matrix is constant false");
        }
    } else {
        SatSolver sat;
        AigCnfBridge bridge(mgr, sat);
        const Lit negated = bridge.litFor(~substituted);
        switch (sat.solve({negated}, deadline)) {
        case SolveResult::Unsat:
            break;
        case SolveResult::Sat:
            return fail(CheckStatus::Refuted,
                        "substituted matrix is falsifiable under some universal "
                        "assignment");
        default:
            return fail(CheckStatus::SolverTimeout, "SAT check hit the deadline");
        }
    }

    res.status = CheckStatus::Ok;
    res.checkMs = timer.elapsedMilliseconds();
    OBS_OBSERVE("cert.check_ms", res.checkMs);
    return res;
}

} // namespace hqs::cert
