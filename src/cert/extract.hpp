// Certificate extraction: turn the solver's reconstructed Skolem AIG into a
// serializable, independently checkable artifact.
//
// This is the only part of the certification subsystem that links solver
// code (it needs DqbfFormula and AigSkolemCertificate); the checker side in
// certificate.hpp deliberately does not.
#pragma once

#include "src/cert/certificate.hpp"
#include "src/dqbf/skolem_recorder.hpp"

namespace hqs::cert {

/// Build a certificate for @p original from the solver's Skolem
/// reconstruction.  The AIG manager is shared (no copy); functions follow
/// the formula's existential declaration order.  Records cert.extract_ms.
Certificate extractCertificate(const DqbfFormula& original,
                               const AigSkolemCertificate& skolem);

} // namespace hqs::cert
