#include "src/cert/extract.hpp"

#include "src/obs/obs.hpp"

namespace hqs::cert {

Certificate extractCertificate(const DqbfFormula& original,
                               const AigSkolemCertificate& skolem)
{
    Timer timer;
    Certificate cert;
    cert.formula = original.toParsed();
    cert.hash = formulaHash(cert.formula);
    cert.aig = skolem.aig;
    for (Var y : original.existentials()) {
        const auto it = skolem.functions.find(y);
        // reconstructSkolem guarantees coverage; constant false keeps the
        // artifact well-formed even if a caller hands a partial map.
        cert.functions.push_back(it != skolem.functions.end() ? it->second
                                                              : cert.aig->constFalse());
    }
    OBS_OBSERVE("cert.extract_ms", timer.elapsedMilliseconds());
    OBS_GAUGE_MAX("cert.size_nodes", countAndNodes(*cert.aig, cert.functions));
    return cert;
}

} // namespace hqs::cert
