// Self-contained Skolem certificates for DQBF SAT verdicts.
//
// A certificate embeds everything needed to re-judge a SAT answer without
// trusting the solver: the original prefix and matrix (DQDIMACS text), a
// hash binding the certificate to that formula, and one Skolem function per
// existential variable as an ASCII-AIGER (`aag`) block.  The checker in
// this library validates a certificate with a single SAT call: substitute
// the Skolem functions into the matrix, check each function's support is
// inside its declared dependency set structurally, and assert the negation
// of the substituted matrix is unsatisfiable.
//
// Trust model: this library (and the `dqbf_check` binary built on it) links
// only the AIG kernel, the DIMACS/AIGER readers, the CNF bridge, and the
// SAT backend — none of the DQBF/QBF solver code.  A bug in the solver can
// therefore produce a rejected certificate, but never a wrongly accepted
// one (short of an independent bug in the much smaller checker core).
//
// Artifact layout (line-oriented ASCII, see DESIGN.md §8):
//
//   dqbf-cert 1
//   hash <16 lowercase hex digits>
//   verdict SAT
//   formula <number of DQDIMACS lines>
//   <embedded DQDIMACS text>
//   skolem <number of functions>
//   <aag block as written by writeAiger, including the i<k> v<var> symbol
//    table mapping AIGER inputs back to original variables>
//   end dqbf-cert
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/aig/aig.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/dimacs.hpp"

namespace hqs::cert {

/// The prefix of a parsed (D)QDIMACS file, normalized to the solver's
/// semantics: `a` blocks declare universals in order; an `e`-block variable
/// depends on every universal to its left; `d` lines give explicit
/// dependency sets; matrix variables left unquantified become existentials
/// with empty dependencies.  Existential order is declaration order — the
/// certificate's function order.
struct NormalizedPrefix {
    std::vector<Var> universals;
    std::vector<Var> existentials;
    std::vector<std::vector<Var>> deps; ///< per existential, sorted ascending
};

NormalizedPrefix normalizePrefix(const ParsedQdimacs& parsed);

/// Order-independent 64-bit FNV-1a hash of the normalized prefix and the
/// matrix, binding a certificate to one formula.
std::uint64_t formulaHash(const ParsedQdimacs& parsed);

/// An in-memory certificate.  `functions` are edges into `aig` over the
/// formula's variable numbering, one per normalized existential, in order.
struct Certificate {
    std::uint64_t hash = 0;
    ParsedQdimacs formula;
    std::shared_ptr<Aig> aig;
    std::vector<AigEdge> functions;
};

void writeCertificate(std::ostream& os, const Certificate& cert);
std::string toCertificateString(const Certificate& cert);

/// Outcome of parsing or checking a certificate, most severe first.
enum class CheckStatus {
    Ok,
    Truncated,           ///< file ends before the artifact is complete
    BadFormat,           ///< malformed header, formula, or aag section
    HashMismatch,        ///< embedded hash does not match the embedded formula
    MissingFunction,     ///< fewer functions than existentials
    DependencyViolation, ///< a function's support leaves its dependency set
    Refuted,             ///< substituted matrix is falsifiable
    SolverTimeout,       ///< the single SAT call hit the deadline
};

const char* toString(CheckStatus s);

/// Parse a certificate artifact.  Returns Ok and fills @p out, or
/// Truncated/BadFormat with a one-line explanation in @p detail.
CheckStatus parseCertificate(std::istream& is, Certificate& out, std::string& detail);
CheckStatus parseCertificateString(const std::string& text, Certificate& out,
                                   std::string& detail);
CheckStatus parseCertificateFile(const std::string& path, Certificate& out,
                                 std::string& detail);

struct CheckResult {
    CheckStatus status = CheckStatus::Ok;
    std::string detail;         ///< human-readable reason when not Ok
    double checkMs = 0;         ///< wall time of checkCertificate
    std::size_t sizeNodes = 0;  ///< AND nodes across all function cones

    bool ok() const { return status == CheckStatus::Ok; }
};

/// Validate @p cert end to end: hash binding, function coverage, structural
/// support ⊆ dependency-set checks, and one SAT call asserting the negation
/// of the substituted matrix is unsatisfiable.
CheckResult checkCertificate(const Certificate& cert,
                             Deadline deadline = Deadline::unlimited());

/// AND nodes in the union of the cones of @p outputs (certificate size).
std::size_t countAndNodes(const Aig& aig, const std::vector<AigEdge>& outputs);

} // namespace hqs::cert
