// Black-box synthesis for partial equivalence checking.
//
// When the PEC DQBF is satisfied, its Skolem functions ARE implementations
// of the missing black boxes (each box output's function reads exactly the
// box's input copies).  This module turns a SkolemCertificate back into
// per-box truth tables and a Circuit::BoxFunction, completing the PEC
// story: not only "is the design realizable?" but "here are the missing
// modules".
#pragma once

#include <optional>

#include "src/dqbf/skolem.hpp"
#include "src/pec/pec_encoder.hpp"

namespace hqs {

/// Implementations for every black box of a PEC instance.
struct SynthesizedBoxes {
    /// tables[box][output][index]: index bit i corresponds to the box's
    /// i-th input signal (Circuit::boxInputs order).
    std::vector<std::vector<std::vector<bool>>> tables;

    /// Adapter for Circuit::simulate.
    Circuit::BoxFunction asBoxFunction() const;
};

/// Extract box implementations from a certificate for @p enc's formula.
/// Returns std::nullopt when the certificate does not cover the box
/// outputs (e.g. it belongs to a different encoding).
std::optional<SynthesizedBoxes> boxesFromCertificate(const PecEncoding& enc,
                                                     const SkolemCertificate& cert);

/// One-call convenience: encode the PEC instance, decide it by expansion,
/// and synthesize the boxes.  std::nullopt iff unrealizable (or deadline).
std::optional<SynthesizedBoxes> synthesizeBoxes(const PecInstance& inst,
                                                Deadline deadline = Deadline::unlimited());

/// Same, but decide with HQS (computeSkolem) and reconstruct the boxes from
/// the elimination-trace certificate — scales much further than the
/// expansion-based extractor.
std::optional<SynthesizedBoxes> synthesizeBoxesWithHqs(
    const PecInstance& inst, Deadline deadline = Deadline::unlimited());

/// Exhaustively check (over all primary-input assignments) that the
/// implementation with the synthesized boxes matches the specification.
/// Precondition: the instance has <= ~20 primary inputs.
bool boxesRealizeSpec(const PecInstance& inst, const SynthesizedBoxes& boxes);

} // namespace hqs
