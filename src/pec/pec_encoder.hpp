// Partial equivalence checking (PEC) encoded as DQBF, following the
// encoding of Gitina et al. [10] / Scholl & Becker [20], [32]:
//
//   forall X  forall Z  exists Y_b(Z_b) exists aux(X u Z) :
//       ( AND_b  Z_b == cone_b(X, Y) )  ->  ( impl(X, Y) == spec(X) )
//
// X are the shared primary inputs, Z_b fresh universal copies of black box
// b's input signals, and Y_b the box outputs, each depending exactly on its
// own box's copies — dependencies that a linear QBF prefix cannot express
// once the design has more than one black box (the paper's motivation).
// Tseitin auxiliaries depend on all universals.  The DQBF is satisfied iff
// the incomplete design is realizable: the Skolem functions for Y_b are
// precisely the missing implementations.
#pragma once

#include <vector>

#include "src/circuit/families.hpp"
#include "src/dqbf/dqbf_formula.hpp"

namespace hqs {

struct PecEncoding {
    DqbfFormula formula;
    /// Universal variable per primary input (shared by spec and impl).
    std::vector<Var> primaryInputs;
    /// Per implementation box: the universal copies Z_b of its inputs.
    std::vector<std::vector<Var>> boxInputCopies;
    /// Per implementation box: the existential output variables Y_b.
    std::vector<std::vector<Var>> boxOutputVars;
};

/// Encode "does some implementation of impl's black boxes make impl
/// equivalent to spec" as a DQBF.  spec must be complete; spec and impl
/// must agree on input and output counts.
PecEncoding encodePec(const Circuit& spec, const Circuit& impl);

inline PecEncoding encodePec(const PecInstance& inst)
{
    return encodePec(inst.spec, inst.impl);
}

} // namespace hqs
