#include "src/pec/box_synthesis.hpp"

#include "src/dqbf/hqs_solver.hpp"

namespace hqs {

Circuit::BoxFunction SynthesizedBoxes::asBoxFunction() const
{
    return [tables = tables](Circuit::BoxId box, std::size_t outIdx,
                             const std::vector<bool>& ins) {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < ins.size(); ++i) {
            if (ins[i]) idx |= 1ull << i;
        }
        return tables[box][outIdx][idx];
    };
}

std::optional<SynthesizedBoxes> boxesFromCertificate(const PecEncoding& enc,
                                                     const SkolemCertificate& cert)
{
    SynthesizedBoxes out;
    out.tables.resize(enc.boxOutputVars.size());
    for (std::size_t b = 0; b < enc.boxOutputVars.size(); ++b) {
        for (Var y : enc.boxOutputVars[b]) {
            const SkolemFunction* fn = cert.functionFor(y);
            if (fn == nullptr) return std::nullopt;
            // The box's input copies were allocated in box-input order and
            // ascending, so the sorted Skolem deps coincide with that order
            // and the table can be used as-is.
            if (fn->deps != enc.boxInputCopies[b]) return std::nullopt;
            out.tables[b].push_back(fn->table);
        }
    }
    return out;
}

std::optional<SynthesizedBoxes> synthesizeBoxes(const PecInstance& inst, Deadline deadline)
{
    const PecEncoding enc = encodePec(inst);
    const auto cert = extractSkolemByExpansion(enc.formula, deadline);
    if (!cert) return std::nullopt;
    return boxesFromCertificate(enc, *cert);
}

std::optional<SynthesizedBoxes> synthesizeBoxesWithHqs(const PecInstance& inst,
                                                       Deadline deadline)
{
    const PecEncoding enc = encodePec(inst);
    HqsOptions opts;
    opts.computeSkolem = true;
    opts.deadline = deadline;
    HqsSolver solver(opts);
    DqbfFormula formula = enc.formula;
    if (solver.solve(std::move(formula)) != SolveResult::Sat) return std::nullopt;
    const AigSkolemCertificate& cert = *solver.skolemCertificate();

    SynthesizedBoxes out;
    out.tables.resize(enc.boxOutputVars.size());
    for (std::size_t b = 0; b < enc.boxOutputVars.size(); ++b) {
        for (Var y : enc.boxOutputVars[b]) {
            out.tables[b].push_back(cert.toTable(y, enc.boxInputCopies[b]).table);
        }
    }
    return out;
}

bool boxesRealizeSpec(const PecInstance& inst, const SynthesizedBoxes& boxes)
{
    const std::size_t n = inst.spec.inputs().size();
    const Circuit::BoxFunction boxFn = boxes.asBoxFunction();
    std::vector<bool> ins(n);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (std::size_t i = 0; i < n; ++i) ins[i] = (bits >> i) & 1u;
        if (inst.impl.evaluateOutputs(ins, boxFn) != inst.spec.evaluateOutputs(ins)) {
            return false;
        }
    }
    return true;
}

} // namespace hqs
