#include "src/pec/pec_encoder.hpp"

#include <cassert>

#include "src/circuit/tseitin.hpp"

namespace hqs {

PecEncoding encodePec(const Circuit& spec, const Circuit& impl)
{
    assert(spec.isComplete());
    assert(spec.inputs().size() == impl.inputs().size());
    assert(spec.outputs().size() == impl.outputs().size());

    PecEncoding enc;
    DqbfFormula& f = enc.formula;

    // Universals: primary inputs X, then the copies Z_b of box inputs.
    for (std::size_t i = 0; i < spec.inputs().size(); ++i) {
        enc.primaryInputs.push_back(f.addUniversal());
    }
    enc.boxInputCopies.resize(impl.numBoxes());
    for (Circuit::BoxId b = 0; b < impl.numBoxes(); ++b) {
        for (std::size_t k = 0; k < impl.boxInputs(b).size(); ++k) {
            enc.boxInputCopies[b].push_back(f.addUniversal());
        }
    }
    const std::vector<Var> allUniversals = f.universals();

    // Existentials: box outputs with D = Z_b (the Henkin part).
    enc.boxOutputVars.resize(impl.numBoxes());
    std::unordered_map<Circuit::NodeId, Var> implFixed;
    for (Circuit::BoxId b = 0; b < impl.numBoxes(); ++b) {
        for (Circuit::NodeId out : impl.boxOutputs(b)) {
            const Var y = f.addExistential(enc.boxInputCopies[b]);
            enc.boxOutputVars[b].push_back(y);
            implFixed.emplace(out, y);
        }
    }

    // Tseitin auxiliaries depend on all universals.
    auto freshAux = [&]() { return f.addExistential(allUniversals); };

    // Encode both circuits over the shared inputs.
    std::unordered_map<Circuit::NodeId, Var> specFixed;
    for (std::size_t i = 0; i < spec.inputs().size(); ++i) {
        specFixed.emplace(spec.inputs()[i], enc.primaryInputs[i]);
    }
    const std::vector<Var> specVar = tseitinEncode(spec, f.matrix(), specFixed, freshAux);

    for (std::size_t i = 0; i < impl.inputs().size(); ++i) {
        implFixed.emplace(impl.inputs()[i], enc.primaryInputs[i]);
    }
    const std::vector<Var> implVar = tseitinEncode(impl, f.matrix(), implFixed, freshAux);

    // Premise literals: e_{b,k} == (z_{b,k} == implVar(box input node)).
    auto encodeXnor = [&](Var out, Var lhs, Var rhs) {
        const Lit o = Lit::pos(out), a = Lit::pos(lhs), b = Lit::pos(rhs);
        f.matrix().addClause({~o, a, ~b});
        f.matrix().addClause({~o, ~a, b});
        f.matrix().addClause({o, a, b});
        f.matrix().addClause({o, ~a, ~b});
    };

    Clause finalClause;
    for (Circuit::BoxId b = 0; b < impl.numBoxes(); ++b) {
        const auto& ins = impl.boxInputs(b);
        for (std::size_t k = 0; k < ins.size(); ++k) {
            const Var e = freshAux();
            encodeXnor(e, enc.boxInputCopies[b][k], implVar[ins[k]]);
            finalClause.push(Lit::neg(e));
        }
    }

    // Miter: eq == AND over output pairs of (spec_j == impl_j).
    std::vector<Lit> equalities;
    for (std::size_t j = 0; j < spec.outputs().size(); ++j) {
        const Var m = freshAux();
        encodeXnor(m, specVar[spec.outputs()[j]], implVar[impl.outputs()[j]]);
        equalities.push_back(Lit::pos(m));
    }
    const Var eq = freshAux();
    {
        const Lit o = Lit::pos(eq);
        Clause big;
        big.push(o);
        for (Lit m : equalities) {
            f.matrix().addClause({~o, m});
            big.push(~m);
        }
        f.matrix().addClause(big);
    }

    // (AND premises) -> eq, as a single clause.
    finalClause.push(Lit::pos(eq));
    f.matrix().addClause(finalClause);
    return enc;
}

} // namespace hqs
