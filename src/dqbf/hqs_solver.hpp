// HQS — the paper's elimination-based DQBF solver (Fig. 3).
//
// Pipeline: CNF preprocessing (units, universal reduction, equivalences,
// gate detection) -> AIG construction with gate composition -> partial
// MaxSAT selection of a minimum universal elimination set (Eq. 1/2) ->
// main loop interleaving Theorem-5/6 unit & pure elimination, Theorem-2
// existential elimination, and Theorem-1 universal elimination of the
// selected variables (cheapest first) -> once the dependency graph is
// acyclic (Theorem 3/4), linearize the prefix and hand the AIG to the
// QBF backend.
#pragma once

#include <string>

#include <optional>

#include "src/aig/aig.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/preprocess.hpp"
#include "src/dqbf/skolem_recorder.hpp"
#include "src/qbf/aig_qbf_solver.hpp"

namespace hqs {

struct HqsOptions {
    /// CNF preprocessing before the AIG is built.
    bool preprocess = true;
    /// Tseitin gate detection (sub-switch of preprocessing).
    bool gateDetection = true;
    /// Theorem-6 unit/pure detection in the main loop.
    bool unitPure = true;
    /// SAT probe after preprocessing: check the existential abstraction
    /// (all variables existential) with the CDCL solver; if it is UNSAT the
    /// DQBF is UNSAT.  This is the improvement Section IV proposes for the
    /// instances iDQ refutes with a single SAT call.
    bool satProbe = true;
    /// Wall-clock budget for the SAT probe.
    double satProbeSeconds = 0.1;

    /// How the set of universals to eliminate is chosen.
    enum class Selection {
        MaxSat, ///< minimum set via partial MaxSAT (Eq. 1/2) — the paper's HQS
        Greedy, ///< greedy hitting-set heuristic (ablation)
        All,    ///< eliminate every universal, as in the paper's predecessor [10]
    };
    Selection selection = Selection::MaxSat;

    /// FRAIG sweeping during the main loop and the backend.
    bool fraig = true;
    std::size_t fraigThresholdNodes = 10000;
    /// Live-AIG-node budget standing in for the paper's 8 GB memout
    /// (0 = none).  Compared against *live* nodes: when the pool crosses
    /// the limit the solver garbage-collects first and only reports Memout
    /// if the reachable graph itself is over budget — a shrinking AIG with
    /// a large allocation history never trips it.
    std::size_t nodeLimit = 0;
    /// Build the two Theorem-1 cofactors concurrently on the shared helper
    /// pool when the matrix cone is at least this many AND nodes
    /// (0 disables the parallel path).
    std::size_t parallelCofactorNodes = 50000;
    Deadline deadline = Deadline::unlimited();

    /// Backend for the linearized QBF.  BddElimination converts the AIG
    /// matrix into a ROBDD and quantifies there — the canonical-structure
    /// ablation partner of the default AIG backend.
    enum class Backend { AigElimination, Search, BddElimination };
    Backend backend = Backend::AigElimination;

    /// Record the elimination trace and, on Sat, reconstruct Skolem
    /// functions for every original existential (retrievable via
    /// skolemCertificate()).  Forces the AigElimination backend and keeps
    /// cofactor snapshots alive, so it costs memory.
    bool computeSkolem = false;
};

struct HqsStats {
    PreprocessStats preprocess;

    std::size_t incomparablePairs = 0;  ///< binary cycles before selection
    std::size_t selectedUniversals = 0; ///< size of the elimination set
    double maxsatMilliseconds = 0.0;

    std::size_t universalsEliminated = 0;   ///< Theorem-1 eliminations
    std::size_t existentialsEliminated = 0; ///< Theorem-2 eliminations
    std::size_t copiesIntroduced = 0;       ///< fresh y' copies from Theorem 1
    std::size_t unitEliminations = 0;
    std::size_t pureEliminations = 0;
    std::size_t droppedUnsupported = 0;
    double unitPureMilliseconds = 0.0;

    std::size_t peakConeSize = 0;
    std::size_t fraigRuns = 0;
    std::size_t parallelCofactorBuilds = 0; ///< Theorem-1 pairs built on the pool
    double totalMilliseconds = 0.0;

    /// Snapshot of the AIG manager's kernel counters at the end of solve
    /// (strash probes/resizes, op-cache hits, GC runs, peak live nodes).
    AigKernelStats aigKernel;

    bool usedQbfBackend = false;
    AigQbfStats qbfStats;
    /// Which stage concluded: "preprocess", "elimination", or "qbf-backend".
    std::string decidedBy;
};

class HqsSolver {
public:
    explicit HqsSolver(HqsOptions opts = {}) : opts_(opts) {}

    /// Decide the DQBF.  The formula is taken by value: solving mutates it.
    SolveResult solve(DqbfFormula f);

    const HqsStats& stats() const { return stats_; }

    /// Skolem certificate for the last Sat answer; populated only when
    /// options.computeSkolem was set.
    const std::optional<AigSkolemCertificate>& skolemCertificate() const
    {
        return skolemCertificate_;
    }

private:
    HqsOptions opts_;
    HqsStats stats_;
    std::optional<AigSkolemCertificate> skolemCertificate_;
};

} // namespace hqs
