#include "src/dqbf/dependency_graph.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

#include "src/maxsat/maxsat.hpp"

namespace hqs {
namespace {

/// a \ b for sorted vectors.
std::vector<Var> setDifference(const std::vector<Var>& a, const std::vector<Var>& b)
{
    std::vector<Var> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

bool isSubset(const std::vector<Var>& a, const std::vector<Var>& b)
{
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

} // namespace

std::vector<std::pair<Var, Var>> incomparablePairs(const DqbfFormula& f)
{
    std::vector<std::pair<Var, Var>> pairs;
    const auto& ys = f.existentials();
    for (std::size_t i = 0; i < ys.size(); ++i) {
        for (std::size_t j = i + 1; j < ys.size(); ++j) {
            const auto& di = f.dependencies(ys[i]);
            const auto& dj = f.dependencies(ys[j]);
            if (!isSubset(di, dj) && !isSubset(dj, di)) {
                pairs.emplace_back(ys[i], ys[j]);
            }
        }
    }
    return pairs;
}

bool hasEquivalentQbfPrefix(const DqbfFormula& f)
{
    // Theorem 4: cyclic iff some pair is subset-incomparable.
    return incomparablePairs(f).empty();
}

QbfPrefix linearizePrefix(const DqbfFormula& f)
{
    assert(hasEquivalentQbfPrefix(f));
    // With pairwise comparable dependency sets, sorting existentials by
    // |D_y| yields the block order of the Theorem-3 construction; equal
    // sets share a block.
    std::vector<Var> ys = f.existentials();
    std::sort(ys.begin(), ys.end(), [&](Var a, Var b) {
        return f.dependencies(a).size() < f.dependencies(b).size();
    });

    QbfPrefix prefix;
    std::vector<Var> placedUniversals; // sorted set of universals already bound
    std::size_t i = 0;
    while (i < ys.size()) {
        // Block of equal dependency sets.
        std::size_t j = i;
        while (j < ys.size() && f.dependencies(ys[j]) == f.dependencies(ys[i])) ++j;

        const std::vector<Var> newUniversals =
            setDifference(f.dependencies(ys[i]), placedUniversals);
        prefix.addBlock(QuantKind::Forall, newUniversals);
        placedUniversals.insert(placedUniversals.end(), newUniversals.begin(),
                                newUniversals.end());
        std::sort(placedUniversals.begin(), placedUniversals.end());

        prefix.addBlock(QuantKind::Exists, std::vector<Var>(ys.begin() + i, ys.begin() + j));
        i = j;
    }
    // Trailing universals nobody depends on (X_{k+1} in the paper).
    std::vector<Var> allUniversals = f.universals();
    std::sort(allUniversals.begin(), allUniversals.end());
    prefix.addBlock(QuantKind::Forall, setDifference(allUniversals, placedUniversals));
    return prefix;
}

std::optional<std::vector<Var>> selectEliminationSetMaxSat(const DqbfFormula& f,
                                                           Deadline deadline)
{
    const auto pairs = incomparablePairs(f);
    if (pairs.empty()) return std::vector<Var>{};

    // MaxSAT variable x-hat per universal; index mapping.
    MaxSatSolver maxsat;
    std::unordered_map<Var, Var> hatOf;
    for (Var x : f.universals()) hatOf.emplace(x, maxsat.newVar());

    // Equation 1 (hard): for each incomparable pair {y, y'}, eliminate all
    // of D_y \ D_y' or all of D_y' \ D_y.  The disjunction of conjunctions
    // is encoded with one selector variable per pair.
    for (const auto& [y1, y2] : pairs) {
        const auto left = setDifference(f.dependencies(y1), f.dependencies(y2));
        const auto right = setDifference(f.dependencies(y2), f.dependencies(y1));
        const Var sel = maxsat.newVar();
        for (Var x : left) maxsat.addHard({Lit::neg(sel), Lit::pos(hatOf.at(x))});
        for (Var x : right) maxsat.addHard({Lit::pos(sel), Lit::pos(hatOf.at(x))});
    }
    // Equation 2 (soft): prefer keeping each universal.
    for (Var x : f.universals()) maxsat.addSoft({Lit::neg(hatOf.at(x))});

    const auto res = maxsat.solve(deadline);
    if (!res) return std::nullopt; // only a deadline can fail: Eq. 1 is satisfiable

    std::vector<Var> out;
    for (Var x : f.universals()) {
        if (res->model[hatOf.at(x)]) out.push_back(x);
    }
    return out;
}

std::vector<Var> selectEliminationSetGreedy(const DqbfFormula& f)
{
    auto pairs = incomparablePairs(f);
    std::vector<Var> chosen;
    std::vector<bool> eliminated(f.numVars(), false);

    auto diffWithoutEliminated = [&](Var y1, Var y2) {
        std::vector<Var> d = setDifference(f.dependencies(y1), f.dependencies(y2));
        std::erase_if(d, [&](Var x) { return eliminated[x]; });
        return d;
    };

    for (;;) {
        // Score each universal by how many pending difference sets it hits.
        std::map<Var, std::size_t> score;
        bool anyPending = false;
        for (const auto& [y1, y2] : pairs) {
            const auto left = diffWithoutEliminated(y1, y2);
            const auto right = diffWithoutEliminated(y2, y1);
            if (left.empty() || right.empty()) continue; // pair already resolved
            anyPending = true;
            for (Var x : left) ++score[x];
            for (Var x : right) ++score[x];
        }
        if (!anyPending) break;
        Var best = score.begin()->first;
        for (const auto& [x, s] : score) {
            if (s > score[best]) best = x;
        }
        eliminated[best] = true;
        chosen.push_back(best);
    }
    return chosen;
}

std::vector<Var> orderEliminationSet(const DqbfFormula& f, std::vector<Var> set)
{
    std::stable_sort(set.begin(), set.end(), [&](Var a, Var b) {
        return f.dependersOf(a).size() < f.dependersOf(b).size();
    });
    return set;
}

} // namespace hqs
