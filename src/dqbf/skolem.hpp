// Skolem functions and certificates for DQBF.
//
// By Definition 2, a DQBF is satisfied iff there are Skolem functions
// s_y : A(D_y) -> {0,1} making the matrix a tautology.  This module makes
// the witness explicit:
//
//  * SkolemFunction — one function as a truth table over the variable's
//    dependency set;
//  * extractSkolemByExpansion — compute a full certificate from one SAT
//    call on the universal expansion (exponential in the number of
//    universals; meant for moderate prefixes);
//  * verifySkolemCertificate — independent check that substituting the
//    functions really yields a tautology (AIG + SAT on the negation).
//
// For the paper's PEC application a certificate is exactly a synthesized
// implementation of the design's black boxes (see src/pec and the
// synthesize_boxes example).  Certificate extraction is listed as future
// work in the paper (it later appeared for HQS in Wimmer et al.); the
// expansion-based extractor here trades scalability for simplicity and
// verifiability.
#pragma once

#include <optional>
#include <vector>

#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"

namespace hqs {

/// One Skolem function as an explicit truth table.
struct SkolemFunction {
    Var var;
    /// Sorted dependency set; table index bit i corresponds to deps[i].
    std::vector<Var> deps;
    /// 2^|deps| entries.
    std::vector<bool> table;

    /// Value under an assignment of the universal variables (indexed by
    /// Var; variables beyond the vector read as false).
    bool evaluate(const std::vector<bool>& universalAssignment) const;
};

/// A full certificate: one function per existential variable.
struct SkolemCertificate {
    std::vector<SkolemFunction> functions;

    const SkolemFunction* functionFor(Var y) const;
};

/// Extract a certificate via full universal expansion + one SAT call.
/// Returns std::nullopt when the formula is UNSAT or the deadline expires.
/// Precondition: the expansion is tractable (<= ~22 universals and modest
/// dependency sets).
std::optional<SkolemCertificate> extractSkolemByExpansion(
    const DqbfFormula& f, Deadline deadline = Deadline::unlimited());

/// Independently verify a certificate: every existential is covered, each
/// function's support is inside the declared dependency set (by
/// construction of the table), and substituting the functions makes the
/// matrix a tautology over the universals.
bool verifySkolemCertificate(const DqbfFormula& f, const SkolemCertificate& cert,
                             Deadline deadline = Deadline::unlimited());

} // namespace hqs
