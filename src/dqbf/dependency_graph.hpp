// Dependency graphs over the existential variables of a DQBF
// (Definition 4) and the machinery built on them:
//
//  * Theorem 3/4: a DQBF has an equivalent QBF prefix iff the graph is
//    acyclic, iff no two dependency sets are subset-incomparable;
//  * the Theorem-3 construction of an equivalent linear prefix;
//  * the partial MaxSAT selection (Equations 1 and 2) of a minimum set of
//    universal variables whose elimination makes the graph acyclic, plus a
//    greedy alternative used by the ablation benchmarks;
//  * the paper's elimination ordering (fewest introduced existential copies
//    first).
#pragma once

#include <optional>
#include <vector>

#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

/// Unordered pairs {y, y'} with subset-incomparable dependency sets — the
/// binary cycles C_psi of the paper's Section III-A.
std::vector<std::pair<Var, Var>> incomparablePairs(const DqbfFormula& f);

/// Theorem 3/4: true iff the dependency graph is acyclic, i.e. the formula
/// has an equivalent linear (QBF) prefix.
bool hasEquivalentQbfPrefix(const DqbfFormula& f);

/// Theorem-3 construction: an equivalent QBF prefix for a linearizable
/// DQBF.  Precondition: hasEquivalentQbfPrefix(f).
QbfPrefix linearizePrefix(const DqbfFormula& f);

/// Minimum set of universal variables whose elimination linearizes the
/// prefix, found with partial MaxSAT per Equations 1 and 2.  Returns
/// std::nullopt only if @p deadline expires.
std::optional<std::vector<Var>> selectEliminationSetMaxSat(
    const DqbfFormula& f, Deadline deadline = Deadline::unlimited());

/// Greedy alternative (ablation baseline): repeatedly eliminate the
/// universal variable occurring in the most difference sets of incomparable
/// pairs until none remain.  Not minimum in general.
std::vector<Var> selectEliminationSetGreedy(const DqbfFormula& f);

/// Order the selected universals by elimination cost: ascending number of
/// existential copies Theorem 1 would introduce (|E_x|).
std::vector<Var> orderEliminationSet(const DqbfFormula& f, std::vector<Var> set);

} // namespace hqs
