#include "src/dqbf/hqs_solver.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/aig/cnf_bridge.hpp"
#include "src/aig/fraig.hpp"
#include "src/obs/obs.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/sat/sat_solver.hpp"
#include "src/dqbf/dependency_graph.hpp"
#include "src/qbf/bdd_qbf_solver.hpp"
#include "src/qbf/search_qbf_solver.hpp"

namespace hqs {
namespace {

/// Compose detected gate definitions into the matrix AIG, in an order where
/// no composed output can be re-introduced by a later composition (if gate
/// g's definition mentions gate output h, g is composed before h).
AigEdge composeGates(Aig& aig, AigEdge matrix, const std::vector<GateDef>& gates,
                     DqbfFormula& f, SkolemRecorder* rec)
{
    std::unordered_map<Var, const GateDef*> defOf;
    for (const GateDef& g : gates) defOf.emplace(g.target.var(), &g);

    // Topological order over "g uses h" edges via DFS.
    std::vector<const GateDef*> order;
    std::unordered_map<Var, int> state; // 0 = new, 1 = visiting, 2 = done
    // Iterative DFS emitting g after all gates that use g... we need the
    // reverse: compose g before any gate output h appearing in g's inputs.
    // DFS from each gate, post-order over the "uses" relation, then reverse.
    std::vector<Var> stack;
    for (const GateDef& g : gates) {
        if (state[g.target.var()] != 0) continue;
        stack.push_back(g.target.var());
        while (!stack.empty()) {
            const Var v = stack.back();
            if (state[v] == 0) {
                state[v] = 1;
                for (Lit in : defOf.at(v)->inputs) {
                    const Var u = in.var();
                    if (defOf.contains(u) && state[u] == 0) stack.push_back(u);
                }
            } else {
                if (state[v] == 1) {
                    state[v] = 2;
                    order.push_back(defOf.at(v));
                }
                stack.pop_back();
            }
        }
    }
    // Post-order lists used gates before users; composing users first
    // requires the reverse.
    std::reverse(order.begin(), order.end());

    for (const GateDef* g : order) {
        // Record in composition order: a gate using another gate's output is
        // recorded first, so reverse (reconstruction) order resolves the
        // used gate's Skolem before the user needs it.
        if (rec) rec->record(SkolemRecorder::AliasGate{*g});
        AigEdge def;
        if (g->kind == GateKind::Or) {
            def = aig.constFalse();
            for (Lit in : g->inputs) def = aig.mkOr(def, aig.variable(in.var()) ^ in.negative());
        } else {
            def = aig.mkXor(aig.variable(g->inputs[0].var()) ^ g->inputs[0].negative(),
                            aig.variable(g->inputs[1].var()) ^ g->inputs[1].negative());
        }
        // target == def, so the output variable equals def ^ target-sign.
        matrix = aig.compose(matrix, g->target.var(), def ^ g->target.negative());
        if (f.isExistential(g->target.var())) f.removeExistential(g->target.var());
    }
    return matrix;
}

} // namespace

SolveResult HqsSolver::solve(DqbfFormula f)
{
    stats_ = HqsStats{};
    skolemCertificate_.reset();
    Timer total;
    OBS_SPAN(solveSpan, "hqs.solve");

    // Skolem tracking state: the elimination trace, the original prefix for
    // reconstruction, and a shared manager kept alive inside the
    // certificate.
    std::optional<SkolemRecorder> recorder;
    std::optional<DqbfFormula> original;
    if (opts_.computeSkolem) {
        recorder.emplace();
        original = f;
    }
    SkolemRecorder* rec = recorder ? &*recorder : nullptr;
    auto aigPtr = std::make_shared<Aig>();
    Aig& aig = *aigPtr;

    auto finish = [&](SolveResult r, const char* stage) {
        stats_.totalMilliseconds = total.elapsedMilliseconds();
        stats_.decidedBy = stage;
        stats_.aigKernel = aig.kernelStats();
        aig.publishKernelStats();
        if (r == SolveResult::Sat && rec) {
            skolemCertificate_ = reconstructSkolem(*original, aigPtr, *recorder);
        }
        return r;
    };

    // ----- preprocessing ---------------------------------------------------
    std::vector<GateDef> gates;
    if (opts_.preprocess) {
        OBS_PHASE(prepSpan, "hqs.preprocess", "phase.preprocess.us");
        PreprocessOptions popts;
        popts.gateDetection = opts_.gateDetection;
        PreprocessResult pres = preprocess(f, popts, rec);
        stats_.preprocess = pres.stats;
        gates = std::move(pres.gates);
        prepSpan.arg("gates", static_cast<std::int64_t>(gates.size()));
        if (pres.decided != SolveResult::Unknown) return finish(pres.decided, "preprocess");
    }

    // ----- SAT probe (Section IV: catch single-SAT-call refutations) --------
    if (opts_.satProbe) {
        // The existential abstraction over-approximates the DQBF: if even
        // "all variables existential" has no model, the DQBF is UNSAT.
        // (Gate definitions removed by preprocessing are equisatisfiable
        // extensions, so probing the remaining matrix plus definitions is
        // unnecessary — the remaining matrix alone is an abstraction.)
        OBS_PHASE(probeSpan, "hqs.sat_probe", "phase.sat_probe.us");
        SatSolver probe;
        probe.addCnf(f.matrix());
        const SolveResult pr = probe.solve({}, Deadline::in(opts_.satProbeSeconds));
        if (pr == SolveResult::Unsat) return finish(SolveResult::Unsat, "sat-probe");
    }

    // ----- AIG construction -------------------------------------------------
    AigEdge matrix;
    {
        OBS_PHASE(buildSpan, "hqs.build_aig", "phase.build_aig.us");
        matrix = buildFromCnf(aig, f.matrix());
        matrix = composeGates(aig, matrix, gates, f, rec);
        buildSpan.arg("nodes", static_cast<std::int64_t>(aig.numNodes()));
    }

    auto constantResult = [&]() {
        return aig.constantValue(matrix) ? SolveResult::Sat : SolveResult::Unsat;
    };
    if (aig.isConstant(matrix)) return finish(constantResult(), "elimination");

    // ----- selection of universals to eliminate ------------------------------
    stats_.incomparablePairs = incomparablePairs(f).size();
    auto selectOrdered = [&]() -> std::optional<std::vector<Var>> {
        OBS_PHASE(selSpan, "hqs.select", "phase.select.us");
        Timer t;
        std::vector<Var> set;
        switch (opts_.selection) {
            case HqsOptions::Selection::MaxSat: {
                auto r = selectEliminationSetMaxSat(f, opts_.deadline);
                if (!r) return std::nullopt;
                set = std::move(*r);
                break;
            }
            case HqsOptions::Selection::Greedy:
                set = selectEliminationSetGreedy(f);
                break;
            case HqsOptions::Selection::All:
                set = f.universals();
                break;
        }
        stats_.maxsatMilliseconds += t.elapsedMilliseconds();
        return orderEliminationSet(f, std::move(set));
    };
    auto selected = selectOrdered();
    if (!selected) return finish(deadlineExceededResult(opts_.deadline), "selection");
    stats_.selectedUniversals = selected->size();
    std::size_t nextPick = 0;

    // ----- helpers for the main loop -----------------------------------------
    std::size_t lastFraigSize = 0;
    auto collectGarbage = [&]() {
        std::vector<AigEdge*> roots{&matrix};
        if (rec) rec->appendGcRoots(roots);
        aig.garbageCollect(std::move(roots));
    };

    // Each cofactor in the loops below leaves O(cone) garbage; without
    // collection a long unit/pure chain multiplies memory by the number of
    // eliminations.  Collect whenever garbage dominates.
    auto collectIfBloated = [&]() {
        if (aig.numNodes() > 4 * aig.coneSize(matrix) + 20000) collectGarbage();
    };

    auto housekeeping = [&]() -> SolveResult {
        const std::size_t cone = aig.coneSize(matrix);
        stats_.peakConeSize = std::max(stats_.peakConeSize, cone);
        OBS_GAUGE_MAX("aig.peak_cone", cone);
        if (opts_.deadline.expired()) return deadlineExceededResult(opts_.deadline);
        // The node limit is a *live*-node budget.  The live cone alone
        // over budget is a definitive memout; a pool over budget may be
        // mostly garbage, so compact before judging (a shrinking AIG with a
        // long allocation history must not trip the limit).
        if (opts_.nodeLimit != 0 && cone > opts_.nodeLimit) return SolveResult::Memout;
        if (opts_.nodeLimit != 0 && aig.numNodes() > opts_.nodeLimit) {
            collectGarbage();
            if (aig.numNodes() > opts_.nodeLimit) return SolveResult::Memout;
        }
        if (opts_.fraig && cone > opts_.fraigThresholdNodes && cone > 2 * lastFraigSize) {
            FraigOptions fopts;
            fopts.deadline = opts_.deadline;
            matrix = fraigReduce(aig, matrix, fopts);
            lastFraigSize = aig.coneSize(matrix);
            ++stats_.fraigRuns;
            // The sweep strands the entire pre-sweep cone as garbage.
            if (aig.numNodes() > 2 * lastFraigSize + 1000) collectGarbage();
        }
        collectIfBloated();
        return SolveResult::Unknown;
    };

    // Theorem 5 applied to Theorem-6 detections.  Returns Unsat on a
    // universal unit, Unknown otherwise.
    auto unitPurePass = [&]() -> SolveResult {
        if (!opts_.unitPure) return SolveResult::Unknown;
        OBS_PHASE(upSpan, "hqs.unit_pure", "phase.unit_pure.us");
        Timer t;
        bool changed = true;
        while (changed && !aig.isConstant(matrix) && !opts_.deadline.expired()) {
            changed = false;
            collectIfBloated();
            const UnitPureInfo info = aig.detectUnitPure(matrix);
            for (const auto& [vars, positive] :
                 {std::pair{&info.posUnit, true}, std::pair{&info.negUnit, false}}) {
                for (Var v : *vars) {
                    if (f.isUniversal(v)) {
                        stats_.unitPureMilliseconds += t.elapsedMilliseconds();
                        return SolveResult::Unsat;
                    }
                    if (!f.isExistential(v)) continue;
                    if (rec) rec->record(SkolemRecorder::Constant{v, positive});
                    matrix = aig.cofactor(matrix, v, positive);
                    f.removeExistential(v);
                    ++stats_.unitEliminations;
                    OBS_COUNT("hqs.elim.unit", 1);
                    changed = true;
                    break;
                }
                if (changed) break;
            }
            if (changed) continue;
            for (const auto& [vars, positive] :
                 {std::pair{&info.posPure, true}, std::pair{&info.negPure, false}}) {
                for (Var v : *vars) {
                    if (f.isExistential(v)) {
                        if (rec) rec->record(SkolemRecorder::Constant{v, positive});
                        matrix = aig.cofactor(matrix, v, positive);
                        f.removeExistential(v);
                    } else if (f.isUniversal(v)) {
                        matrix = aig.cofactor(matrix, v, !positive);
                        f.removeUniversal(v);
                    } else {
                        continue;
                    }
                    ++stats_.pureEliminations;
                    OBS_COUNT("hqs.elim.pure", 1);
                    changed = true;
                    break;
                }
                if (changed) break;
            }
        }
        stats_.unitPureMilliseconds += t.elapsedMilliseconds();
        return SolveResult::Unknown;
    };

    /// Remove prefix variables that no longer occur in the matrix.
    auto dropUnsupported = [&]() {
        const std::vector<Var> supp = aig.support(matrix);
        const std::unordered_set<Var> suppSet(supp.begin(), supp.end());
        for (Var y : std::vector<Var>(f.existentials())) {
            if (!suppSet.contains(y)) {
                if (rec) rec->record(SkolemRecorder::Constant{y, false});
                f.removeExistential(y);
                ++stats_.droppedUnsupported;
            }
        }
        for (Var x : std::vector<Var>(f.universals())) {
            if (!suppSet.contains(x)) {
                f.removeUniversal(x);
                ++stats_.droppedUnsupported;
            }
        }
    };

    // ----- main loop (Fig. 3) -------------------------------------------------
    for (;;) {
        if (SolveResult r = housekeeping(); r != SolveResult::Unknown)
            return finish(r, "elimination");
        if (SolveResult r = unitPurePass(); r != SolveResult::Unknown)
            return finish(r, "elimination");
        if (aig.isConstant(matrix)) return finish(constantResult(), "elimination");

        // Theorem 2: eliminate existentials depending on all universals.
        {
            OBS_PHASE(exSpan, "hqs.elim_exists", "phase.elim_exists.us");
            bool eliminated = true;
            while (eliminated && !aig.isConstant(matrix) && !opts_.deadline.expired()) {
                eliminated = false;
                collectIfBloated();
                for (Var y : std::vector<Var>(f.existentials())) {
                    // Re-check the budget per candidate: a single cofactor
                    // pair on a huge cone can dwarf the loop-head check.
                    if (opts_.deadline.expired()) break;
                    if (!f.dependsOnAllUniversals(y)) continue;
                    if (!aig.hasVariable(y)) {
                        if (rec) rec->record(SkolemRecorder::Constant{y, false});
                        f.removeExistential(y);
                        continue;
                    }
                    const AigEdge cof0 = aig.cofactor(matrix, y, false);
                    const AigEdge cof1 = aig.cofactor(matrix, y, true);
                    if (rec) rec->record(SkolemRecorder::Exists{y, cof1});
                    matrix = aig.mkOr(cof0, cof1);
                    f.removeExistential(y);
                    ++stats_.existentialsEliminated;
                    OBS_COUNT("hqs.elim.existential", 1);
                    eliminated = true;
                    // Hundreds of full-dependency auxiliaries can be
                    // eliminated in one sweep; collect the cofactor garbage
                    // as we go or memory multiplies by the sweep length.
                    collectIfBloated();
                    if (aig.isConstant(matrix) || opts_.deadline.expired()) break;
                }
            }
        }
        if (aig.isConstant(matrix)) return finish(constantResult(), "elimination");
        dropUnsupported();

        // Done when the dependency graph is acyclic (Theorem 3/4) — except
        // in All mode, which reproduces [10] by eliminating every universal.
        const bool done = (opts_.selection == HqsOptions::Selection::All)
                              ? f.universals().empty()
                              : hasEquivalentQbfPrefix(f);
        if (done) break;

        // Pick the next universal from the ordered elimination list.
        Var pick = kNoVar;
        while (nextPick < selected->size()) {
            const Var candidate = (*selected)[nextPick++];
            if (f.isUniversal(candidate) && aig.hasVariable(candidate)) {
                pick = candidate;
                break;
            }
        }
        if (pick == kNoVar) {
            // List exhausted but the graph is still cyclic (earlier unit or
            // pure eliminations can strand the precomputed list): reselect.
            selected = selectOrdered();
            if (!selected) return finish(deadlineExceededResult(opts_.deadline), "selection");
            nextPick = 0;
            continue;
        }

        // Theorem 1: psi == forall-rest: phi[0/x] & phi[1/x][y'/y for y in E_x].
        // Each of the two cofactors and the substitution below copies O(cone)
        // nodes; on huge cones that overshoots the budget badly if only the
        // loop head checks — so check between the expensive steps too.
        if (opts_.deadline.expired()) return finish(deadlineExceededResult(opts_.deadline), "elimination");
        {
            OBS_PHASE(unSpan, "hqs.elim_universal", "phase.elim_universal.us");
            const std::size_t nodesBefore = aig.numNodes();
            const std::size_t cone = aig.coneSize(matrix);
            AigEdge cof0, cof1;
            bool built = false;
            if (opts_.parallelCofactorNodes != 0 && cone >= opts_.parallelCofactorNodes) {
                // Build the two cofactors concurrently: the manager is
                // frozen while two cofactorInto traversals rebuild into
                // private side managers (read-only on the source, local
                // scratch), then both cones are imported back sequentially
                // — structural hashing re-establishes sharing.  The helper
                // pool is process-wide and never runs solves, so blocking
                // on the future cannot deadlock a solve pool.
                // Hand the result back through an explicit mutex/condvar
                // slot rather than std::promise: libstdc++'s future-ready
                // flag is an atomic futex that uninstrumented TSan builds
                // cannot see, which turns this (correct) handoff into a
                // false race report.
                Aig side0, side1;
                struct CofactorSlot {
                    std::mutex mu;
                    std::condition_variable ready;
                    bool done = false;
                    AigEdge result;
                    std::exception_ptr error;
                } slot;
                const bool dispatched = ThreadPool::sharedHelperPool().submit([&] {
                    AigEdge e;
                    std::exception_ptr err;
                    try {
                        e = aig.cofactorInto(side1, matrix, pick, true);
                    } catch (...) {
                        err = std::current_exception();
                    }
                    std::lock_guard<std::mutex> lock(slot.mu);
                    slot.result = e;
                    slot.error = err;
                    slot.done = true;
                    slot.ready.notify_one();
                });
                if (dispatched) {
                    auto awaitWorker = [&slot] {
                        std::unique_lock<std::mutex> lock(slot.mu);
                        slot.ready.wait(lock, [&slot] { return slot.done; });
                    };
                    AigEdge e0;
                    try {
                        e0 = aig.cofactorInto(side0, matrix, pick, false);
                    } catch (...) {
                        // The worker still holds references into this frame;
                        // wait for it to resolve before unwinding.
                        awaitWorker();
                        throw;
                    }
                    awaitWorker();
                    if (slot.error) std::rethrow_exception(slot.error);
                    cof0 = aig.importCone(side0, e0);
                    cof1 = aig.importCone(side1, slot.result);
                    ++stats_.parallelCofactorBuilds;
                    OBS_COUNT("hqs.elim.parallel_cofactor", 1);
                    built = true;
                }
            }
            if (!built) {
                cof0 = aig.cofactor(matrix, pick, false);
                if (opts_.deadline.expired())
                    return finish(deadlineExceededResult(opts_.deadline), "elimination");
                cof1 = aig.cofactor(matrix, pick, true);
            }
            if (opts_.deadline.expired()) return finish(deadlineExceededResult(opts_.deadline), "elimination");
            const std::vector<Var> supp1 = aig.support(cof1);
            const std::unordered_set<Var> supp1Set(supp1.begin(), supp1.end());

            Substitution& renaming = aig.scratchSubstitution();
            SkolemRecorder::UniversalSplit split{pick, {}};
            for (Var y : std::vector<Var>(f.dependersOf(pick))) {
                if (!supp1Set.contains(y)) continue; // a copy would not occur
                std::vector<Var> deps = f.dependencies(y);
                std::erase(deps, pick);
                const Var fresh = f.addExistential(std::move(deps));
                renaming.set(y, aig.variable(fresh));
                split.copies.emplace_back(y, fresh);
                ++stats_.copiesIntroduced;
            }
            const std::int64_t copies = static_cast<std::int64_t>(split.copies.size());
            if (rec && !split.copies.empty()) rec->record(std::move(split));
            cof1 = aig.substitute(cof1, renaming);
            matrix = aig.mkAnd(cof0, cof1);
            f.removeUniversal(pick);
            ++stats_.universalsEliminated;
            OBS_COUNT("hqs.elim.universal", 1);
            OBS_COUNT("hqs.elim.copies", copies);
            const std::int64_t delta =
                static_cast<std::int64_t>(aig.numNodes()) -
                static_cast<std::int64_t>(nodesBefore);
            OBS_OBSERVE("hqs.elim.node_delta", delta);
            unSpan.arg("copies", copies);
            unSpan.arg("node_delta", delta);
            // The Theorem-1 rebuild strands both cofactor sources.
            collectIfBloated();
        }
    }

    if (aig.isConstant(matrix)) return finish(constantResult(), "elimination");

    // ----- QBF backend on the linearized prefix -------------------------------
    OBS_PHASE(qbfSpan, "hqs.qbf_backend", "phase.qbf.us");
    OBS_COUNT("qbf.backend_calls", 1);
    stats_.usedQbfBackend = true;
    const QbfPrefix prefix = linearizePrefix(f);
    if (opts_.backend == HqsOptions::Backend::Search && !opts_.computeSkolem) {
        return finish(searchQbfSolve(aig, matrix, prefix, opts_.deadline), "qbf-backend");
    }
    if (opts_.backend == HqsOptions::Backend::BddElimination && !opts_.computeSkolem) {
        BddQbfOptions bopts;
        bopts.deadline = opts_.deadline;
        bopts.nodeLimit = opts_.nodeLimit;
        BddQbfSolver backend(bopts);
        Bdd bdd;
        bdd.setResourceLimits(bopts.nodeLimit, bopts.deadline);
        SolveResult r;
        try {
            const BddRef bddMatrix = bddFromAig(bdd, aig, matrix);
            r = backend.solve(bdd, bddMatrix, prefix);
        } catch (const BddLimitExceeded& e) {
            r = e.byNodeLimit() ? SolveResult::Memout : deadlineExceededResult(opts_.deadline);
        }
        stats_.peakConeSize = std::max(stats_.peakConeSize, backend.stats().peakConeSize);
        return finish(r, "qbf-backend");
    }
    AigQbfOptions qopts;
    qopts.recorder = rec;
    qopts.unitPure = opts_.unitPure;
    qopts.fraig = opts_.fraig;
    qopts.fraigThresholdNodes = opts_.fraigThresholdNodes;
    qopts.nodeLimit = opts_.nodeLimit;
    qopts.deadline = opts_.deadline;
    AigQbfSolver backend(qopts);
    const SolveResult r = backend.solve(aig, matrix, prefix);
    stats_.qbfStats = backend.stats();
    stats_.peakConeSize = std::max(stats_.peakConeSize, backend.stats().peakConeSize);
    return finish(r, "qbf-backend");
}

} // namespace hqs
