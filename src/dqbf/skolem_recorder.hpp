// Skolem reconstruction from the HQS elimination trace.
//
// The paper lists the computation of Skolem functions as future work; the
// technique (realized for HQS in follow-up work by Wimmer et al.) is to log
// every prefix-changing step during solving and replay the log BACKWARDS,
// building one AIG function per existential variable:
//
//   * Constant      — unit/pure/unsupported existential y fixed to a value:
//                     s_y = c.
//   * AliasLit      — preprocessing equivalence y == r (literal):
//                     s_y = +-s_r (or +-x for a universal r).
//   * AliasGate     — Tseitin gate output y == gate(inputs):
//                     s_y = gate(inputs with Skolems substituted).
//   * Exists        — Theorem-2/QBF elimination of y from matrix phi:
//                     s_y = phi[1/y] with every later-eliminated existential
//                     replaced by its (already reconstructed) Skolem.  Sound
//                     because Theorem 2 only fires when y depends on all
//                     current universals.
//   * UniversalSplit— Theorem-1 elimination of x copying y -> y':
//                     s_y := ITE(x, s_{y'}, s_y).
//
// Records that reference matrix cofactors hold AigEdges into the solver's
// manager; the recorder therefore exposes its edges as extra GC roots.
#pragma once

#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/aig/aig.hpp"
#include "src/dqbf/preprocess.hpp"
#include "src/dqbf/skolem.hpp"

namespace hqs {

class SkolemRecorder {
public:
    struct Constant {
        Var var;
        bool value;
    };
    struct AliasLit {
        Var var;
        Lit rep; ///< var == rep (rep over an existential or universal)
    };
    struct AliasGate {
        GateDef def; ///< def.target's variable is the defined output
    };
    struct Exists {
        Var var;
        AigEdge cofactor1; ///< matrix[1/var] at elimination time
    };
    struct UniversalSplit {
        Var universal;
        std::vector<std::pair<Var, Var>> copies; ///< (kept y, fresh y')
    };
    using Record = std::variant<Constant, AliasLit, AliasGate, Exists, UniversalSplit>;

    void record(Record r) { records_.push_back(std::move(r)); }

    /// Edges held by Exists records — must stay valid across garbage
    /// collection of the owning manager.  (Header-only so that the QBF
    /// backend can log without linking against the DQBF library.)
    void appendGcRoots(std::vector<AigEdge*>& roots)
    {
        for (Record& r : records_) {
            if (auto* ex = std::get_if<Exists>(&r)) roots.push_back(&ex->cofactor1);
        }
    }

    const std::vector<Record>& records() const { return records_; }

private:
    std::vector<Record> records_;
};

/// A Skolem certificate with functions kept as AIG cones (scales to
/// dependency sets where explicit tables would explode).
struct AigSkolemCertificate {
    std::shared_ptr<Aig> aig;
    std::unordered_map<Var, AigEdge> functions; ///< existential -> function

    /// Convert one function to an explicit table (precondition: the
    /// dependency set is small).
    SkolemFunction toTable(Var y, const std::vector<Var>& deps) const;
};

/// Replay @p recorder backwards inside @p aig, producing a function for
/// every existential of @p original.  @p aig must be the manager the
/// records were created in (shared with the certificate for lifetime).
AigSkolemCertificate reconstructSkolem(const DqbfFormula& original,
                                       std::shared_ptr<Aig> aig,
                                       const SkolemRecorder& recorder);

/// Verify an AIG certificate: coverage of every existential, support inside
/// the declared dependency sets, and tautology of the substituted matrix
/// (SAT check on the negation).
bool verifyAigSkolemCertificate(const DqbfFormula& f, const AigSkolemCertificate& cert,
                                Deadline deadline = Deadline::unlimited());

} // namespace hqs
