// Reference decision procedures for DQBF used by the test suite.
//
//  * bruteForceDqbf — enumerate every combination of Skolem functions
//    (Definition 2 verbatim).  Doubly exponential; tiny instances only.
//  * expansionDqbf — full universal expansion into SAT: one copy y_tau of
//    each existential y per assignment tau of D_y; each clause is
//    instantiated for every assignment of all universals.  Exact, single
//    SAT call; exponential in the number of universals.
//
// The two are independent implementations of the DQBF semantics and are
// cross-checked against each other in the tests.
#pragma once

#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"

namespace hqs {

/// Definition-2 semantics by Skolem-function enumeration.
/// Precondition (asserted): the total enumeration space is <= ~2^24.
bool bruteForceDqbf(const DqbfFormula& f);

/// Full-expansion decision.  Returns Sat/Unsat (or Timeout on deadline).
SolveResult expansionDqbf(const DqbfFormula& f, Deadline deadline = Deadline::unlimited());

} // namespace hqs
