#include "src/dqbf/dqbf_oracle.hpp"

#include <cassert>
#include <unordered_map>

#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

/// Index of the assignment sigma restricted to the (sorted) dependency set:
/// bit i of the result is sigma's value of deps[i].
std::uint32_t restrictionIndex(std::uint64_t sigma, const std::vector<Var>& deps,
                               const std::unordered_map<Var, unsigned>& universalPos)
{
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < deps.size(); ++i) {
        if ((sigma >> universalPos.at(deps[i])) & 1u) idx |= 1u << i;
    }
    return idx;
}

} // namespace

bool bruteForceDqbf(const DqbfFormula& f)
{
    const auto& universals = f.universals();
    const unsigned n = static_cast<unsigned>(universals.size());
    std::unordered_map<Var, unsigned> universalPos;
    for (unsigned i = 0; i < n; ++i) universalPos.emplace(universals[i], i);

    // Existentials plus free matrix variables (empty dependencies).
    struct Sk {
        Var y;
        std::vector<Var> deps;
        unsigned tableBits;  // 2^|deps|
        unsigned tableShift; // offset into the global table-bit vector
    };
    std::vector<Sk> skolems;
    unsigned totalBits = 0;
    auto addSkolem = [&](Var y, const std::vector<Var>& deps) {
        const unsigned bits = 1u << deps.size();
        skolems.push_back(Sk{y, deps, bits, totalBits});
        totalBits += bits;
    };
    for (Var y : f.existentials()) addSkolem(y, f.dependencies(y));
    for (Var v = 0; v < f.matrix().numVars(); ++v) {
        if (f.kindOf(v) == DqbfVarKind::Unquantified) addSkolem(v, {});
    }
    assert(totalBits <= 24 && n <= 16);

    std::vector<bool> assignment(f.matrix().numVars(), false);
    for (std::uint64_t tables = 0; tables < (1ull << totalBits); ++tables) {
        bool allSigmaOk = true;
        for (std::uint64_t sigma = 0; sigma < (1ull << n) && allSigmaOk; ++sigma) {
            for (unsigned i = 0; i < n; ++i) assignment[universals[i]] = (sigma >> i) & 1u;
            for (const Sk& sk : skolems) {
                const std::uint32_t idx = restrictionIndex(sigma, sk.deps, universalPos);
                assignment[sk.y] = (tables >> (sk.tableShift + idx)) & 1u;
            }
            if (!f.matrix().evaluate(assignment)) allSigmaOk = false;
        }
        if (allSigmaOk) return true;
    }
    return false;
}

SolveResult expansionDqbf(const DqbfFormula& f, Deadline deadline)
{
    const auto& universals = f.universals();
    const unsigned n = static_cast<unsigned>(universals.size());
    assert(n <= 22);
    std::unordered_map<Var, unsigned> universalPos;
    for (unsigned i = 0; i < n; ++i) universalPos.emplace(universals[i], i);

    SatSolver sat;
    // (existential var, restriction index) -> SAT copy variable.
    std::unordered_map<std::uint64_t, Var> copyVar;
    auto copyOf = [&](Var y, std::uint32_t idx) {
        const std::uint64_t key = (static_cast<std::uint64_t>(y) << 32) | idx;
        auto it = copyVar.find(key);
        if (it != copyVar.end()) return it->second;
        const Var s = sat.newVar();
        copyVar.emplace(key, s);
        return s;
    };
    auto depsOf = [&](Var v) -> const std::vector<Var>& {
        static const std::vector<Var> kEmpty;
        return f.isExistential(v) ? f.dependencies(v) : kEmpty;
    };

    for (std::uint64_t sigma = 0; sigma < (1ull << n); ++sigma) {
        if (deadline.expired()) return SolveResult::Timeout;
        for (const Clause& c : f.matrix()) {
            std::vector<Lit> inst;
            bool satisfied = false;
            for (Lit l : c) {
                if (f.isUniversal(l.var())) {
                    const bool value = (sigma >> universalPos.at(l.var())) & 1u;
                    if (value != l.negative()) {
                        satisfied = true;
                        break;
                    }
                    continue; // literal false under sigma: drop
                }
                const std::uint32_t idx = restrictionIndex(sigma, depsOf(l.var()), universalPos);
                inst.push_back(Lit(copyOf(l.var(), idx), l.negative()));
            }
            if (!satisfied && !sat.addClause(std::move(inst))) {
                return SolveResult::Unsat;
            }
        }
    }
    return sat.solve({}, deadline);
}

} // namespace hqs
