#include "src/dqbf/dqbf_formula.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace hqs {

void DqbfFormula::ensureInfo(Var v)
{
    if (v >= info_.size()) info_.resize(v + 1);
    matrix_.ensureVars(v + 1);
}

DqbfFormula::VarInfo& DqbfFormula::info(Var v)
{
    ensureInfo(v);
    return info_[v];
}

const DqbfFormula::VarInfo* DqbfFormula::infoOrNull(Var v) const
{
    return v < info_.size() ? &info_[v] : nullptr;
}

Var DqbfFormula::addUniversal()
{
    const Var v = std::max<Var>(matrix_.numVars(), static_cast<Var>(info_.size()));
    makeUniversal(v);
    return v;
}

Var DqbfFormula::addExistential(std::vector<Var> deps)
{
    const Var v = std::max<Var>(matrix_.numVars(), static_cast<Var>(info_.size()));
    makeExistential(v, std::move(deps));
    return v;
}

void DqbfFormula::makeUniversal(Var v)
{
    VarInfo& i = info(v);
    assert(i.kind == DqbfVarKind::Unquantified);
    i.kind = DqbfVarKind::Universal;
    universals_.push_back(v);
}

void DqbfFormula::makeExistential(Var v, std::vector<Var> deps)
{
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    VarInfo& i = info(v);
    assert(i.kind == DqbfVarKind::Unquantified);
    i.kind = DqbfVarKind::Existential;
    i.deps = std::move(deps);
    existentials_.push_back(v);
}

DqbfVarKind DqbfFormula::kindOf(Var v) const
{
    const VarInfo* i = infoOrNull(v);
    return i ? i->kind : DqbfVarKind::Unquantified;
}

const std::vector<Var>& DqbfFormula::dependencies(Var y) const
{
    const VarInfo* i = infoOrNull(y);
    assert(i && i->kind == DqbfVarKind::Existential);
    return i->deps;
}

bool DqbfFormula::dependsOn(Var y, Var x) const
{
    const auto& d = dependencies(y);
    return std::binary_search(d.begin(), d.end(), x);
}

std::vector<Var> DqbfFormula::dependersOf(Var x) const
{
    std::vector<Var> out;
    for (Var y : existentials_) {
        if (dependsOn(y, x)) out.push_back(y);
    }
    return out;
}

bool DqbfFormula::dependsOnAllUniversals(Var y) const
{
    return dependencies(y).size() == universals_.size();
}

void DqbfFormula::removeUniversal(Var x)
{
    assert(isUniversal(x));
    info_[x].kind = DqbfVarKind::Unquantified;
    universals_.erase(std::find(universals_.begin(), universals_.end(), x));
    for (Var y : existentials_) {
        auto& d = info_[y].deps;
        auto it = std::lower_bound(d.begin(), d.end(), x);
        if (it != d.end() && *it == x) d.erase(it);
    }
}

void DqbfFormula::removeExistential(Var y)
{
    assert(isExistential(y));
    info_[y].kind = DqbfVarKind::Unquantified;
    info_[y].deps.clear();
    existentials_.erase(std::find(existentials_.begin(), existentials_.end(), y));
}

void DqbfFormula::setDependencies(Var y, std::vector<Var> deps)
{
    assert(isExistential(y));
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    info_[y].deps = std::move(deps);
}

Var DqbfFormula::numVars() const
{
    return std::max<Var>(matrix_.numVars(), static_cast<Var>(info_.size()));
}

DqbfFormula DqbfFormula::fromParsed(const ParsedQdimacs& parsed)
{
    DqbfFormula f;
    f.matrix_ = parsed.matrix;
    f.ensureInfo(parsed.matrix.numVars() == 0 ? 0 : parsed.matrix.numVars() - 1);

    // QDIMACS blocks: an `e` variable depends on all `a` variables to its
    // left.
    std::vector<Var> universalsSoFar;
    for (const PrefixBlockSpec& b : parsed.blocks) {
        if (b.kind == QuantKind::Forall) {
            for (Var v : b.vars) {
                f.makeUniversal(v);
                universalsSoFar.push_back(v);
            }
        } else {
            for (Var v : b.vars) f.makeExistential(v, universalsSoFar);
        }
    }
    // Henkin lines: explicit dependency sets.
    for (const DependencySpec& d : parsed.henkin) {
        f.makeExistential(d.var, d.deps);
    }
    // Free matrix variables: existentials with empty dependencies.
    for (Var v = 0; v < parsed.matrix.numVars(); ++v) {
        if (f.kindOf(v) == DqbfVarKind::Unquantified) f.makeExistential(v, {});
    }
    return f;
}

ParsedQdimacs DqbfFormula::toParsed() const
{
    ParsedQdimacs out;
    out.matrix = matrix_;
    if (!universals_.empty()) {
        out.blocks.push_back(PrefixBlockSpec{QuantKind::Forall, universals_});
    }
    for (Var y : existentials_) {
        out.henkin.push_back(DependencySpec{y, dependencies(y)});
    }
    return out;
}

std::vector<std::string> validate(const DqbfFormula& f)
{
    std::vector<std::string> problems;
    auto report = [&](std::string msg) { problems.push_back(std::move(msg)); };

    std::vector<int> seen(f.numVars(), 0);
    for (Var x : f.universals()) {
        if (f.kindOf(x) != DqbfVarKind::Universal) {
            report("universal list entry v" + std::to_string(x) + " not tagged universal");
        }
        if (seen[x]++) report("variable v" + std::to_string(x) + " listed twice in prefix");
    }
    for (Var y : f.existentials()) {
        if (f.kindOf(y) != DqbfVarKind::Existential) {
            report("existential list entry v" + std::to_string(y) + " not tagged existential");
        }
        if (seen[y]++) report("variable v" + std::to_string(y) + " listed twice in prefix");
        for (Var x : f.dependencies(y)) {
            if (!f.isUniversal(x)) {
                report("dependency v" + std::to_string(x) + " of v" + std::to_string(y) +
                       " is not a universal variable");
            }
        }
    }
    std::vector<bool> reportedUnquantified(f.numVars(), false);
    for (const Clause& c : f.matrix()) {
        for (Lit l : c) {
            if (f.kindOf(l.var()) == DqbfVarKind::Unquantified &&
                !reportedUnquantified[l.var()]) {
                reportedUnquantified[l.var()] = true;
                report("matrix variable v" + std::to_string(l.var()) + " is unquantified");
            }
        }
    }
    return problems;
}

std::ostream& operator<<(std::ostream& os, const DqbfFormula& f)
{
    os << "forall";
    for (Var x : f.universals()) os << " v" << x;
    for (Var y : f.existentials()) {
        os << " exists v" << y << '(';
        bool first = true;
        for (Var x : f.dependencies(y)) {
            if (!first) os << ',';
            os << 'v' << x;
            first = false;
        }
        os << ')';
    }
    return os << " : " << f.matrix();
}

} // namespace hqs
