#include "src/dqbf/preprocess.hpp"

#include "src/dqbf/skolem_recorder.hpp"
#include "src/obs/obs.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

namespace hqs {
namespace {

/// Sorted literal codes of a clause — canonical key for clause lookups.
std::vector<std::uint32_t> clauseKey(const Clause& c)
{
    std::vector<std::uint32_t> key;
    key.reserve(c.size());
    for (Lit l : c) key.push_back(l.code());
    std::sort(key.begin(), key.end());
    return key;
}

class Preprocessor {
public:
    Preprocessor(DqbfFormula& f, const PreprocessOptions& opts, SkolemRecorder* recorder)
        : f_(f), opts_(opts), recorder_(recorder) {}

    PreprocessResult run()
    {
        if (!renormalize()) return res_;
        for (int round = 0; round < opts_.maxRounds; ++round) {
            ++res_.stats.rounds;
            bool changed = false;
            if (opts_.unitPropagation) changed |= propagateUnits();
            if (decided()) return res_;
            if (opts_.universalReduction) changed |= universalReduce();
            if (decided()) return res_;
            if (opts_.subsumption) changed |= subsumeAndStrengthen();
            if (decided()) return res_;
            if (opts_.equivalences) changed |= substituteEquivalences();
            if (decided()) return res_;
            if (!changed) break;
        }
        if (f_.matrix().numClauses() == 0) {
            res_.decided = SolveResult::Sat;
            return res_;
        }
        if (opts_.gateDetection) detectGates();
        return res_;
    }

private:
    bool decided() const { return res_.decided != SolveResult::Unknown; }

    /// Re-normalize all clauses, dropping tautologies and duplicates.
    /// Returns false (and decides Unsat) on an empty clause.
    bool renormalize()
    {
        std::vector<Clause> kept;
        std::set<std::vector<std::uint32_t>> seen;
        for (Clause& c : f_.matrix().clauses()) {
            if (c.normalize()) continue;
            if (c.empty()) {
                res_.decided = SolveResult::Unsat;
                return false;
            }
            if (seen.insert(clauseKey(c)).second) kept.push_back(std::move(c));
        }
        f_.matrix().clauses() = std::move(kept);
        return true;
    }

    /// Theorem 5 at CNF level: existential units are assigned, a universal
    /// unit decides Unsat.
    bool propagateUnits()
    {
        bool any = false;
        for (;;) {
            Lit unit = kUndefLit;
            for (const Clause& c : f_.matrix()) {
                if (c.size() == 1) {
                    unit = c[0];
                    break;
                }
            }
            if (unit.isUndef()) break;
            if (f_.isUniversal(unit.var())) {
                res_.decided = SolveResult::Unsat;
                return true;
            }
            assign(unit);
            ++res_.stats.unitsPropagated;
            any = true;
            if (decided()) return true;
        }
        return any;
    }

    /// Set literal @p l true: drop satisfied clauses, shorten the rest.
    void assign(Lit l)
    {
        if (f_.isExistential(l.var())) {
            if (recorder_) {
                recorder_->record(SkolemRecorder::Constant{l.var(), l.positive()});
            }
            f_.removeExistential(l.var());
        }
        std::vector<Clause> kept;
        for (Clause& c : f_.matrix().clauses()) {
            if (c.contains(l)) continue;
            std::erase(c.lits(), ~l);
            if (c.empty()) {
                res_.decided = SolveResult::Unsat;
                return;
            }
            kept.push_back(std::move(c));
        }
        f_.matrix().clauses() = std::move(kept);
    }

    /// Generalized universal reduction [13]: drop universal literal u from a
    /// clause when no existential literal of the clause depends on u.
    bool universalReduce()
    {
        bool any = false;
        for (Clause& c : f_.matrix().clauses()) {
            std::vector<Lit> keep;
            keep.reserve(c.size());
            for (Lit l : c) {
                if (!f_.isUniversal(l.var())) {
                    keep.push_back(l);
                    continue;
                }
                const bool needed = std::any_of(c.begin(), c.end(), [&](Lit m) {
                    return f_.isExistential(m.var()) && f_.dependsOn(m.var(), l.var());
                });
                if (needed) {
                    keep.push_back(l);
                } else {
                    ++res_.stats.universalLiteralsReduced;
                    any = true;
                }
            }
            if (keep.size() != c.size()) c.lits() = std::move(keep);
            if (c.empty()) {
                res_.decided = SolveResult::Unsat;
                return true;
            }
        }
        if (any) renormalize();
        return any;
    }

    // ----- subsumption and self-subsuming resolution ------------------------

    /// Remove clauses subsumed by another clause (C subset of D removes D)
    /// and strengthen clauses by self-subsuming resolution: when
    /// C = C' or l  and  C' subset of (D minus ~l), drop ~l from D.  Both
    /// preserve the matrix as a propositional formula, hence are DQBF-sound.
    bool subsumeAndStrengthen()
    {
        auto& clauses = f_.matrix().clauses();
        bool any = false;

        // Occurrence lists: literal code -> clause indices (alive only).
        auto buildOcc = [&]() {
            std::vector<std::vector<std::size_t>> occ(2 * f_.numVars());
            for (std::size_t i = 0; i < clauses.size(); ++i) {
                for (Lit l : clauses[i]) occ[l.code()].push_back(i);
            }
            return occ;
        };

        // isSubset works on normalized (sorted) clauses.
        auto isSubsetOf = [](const Clause& a, const Clause& b) {
            return std::includes(b.begin(), b.end(), a.begin(), a.end());
        };

        std::vector<bool> dead(clauses.size(), false);
        const std::vector<std::vector<std::size_t>> occ = buildOcc();

        // Candidate pairs via the least-occurring literal of each clause.
        auto candidatesOf = [&](const Clause& c) -> const std::vector<std::size_t>& {
            const Lit* best = nullptr;
            std::size_t bestCount = static_cast<std::size_t>(-1);
            for (const Lit& l : c.lits()) {
                if (occ[l.code()].size() < bestCount) {
                    bestCount = occ[l.code()].size();
                    best = &l;
                }
            }
            return occ[best->code()];
        };

        for (std::size_t i = 0; i < clauses.size(); ++i) {
            if (dead[i]) continue;
            const Clause& c = clauses[i];
            if (c.empty()) continue;
            // Plain subsumption: remove supersets of c.
            for (std::size_t j : candidatesOf(c)) {
                if (j == i || dead[j]) continue;
                if (clauses[j].size() >= c.size() && isSubsetOf(c, clauses[j])) {
                    // Tie-break equal clauses by index to avoid removing both.
                    if (clauses[j].size() == c.size() && j < i) continue;
                    dead[j] = true;
                    ++res_.stats.clausesSubsumed;
                    any = true;
                }
            }
            // Self-subsuming resolution: for each literal l of c, find D
            // containing ~l with c \ {l} subset of D \ {~l}; strengthen D.
            for (std::size_t li = 0; li < c.size(); ++li) {
                const Lit l = c[li];
                Clause cWithout;
                for (Lit m : c) {
                    if (m != l) cWithout.push(m);
                }
                for (std::size_t j : occ[(~l).code()]) {
                    if (j == i || dead[j]) continue;
                    Clause& d = clauses[j];
                    if (!d.contains(~l)) continue; // stale occurrence
                    Clause dWithout;
                    for (Lit m : d) {
                        if (m != ~l) dWithout.push(m);
                    }
                    if (isSubsetOf(cWithout, dWithout)) {
                        d = std::move(dWithout);
                        ++res_.stats.literalsStrengthened;
                        any = true;
                        if (d.empty()) {
                            res_.decided = SolveResult::Unsat;
                            return true;
                        }
                    }
                }
            }
        }
        if (any) {
            std::vector<Clause> kept;
            for (std::size_t i = 0; i < clauses.size(); ++i) {
                if (!dead[i]) kept.push_back(std::move(clauses[i]));
            }
            clauses = std::move(kept);
            renormalize();
        }
        return any;
    }

    // ----- equivalent variables (binary-clause SCCs) -----------------------

    /// Tarjan SCC over the binary implication graph; substitutes one
    /// representative per component with the DQBF soundness side conditions.
    bool substituteEquivalences()
    {
        const std::uint32_t numLits = 2 * f_.numVars();
        std::vector<std::vector<std::uint32_t>> adj(numLits);
        bool haveBinary = false;
        for (const Clause& c : f_.matrix()) {
            if (c.size() != 2) continue;
            haveBinary = true;
            adj[(~c[0]).code()].push_back(c[1].code());
            adj[(~c[1]).code()].push_back(c[0].code());
        }
        if (!haveBinary) return false;

        // Iterative Tarjan.
        constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
        std::vector<std::uint32_t> index(numLits, kUnvisited), low(numLits, 0),
            comp(numLits, kUnvisited);
        std::vector<bool> onStack(numLits, false);
        std::vector<std::uint32_t> sccStack;
        std::uint32_t nextIndex = 0, nextComp = 0;

        struct Frame {
            std::uint32_t node;
            std::size_t child;
        };
        for (std::uint32_t start = 0; start < numLits; ++start) {
            if (index[start] != kUnvisited) continue;
            std::vector<Frame> frames{{start, 0}};
            index[start] = low[start] = nextIndex++;
            sccStack.push_back(start);
            onStack[start] = true;
            while (!frames.empty()) {
                Frame& fr = frames.back();
                if (fr.child < adj[fr.node].size()) {
                    const std::uint32_t next = adj[fr.node][fr.child++];
                    if (index[next] == kUnvisited) {
                        index[next] = low[next] = nextIndex++;
                        sccStack.push_back(next);
                        onStack[next] = true;
                        frames.push_back({next, 0});
                    } else if (onStack[next]) {
                        low[fr.node] = std::min(low[fr.node], index[next]);
                    }
                } else {
                    if (low[fr.node] == index[fr.node]) {
                        for (;;) {
                            const std::uint32_t w = sccStack.back();
                            sccStack.pop_back();
                            onStack[w] = false;
                            comp[w] = nextComp;
                            if (w == fr.node) break;
                        }
                        ++nextComp;
                    }
                    const std::uint32_t done = fr.node;
                    frames.pop_back();
                    if (!frames.empty()) {
                        low[frames.back().node] = std::min(low[frames.back().node], low[done]);
                    }
                }
            }
        }

        // Group literals by component.
        std::unordered_map<std::uint32_t, std::vector<Lit>> members;
        for (std::uint32_t code = 0; code < numLits; ++code) {
            if (comp[code] != kUnvisited) members[comp[code]].push_back(Lit::fromCode(code));
        }

        bool any = false;
        for (auto& [id, lits] : members) {
            if (lits.size() < 2) continue;
            // l and ~l in one component: matrix is propositionally unsat.
            for (Lit l : lits) {
                if (comp[l.code()] == comp[(~l).code()]) {
                    res_.decided = SolveResult::Unsat;
                    return true;
                }
            }
            // Components come in complementary mirror pairs encoding the
            // same equivalences; process only the one whose minimum literal
            // is positive (its mirror has the negative minimum).
            const Lit minLit = *std::min_element(lits.begin(), lits.end());
            if (minLit.negative()) continue;
            if (!mergeComponent(lits)) return true; // decided Unsat
            any = true;
        }
        if (any) renormalize();
        return any;
    }

    /// Merge one equivalence class of literals.  Returns false when the
    /// merge shows the formula unsatisfiable.
    bool mergeComponent(const std::vector<Lit>& lits)
    {
        // Partition into universal and existential literals; skip variables
        // already removed by earlier merges this round.
        std::vector<Lit> universalLits, existentialLits;
        for (Lit l : lits) {
            if (f_.isUniversal(l.var())) {
                universalLits.push_back(l);
            } else if (f_.isExistential(l.var())) {
                existentialLits.push_back(l);
            }
        }
        if (universalLits.size() + existentialLits.size() < 2) return true;
        if (universalLits.size() >= 2) {
            // Two universals forced equivalent: falsifiable by the adversary.
            res_.decided = SolveResult::Unsat;
            return false;
        }

        Lit rep;
        if (universalLits.size() == 1) {
            rep = universalLits[0];
            for (Lit ly : existentialLits) {
                if (!f_.dependsOn(ly.var(), rep.var())) {
                    // s_y would have to equal a universal outside D_y.
                    res_.decided = SolveResult::Unsat;
                    return false;
                }
            }
        } else {
            rep = existentialLits[0];
            // Merged Skolem function must be expressible over every member's
            // dependency set, hence over their intersection.
            std::vector<Var> inter = f_.dependencies(rep.var());
            for (Lit ly : existentialLits) {
                const auto& d = f_.dependencies(ly.var());
                std::vector<Var> next;
                std::set_intersection(inter.begin(), inter.end(), d.begin(), d.end(),
                                      std::back_inserter(next));
                inter = std::move(next);
            }
            f_.setDependencies(rep.var(), std::move(inter));
        }

        for (Lit ly : existentialLits) {
            if (ly.var() == rep.var()) continue;
            // ly == rep, so the positive literal of var(ly) maps to
            // rep ^ ly.negative().
            substituteVar(ly.var(), rep ^ ly.negative());
            ++res_.stats.equivalencesSubstituted;
        }
        return true;
    }

    /// Replace every literal of @p y by the corresponding phase of @p rep.
    void substituteVar(Var y, Lit rep)
    {
        if (recorder_) recorder_->record(SkolemRecorder::AliasLit{y, rep});
        f_.removeExistential(y);
        for (Clause& c : f_.matrix().clauses()) {
            for (Lit& l : c.lits()) {
                if (l.var() == y) l = rep ^ l.negative();
            }
        }
    }

    // ----- gate detection ----------------------------------------------------

    void detectGates()
    {
        auto& clauses = f_.matrix().clauses();
        std::map<std::vector<std::uint32_t>, std::size_t> byKey;
        for (std::size_t i = 0; i < clauses.size(); ++i) byKey.emplace(clauseKey(clauses[i]), i);

        auto findClause = [&](std::vector<Lit> lits) -> std::optional<std::size_t> {
            std::vector<std::uint32_t> key;
            key.reserve(lits.size());
            for (Lit l : lits) key.push_back(l.code());
            std::sort(key.begin(), key.end());
            auto it = byKey.find(key);
            if (it == byKey.end()) return std::nullopt;
            return it->second;
        };

        std::unordered_map<Var, std::vector<Var>> acceptedInputs; // output -> input vars
        std::vector<bool> removed(clauses.size(), false);

        // True iff @p target is reachable from @p from through accepted
        // definitions (used to keep the definition DAG acyclic).
        auto reaches = [&](Var from, Var target) {
            std::vector<Var> stack{from};
            std::set<Var> seen;
            while (!stack.empty()) {
                const Var v = stack.back();
                stack.pop_back();
                if (v == target) return true;
                if (!seen.insert(v).second) continue;
                auto it = acceptedInputs.find(v);
                if (it != acceptedInputs.end()) {
                    stack.insert(stack.end(), it->second.begin(), it->second.end());
                }
            }
            return false;
        };

        auto inputsAdmissible = [&](Var g, const std::vector<Lit>& inputs) {
            if (!f_.isExistential(g)) return false;
            if (acceptedInputs.contains(g)) return false; // one definition per output
            for (Lit m : inputs) {
                const Var u = m.var();
                if (u == g) return false;
                if (f_.isUniversal(u)) {
                    if (!f_.dependsOn(g, u)) return false;
                } else if (f_.isExistential(u)) {
                    const auto& du = f_.dependencies(u);
                    const auto& dg = f_.dependencies(g);
                    if (!std::includes(dg.begin(), dg.end(), du.begin(), du.end())) return false;
                } else {
                    return false;
                }
                if (reaches(u, g)) return false; // would close a cycle
            }
            return true;
        };

        auto accept = [&](Var g, GateKind kind, Lit target, std::vector<Lit> inputs,
                          const std::vector<std::size_t>& defClauses) {
            std::vector<Var> inputVars;
            for (Lit m : inputs) inputVars.push_back(m.var());
            acceptedInputs.emplace(g, std::move(inputVars));
            for (std::size_t idx : defClauses) removed[idx] = true;
            // Note: AliasGate records for Skolem reconstruction are emitted
            // at composition time (composeGates) in topological order, not
            // here — reconstruction requires user-before-used chronology.
            res_.gates.push_back(GateDef{target, kind, std::move(inputs)});
            ++res_.stats.gatesDetected;
        };

        for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
            if (removed[ci]) continue;
            const Clause& c = clauses[ci];
            if (c.size() < 3) continue;

            for (std::size_t oi = 0; oi < c.size(); ++oi) {
                const Lit L = c[oi];
                const Var g = L.var();
                std::vector<Lit> others;
                for (std::size_t k = 0; k < c.size(); ++k) {
                    if (k != oi) others.push_back(c[k]);
                }

                // AND/OR pattern: big clause (L | m1 | ... | mk) plus the
                // binaries (~L | ~mi)  ==>  ~L == OR(m1..mk).
                {
                    std::vector<std::size_t> defs{ci};
                    bool ok = true;
                    for (Lit m : others) {
                        const auto bin = findClause({~L, ~m});
                        if (!bin || removed[*bin]) {
                            ok = false;
                            break;
                        }
                        defs.push_back(*bin);
                    }
                    if (ok && inputsAdmissible(g, others)) {
                        accept(g, GateKind::Or, ~L, others, defs);
                        break; // clause ci consumed
                    }
                }

                // XOR pattern (ternary clauses only): (L|u|v) with
                // (L|~u|~v), (~L|~u|v), (~L|u|~v)  ==>  ~L == u XOR v.
                if (c.size() == 3) {
                    const Lit u = others[0], v = others[1];
                    const auto c2 = findClause({L, ~u, ~v});
                    const auto c3 = findClause({~L, ~u, v});
                    const auto c4 = findClause({~L, u, ~v});
                    if (c2 && c3 && c4 && !removed[*c2] && !removed[*c3] && !removed[*c4] &&
                        inputsAdmissible(g, others)) {
                        accept(g, GateKind::Xor, ~L, others, {ci, *c2, *c3, *c4});
                        break;
                    }
                }
            }
        }

        std::vector<Clause> kept;
        for (std::size_t i = 0; i < clauses.size(); ++i) {
            if (!removed[i]) kept.push_back(std::move(clauses[i]));
        }
        clauses = std::move(kept);
    }

    DqbfFormula& f_;
    const PreprocessOptions& opts_;
    SkolemRecorder* recorder_;
    PreprocessResult res_;
};

} // namespace

PreprocessResult preprocess(DqbfFormula& f, const PreprocessOptions& opts,
                            SkolemRecorder* recorder)
{
    PreprocessResult res = Preprocessor(f, opts, recorder).run();
    OBS_COUNT("preprocess.rounds", res.stats.rounds);
    OBS_COUNT("preprocess.units", static_cast<std::int64_t>(res.stats.unitsPropagated));
    OBS_COUNT("preprocess.universal_reductions",
              static_cast<std::int64_t>(res.stats.universalLiteralsReduced));
    OBS_COUNT("preprocess.equivalences",
              static_cast<std::int64_t>(res.stats.equivalencesSubstituted));
    OBS_COUNT("preprocess.gates_detected",
              static_cast<std::int64_t>(res.stats.gatesDetected));
    OBS_COUNT("preprocess.clauses_subsumed",
              static_cast<std::int64_t>(res.stats.clausesSubsumed));
    return res;
}

} // namespace hqs
