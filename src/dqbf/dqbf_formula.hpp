// Dependency quantified Boolean formulas (Definitions 1 and 2 of the paper):
//   forall x1..xn  exists y1(D_y1) .. ym(D_ym) :  matrix
// where each dependency set D_y is a subset of the universal variables.
//
// Variables are shared with the CNF matrix.  Dependency sets are kept as
// sorted vectors so that the subset tests driving the dependency graph
// (Theorems 3 and 4) are linear-time merges.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/base/literal.hpp"
#include "src/cnf/cnf.hpp"
#include "src/cnf/dimacs.hpp"

namespace hqs {

enum class DqbfVarKind : std::uint8_t {
    Unquantified, ///< variable id not (or no longer) in the prefix
    Universal,
    Existential,
};

class DqbfFormula {
public:
    DqbfFormula() = default;

    // ----- prefix construction ---------------------------------------------
    /// Allocate a fresh universal variable.
    Var addUniversal();
    /// Allocate a fresh existential variable with the given dependency set.
    Var addExistential(std::vector<Var> deps);

    /// Declare an existing matrix variable universal.
    void makeUniversal(Var v);
    /// Declare an existing matrix variable existential with dependencies
    /// @p deps (must all be universal at call time or declared later).
    void makeExistential(Var v, std::vector<Var> deps);

    // ----- prefix access ----------------------------------------------------
    DqbfVarKind kindOf(Var v) const;
    bool isUniversal(Var v) const { return kindOf(v) == DqbfVarKind::Universal; }
    bool isExistential(Var v) const { return kindOf(v) == DqbfVarKind::Existential; }

    /// Universal variables in declaration order.
    const std::vector<Var>& universals() const { return universals_; }
    /// Existential variables in declaration order.
    const std::vector<Var>& existentials() const { return existentials_; }

    /// Dependency set of existential @p y (sorted ascending).
    const std::vector<Var>& dependencies(Var y) const;
    /// True iff universal @p x is in D_y.
    bool dependsOn(Var y, Var x) const;
    /// E_x = existential variables depending on universal @p x (Theorem 1).
    std::vector<Var> dependersOf(Var x) const;

    /// D_y == set of all current universals?
    bool dependsOnAllUniversals(Var y) const;

    // ----- prefix mutation (used by the solver) -----------------------------
    /// Remove universal @p x from the prefix and from every dependency set.
    void removeUniversal(Var x);
    /// Remove existential @p y from the prefix.
    void removeExistential(Var y);
    /// Replace D_y by @p deps (sorted internally).
    void setDependencies(Var y, std::vector<Var> deps);

    // ----- matrix ------------------------------------------------------------
    Cnf& matrix() { return matrix_; }
    const Cnf& matrix() const { return matrix_; }

    /// Total variable count (matrix + prefix ids).
    Var numVars() const;

    // ----- conversion ---------------------------------------------------------
    /// Build from parsed DQDIMACS.  `a`/`e` blocks get QDIMACS semantics
    /// (an `e` variable depends on all universals to its left); `d` lines
    /// give explicit dependency sets.  Free matrix variables become
    /// existentials with empty dependencies.
    static DqbfFormula fromParsed(const ParsedQdimacs& parsed);
    ParsedQdimacs toParsed() const;

private:
    struct VarInfo {
        DqbfVarKind kind = DqbfVarKind::Unquantified;
        std::vector<Var> deps; // sorted; meaningful for existentials
    };

    VarInfo& info(Var v);
    const VarInfo* infoOrNull(Var v) const;
    void ensureInfo(Var v);

    std::vector<VarInfo> info_;
    std::vector<Var> universals_;
    std::vector<Var> existentials_;
    Cnf matrix_;
};

std::ostream& operator<<(std::ostream& os, const DqbfFormula& f);

/// Well-formedness diagnostics for a formula built through the API or a
/// parser: every dependency refers to a universal variable, prefix entries
/// are unique and correctly tagged, and every matrix variable is
/// quantified.  Returns human-readable problems; empty means valid.
std::vector<std::string> validate(const DqbfFormula& f);

} // namespace hqs
