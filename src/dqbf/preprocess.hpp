// CNF-level preprocessing for DQBF (Section III-C of the paper, "basic
// preprocessing steps ... adapted to the DQBF setting"):
//
//  * unit literal propagation (existential unit: assign; universal unit:
//    unsatisfied — Theorem 5);
//  * generalized universal reduction: a universal literal u leaves a clause
//    when no existential literal of the clause depends on u [13];
//  * equivalent-variable substitution from binary-clause SCCs, with the
//    DQBF-specific side conditions (existential≙existential merges take the
//    dependency-set intersection; existential≙universal needs the universal
//    in the dependency set; universal≙universal is unsatisfiable);
//  * Tseitin gate detection for AND/OR/XOR gates with arbitrarily negated
//    inputs: defining clauses are removed from the CNF and returned as a
//    gate list to be composed into the AIG.
//
// The first three run in alternation until the CNF stops changing; gate
// detection runs once at the end.
#pragma once

#include <vector>

#include "src/base/result.hpp"
#include "src/dqbf/dqbf_formula.hpp"

namespace hqs {

struct PreprocessOptions {
    bool unitPropagation = true;
    bool universalReduction = true;
    bool equivalences = true;
    bool gateDetection = true;
    /// Clause subsumption and self-subsuming resolution (strengthening).
    /// Both are matrix-level equivalences, hence DQBF-sound.  The paper
    /// names "more sophisticated preprocessing techniques" as future work;
    /// these are the standard first additions.
    bool subsumption = true;
    /// Safety bound on alternation rounds.
    int maxRounds = 50;
};

enum class GateKind { Or, Xor };

/// A detected gate definition: `target == OR(inputs)` or
/// `target == inputs[0] XOR inputs[1]`, where target is a literal over the
/// (existential) gate-output variable.  The defining clauses have been
/// removed from the matrix; the matrix conjoined with all definitions is
/// equivalent to the original matrix.
struct GateDef {
    Lit target;
    GateKind kind;
    std::vector<Lit> inputs;
};

struct PreprocessStats {
    std::size_t unitsPropagated = 0;
    std::size_t universalLiteralsReduced = 0;
    std::size_t equivalencesSubstituted = 0;
    std::size_t gatesDetected = 0;
    std::size_t clausesSubsumed = 0;
    std::size_t literalsStrengthened = 0;
    int rounds = 0;
};

struct PreprocessResult {
    /// Sat/Unsat when preprocessing alone decides the formula, else Unknown.
    SolveResult decided = SolveResult::Unknown;
    std::vector<GateDef> gates;
    PreprocessStats stats;
};

class SkolemRecorder;

/// Preprocess @p f in place.  On return (when not decided) the DQBF
/// `prefix(f) : matrix(f) AND gate definitions` is equivalent to the input;
/// gate-output variables remain existential in the prefix and are expected
/// to be composed away when the matrix AIG is built.
/// When @p recorder is non-null, every step that fixes or aliases an
/// existential variable is logged for Skolem reconstruction.
PreprocessResult preprocess(DqbfFormula& f, const PreprocessOptions& opts = {},
                            SkolemRecorder* recorder = nullptr);

} // namespace hqs
