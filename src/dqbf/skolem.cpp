#include "src/dqbf/skolem.hpp"

#include <cassert>
#include <unordered_map>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {

bool SkolemFunction::evaluate(const std::vector<bool>& universalAssignment) const
{
    std::size_t idx = 0;
    for (std::size_t i = 0; i < deps.size(); ++i) {
        const Var x = deps[i];
        if (x < universalAssignment.size() && universalAssignment[x]) idx |= 1u << i;
    }
    return table[idx];
}

const SkolemFunction* SkolemCertificate::functionFor(Var y) const
{
    for (const SkolemFunction& s : functions) {
        if (s.var == y) return &s;
    }
    return nullptr;
}

std::optional<SkolemCertificate> extractSkolemByExpansion(const DqbfFormula& f,
                                                          Deadline deadline)
{
    const std::vector<Var>& universals = f.universals();
    const unsigned n = static_cast<unsigned>(universals.size());
    assert(n <= 22);
    std::unordered_map<Var, unsigned> universalPos;
    for (unsigned i = 0; i < n; ++i) universalPos.emplace(universals[i], i);

    auto depsOf = [&](Var v) -> const std::vector<Var>& {
        static const std::vector<Var> kEmpty;
        return f.isExistential(v) ? f.dependencies(v) : kEmpty;
    };
    auto restrictionIndex = [&](std::uint64_t sigma, const std::vector<Var>& deps) {
        std::uint32_t idx = 0;
        for (std::size_t i = 0; i < deps.size(); ++i) {
            if ((sigma >> universalPos.at(deps[i])) & 1u) idx |= 1u << i;
        }
        return idx;
    };

    SatSolver sat;
    std::unordered_map<std::uint64_t, Var> copyVar;
    auto copyOf = [&](Var y, std::uint32_t idx) {
        const std::uint64_t key = (static_cast<std::uint64_t>(y) << 32) | idx;
        auto it = copyVar.find(key);
        if (it != copyVar.end()) return it->second;
        const Var s = sat.newVar();
        copyVar.emplace(key, s);
        return s;
    };

    for (std::uint64_t sigma = 0; sigma < (1ull << n); ++sigma) {
        if (deadline.expired()) return std::nullopt;
        for (const Clause& c : f.matrix()) {
            std::vector<Lit> inst;
            bool satisfied = false;
            for (Lit l : c) {
                if (f.isUniversal(l.var())) {
                    if (((sigma >> universalPos.at(l.var())) & 1u) != l.negative()) {
                        satisfied = true;
                        break;
                    }
                    continue;
                }
                inst.push_back(
                    Lit(copyOf(l.var(), restrictionIndex(sigma, depsOf(l.var()))), l.negative()));
            }
            if (!satisfied && !sat.addClause(std::move(inst))) return std::nullopt;
        }
    }
    if (sat.solve({}, deadline) != SolveResult::Sat) return std::nullopt;

    SkolemCertificate cert;
    auto addFunction = [&](Var y, const std::vector<Var>& deps) {
        SkolemFunction fn;
        fn.var = y;
        fn.deps = deps;
        fn.table.assign(1ull << deps.size(), false);
        for (std::size_t idx = 0; idx < fn.table.size(); ++idx) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(y) << 32) | static_cast<std::uint32_t>(idx);
            auto it = copyVar.find(key);
            // Copies that never appear are unconstrained; keep the default.
            if (it != copyVar.end()) fn.table[idx] = sat.modelValue(it->second).isTrue();
        }
        cert.functions.push_back(std::move(fn));
    };
    for (Var y : f.existentials()) addFunction(y, f.dependencies(y));
    for (Var v = 0; v < f.matrix().numVars(); ++v) {
        if (f.kindOf(v) == DqbfVarKind::Unquantified) addFunction(v, {});
    }
    return cert;
}

bool verifySkolemCertificate(const DqbfFormula& f, const SkolemCertificate& cert,
                             Deadline deadline)
{
    // Coverage and dependency-set discipline.
    for (Var y : f.existentials()) {
        const SkolemFunction* s = cert.functionFor(y);
        if (s == nullptr) return false;
        const auto& declared = f.dependencies(y);
        if (s->deps.size() != declared.size()) return false;
        for (std::size_t i = 0; i < declared.size(); ++i) {
            if (s->deps[i] != declared[i]) return false;
        }
        if (s->table.size() != (1ull << s->deps.size())) return false;
    }

    // Build the substituted matrix as an AIG over the universals and check
    // that its negation is unsatisfiable.
    Aig aig;
    const AigEdge matrix = buildFromCnf(aig, f.matrix());

    auto tableAig = [&](const SkolemFunction& s) {
        // Shannon decomposition over the deps (mux tree), built bottom-up
        // over table halves.
        std::vector<AigEdge> layer(s.table.size());
        for (std::size_t i = 0; i < s.table.size(); ++i) {
            layer[i] = s.table[i] ? aig.constTrue() : aig.constFalse();
        }
        for (std::size_t d = 0; d < s.deps.size(); ++d) {
            // deps[d] is the NEXT selector; pairs (i, i + half) differ in it.
            std::vector<AigEdge> next(layer.size() / 2);
            const AigEdge sel = aig.variable(s.deps[d]);
            for (std::size_t i = 0; i < next.size(); ++i) {
                next[i] = aig.mkIte(sel, layer[2 * i + 1], layer[2 * i]);
            }
            layer = std::move(next);
        }
        return layer[0];
    };

    Substitution& subst = aig.scratchSubstitution();
    for (const SkolemFunction& s : cert.functions) subst.set(s.var, tableAig(s));
    const AigEdge substituted = aig.substitute(matrix, subst);

    // No existential variable may survive the substitution.
    for (Var v : aig.support(substituted)) {
        if (!f.isUniversal(v)) return false;
    }
    if (aig.isConstant(substituted)) return aig.constantValue(substituted);

    SatSolver sat;
    AigCnfBridge bridge(aig, sat);
    const Lit notMatrix = bridge.litFor(~substituted);
    return sat.solve({notMatrix}, deadline) == SolveResult::Unsat;
}

} // namespace hqs
