#include "src/dqbf/skolem_recorder.hpp"

#include <algorithm>
#include <cassert>

#include "src/aig/cnf_bridge.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {

SkolemFunction AigSkolemCertificate::toTable(Var y, const std::vector<Var>& deps) const
{
    assert(deps.size() <= 20);
    SkolemFunction fn;
    fn.var = y;
    fn.deps = deps;
    fn.table.assign(1ull << deps.size(), false);
    const AigEdge f = functions.at(y);
    std::vector<bool> assignment;
    for (std::size_t idx = 0; idx < fn.table.size(); ++idx) {
        assignment.assign(deps.empty() ? 0 : *std::max_element(deps.begin(), deps.end()) + 1,
                          false);
        for (std::size_t i = 0; i < deps.size(); ++i) {
            assignment[deps[i]] = (idx >> i) & 1u;
        }
        fn.table[idx] = aig->evaluate(f, assignment);
    }
    return fn;
}

AigSkolemCertificate reconstructSkolem(const DqbfFormula& original, std::shared_ptr<Aig> aig,
                                       const SkolemRecorder& recorder)
{
    AigSkolemCertificate cert;
    cert.aig = std::move(aig);
    Aig& mgr = *cert.aig;
    auto& skolem = cert.functions;

    auto lookup = [&](Var v) -> AigEdge {
        auto it = skolem.find(v);
        // A variable without a record was never constrained; constant false
        // is as good as any function.
        return it != skolem.end() ? it->second : mgr.constFalse();
    };

    const auto& records = recorder.records();
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        std::visit(
            [&](const auto& r) {
                using T = std::decay_t<decltype(r)>;
                if constexpr (std::is_same_v<T, SkolemRecorder::Constant>) {
                    skolem[r.var] = r.value ? mgr.constTrue() : mgr.constFalse();
                } else if constexpr (std::is_same_v<T, SkolemRecorder::AliasLit>) {
                    const Var rep = r.rep.var();
                    const AigEdge base =
                        original.isUniversal(rep) ? mgr.variable(rep) : lookup(rep);
                    skolem[r.var] = base ^ r.rep.negative();
                } else if constexpr (std::is_same_v<T, SkolemRecorder::AliasGate>) {
                    AigEdge def;
                    auto inputEdge = [&](Lit in) {
                        const AigEdge base = original.isUniversal(in.var())
                                                 ? mgr.variable(in.var())
                                                 : lookup(in.var());
                        return base ^ in.negative();
                    };
                    if (r.def.kind == GateKind::Or) {
                        def = mgr.constFalse();
                        for (Lit in : r.def.inputs) def = mgr.mkOr(def, inputEdge(in));
                    } else {
                        def = mgr.mkXor(inputEdge(r.def.inputs[0]), inputEdge(r.def.inputs[1]));
                    }
                    skolem[r.def.target.var()] = def ^ r.def.target.negative();
                } else if constexpr (std::is_same_v<T, SkolemRecorder::Exists>) {
                    // Replace every existential in the stored cofactor by
                    // its (later-eliminated, hence already known) Skolem.
                    Substitution& subst = mgr.scratchSubstitution();
                    for (Var v : mgr.support(r.cofactor1)) {
                        if (!original.isUniversal(v)) subst.set(v, lookup(v));
                    }
                    skolem[r.var] = mgr.substitute(r.cofactor1, subst);
                } else if constexpr (std::is_same_v<T, SkolemRecorder::UniversalSplit>) {
                    const AigEdge x = mgr.variable(r.universal);
                    for (const auto& [kept, copy] : r.copies) {
                        skolem[kept] = mgr.mkIte(x, lookup(copy), lookup(kept));
                        skolem.erase(copy);
                    }
                }
            },
            *it);
    }

    // Guarantee coverage of every original existential.
    for (Var y : original.existentials()) {
        if (!skolem.contains(y)) skolem.emplace(y, mgr.constFalse());
    }
    return cert;
}

bool verifyAigSkolemCertificate(const DqbfFormula& f, const AigSkolemCertificate& cert,
                                Deadline deadline)
{
    Aig& mgr = *cert.aig;

    Substitution& subst = mgr.scratchSubstitution();
    for (Var y : f.existentials()) {
        auto it = cert.functions.find(y);
        if (it == cert.functions.end()) return false;
        // Support must lie inside the declared dependency set.
        for (Var v : mgr.support(it->second)) {
            if (!f.dependsOn(y, v)) return false;
        }
        subst.set(y, it->second);
    }

    AigEdge matrix = buildFromCnf(mgr, f.matrix());
    const AigEdge substituted = mgr.substitute(matrix, subst);
    for (Var v : mgr.support(substituted)) {
        if (!f.isUniversal(v)) return false; // an existential survived
    }
    if (mgr.isConstant(substituted)) return mgr.constantValue(substituted);

    SatSolver sat;
    AigCnfBridge bridge(mgr, sat);
    return sat.solve({bridge.litFor(~substituted)}, deadline) == SolveResult::Unsat;
}

} // namespace hqs
