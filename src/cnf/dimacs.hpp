// Reader/writer for DIMACS CNF and its quantified extensions QDIMACS and
// DQDIMACS.
//
// DQDIMACS extends QDIMACS with `d` lines: `d y x1 x2 ... 0` declares an
// existential variable y whose dependency set is exactly {x1, x2, ...}
// (a Henkin quantifier).  Plain `a`/`e` blocks keep their QDIMACS meaning:
// a variable in an `e` block depends on every universal declared to its left.
//
// Variables in the textual format are 1-based; everything in-memory is
// 0-based (see Lit::fromDimacs).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cnf/cnf.hpp"

namespace hqs {

class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

enum class QuantKind { Exists, Forall };

/// One `a ... 0` or `e ... 0` prefix line.
struct PrefixBlockSpec {
    QuantKind kind;
    std::vector<Var> vars;

    bool operator==(const PrefixBlockSpec&) const = default;
};

/// One `d y x1 ... xk 0` line: existential @ref var with explicit deps.
struct DependencySpec {
    Var var;
    std::vector<Var> deps;

    bool operator==(const DependencySpec&) const = default;
};

/// Parse result for (D)QDIMACS.  For plain DIMACS both prefix vectors are
/// empty; for QDIMACS `henkin` is empty.
struct ParsedQdimacs {
    Cnf matrix;
    std::vector<PrefixBlockSpec> blocks;
    std::vector<DependencySpec> henkin;
};

/// Parse DIMACS / QDIMACS / DQDIMACS from a stream.  Throws ParseError on
/// malformed input.
ParsedQdimacs parseDqdimacs(std::istream& in);
ParsedQdimacs parseDqdimacsFile(const std::string& path);
ParsedQdimacs parseDqdimacsString(const std::string& text);

/// Write in DQDIMACS syntax (plain DIMACS when there is no prefix).
void writeDqdimacs(std::ostream& os, const ParsedQdimacs& f);
std::string toDqdimacsString(const ParsedQdimacs& f);

} // namespace hqs
