// A clause: a disjunction of literals.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "src/base/literal.hpp"

namespace hqs {

/// A disjunction of literals.  normalize() sorts, removes duplicate
/// literals, and reports whether the clause is a tautology (contains v and
/// ~v); callers typically drop tautological clauses.
class Clause {
public:
    Clause() = default;
    explicit Clause(std::vector<Lit> lits) : lits_(std::move(lits)) {}
    Clause(std::initializer_list<Lit> lits) : lits_(lits) {}

    /// Sort and deduplicate.  Returns true iff the clause is a tautology.
    bool normalize();

    bool empty() const { return lits_.empty(); }
    std::size_t size() const { return lits_.size(); }
    Lit operator[](std::size_t i) const { return lits_[i]; }
    Lit& operator[](std::size_t i) { return lits_[i]; }

    bool contains(Lit l) const;

    void push(Lit l) { lits_.push_back(l); }

    const std::vector<Lit>& lits() const { return lits_; }
    std::vector<Lit>& lits() { return lits_; }

    auto begin() const { return lits_.begin(); }
    auto end() const { return lits_.end(); }
    auto begin() { return lits_.begin(); }
    auto end() { return lits_.end(); }

    bool operator==(const Clause&) const = default;

private:
    std::vector<Lit> lits_;
};

std::ostream& operator<<(std::ostream& os, const Clause& c);

} // namespace hqs
