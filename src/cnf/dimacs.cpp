#include "src/cnf/dimacs.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/base/fault.hpp"

namespace hqs {
namespace {

/// Tokenizing cursor over the whole input; DIMACS is whitespace-separated,
/// so line structure only matters for `c` comments.
class Tokens {
public:
    explicit Tokens(std::istream& in)
    {
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] == 'c') continue; // comment
            std::istringstream ls(line);
            std::string tok;
            while (ls >> tok) toks_.push_back(tok);
        }
    }

    bool done() const { return pos_ >= toks_.size(); }
    const std::string& peek() const { return toks_[pos_]; }
    std::string take() { return toks_[pos_++]; }

    long takeInt()
    {
        if (done()) throw ParseError("unexpected end of input, expected integer");
        const std::string t = take();
        try {
            std::size_t used = 0;
            long v = std::stol(t, &used);
            if (used != t.size()) throw ParseError("bad integer token '" + t + "'");
            return v;
        } catch (const std::logic_error&) {
            throw ParseError("bad integer token '" + t + "'");
        }
    }

private:
    std::vector<std::string> toks_;
    std::size_t pos_ = 0;
};

Var takeVar(Tokens& t, Var numVars)
{
    long v = t.takeInt();
    if (v <= 0 || static_cast<Var>(v) > numVars) {
        throw ParseError("variable " + std::to_string(v) + " out of range 1.." +
                         std::to_string(numVars));
    }
    return static_cast<Var>(v - 1);
}

} // namespace

ParsedQdimacs parseDqdimacs(std::istream& in)
{
    fault::checkpoint("parse");
    Tokens t(in);
    if (t.done() || t.take() != "p") throw ParseError("missing 'p cnf' header");
    if (t.done() || t.take() != "cnf") throw ParseError("header is not 'p cnf'");
    const long nv = t.takeInt();
    const long nc = t.takeInt();
    if (nv < 0 || nc < 0) throw ParseError("negative counts in header");

    ParsedQdimacs out;
    out.matrix.ensureVars(static_cast<Var>(nv));

    bool inPrefix = true;
    while (!t.done() && inPrefix) {
        const std::string& tok = t.peek();
        if (tok == "a" || tok == "e") {
            PrefixBlockSpec block;
            block.kind = (t.take() == "a") ? QuantKind::Forall : QuantKind::Exists;
            for (;;) {
                long v = t.takeInt();
                if (v == 0) break;
                if (v < 0) throw ParseError("negative variable in quantifier block");
                if (static_cast<Var>(v) > out.matrix.numVars())
                    throw ParseError("prefix variable out of range");
                block.vars.push_back(static_cast<Var>(v - 1));
            }
            out.blocks.push_back(std::move(block));
        } else if (tok == "d") {
            t.take();
            DependencySpec dep;
            dep.var = takeVar(t, out.matrix.numVars());
            for (;;) {
                long v = t.takeInt();
                if (v == 0) break;
                if (v < 0) throw ParseError("negative variable in dependency line");
                if (static_cast<Var>(v) > out.matrix.numVars())
                    throw ParseError("dependency variable out of range");
                dep.deps.push_back(static_cast<Var>(v - 1));
            }
            out.henkin.push_back(std::move(dep));
        } else {
            inPrefix = false;
        }
    }

    // Clauses: integers terminated by 0.
    Clause c;
    while (!t.done()) {
        long v = t.takeInt();
        if (v == 0) {
            out.matrix.addClause(std::move(c));
            c = Clause();
        } else {
            if (static_cast<Var>(v < 0 ? -v : v) > out.matrix.numVars())
                throw ParseError("clause literal out of range");
            c.push(Lit::fromDimacs(static_cast<int>(v)));
        }
    }
    if (!c.empty()) throw ParseError("last clause not terminated by 0");
    if (out.matrix.numClauses() != static_cast<std::size_t>(nc)) {
        // Many generators get the header count wrong; accept but only if
        // clauses were parsable.  Strictness here would reject real files.
    }
    return out;
}

ParsedQdimacs parseDqdimacsFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw ParseError("cannot open file '" + path + "'");
    return parseDqdimacs(in);
}

ParsedQdimacs parseDqdimacsString(const std::string& text)
{
    std::istringstream in(text);
    return parseDqdimacs(in);
}

void writeDqdimacs(std::ostream& os, const ParsedQdimacs& f)
{
    os << "p cnf " << f.matrix.numVars() << ' ' << f.matrix.numClauses() << '\n';
    for (const PrefixBlockSpec& b : f.blocks) {
        os << (b.kind == QuantKind::Forall ? 'a' : 'e');
        for (Var v : b.vars) os << ' ' << (v + 1);
        os << " 0\n";
    }
    for (const DependencySpec& d : f.henkin) {
        os << "d " << (d.var + 1);
        for (Var v : d.deps) os << ' ' << (v + 1);
        os << " 0\n";
    }
    for (const Clause& c : f.matrix) {
        for (Lit l : c) os << l.toDimacs() << ' ';
        os << "0\n";
    }
}

std::string toDqdimacsString(const ParsedQdimacs& f)
{
    std::ostringstream os;
    writeDqdimacs(os, f);
    return os.str();
}

} // namespace hqs
