#include "src/cnf/clause.hpp"

#include <algorithm>
#include <ostream>

namespace hqs {

bool Clause::normalize()
{
    std::sort(lits_.begin(), lits_.end());
    lits_.erase(std::unique(lits_.begin(), lits_.end()), lits_.end());
    // After sorting by code, v and ~v are adjacent (codes 2v and 2v+1).
    for (std::size_t i = 0; i + 1 < lits_.size(); ++i) {
        if (lits_[i].var() == lits_[i + 1].var()) return true;
    }
    return false;
}

bool Clause::contains(Lit l) const
{
    return std::find(lits_.begin(), lits_.end(), l) != lits_.end();
}

std::ostream& operator<<(std::ostream& os, const Clause& c)
{
    os << '(';
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i > 0) os << " | ";
        os << c[i];
    }
    return os << ')';
}

} // namespace hqs
