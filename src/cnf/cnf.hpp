// A CNF formula: a conjunction of clauses over variables 0..numVars()-1.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/base/literal.hpp"
#include "src/cnf/clause.hpp"

namespace hqs {

/// A conjunction of clauses.  Tracks the number of variables; addClause
/// grows it as needed.  Tautological clauses are dropped on insertion.
class Cnf {
public:
    Cnf() = default;
    explicit Cnf(Var numVars) : numVars_(numVars) {}

    Var numVars() const { return numVars_; }
    /// Ensure the variable range covers at least @p n variables.
    void ensureVars(Var n)
    {
        if (n > numVars_) numVars_ = n;
    }
    /// Allocate and return a fresh variable.
    Var newVar() { return numVars_++; }

    /// Add a clause (normalized; tautologies are silently dropped).
    /// Returns false iff the clause was a tautology.
    bool addClause(Clause c);
    bool addClause(std::initializer_list<Lit> lits) { return addClause(Clause(lits)); }

    std::size_t numClauses() const { return clauses_.size(); }
    const Clause& clause(std::size_t i) const { return clauses_[i]; }
    const std::vector<Clause>& clauses() const { return clauses_; }
    std::vector<Clause>& clauses() { return clauses_; }

    bool hasEmptyClause() const;

    /// Evaluate under a total assignment (indexed by variable).
    bool evaluate(const std::vector<bool>& assignment) const;

    auto begin() const { return clauses_.begin(); }
    auto end() const { return clauses_.end(); }

private:
    Var numVars_ = 0;
    std::vector<Clause> clauses_;
};

std::ostream& operator<<(std::ostream& os, const Cnf& f);

} // namespace hqs
