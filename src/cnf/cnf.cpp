#include "src/cnf/cnf.hpp"

#include <algorithm>
#include <ostream>

namespace hqs {

bool Cnf::addClause(Clause c)
{
    if (c.normalize()) return false;
    for (Lit l : c) ensureVars(l.var() + 1);
    clauses_.push_back(std::move(c));
    return true;
}

bool Cnf::hasEmptyClause() const
{
    return std::any_of(clauses_.begin(), clauses_.end(),
                       [](const Clause& c) { return c.empty(); });
}

bool Cnf::evaluate(const std::vector<bool>& assignment) const
{
    for (const Clause& c : clauses_) {
        bool sat = false;
        for (Lit l : c) {
            if (assignment[l.var()] != l.negative()) {
                sat = true;
                break;
            }
        }
        if (!sat) return false;
    }
    return true;
}

std::ostream& operator<<(std::ostream& os, const Cnf& f)
{
    os << "cnf[" << f.numVars() << " vars, " << f.numClauses() << " clauses]";
    for (const Clause& c : f) os << ' ' << c;
    return os;
}

} // namespace hqs
