// BDD-based QBF solver by quantifier elimination.
//
// The canonical-representation counterpart of AigQbfSolver: builds the
// matrix as a ROBDD and quantifies the prefix from the innermost block
// outwards.  Exists to measure the paper's motivating claim that AIGs can
// be "potentially more compact than BDDs" (Section II-C): bench_ablation
// compares the two backends' node counts and runtimes on the same
// linearized instances.
#pragma once

#include "src/aig/aig.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/bdd/bdd.hpp"
#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

/// Convert an AIG cone into @p bdd (shared external variables).
BddRef bddFromAig(Bdd& bdd, const Aig& aig, AigEdge root);

struct BddQbfOptions {
    /// Abort with Memout when the manager exceeds this many nodes
    /// (0 = unlimited).
    std::size_t nodeLimit = 0;
    Deadline deadline = Deadline::unlimited();
};

struct BddQbfStats {
    std::size_t eliminations = 0;
    std::size_t peakConeSize = 0;
};

class BddQbfSolver {
public:
    explicit BddQbfSolver(BddQbfOptions opts = {}) : opts_(opts) {}

    /// Decide the closed QBF `prefix : matrix`.  Free matrix variables are
    /// treated as outermost existentials.
    SolveResult solve(const Cnf& matrix, const QbfPrefix& prefix);

    /// Same, over a matrix already built in a BDD manager (e.g. converted
    /// from the HQS AIG via bddFromAig).
    SolveResult solve(Bdd& bdd, BddRef matrix, const QbfPrefix& prefix);

    const BddQbfStats& stats() const { return stats_; }

private:
    BddQbfOptions opts_;
    BddQbfStats stats_;
};

} // namespace hqs
