#include "src/qbf/qbf_prefix.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>

namespace hqs {

void QbfPrefix::addBlock(QuantKind kind, std::vector<Var> vars)
{
    if (vars.empty()) return;
    if (!blocks_.empty() && blocks_.back().kind == kind) {
        auto& dst = blocks_.back().vars;
        dst.insert(dst.end(), vars.begin(), vars.end());
        return;
    }
    blocks_.push_back(QbfBlock{kind, std::move(vars)});
}

std::size_t QbfPrefix::numVars() const
{
    return std::accumulate(blocks_.begin(), blocks_.end(), std::size_t{0},
                           [](std::size_t acc, const QbfBlock& b) { return acc + b.vars.size(); });
}

bool QbfPrefix::contains(Var v) const
{
    return std::any_of(blocks_.begin(), blocks_.end(), [v](const QbfBlock& b) {
        return std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end();
    });
}

QuantKind QbfPrefix::kindOf(Var v) const
{
    for (const QbfBlock& b : blocks_) {
        if (std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end()) return b.kind;
    }
    return QuantKind::Exists; // unreachable under the precondition
}

void QbfPrefix::removeVar(Var v)
{
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        auto& vars = blocks_[i].vars;
        auto it = std::find(vars.begin(), vars.end(), v);
        if (it == vars.end()) continue;
        vars.erase(it);
        if (vars.empty()) {
            blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
            // Merge now-adjacent blocks of the same kind.
            if (i > 0 && i < blocks_.size() && blocks_[i - 1].kind == blocks_[i].kind) {
                auto& dst = blocks_[i - 1].vars;
                dst.insert(dst.end(), blocks_[i].vars.begin(), blocks_[i].vars.end());
                blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
            }
        }
        return;
    }
}

QbfProblem qbfFromParsed(const ParsedQdimacs& parsed)
{
    if (!parsed.henkin.empty()) {
        throw ParseError("input contains Henkin dependency lines: it is a DQBF, not a QBF");
    }
    QbfProblem out;
    out.matrix = parsed.matrix;

    std::vector<bool> quantified(parsed.matrix.numVars(), false);
    for (const PrefixBlockSpec& b : parsed.blocks) {
        for (Var v : b.vars) {
            if (v < quantified.size()) quantified[v] = true;
        }
    }
    // Free variables are outermost existentials (QDIMACS convention).
    std::vector<Var> free;
    for (Var v = 0; v < parsed.matrix.numVars(); ++v) {
        if (!quantified[v]) free.push_back(v);
    }
    out.prefix.addBlock(QuantKind::Exists, std::move(free));
    for (const PrefixBlockSpec& b : parsed.blocks) out.prefix.addBlock(b.kind, b.vars);
    return out;
}

std::ostream& operator<<(std::ostream& os, const QbfPrefix& p)
{
    for (const QbfBlock& b : p.blocks()) {
        os << (b.kind == QuantKind::Forall ? "forall" : "exists");
        for (Var v : b.vars) os << " v" << v;
        os << ". ";
    }
    return os;
}

} // namespace hqs
