// AIG-based QBF solver by quantifier elimination — our stand-in for
// AIGSOLVE [26], the backend HQS hands the linearized problem to.
//
// The solver repeatedly eliminates variables of the innermost block
// (∃v.phi = phi[0/v] | phi[1/v], ∀v.phi = phi[0/v] & phi[1/v]), interleaved
// with the same Theorem-5/6 unit & pure eliminations the DQBF loop uses,
// FRAIG sweeping to keep the AIG small, and garbage collection.  The matrix
// lives in a caller-provided Aig manager, so HQS can "feed the remaining AIG
// directly into this solver" exactly as the paper describes.
#pragma once

#include <cstddef>

#include "src/aig/aig.hpp"
#include "src/aig/fraig.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

class SkolemRecorder;

struct AigQbfOptions {
    /// Detect & eliminate unit/pure variables between eliminations.
    bool unitPure = true;
    /// Run FRAIG SAT sweeping when the matrix cone grows beyond the
    /// threshold (and has doubled since the last sweep).
    bool fraig = true;
    std::size_t fraigThresholdNodes = 10000;
    /// Live-AIG-node budget (0 = unlimited), the proxy for the paper's 8 GB
    /// memory limit.  Checked against the matrix cone and — after a garbage
    /// collection — the node pool, so stranded allocations never trip it.
    std::size_t nodeLimit = 0;
    Deadline deadline = Deadline::unlimited();
    /// When set, existential eliminations are logged for Skolem
    /// reconstruction (see src/dqbf/skolem_recorder.hpp).
    SkolemRecorder* recorder = nullptr;
};

struct AigQbfStats {
    std::size_t existentialEliminations = 0;
    std::size_t universalEliminations = 0;
    std::size_t unitEliminations = 0;
    std::size_t pureEliminations = 0;
    std::size_t droppedUnsupported = 0; ///< prefix vars absent from the matrix
    std::size_t fraigRuns = 0;
    std::size_t peakConeSize = 0;
};

class AigQbfSolver {
public:
    explicit AigQbfSolver(AigQbfOptions opts = {}) : opts_(opts) {}

    /// Decide the closed QBF `prefix : matrix`.  Free matrix variables (in
    /// the support but not the prefix) are treated as outermost
    /// existentials.
    SolveResult solve(Aig& aig, AigEdge matrix, QbfPrefix prefix);

    const AigQbfStats& stats() const { return stats_; }

private:
    AigQbfOptions opts_;
    AigQbfStats stats_;
};

} // namespace hqs
