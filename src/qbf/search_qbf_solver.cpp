#include "src/qbf/search_qbf_solver.hpp"

#include <unordered_map>

namespace hqs {
namespace {

class Searcher {
public:
    Searcher(Aig& aig, const std::vector<std::pair<QuantKind, Var>>& order, Deadline deadline)
        : aig_(aig), order_(order), deadline_(deadline)
    {
    }

    SolveResult run(AigEdge matrix) { return decide(0, matrix); }

private:
    SolveResult decide(std::size_t depth, AigEdge matrix)
    {
        if (aig_.isConstant(matrix)) {
            return aig_.constantValue(matrix) ? SolveResult::Sat : SolveResult::Unsat;
        }
        if (depth == order_.size()) {
            // Non-constant matrix over free (existential) variables.
            return SolveResult::Sat;
        }
        if (deadline_.expired()) return deadlineExceededResult(deadline_);

        const std::uint64_t key =
            (static_cast<std::uint64_t>(depth) << 32) | matrix.code();
        auto hit = cache_.find(key);
        if (hit != cache_.end()) return hit->second;

        const auto [kind, v] = order_[depth];
        const SolveResult r0 = decide(depth + 1, aig_.cofactor(matrix, v, false));
        SolveResult result;
        if (r0 == SolveResult::Timeout || r0 == SolveResult::Memout) {
            result = r0;
        } else if (kind == QuantKind::Exists && r0 == SolveResult::Sat) {
            result = SolveResult::Sat;
        } else if (kind == QuantKind::Forall && r0 == SolveResult::Unsat) {
            result = SolveResult::Unsat;
        } else {
            result = decide(depth + 1, aig_.cofactor(matrix, v, true));
        }
        if (isConclusive(result)) cache_.emplace(key, result);
        return result;
    }

    Aig& aig_;
    const std::vector<std::pair<QuantKind, Var>>& order_;
    Deadline deadline_;
    std::unordered_map<std::uint64_t, SolveResult> cache_;
};

} // namespace

SolveResult searchQbfSolve(Aig& aig, AigEdge matrix, const QbfPrefix& prefix, Deadline deadline)
{
    std::vector<std::pair<QuantKind, Var>> order;
    for (const QbfBlock& b : prefix.blocks()) {
        for (Var v : b.vars) order.emplace_back(b.kind, v);
    }
    Searcher searcher(aig, order, deadline);
    return searcher.run(matrix);
}

} // namespace hqs
