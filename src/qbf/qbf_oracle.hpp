// Brute-force QBF oracle: decides a QBF by full recursion over the prefix
// and exhaustive evaluation of the CNF matrix.  Reference semantics for
// tests; exponential, use only on small instances (<= ~20 variables).
#pragma once

#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

/// True iff the closed QBF `problem.prefix : problem.matrix` is satisfied.
/// Free matrix variables are treated as outermost existentials.
bool bruteForceQbf(const QbfProblem& problem);

} // namespace hqs
