// Search-based QBF decision procedure on AIGs (simple QDPLL-style branching
// in prefix order with memoization).  Used as an independent cross-check for
// the elimination-based solver in tests and as a secondary backend; no
// learning, so intended for small/medium instances.
#pragma once

#include "src/aig/aig.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

/// Decide the closed QBF `prefix : matrix` by branching on variables in
/// prefix order.  Free matrix variables are treated as outermost
/// existentials.  Returns Sat/Unsat, or Timeout when @p deadline expires.
SolveResult searchQbfSolve(Aig& aig, AigEdge matrix, const QbfPrefix& prefix,
                           Deadline deadline = Deadline::unlimited());

} // namespace hqs
