#include "src/qbf/qdpll_solver.hpp"

#include <cassert>
#include <vector>

namespace hqs {
namespace {

constexpr std::uint32_t kNoDepth = static_cast<std::uint32_t>(-1);

struct VarData {
    QuantKind kind = QuantKind::Exists;
    std::uint32_t depth = kNoDepth; ///< position in the flattened prefix
};

} // namespace

SolveResult QdpllSolver::solve(const Cnf& matrix, const QbfPrefix& prefix)
{
    stats_ = QdpllStats{};
    if (matrix.hasEmptyClause()) return SolveResult::Unsat;

    const Var numVars = matrix.numVars();
    std::vector<VarData> vars(numVars);

    // Flattened decision order: free variables (outermost existentials)
    // first, then the prefix blocks.
    std::vector<Var> order;
    {
        std::vector<bool> quantified(numVars, false);
        for (const QbfBlock& b : prefix.blocks()) {
            for (Var v : b.vars) {
                if (v < numVars) quantified[v] = true;
            }
        }
        for (Var v = 0; v < numVars; ++v) {
            if (!quantified[v]) order.push_back(v);
        }
        for (const QbfBlock& b : prefix.blocks()) {
            for (Var v : b.vars) {
                if (v >= numVars) continue; // prefix var absent from matrix
                vars[v].kind = b.kind;
                order.push_back(v);
            }
        }
        for (std::uint32_t i = 0; i < order.size(); ++i) vars[order[i]].depth = i;
    }

    std::vector<lbool> value(numVars, lbool::Undef);
    std::vector<Var> trail;

    struct Decision {
        Var var;
        bool currentValue;
        bool triedBoth;
        std::size_t trailMark; ///< trail size before this decision
    };
    std::vector<Decision> decisions;

    auto assign = [&](Var v, bool b) {
        value[v] = lbool(b);
        trail.push_back(v);
    };
    auto litValue = [&](Lit l) { return value[l.var()] ^ l.negative(); };

    /// QBF unit propagation + conflict detection by full rescan.
    /// Returns false on conflict.
    auto propagate = [&]() {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const Clause& c : matrix) {
                bool anyTrue = false;
                Lit unitExist = kUndefLit;
                int unassignedExist = 0;
                std::uint32_t minUnassignedUniversalDepth = kNoDepth;
                for (Lit l : c) {
                    const lbool lv = litValue(l);
                    if (lv.isTrue()) {
                        anyTrue = true;
                        break;
                    }
                    if (lv.isUndef()) {
                        if (vars[l.var()].kind == QuantKind::Exists) {
                            ++unassignedExist;
                            unitExist = l;
                        } else {
                            minUnassignedUniversalDepth =
                                std::min(minUnassignedUniversalDepth, vars[l.var()].depth);
                        }
                    }
                }
                if (anyTrue) continue;
                if (unassignedExist == 0) {
                    // All existentials false; the adversary falsifies the
                    // remaining universals.
                    ++stats_.conflicts;
                    return false;
                }
                if (unassignedExist == 1 &&
                    minUnassignedUniversalDepth > vars[unitExist.var()].depth) {
                    // Unit: the inner unassigned universals are reducible.
                    assign(unitExist.var(), unitExist.positive());
                    ++stats_.propagations;
                    changed = true;
                }
            }
        }
        return true;
    };

    /// Undo the top decision's assignments (including the decision var).
    auto popDecision = [&]() {
        const Decision d = decisions.back();
        decisions.pop_back();
        while (trail.size() > d.trailMark) {
            value[trail.back()] = lbool::Undef;
            trail.pop_back();
        }
        return d;
    };

    // Branch outcome propagation: `result` is the value of the branch just
    // completed; unwind the decision stack accordingly.
    // Returns Unknown to continue searching, or the final result.
    enum class Branch { False, True };
    auto unwind = [&](Branch outcome) -> SolveResult {
        for (;;) {
            if (decisions.empty()) {
                return outcome == Branch::True ? SolveResult::Sat : SolveResult::Unsat;
            }
            Decision d = popDecision();
            const bool existential = vars[d.var].kind == QuantKind::Exists;
            const bool shortCircuit =
                (outcome == Branch::True) ? existential : !existential;
            if (shortCircuit || d.triedBoth) continue; // branch value decided

            // Re-enter with the flipped value.
            d.currentValue = !d.currentValue;
            d.triedBoth = true;
            d.trailMark = trail.size();
            decisions.push_back(d);
            assign(d.var, d.currentValue);
            ++stats_.decisions;
            if (propagate()) return SolveResult::Unknown; // resume descent
            outcome = Branch::False; // flipped branch conflicts immediately
        }
    };

    if (!propagate()) return SolveResult::Unsat;

    for (;;) {
        if ((stats_.decisions & 0xff) == 0 && deadline_.expired()) return deadlineExceededResult(deadline_);

        // Next decision: first unassigned variable in prefix order.
        Var pick = kNoVar;
        for (Var v : order) {
            if (value[v].isUndef()) {
                pick = v;
                break;
            }
        }
        SolveResult r = SolveResult::Unknown;
        if (pick == kNoVar) {
            ++stats_.satLeaves; // every clause satisfied (no conflict seen)
            r = unwind(Branch::True);
        } else {
            decisions.push_back(Decision{pick, false, false, trail.size()});
            assign(pick, false);
            ++stats_.decisions;
            if (!propagate()) r = unwind(Branch::False);
        }
        if (r != SolveResult::Unknown) return r;
    }
}

} // namespace hqs
