// Quantifier prefixes for QBF: an alternating sequence of quantifier blocks
// over disjoint variable sets (Definition 3 of the paper).
#pragma once

#include <iosfwd>
#include <vector>

#include "src/base/literal.hpp"
#include "src/cnf/dimacs.hpp"

namespace hqs {

/// One quantifier block: a maximal run of equally quantified variables.
struct QbfBlock {
    QuantKind kind;
    std::vector<Var> vars;

    bool operator==(const QbfBlock&) const = default;
};

/// A linear quantifier prefix.  Adjacent same-kind blocks are merged on
/// insertion; empty blocks are dropped.
class QbfPrefix {
public:
    QbfPrefix() = default;

    /// Append a block at the innermost position.
    void addBlock(QuantKind kind, std::vector<Var> vars);
    /// Append a single variable at the innermost position.
    void addVar(QuantKind kind, Var v) { addBlock(kind, {v}); }

    const std::vector<QbfBlock>& blocks() const { return blocks_; }
    std::size_t numBlocks() const { return blocks_.size(); }
    bool empty() const { return blocks_.empty(); }

    /// Total number of quantified variables.
    std::size_t numVars() const;

    /// Quantifier of @p v; kNoVar-safe: returns false when not quantified.
    bool contains(Var v) const;
    /// Precondition: contains(v).
    QuantKind kindOf(Var v) const;

    /// Number of quantifier alternations (blocks - 1, 0 for empty).
    std::size_t numAlternations() const { return blocks_.empty() ? 0 : blocks_.size() - 1; }

    /// Remove a variable from the prefix (e.g., after elimination); merges
    /// neighbouring blocks if one becomes empty.
    void removeVar(Var v);

    bool operator==(const QbfPrefix&) const = default;

private:
    std::vector<QbfBlock> blocks_;
};

/// A QBF decision problem: prefix + CNF matrix.  Free matrix variables are
/// implicitly existential and outermost (QDIMACS convention).
struct QbfProblem {
    QbfPrefix prefix;
    Cnf matrix;
};

/// Build a QbfProblem from parsed (Q)DIMACS.  Throws ParseError when the
/// input has Henkin (`d`) lines — that would be a DQBF.
QbfProblem qbfFromParsed(const ParsedQdimacs& parsed);

std::ostream& operator<<(std::ostream& os, const QbfPrefix& p);

} // namespace hqs
