// Clausal QDPLL: search-based QBF decision procedure on CNF.
//
// The paper's Section III-A names search-based solvers (DepQBF [25]) as the
// alternative family to elimination-based ones; this is our clausal
// representative.  Classic QDPLL (Cadoli, Giunchiglia et al.):
//
//  * decisions strictly in prefix order (outermost block first);
//  * QBF unit propagation — a clause with no true literal implies its last
//    unassigned existential literal when every other unassigned literal is
//    a universal quantified INNER to it (those are reducible: the adversary
//    may falsify them afterwards);
//  * QBF conflicts — a clause with no true literal whose unassigned
//    literals are all universal is falsified (the adversary finishes it);
//  * the game tree is evaluated by backtracking: a conflict fails the
//    current branch (unwind to the last existential decision with an
//    untried value), a fully satisfying assignment succeeds it (unwind to
//    the last universal decision with an untried value).
//
// No clause learning — this solver exists as an independently-implemented
// cross-check for the elimination solvers and as a bench comparator, where
// simplicity and obvious correctness beat speed.
#pragma once

#include <cstdint>

#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/qbf/qbf_prefix.hpp"

namespace hqs {

struct QdpllStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t satLeaves = 0;
};

class QdpllSolver {
public:
    explicit QdpllSolver(Deadline deadline = Deadline::unlimited()) : deadline_(deadline) {}

    /// Decide the closed QBF `prefix : matrix`.  Free matrix variables are
    /// treated as outermost existentials.
    SolveResult solve(const Cnf& matrix, const QbfPrefix& prefix);

    const QdpllStats& stats() const { return stats_; }

private:
    Deadline deadline_;
    QdpllStats stats_;
};

} // namespace hqs
