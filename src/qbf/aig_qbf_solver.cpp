#include "src/qbf/aig_qbf_solver.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/aig/cnf_bridge.hpp"
#include "src/dqbf/skolem_recorder.hpp"
#include "src/obs/obs.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

/// Occurrence count (number of AND-node fanin references) of every variable
/// in the cone of @p root.  Variables with no entry do not occur.
std::unordered_map<Var, std::size_t> occurrenceCounts(const Aig& aig, AigEdge root)
{
    std::unordered_map<Var, std::size_t> counts;
    if (aig.isConstant(root)) return counts;
    if (aig.isInput(root)) {
        counts[aig.inputVariable(root)] = 1;
        return counts;
    }
    std::unordered_set<std::uint32_t> visited;
    std::vector<AigEdge> stack{root};
    while (!stack.empty()) {
        const AigEdge e = stack.back();
        stack.pop_back();
        if (!visited.insert(e.nodeIndex()).second) continue;
        if (!aig.isAnd(e)) continue;
        for (const AigEdge f : {aig.fanin0(e), aig.fanin1(e)}) {
            if (aig.isConstant(f)) continue;
            if (aig.isInput(f)) {
                ++counts[aig.inputVariable(f)];
            } else {
                stack.push_back(f);
            }
        }
    }
    return counts;
}

} // namespace

SolveResult AigQbfSolver::solve(Aig& aig, AigEdge matrix, QbfPrefix prefix)
{
    OBS_SPAN(qbfSpan, "qbf.aig_eliminate");
    stats_ = AigQbfStats{};
    std::size_t lastFraigSize = 0;

    auto trackPeak = [&]() {
        stats_.peakConeSize = std::max(stats_.peakConeSize, aig.coneSize(matrix));
    };

    auto collectGarbage = [&]() {
        std::vector<AigEdge*> roots{&matrix};
        if (opts_.recorder) opts_.recorder->appendGcRoots(roots);
        aig.garbageCollect(std::move(roots));
    };

    // Returns Unknown to continue, or a final resource-limit result.
    auto housekeeping = [&]() -> SolveResult {
        const std::size_t cone = aig.coneSize(matrix);
        stats_.peakConeSize = std::max(stats_.peakConeSize, cone);
        if (opts_.deadline.expired()) return deadlineExceededResult(opts_.deadline);
        // nodeLimit is a *live*-node budget: the cone is a lower bound on
        // live nodes, so an oversized cone is an immediate memout, while a
        // bloated pool gets one garbage collection before the verdict.
        if (opts_.nodeLimit != 0 && cone > opts_.nodeLimit) return SolveResult::Memout;
        if (opts_.nodeLimit != 0 && aig.numNodes() > opts_.nodeLimit) {
            collectGarbage();
            if (aig.numNodes() > opts_.nodeLimit) return SolveResult::Memout;
        }
        if (opts_.fraig && cone > opts_.fraigThresholdNodes && cone > 2 * lastFraigSize) {
            FraigOptions fopts;
            fopts.deadline = opts_.deadline;
            matrix = fraigReduce(aig, matrix, fopts);
            lastFraigSize = aig.coneSize(matrix);
            ++stats_.fraigRuns;
            // FRAIG merges strand the losing cones; reclaim them eagerly.
            if (aig.numNodes() > 2 * lastFraigSize + 1000) collectGarbage();
        }
        if (aig.numNodes() > 4 * aig.coneSize(matrix) + 20000) collectGarbage();
        return SolveResult::Unknown;
    };

    // Theorem-5 applications of the Theorem-6 syntactic detection; returns
    // Unsat when a universal unit is found, Unknown otherwise.
    auto unitPurePass = [&]() -> SolveResult {
        if (!opts_.unitPure) return SolveResult::Unknown;
        bool changed = true;
        while (changed && !aig.isConstant(matrix) && !opts_.deadline.expired()) {
            changed = false;
            if (aig.numNodes() > 4 * aig.coneSize(matrix) + 20000) collectGarbage();
            const UnitPureInfo info = aig.detectUnitPure(matrix);
            // Units first: a universal unit decides the formula.
            for (const auto& [vars, positive] :
                 {std::pair{&info.posUnit, true}, std::pair{&info.negUnit, false}}) {
                for (Var v : *vars) {
                    if (!prefix.contains(v)) continue;
                    if (prefix.kindOf(v) == QuantKind::Forall) return SolveResult::Unsat;
                    if (opts_.recorder) {
                        opts_.recorder->record(SkolemRecorder::Constant{v, positive});
                    }
                    matrix = aig.cofactor(matrix, v, positive);
                    prefix.removeVar(v);
                    ++stats_.unitEliminations;
                    changed = true;
                    break;
                }
                if (changed) break;
            }
            if (changed) continue;
            for (const auto& [vars, positive] :
                 {std::pair{&info.posPure, true}, std::pair{&info.negPure, false}}) {
                for (Var v : *vars) {
                    if (!prefix.contains(v)) continue;
                    const bool existential = prefix.kindOf(v) == QuantKind::Exists;
                    // Existential pure: keep the helpful cofactor; universal
                    // pure: the adversary picks the harmful one.
                    if (existential && opts_.recorder) {
                        opts_.recorder->record(SkolemRecorder::Constant{v, positive});
                    }
                    matrix = aig.cofactor(matrix, v, existential == positive);
                    prefix.removeVar(v);
                    ++stats_.pureEliminations;
                    changed = true;
                    break;
                }
                if (changed) break;
            }
        }
        return SolveResult::Unknown;
    };

    trackPeak();
    if (SolveResult r = unitPurePass(); r != SolveResult::Unknown) return r;

    while (!prefix.empty() && !aig.isConstant(matrix)) {
        if (SolveResult r = housekeeping(); r != SolveResult::Unknown) return r;

        const QbfBlock& block = prefix.blocks().back();
        const auto counts = occurrenceCounts(aig, matrix);

        // Drop block variables that no longer occur; pick the cheapest
        // occurring one.
        Var pick = kNoVar;
        std::size_t best = std::numeric_limits<std::size_t>::max();
        std::vector<Var> unsupported;
        for (Var v : block.vars) {
            auto it = counts.find(v);
            if (it == counts.end()) {
                unsupported.push_back(v);
            } else if (it->second < best) {
                best = it->second;
                pick = v;
            }
        }
        for (Var v : unsupported) {
            if (opts_.recorder && prefix.kindOf(v) == QuantKind::Exists) {
                opts_.recorder->record(SkolemRecorder::Constant{v, false});
            }
            prefix.removeVar(v);
            ++stats_.droppedUnsupported;
        }
        if (pick == kNoVar) continue; // whole block vanished

        const QuantKind kind = prefix.kindOf(pick);
        if (kind == QuantKind::Exists) {
            const AigEdge cof0 = aig.cofactor(matrix, pick, false);
            const AigEdge cof1 = aig.cofactor(matrix, pick, true);
            if (opts_.recorder) {
                opts_.recorder->record(SkolemRecorder::Exists{pick, cof1});
            }
            matrix = aig.mkOr(cof0, cof1);
        } else {
            matrix = aig.forallVar(matrix, pick);
        }
        prefix.removeVar(pick);
        if (kind == QuantKind::Exists) {
            ++stats_.existentialEliminations;
            OBS_COUNT("qbf.elim.existential", 1);
        } else {
            ++stats_.universalEliminations;
            OBS_COUNT("qbf.elim.universal", 1);
        }
        trackPeak();

        if (SolveResult r = unitPurePass(); r != SolveResult::Unknown) return r;
    }

    if (aig.isConstant(matrix)) {
        return aig.constantValue(matrix) ? SolveResult::Sat : SolveResult::Unsat;
    }
    // Prefix exhausted, non-constant matrix: remaining support variables are
    // free, i.e. outermost existentials — a non-constant function is
    // satisfiable.  For Skolem tracking, pin them to values from a model.
    if (opts_.recorder) {
        SatSolver sat;
        AigCnfBridge bridge(aig, sat);
        const Lit out = bridge.litFor(matrix);
        if (sat.solve({out}, opts_.deadline) != SolveResult::Sat) {
            return deadlineExceededResult(opts_.deadline); // deadline hit mid-certification
        }
        for (Var v : aig.support(matrix)) {
            const lbool val = sat.modelValue(bridge.satVarForInput(v));
            opts_.recorder->record(SkolemRecorder::Constant{v, val.isTrue()});
        }
    }
    return SolveResult::Sat;
}

} // namespace hqs
