#include "src/qbf/qbf_oracle.hpp"

#include <vector>

namespace hqs {
namespace {

bool decide(const Cnf& matrix, const std::vector<std::pair<QuantKind, Var>>& order,
            std::size_t depth, std::vector<bool>& assignment)
{
    if (depth == order.size()) return matrix.evaluate(assignment);
    const auto [kind, v] = order[depth];
    assignment[v] = false;
    const bool r0 = decide(matrix, order, depth + 1, assignment);
    if (kind == QuantKind::Exists && r0) return true;
    if (kind == QuantKind::Forall && !r0) return false;
    assignment[v] = true;
    return decide(matrix, order, depth + 1, assignment);
}

} // namespace

bool bruteForceQbf(const QbfProblem& problem)
{
    std::vector<std::pair<QuantKind, Var>> order;
    std::vector<bool> inPrefix(problem.matrix.numVars(), false);
    for (const QbfBlock& b : problem.prefix.blocks()) {
        for (Var v : b.vars) {
            order.emplace_back(b.kind, v);
            if (v < inPrefix.size()) inPrefix[v] = true;
        }
    }
    // Free variables: outermost existentials.
    std::vector<std::pair<QuantKind, Var>> full;
    for (Var v = 0; v < problem.matrix.numVars(); ++v) {
        if (!inPrefix[v]) full.emplace_back(QuantKind::Exists, v);
    }
    full.insert(full.end(), order.begin(), order.end());

    std::vector<bool> assignment(problem.matrix.numVars(), false);
    return decide(problem.matrix, full, 0, assignment);
}

} // namespace hqs
