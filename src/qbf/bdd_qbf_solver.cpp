#include "src/qbf/bdd_qbf_solver.hpp"

#include <algorithm>
#include <unordered_map>

namespace hqs {

BddRef bddFromAig(Bdd& bdd, const Aig& aig, AigEdge root)
{
    // Bottom-up over the cone; memo maps AIG node -> BDD of the
    // uncomplemented node function.
    std::unordered_map<std::uint32_t, BddRef> memo;
    memo.emplace(0, bdd.constFalse());
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (memo.contains(idx)) {
            stack.pop_back();
            continue;
        }
        const AigEdge e(idx, false);
        if (aig.isInput(e)) {
            memo.emplace(idx, bdd.variable(aig.inputVariable(e)));
            stack.pop_back();
            continue;
        }
        const AigEdge f0 = aig.fanin0(e);
        const AigEdge f1 = aig.fanin1(e);
        auto it0 = memo.find(f0.nodeIndex());
        auto it1 = memo.find(f1.nodeIndex());
        if (it0 == memo.end()) {
            stack.push_back(f0.nodeIndex());
            continue;
        }
        if (it1 == memo.end()) {
            stack.push_back(f1.nodeIndex());
            continue;
        }
        const BddRef b0 = f0.complemented() ? bdd.mkNot(it0->second) : it0->second;
        const BddRef b1 = f1.complemented() ? bdd.mkNot(it1->second) : it1->second;
        memo.emplace(idx, bdd.mkAnd(b0, b1));
        stack.pop_back();
    }
    const BddRef r = memo.at(root.nodeIndex());
    return root.complemented() ? bdd.mkNot(r) : r;
}

SolveResult BddQbfSolver::solve(const Cnf& matrix, const QbfPrefix& prefix)
{
    Bdd bdd;
    bdd.setResourceLimits(opts_.nodeLimit, opts_.deadline);
    BddRef f;
    try {
        f = bdd.fromCnf(matrix);
    } catch (const BddLimitExceeded& e) {
        return e.byNodeLimit() ? SolveResult::Memout : deadlineExceededResult(opts_.deadline);
    }
    return solve(bdd, f, prefix);
}

SolveResult BddQbfSolver::solve(Bdd& bdd, BddRef f, const QbfPrefix& prefix)
{
    stats_ = BddQbfStats{};
    bdd.setResourceLimits(opts_.nodeLimit, opts_.deadline);
    stats_.peakConeSize = std::max(stats_.peakConeSize, bdd.coneSize(f));

    const auto& blocks = prefix.blocks();
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
        for (Var v : it->vars) {
            if (bdd.isConstant(f)) break;
            if (opts_.deadline.expired()) return deadlineExceededResult(opts_.deadline);
            if (opts_.nodeLimit != 0 && bdd.numNodes() > opts_.nodeLimit) {
                return SolveResult::Memout;
            }
            try {
                f = (it->kind == QuantKind::Exists) ? bdd.existsVar(f, v)
                                                    : bdd.forallVar(f, v);
            } catch (const BddLimitExceeded& e) {
                return e.byNodeLimit() ? SolveResult::Memout : deadlineExceededResult(opts_.deadline);
            }
            ++stats_.eliminations;
            stats_.peakConeSize = std::max(stats_.peakConeSize, bdd.coneSize(f));
        }
    }
    if (bdd.isConstant(f)) {
        return bdd.constantValue(f) ? SolveResult::Sat : SolveResult::Unsat;
    }
    // Remaining support variables are free (outermost existential); a
    // non-constant BDD always has a satisfying path.
    return SolveResult::Sat;
}

} // namespace hqs
