// Deterministic pseudo-random numbers (xoshiro256**).  Used by benchmark
// generators and by the AIG simulation/SAT-sweeping code; seeded explicitly
// everywhere so every run of the harness is reproducible.
#pragma once

#include <cstdint>

namespace hqs {

/// Small, fast, deterministic PRNG (xoshiro256**).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to spread a simple seed over the full state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    std::uint64_t next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound).  @p bound must be positive.
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    bool flip() { return (next() & 1u) != 0; }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4];
};

} // namespace hqs
