#include "src/base/result.hpp"

#include <ostream>

namespace hqs {

std::string toString(SolveResult r)
{
    switch (r) {
        case SolveResult::Sat: return "SAT";
        case SolveResult::Unsat: return "UNSAT";
        case SolveResult::Timeout: return "TIMEOUT";
        case SolveResult::Memout: return "MEMOUT";
        case SolveResult::Unknown: return "UNKNOWN";
    }
    return "INVALID";
}

std::ostream& operator<<(std::ostream& os, SolveResult r) { return os << toString(r); }

} // namespace hqs
