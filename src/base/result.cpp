#include "src/base/result.hpp"

#include <ostream>

namespace hqs {

std::string toString(SolveResult r)
{
    switch (r) {
        case SolveResult::Sat: return "SAT";
        case SolveResult::Unsat: return "UNSAT";
        case SolveResult::Timeout: return "TIMEOUT";
        case SolveResult::Memout: return "MEMOUT";
        case SolveResult::Unknown: return "UNKNOWN";
    }
    return "INVALID";
}

std::ostream& operator<<(std::ostream& os, SolveResult r) { return os << toString(r); }

std::optional<SolveResult> solveResultFromString(const std::string& s)
{
    for (SolveResult r : {SolveResult::Sat, SolveResult::Unsat, SolveResult::Timeout,
                          SolveResult::Memout, SolveResult::Unknown}) {
        if (s == toString(r)) return r;
    }
    return std::nullopt;
}

} // namespace hqs
