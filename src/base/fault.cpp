#include "src/base/fault.hpp"

#include <cstdlib>
#include <mutex>

namespace hqs::fault {
namespace detail {

std::atomic<bool> enabled{false};

namespace {

std::mutex mu;
std::string armedSiteName;       // under mu
unsigned long armedNth = 1;      // under mu
unsigned long hits = 0;          // under mu
std::once_flag envOnce;

void armLocked(const std::string& site, unsigned long nth)
{
    armedSiteName = site;
    armedNth = nth == 0 ? 1 : nth;
    hits = 0;
    enabled.store(!site.empty(), std::memory_order_relaxed);
}

} // namespace

void initFromEnvOnce()
{
    std::call_once(envOnce, [] {
        const char* spec = std::getenv("HQS_FAULT");
        if (!spec || !*spec) return;
        std::string site(spec);
        unsigned long nth = 1;
        if (const auto colon = site.find(':'); colon != std::string::npos) {
            try {
                nth = std::stoul(site.substr(colon + 1));
            } catch (const std::logic_error&) {
                nth = 1; // malformed count: fire on the first hit
            }
            site.resize(colon);
        }
        std::lock_guard<std::mutex> lock(mu);
        // Programmatic arm() before first checkpoint wins over the env var.
        if (armedSiteName.empty()) armLocked(site, nth);
    });
}

unsigned long hitSlow(const char* site)
{
    std::lock_guard<std::mutex> lock(mu);
    if (armedSiteName.empty() || armedSiteName != site) return 0;
    if (++hits < armedNth) return 0;
    const unsigned long firedAt = hits;
    armLocked("", 1); // one-shot: disarm so retries run clean
    return firedAt;
}

namespace {
// Read HQS_FAULT at startup so env-armed checkpoints fire without any
// programmatic call ever touching the registry.  All referenced statics
// are defined earlier in this translation unit.
[[maybe_unused]] const bool initAtStartup = [] {
    initFromEnvOnce();
    return true;
}();
} // namespace

} // namespace detail

void arm(const std::string& site, unsigned long nth)
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    detail::armLocked(site, nth);
}

void disarm()
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    detail::armLocked("", 1);
}

std::string armedSite()
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    return detail::armedSiteName;
}

} // namespace hqs::fault
