#include "src/base/fault.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hqs::fault {
namespace detail {

std::atomic<bool> enabled{false};

namespace {

std::mutex mu;
std::string armedSiteName;            // under mu
unsigned long armedNth = 1;           // under mu
FaultKind armedKind = FaultKind::Throw; // under mu
unsigned long hits = 0;               // under mu
std::once_flag envOnce;

void armLocked(const std::string& site, unsigned long nth, FaultKind kind)
{
    armedSiteName = site;
    armedNth = nth == 0 ? 1 : nth;
    armedKind = kind;
    hits = 0;
    enabled.store(!site.empty(), std::memory_order_relaxed);
}

bool isAllDigits(const std::string& s)
{
    if (s.empty()) return false;
    for (const char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    return true;
}

} // namespace

bool parseSpec(const std::string& spec, std::string* site, unsigned long* nth,
               FaultKind* kind, std::string* error)
{
    *nth = 1;
    *kind = FaultKind::Throw;
    error->clear();

    const auto firstColon = spec.find(':');
    *site = spec.substr(0, firstColon);
    if (site->empty()) {
        *error = "empty site in HQS_FAULT spec '" + spec +
                 "' (expected site[:nth][:crash])";
        return false;
    }
    if (firstColon == std::string::npos) return true;

    std::string rest = spec.substr(firstColon + 1);
    const auto secondColon = rest.find(':');
    std::string nthTok = rest.substr(0, secondColon);
    std::string kindTok =
        secondColon == std::string::npos ? "" : rest.substr(secondColon + 1);

    // `site:crash` is the nth-less shorthand for `site:1:crash`.
    if (kindTok.empty() && nthTok == "crash") {
        *kind = FaultKind::Crash;
        return true;
    }
    if (!isAllDigits(nthTok)) {
        *error = "bad hit count '" + nthTok + "' in HQS_FAULT spec '" + spec +
                 "' (expected a positive integer)";
        return false;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(nthTok.c_str(), &end, 10);
    if (errno == ERANGE || parsed == 0) {
        *error = "bad hit count '" + nthTok + "' in HQS_FAULT spec '" + spec +
                 "' (expected a positive integer)";
        return false;
    }
    *nth = parsed;
    if (kindTok.empty()) return true;
    if (kindTok == "crash") {
        *kind = FaultKind::Crash;
        return true;
    }
    *error = "unknown fault kind '" + kindTok + "' in HQS_FAULT spec '" + spec +
             "' (supported: crash)";
    return false;
}

void initFromEnvOnce()
{
    std::call_once(envOnce, [] {
        const char* spec = std::getenv("HQS_FAULT");
        if (!spec || !*spec) return;
        std::string site;
        unsigned long nth = 1;
        FaultKind kind = FaultKind::Throw;
        std::string error;
        if (!parseSpec(spec, &site, &nth, &kind, &error)) {
            std::fprintf(stderr, "hqs: %s; fault injection disabled\n",
                         error.c_str());
            return;
        }
        std::lock_guard<std::mutex> lock(mu);
        // Programmatic arm() before first checkpoint wins over the env var.
        if (armedSiteName.empty()) armLocked(site, nth, kind);
    });
}

unsigned long hitSlow(const char* site)
{
    std::unique_lock<std::mutex> lock(mu);
    if (armedSiteName.empty() || armedSiteName != site) return 0;
    if (++hits < armedNth) return 0;
    const unsigned long firedAt = hits;
    const FaultKind kind = armedKind;
    armLocked("", 1, FaultKind::Throw); // one-shot: disarm so retries run clean
    if (kind == FaultKind::Crash) {
        // Simulate a hard kill (the OOM killer's SIGKILL leaves status 137
        // from the shell's point of view): no unwinding, no atexit hooks —
        // exactly what the supervisor must be able to contain.
        lock.unlock();
        std::fprintf(stderr, "hqs: injected crash at site '%s' (hit %lu)\n",
                     site, firedAt);
        _exit(137);
    }
    return firedAt;
}

namespace {
// Read HQS_FAULT at startup so env-armed checkpoints fire without any
// programmatic call ever touching the registry.  All referenced statics
// are defined earlier in this translation unit.
[[maybe_unused]] const bool initAtStartup = [] {
    initFromEnvOnce();
    return true;
}();
} // namespace

} // namespace detail

void arm(const std::string& site, unsigned long nth, FaultKind kind)
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    detail::armLocked(site, nth, kind);
}

void disarm()
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    detail::armLocked("", 1, FaultKind::Throw);
}

std::string armedSite()
{
    detail::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(detail::mu);
    return detail::armedSiteName;
}

} // namespace hqs::fault
