// Deterministic fault injection for testing recovery paths.
//
// Production code marks interesting failure points with a named checkpoint:
//
//     fault::checkpoint("sat");            // throws fault::InjectedFault
//     fault::checkpointAlloc("aig-alloc"); // throws std::bad_alloc
//
// Exactly one site may be armed at a time, either programmatically
// (fault::arm / fault::ScopedFault in tests) or through the environment
// variable `HQS_FAULT=site[:nth]`, read once at first use.  An armed site
// fires exactly once, at its @p nth dynamic hit (1-based, default 1), and
// then disarms itself — so a recovery path that retries the failed work
// observes exactly one fault, which is what makes ladder/retry tests
// deterministic.
//
// When nothing is armed a checkpoint costs one relaxed atomic load, cheap
// enough for hot paths like AIG node allocation.
//
// Registered sites (keep in sync with README "Failure handling"):
//   parse          DQDIMACS parser entry            -> InjectedFault
//   aig-alloc      every AIG AND-node allocation    -> std::bad_alloc
//   fraig          FRAIG sweep entry                -> std::bad_alloc
//   sat            CDCL SAT solve entry             -> InjectedFault
//   pool-dispatch  thread-pool job dispatch         -> InjectedFault
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace hqs::fault {

/// Thrown by checkpoint() at an armed site.  Carries the site name so the
/// guard layer can report where the fault was injected.
class InjectedFault : public std::runtime_error {
public:
    InjectedFault(const std::string& site, unsigned long hit)
        : std::runtime_error("injected fault at site '" + site + "' (hit " +
                             std::to_string(hit) + ")"),
          site_(site)
    {
    }

    const std::string& site() const { return site_; }

private:
    std::string site_;
};

/// Arm @p site to fire at its @p nth dynamic hit (1-based).  Replaces any
/// previously armed site and resets the hit counter.
void arm(const std::string& site, unsigned long nth = 1);

/// Disarm whatever is armed (idempotent).
void disarm();

/// The currently armed site ("" when disarmed).  Triggers the one-time
/// HQS_FAULT environment lookup, so tests driven by the env var can ask
/// which site the harness armed.
std::string armedSite();

namespace detail {
extern std::atomic<bool> enabled;
/// Returns the 1-based hit number if this call is the armed site's nth hit
/// (and disarms), 0 otherwise.
unsigned long hitSlow(const char* site);
void initFromEnvOnce();
} // namespace detail

/// True exactly once: at the armed site's nth hit.  Free when disarmed.
inline unsigned long shouldInject(const char* site)
{
    if (!detail::enabled.load(std::memory_order_relaxed)) return 0;
    return detail::hitSlow(site);
}

/// Throw InjectedFault when @p site is armed and this is its nth hit.
inline void checkpoint(const char* site)
{
    if (const unsigned long hit = shouldInject(site)) throw InjectedFault(site, hit);
}

/// Memory-pressure variant: throws std::bad_alloc, exactly what a real
/// allocation failure at this site would look like to the recovery code.
inline void checkpointAlloc(const char* site)
{
    if (shouldInject(site)) throw std::bad_alloc();
}

/// RAII arming for tests: arms on construction, disarms on destruction
/// (even when the fault never fired).
class ScopedFault {
public:
    explicit ScopedFault(const std::string& site, unsigned long nth = 1) { arm(site, nth); }
    ~ScopedFault() { disarm(); }
    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;
};

} // namespace hqs::fault
