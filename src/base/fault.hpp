// Deterministic fault injection for testing recovery paths.
//
// Production code marks interesting failure points with a named checkpoint:
//
//     fault::checkpoint("sat");            // throws fault::InjectedFault
//     fault::checkpointAlloc("aig-alloc"); // throws std::bad_alloc
//
// Exactly one site may be armed at a time, either programmatically
// (fault::arm / fault::ScopedFault in tests) or through the environment
// variable `HQS_FAULT=site[:nth][:crash]`, read once at first use.  An armed
// site fires exactly once, at its @p nth dynamic hit (1-based, default 1),
// and then disarms itself — so a recovery path that retries the failed work
// observes exactly one fault, which is what makes ladder/retry tests
// deterministic.
//
// Fault kinds:
//   * FaultKind::Throw (default) — the checkpoint throws (InjectedFault or
//     std::bad_alloc depending on the checkpoint flavour), exercising the
//     in-process recovery path;
//   * FaultKind::Crash — the checkpoint calls _exit(137) without unwinding,
//     simulating an OOM-kill / hard crash of the whole process.  This is
//     what the supervisor tests use to kill a worker mid-solve
//     deterministically (`HQS_FAULT=sat:1:crash`).
//
// A malformed HQS_FAULT spec (empty site, non-numeric or negative `:nth`,
// unknown trailing token) is rejected with a diagnostic on stderr and arms
// nothing — a typo must not silently disable the fault a test relies on.
//
// When nothing is armed a checkpoint costs one relaxed atomic load, cheap
// enough for hot paths like AIG node allocation.
//
// Registered sites (keep in sync with README "Failure handling"):
//   parse          DQDIMACS parser entry            -> InjectedFault
//   dqcir-parse    DQCIR circuit parser entry       -> InjectedFault
//   aig-alloc      every AIG AND-node allocation    -> std::bad_alloc
//   fraig          FRAIG sweep entry                -> std::bad_alloc
//   sat            CDCL SAT solve entry             -> InjectedFault
//   cegar-refine   CEGAR refinement-loop iteration  -> InjectedFault
//   pool-dispatch  thread-pool job dispatch         -> InjectedFault
//   cache-load     result-cache persistent read     -> InjectedFault
//   cache-store    result-cache persistent write    -> InjectedFault
//   session-delta  session delta commit point       -> InjectedFault
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace hqs::fault {

/// Thrown by checkpoint() at an armed site.  Carries the site name so the
/// guard layer can report where the fault was injected.
class InjectedFault : public std::runtime_error {
public:
    InjectedFault(const std::string& site, unsigned long hit)
        : std::runtime_error("injected fault at site '" + site + "' (hit " +
                             std::to_string(hit) + ")"),
          site_(site)
    {
    }

    const std::string& site() const { return site_; }

private:
    std::string site_;
};

/// What an armed site does when it fires.
enum class FaultKind {
    Throw, ///< checkpoint throws; the process recovers through runGuarded
    Crash, ///< _exit(137) at the checkpoint: a hard, non-unwinding death
};

/// Arm @p site to fire at its @p nth dynamic hit (1-based).  Replaces any
/// previously armed site and resets the hit counter.
void arm(const std::string& site, unsigned long nth = 1,
         FaultKind kind = FaultKind::Throw);

/// Disarm whatever is armed (idempotent).
void disarm();

/// The currently armed site ("" when disarmed).  Triggers the one-time
/// HQS_FAULT environment lookup, so tests driven by the env var can ask
/// which site the harness armed.
std::string armedSite();

namespace detail {
extern std::atomic<bool> enabled;
/// Returns the 1-based hit number if this call is the armed site's nth hit
/// (and disarms), 0 otherwise.  A FaultKind::Crash site _exit(137)s here
/// instead of returning.
unsigned long hitSlow(const char* site);
void initFromEnvOnce();

/// Parse a `site[:nth][:crash]` spec.  On success fills @p site / @p nth /
/// @p kind and returns true; on failure returns false with a one-line
/// diagnostic in @p error.  Exposed for unit tests; initFromEnvOnce routes
/// HQS_FAULT through it.
bool parseSpec(const std::string& spec, std::string* site, unsigned long* nth,
               FaultKind* kind, std::string* error);
} // namespace detail

/// True exactly once: at the armed site's nth hit.  Free when disarmed.
inline unsigned long shouldInject(const char* site)
{
    if (!detail::enabled.load(std::memory_order_relaxed)) return 0;
    return detail::hitSlow(site);
}

/// Throw InjectedFault when @p site is armed and this is its nth hit.
inline void checkpoint(const char* site)
{
    if (const unsigned long hit = shouldInject(site)) throw InjectedFault(site, hit);
}

/// Memory-pressure variant: throws std::bad_alloc, exactly what a real
/// allocation failure at this site would look like to the recovery code.
inline void checkpointAlloc(const char* site)
{
    if (shouldInject(site)) throw std::bad_alloc();
}

/// RAII arming for tests: arms on construction, disarms on destruction
/// (even when the fault never fired).
class ScopedFault {
public:
    explicit ScopedFault(const std::string& site, unsigned long nth = 1,
                         FaultKind kind = FaultKind::Throw)
    {
        arm(site, nth, kind);
    }
    ~ScopedFault() { disarm(); }
    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;
};

} // namespace hqs::fault
