// Cooperative cancellation for solver runs.
//
// A CancelToken is a shared atomic flag: the runtime (portfolio racer, batch
// scheduler, a signal handler) sets it from one thread, and every solver loop
// observes it through Deadline::expired() on the thread doing the work.  No
// signals, no thread kills — a cancelled solver unwinds normally and returns
// SolveResult::Timeout from the next loop head it reaches.
#pragma once

#include <atomic>
#include <memory>

namespace hqs {

/// Shared cancellation flag.  Copies refer to the same flag; firing any copy
/// fires them all.  Cheap to copy (one shared_ptr), safe to fire and poll
/// concurrently from any number of threads.
class CancelToken {
public:
    CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    /// Request cancellation.  Idempotent; thread-safe.
    void requestCancel() const noexcept { flag_->store(true, std::memory_order_relaxed); }

    /// Has cancellation been requested (on this token or any copy of it)?
    bool cancelled() const noexcept { return flag_->load(std::memory_order_relaxed); }

    /// Re-arm a fired token for reuse.  Not synchronized with concurrent
    /// requestCancel(); only call between runs.
    void reset() const noexcept { flag_->store(false, std::memory_order_relaxed); }

    /// The underlying flag, shared with every Deadline derived from this
    /// token via Deadline::withCancel().
    const std::shared_ptr<std::atomic<bool>>& flag() const { return flag_; }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace hqs
