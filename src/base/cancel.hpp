// Cooperative cancellation for solver runs.
//
// A CancelToken is a shared atomic flag: the runtime (portfolio racer, batch
// scheduler, the guard layer's resource watchdog) sets it from one thread,
// and every solver loop observes it through Deadline::expired() on the
// thread doing the work.  No signals, no thread kills — a cancelled solver
// unwinds normally from the next loop head it reaches.
//
// A fired token carries a CancelReason so the unwinding solver can report
// the right outcome: a plain cancellation surfaces as Timeout, while the
// RSS watchdog fires with CancelReason::Memout and the solver's
// deadlineExceededResult() (timer.hpp) turns that into SolveResult::Memout.
#pragma once

#include <atomic>
#include <memory>

namespace hqs {

/// Why a CancelToken fired.  Ordered by precedence: the first requestCancel
/// wins; later requests do not overwrite the recorded reason.
enum class CancelReason : unsigned char {
    None = 0,         ///< token has not fired
    User = 1,         ///< external cancellation (shutdown, portfolio loser, Ctrl-C)
    Memout = 2,       ///< resource watchdog: unwind as Memout, not Timeout
    Disconnected = 3, ///< the caller went away (service client closed its socket)
};

/// Stable lower-case label for @p r, used in metric names and logs.
inline const char* toString(CancelReason r)
{
    switch (r) {
        case CancelReason::None: return "none";
        case CancelReason::User: return "user";
        case CancelReason::Memout: return "memout";
        case CancelReason::Disconnected: return "disconnected";
    }
    return "invalid";
}

/// Shared cancellation flag.  Copies refer to the same flag; firing any copy
/// fires them all.  Cheap to copy (one shared_ptr), safe to fire and poll
/// concurrently from any number of threads.
class CancelToken {
public:
    CancelToken() : state_(std::make_shared<State>()) {}

    /// Request cancellation.  Idempotent; thread-safe.  The first caller's
    /// @p reason sticks.
    void requestCancel(CancelReason reason = CancelReason::User) const noexcept
    {
        unsigned char expected = 0;
        state_->reason.compare_exchange_strong(expected, static_cast<unsigned char>(reason),
                                               std::memory_order_relaxed);
        state_->fired.store(true, std::memory_order_release);
    }

    /// Has cancellation been requested (on this token or any copy of it)?
    bool cancelled() const noexcept { return state_->fired.load(std::memory_order_acquire); }

    /// Why the token fired; None while it has not.
    CancelReason reason() const noexcept
    {
        if (!cancelled()) return CancelReason::None;
        return static_cast<CancelReason>(state_->reason.load(std::memory_order_relaxed));
    }

    /// Re-arm a fired token for reuse.  Not synchronized with concurrent
    /// requestCancel(); only call between runs.
    void reset() const noexcept
    {
        state_->reason.store(0, std::memory_order_relaxed);
        state_->fired.store(false, std::memory_order_release);
    }

    /// Shared flag + reason pair, shared with every Deadline derived from
    /// this token via Deadline::withCancel().
    struct State {
        std::atomic<bool> fired{false};
        std::atomic<unsigned char> reason{0};
    };

    const std::shared_ptr<State>& state() const { return state_; }

private:
    std::shared_ptr<State> state_;
};

} // namespace hqs
