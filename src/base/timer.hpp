// Wall-clock timing and deadline helpers used by solvers and the bench
// harness.  All solvers accept a Deadline so per-instance timeouts can be
// enforced without signals.  A Deadline can additionally carry a CancelToken
// (see cancel.hpp): expired() then also reports true once the token fires,
// which makes every deadline-checking solver loop cooperatively cancellable
// from another thread.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "src/base/cancel.hpp"
#include "src/base/result.hpp"

namespace hqs {

/// Stopwatch measuring wall-clock time since construction or reset().
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsedMilliseconds() const { return elapsedSeconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// A point in time after which a solver should abort with Timeout.
/// A default-constructed Deadline never expires.
class Deadline {
public:
    Deadline() : expiry_(Clock::time_point::max()) {}

    /// Deadline @p seconds from now; non-positive values mean "no limit".
    static Deadline in(double seconds)
    {
        Deadline d;
        if (seconds > 0) {
            d.expiry_ = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(seconds));
        }
        return d;
    }

    static Deadline unlimited() { return Deadline(); }

    /// This deadline, additionally expiring as soon as @p token fires.  The
    /// time budget is unchanged; copies share the token's flag.
    Deadline withCancel(const CancelToken& token) const
    {
        Deadline d = *this;
        d.cancel_ = token.state();
        return d;
    }

    bool expired() const
    {
        if (cancelled()) return true;
        return Clock::now() >= expiry_;
    }

    /// Expired specifically because an attached CancelToken fired (the time
    /// budget may or may not also be gone).
    bool cancelled() const
    {
        return cancel_ && cancel_->fired.load(std::memory_order_acquire);
    }

    /// Why the attached token fired; None without a token or while unfired.
    CancelReason cancelReason() const
    {
        if (!cancelled()) return CancelReason::None;
        return static_cast<CancelReason>(cancel_->reason.load(std::memory_order_relaxed));
    }

    bool isUnlimited() const
    {
        return expiry_ == Clock::time_point::max() && !cancel_;
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point expiry_;
    std::shared_ptr<const CancelToken::State> cancel_;
};

/// The SolveResult a solver should return when @p d has expired: Memout when
/// a resource watchdog fired the attached token with CancelReason::Memout,
/// Timeout for the time budget and every other cancellation.  Every
/// deadline-polling solver loop reports expiry through this helper so the
/// guard layer's cooperative memout is visible end to end.
inline SolveResult deadlineExceededResult(const Deadline& d)
{
    return d.cancelReason() == CancelReason::Memout ? SolveResult::Memout
                                                    : SolveResult::Timeout;
}

} // namespace hqs
