// Wall-clock timing and deadline helpers used by solvers and the bench
// harness.  All solvers accept a Deadline so per-instance timeouts can be
// enforced without signals.
#pragma once

#include <chrono>
#include <limits>

namespace hqs {

/// Stopwatch measuring wall-clock time since construction or reset().
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsedMilliseconds() const { return elapsedSeconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// A point in time after which a solver should abort with Timeout.
/// A default-constructed Deadline never expires.
class Deadline {
public:
    Deadline() : expiry_(Clock::time_point::max()) {}

    /// Deadline @p seconds from now; non-positive values mean "no limit".
    static Deadline in(double seconds)
    {
        Deadline d;
        if (seconds > 0) {
            d.expiry_ = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(seconds));
        }
        return d;
    }

    static Deadline unlimited() { return Deadline(); }

    bool expired() const { return Clock::now() >= expiry_; }

    bool isUnlimited() const { return expiry_ == Clock::time_point::max(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point expiry_;
};

} // namespace hqs
