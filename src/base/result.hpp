// Outcome types shared by all decision procedures in this repository.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

namespace hqs {

/// Outcome of a (D)QBF / SAT solving run.
enum class SolveResult {
    Sat,     ///< formula satisfied / realizable
    Unsat,   ///< formula unsatisfied / unrealizable
    Timeout, ///< resource limit: wall-clock budget exhausted
    Memout,  ///< resource limit: node/memory budget exhausted
    Unknown, ///< gave up for another reason (incomplete procedure)
};

std::string toString(SolveResult r);
std::ostream& operator<<(std::ostream& os, SolveResult r);

/// Inverse of toString (exact match); nullopt for anything else.  Used by
/// the batch journal reader when resuming from a JSONL file.
std::optional<SolveResult> solveResultFromString(const std::string& s);

/// True for Sat/Unsat, false for the three inconclusive outcomes.
inline bool isConclusive(SolveResult r)
{
    return r == SolveResult::Sat || r == SolveResult::Unsat;
}

} // namespace hqs
