// Basic propositional types: variables, literals, and three-valued truth.
//
// Variables are dense 0-based indices.  Literals pack a variable and a sign
// into one 32-bit word (MiniSat convention: lit = 2*var + sign, sign = 1 for
// the negative literal), which keeps watch lists and clause storage compact.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace hqs {

using Var = std::uint32_t;

/// Sentinel for "no variable".
inline constexpr Var kNoVar = static_cast<Var>(-1);

/// A propositional literal: a variable together with a sign.
class Lit {
public:
    constexpr Lit() : code_(kUndefCode) {}
    constexpr Lit(Var v, bool negative) : code_((v << 1) | (negative ? 1u : 0u)) {}

    /// The positive literal of @p v.
    static constexpr Lit pos(Var v) { return Lit(v, false); }
    /// The negative literal of @p v.
    static constexpr Lit neg(Var v) { return Lit(v, true); }
    /// Rebuild a literal from its integer encoding (inverse of code()).
    static constexpr Lit fromCode(std::uint32_t code)
    {
        Lit l;
        l.code_ = code;
        return l;
    }

    constexpr Var var() const { return code_ >> 1; }
    constexpr bool negative() const { return (code_ & 1u) != 0; }
    constexpr bool positive() const { return (code_ & 1u) == 0; }
    /// Integer encoding: 2*var + sign.  Usable as a dense array index.
    constexpr std::uint32_t code() const { return code_; }

    constexpr bool isUndef() const { return code_ == kUndefCode; }

    constexpr Lit operator~() const { return fromCode(code_ ^ 1u); }
    /// This literal with sign xor-ed by @p flip.
    constexpr Lit operator^(bool flip) const { return fromCode(code_ ^ (flip ? 1u : 0u)); }

    constexpr bool operator==(const Lit&) const = default;
    constexpr bool operator<(const Lit& o) const { return code_ < o.code_; }

    /// DIMACS integer form: +-(var+1).
    int toDimacs() const { return negative() ? -static_cast<int>(var() + 1) : static_cast<int>(var() + 1); }
    /// Parse from DIMACS integer form; @p d must be non-zero.
    static Lit fromDimacs(int d)
    {
        return Lit(static_cast<Var>((d < 0 ? -d : d) - 1), d < 0);
    }

private:
    static constexpr std::uint32_t kUndefCode = static_cast<std::uint32_t>(-1);
    std::uint32_t code_;
};

inline constexpr Lit kUndefLit{};

std::ostream& operator<<(std::ostream& os, Lit l);
std::string toString(Lit l);

/// Three-valued truth: true / false / undefined.
class lbool {
public:
    constexpr lbool() : v_(2) {}
    explicit constexpr lbool(bool b) : v_(b ? 1 : 0) {}

    static const lbool True;
    static const lbool False;
    static const lbool Undef;

    constexpr bool isTrue() const { return v_ == 1; }
    constexpr bool isFalse() const { return v_ == 0; }
    constexpr bool isUndef() const { return v_ == 2; }

    /// Logical negation; Undef stays Undef.
    constexpr lbool operator~() const { return v_ == 2 ? lbool::makeUndef() : lbool(v_ == 0); }
    /// Xor with a concrete sign; Undef stays Undef.
    constexpr lbool operator^(bool flip) const
    {
        return v_ == 2 ? lbool::makeUndef() : lbool((v_ == 1) != flip);
    }

    constexpr bool operator==(const lbool&) const = default;

private:
    static constexpr lbool makeUndef() { return lbool(); }
    std::uint8_t v_;
};

inline constexpr lbool lbool_True{true};
inline constexpr lbool lbool_False{false};
inline constexpr lbool lbool_Undef{};

std::ostream& operator<<(std::ostream& os, lbool b);

} // namespace hqs

template <>
struct std::hash<hqs::Lit> {
    std::size_t operator()(hqs::Lit l) const noexcept { return std::hash<std::uint32_t>()(l.code()); }
};
