#include "src/base/literal.hpp"

#include <ostream>

namespace hqs {

const lbool lbool::True{true};
const lbool lbool::False{false};
const lbool lbool::Undef{};

std::ostream& operator<<(std::ostream& os, Lit l)
{
    if (l.isUndef()) return os << "lit-undef";
    if (l.negative()) os << '~';
    return os << 'v' << l.var();
}

std::string toString(Lit l)
{
    if (l.isUndef()) return "lit-undef";
    return (l.negative() ? "~v" : "v") + std::to_string(l.var());
}

std::ostream& operator<<(std::ostream& os, lbool b)
{
    return os << (b.isTrue() ? "true" : b.isFalse() ? "false" : "undef");
}

} // namespace hqs
