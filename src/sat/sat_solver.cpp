#include "src/sat/sat_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"

namespace hqs {
namespace {

/// Internal clause representation.  Clauses are heap-allocated and referenced
/// by pointer from watch lists and reasons; deletion marks the clause and the
/// watch lists are rebuilt before memory is released.
struct SClause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;

    std::size_t size() const { return lits.size(); }
    Lit& operator[](std::size_t i) { return lits[i]; }
    Lit operator[](std::size_t i) const { return lits[i]; }
};

/// Max-heap over variables ordered by activity, with index positions for
/// decrease/increase-key (the classic MiniSat order heap).
class VarOrderHeap {
public:
    explicit VarOrderHeap(const std::vector<double>& act) : act_(act) {}

    void grow(Var n) { pos_.resize(n, -1); }

    bool contains(Var v) const { return pos_[v] >= 0; }
    bool empty() const { return heap_.empty(); }

    void insert(Var v)
    {
        if (contains(v)) return;
        pos_[v] = static_cast<int>(heap_.size());
        heap_.push_back(v);
        siftUp(pos_[v]);
    }

    Var removeMax()
    {
        Var top = heap_[0];
        heap_[0] = heap_.back();
        pos_[heap_[0]] = 0;
        heap_.pop_back();
        pos_[top] = -1;
        if (!heap_.empty()) siftDown(0);
        return top;
    }

    void increased(Var v)
    {
        if (contains(v)) siftUp(pos_[v]);
    }

private:
    bool lt(Var a, Var b) const { return act_[a] > act_[b]; } // max-heap

    void siftUp(int i)
    {
        Var v = heap_[i];
        while (i > 0) {
            int parent = (i - 1) >> 1;
            if (!lt(v, heap_[parent])) break;
            heap_[i] = heap_[parent];
            pos_[heap_[i]] = i;
            i = parent;
        }
        heap_[i] = v;
        pos_[v] = i;
    }

    void siftDown(int i)
    {
        Var v = heap_[i];
        const int n = static_cast<int>(heap_.size());
        for (;;) {
            int child = 2 * i + 1;
            if (child >= n) break;
            if (child + 1 < n && lt(heap_[child + 1], heap_[child])) ++child;
            if (!lt(heap_[child], v)) break;
            heap_[i] = heap_[child];
            pos_[heap_[i]] = i;
            i = child;
        }
        heap_[i] = v;
        pos_[v] = i;
    }

    const std::vector<double>& act_;
    std::vector<Var> heap_;
    std::vector<int> pos_;
};

/// luby(i): the i-th element (1-based) of the Luby restart sequence.
double luby(double y, std::uint64_t x)
{
    std::uint64_t size = 1, seq = 0;
    while (size < x + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        --seq;
        x = x % size;
    }
    return std::pow(y, static_cast<double>(seq));
}

} // namespace

struct SatSolver::Impl {
    // Clause database.
    std::vector<std::unique_ptr<SClause>> clauses; // problem clauses
    std::vector<std::unique_ptr<SClause>> learnts;

    struct Watcher {
        SClause* clause;
        Lit blocker;
    };
    std::vector<std::vector<Watcher>> watches; // indexed by lit code

    // Assignment state.
    std::vector<lbool> assigns;    // per var
    std::vector<SClause*> reason;  // per var
    std::vector<int> level;        // per var
    std::vector<Lit> trail;
    std::vector<std::size_t> trailLim;
    std::size_t qhead = 0;

    // Decision heuristics.
    std::vector<double> activity;
    double varInc = 1.0;
    static constexpr double kVarDecay = 0.95;
    std::vector<bool> polarity; // saved phases; true = assign positive
    VarOrderHeap order{activity};

    double claInc = 1.0;
    static constexpr double kClaDecay = 0.999;

    // Conflict analysis scratch.
    std::vector<std::uint8_t> seen;
    std::vector<Lit> analyzeToClear;

    bool topConflict = false;
    std::vector<lbool> model;
    SatStats stats;

    double maxLearnts = 1000.0;

    // ----- basic accessors ---------------------------------------------
    lbool value(Lit l) const { return assigns[l.var()] ^ l.negative(); }
    lbool value(Var v) const { return assigns[v]; }
    int decisionLevel() const { return static_cast<int>(trailLim.size()); }

    Var newVar()
    {
        const Var v = static_cast<Var>(assigns.size());
        assigns.push_back(lbool::Undef);
        reason.push_back(nullptr);
        level.push_back(0);
        activity.push_back(0.0);
        polarity.push_back(false);
        seen.push_back(0);
        watches.emplace_back();
        watches.emplace_back();
        order.grow(v + 1);
        order.insert(v);
        return v;
    }

    void ensureVars(Var n)
    {
        while (assigns.size() < n) newVar();
    }

    // ----- clause attachment -------------------------------------------
    void attach(SClause* c)
    {
        assert(c->size() >= 2);
        watches[(~(*c)[0]).code()].push_back({c, (*c)[1]});
        watches[(~(*c)[1]).code()].push_back({c, (*c)[0]});
    }

    bool locked(const SClause* c) const
    {
        Lit first = (*c)[0];
        return reason[first.var()] == c && value(first).isTrue();
    }

    void uncheckedEnqueue(Lit p, SClause* from)
    {
        assert(value(p).isUndef());
        assigns[p.var()] = lbool(!p.negative());
        reason[p.var()] = from;
        level[p.var()] = decisionLevel();
        trail.push_back(p);
    }

    bool addClause(std::vector<Lit> lits)
    {
        assert(decisionLevel() == 0);
        if (topConflict) return false;
        Clause tmp(std::move(lits));
        if (tmp.normalize()) return true; // tautology: trivially fine
        // Remove literals false at top level; detect satisfied clauses.
        std::vector<Lit> out;
        for (Lit l : tmp) {
            ensureVars(l.var() + 1);
            lbool v = value(l);
            if (v.isTrue()) return true;
            if (v.isUndef()) out.push_back(l);
        }
        if (out.empty()) {
            topConflict = true;
            return false;
        }
        if (out.size() == 1) {
            uncheckedEnqueue(out[0], nullptr);
            if (propagate() != nullptr) {
                topConflict = true;
                return false;
            }
            return true;
        }
        auto c = std::make_unique<SClause>();
        c->lits = std::move(out);
        attach(c.get());
        clauses.push_back(std::move(c));
        return true;
    }

    // ----- propagation ---------------------------------------------------
    SClause* propagate()
    {
        SClause* conflict = nullptr;
        while (qhead < trail.size()) {
            const Lit p = trail[qhead++];
            std::vector<Watcher>& ws = watches[p.code()];
            std::size_t i = 0, j = 0;
            const std::size_t n = ws.size();
            while (i < n) {
                Watcher w = ws[i++];
                if (w.clause->deleted) continue; // lazily dropped
                if (value(w.blocker).isTrue()) {
                    ws[j++] = w;
                    continue;
                }
                SClause& c = *w.clause;
                const Lit falseLit = ~p;
                if (c[0] == falseLit) std::swap(c[0], c[1]);
                assert(c[1] == falseLit);

                const Lit first = c[0];
                if (first != w.blocker && value(first).isTrue()) {
                    ws[j++] = {&c, first};
                    continue;
                }
                // Search for a replacement watch.
                bool found = false;
                for (std::size_t k = 2; k < c.size(); ++k) {
                    if (!value(c[k]).isFalse()) {
                        std::swap(c[1], c[k]);
                        watches[(~c[1]).code()].push_back({&c, first});
                        found = true;
                        break;
                    }
                }
                if (found) continue;

                // Clause is unit or conflicting.
                ws[j++] = {&c, first};
                if (value(first).isFalse()) {
                    conflict = &c;
                    qhead = trail.size();
                    while (i < n) ws[j++] = ws[i++];
                } else {
                    uncheckedEnqueue(first, &c);
                    ++stats.propagations;
                }
            }
            ws.resize(j);
        }
        return conflict;
    }

    // ----- activity management ------------------------------------------
    void varBump(Var v)
    {
        activity[v] += varInc;
        if (activity[v] > 1e100) {
            for (double& a : activity) a *= 1e-100;
            varInc *= 1e-100;
        }
        order.increased(v);
    }
    void varDecay() { varInc /= kVarDecay; }

    void claBump(SClause& c)
    {
        c.activity += claInc;
        if (c.activity > 1e20) {
            for (auto& l : learnts) l->activity *= 1e-20;
            claInc *= 1e-20;
        }
    }
    void claDecay() { claInc /= kClaDecay; }

    // ----- conflict analysis ----------------------------------------------
    void analyze(SClause* conflict, std::vector<Lit>& outLearnt, int& outBtLevel)
    {
        int pathC = 0;
        Lit p = kUndefLit;
        outLearnt.clear();
        outLearnt.push_back(kUndefLit); // slot for the asserting literal
        std::size_t index = trail.size();

        SClause* c = conflict;
        do {
            assert(c != nullptr);
            if (c->learnt) claBump(*c);
            for (std::size_t k = (p.isUndef() ? 0 : 1); k < c->size(); ++k) {
                const Lit q = (*c)[k];
                if (!seen[q.var()] && level[q.var()] > 0) {
                    varBump(q.var());
                    seen[q.var()] = 1;
                    if (level[q.var()] >= decisionLevel()) {
                        ++pathC;
                    } else {
                        outLearnt.push_back(q);
                    }
                }
            }
            // Next literal on the trail to expand.
            while (!seen[trail[index - 1].var()]) --index;
            p = trail[--index];
            c = reason[p.var()];
            seen[p.var()] = 0;
            --pathC;
        } while (pathC > 0);
        outLearnt[0] = ~p;

        // Recursive minimization: drop literals implied by the rest.
        analyzeToClear.assign(outLearnt.begin(), outLearnt.end());
        for (Lit l : outLearnt)
            if (!l.isUndef()) seen[l.var()] = 1;
        std::size_t keep = 1;
        for (std::size_t i = 1; i < outLearnt.size(); ++i) {
            if (reason[outLearnt[i].var()] == nullptr || !litRedundant(outLearnt[i])) {
                outLearnt[keep++] = outLearnt[i];
            }
        }
        outLearnt.resize(keep);
        for (Lit l : analyzeToClear) seen[l.var()] = 0;
        analyzeToClear.clear();

        // Backtrack level: second-highest level in the learnt clause.
        if (outLearnt.size() == 1) {
            outBtLevel = 0;
        } else {
            std::size_t maxI = 1;
            for (std::size_t i = 2; i < outLearnt.size(); ++i) {
                if (level[outLearnt[i].var()] > level[outLearnt[maxI].var()]) maxI = i;
            }
            std::swap(outLearnt[1], outLearnt[maxI]);
            outBtLevel = level[outLearnt[1].var()];
        }
    }

    /// Check whether @p l is implied by the remaining learnt-clause literals
    /// (standard MiniSat litRedundant, iterative).
    bool litRedundant(Lit l)
    {
        std::vector<Lit> stack{l};
        const std::size_t clearStart = analyzeToClear.size();
        while (!stack.empty()) {
            Lit q = stack.back();
            stack.pop_back();
            const SClause* c = reason[q.var()];
            assert(c != nullptr);
            for (std::size_t k = 1; k < c->size(); ++k) {
                const Lit r = (*c)[k];
                if (seen[r.var()] || level[r.var()] == 0) continue;
                if (reason[r.var()] == nullptr) {
                    // Not redundant: undo the marks added in this call.
                    for (std::size_t i = clearStart; i < analyzeToClear.size(); ++i)
                        seen[analyzeToClear[i].var()] = 0;
                    analyzeToClear.resize(clearStart);
                    return false;
                }
                seen[r.var()] = 1;
                analyzeToClear.push_back(r);
                stack.push_back(r);
            }
        }
        return true;
    }

    void cancelUntil(int lvl)
    {
        if (decisionLevel() <= lvl) return;
        for (std::size_t i = trail.size(); i > trailLim[lvl];) {
            --i;
            const Var v = trail[i].var();
            polarity[v] = value(v).isTrue();
            assigns[v] = lbool::Undef;
            reason[v] = nullptr;
            order.insert(v);
        }
        trail.resize(trailLim[lvl]);
        qhead = trail.size();
        trailLim.resize(lvl);
    }

    Lit pickBranchLit()
    {
        while (!order.empty()) {
            const Var v = order.removeMax();
            if (value(v).isUndef()) return Lit(v, !polarity[v]);
        }
        return kUndefLit;
    }

    // ----- learnt DB reduction -------------------------------------------
    void reduceDB()
    {
        std::sort(learnts.begin(), learnts.end(),
                  [](const std::unique_ptr<SClause>& a, const std::unique_ptr<SClause>& b) {
                      if ((a->size() > 2) != (b->size() > 2)) return a->size() > 2;
                      return a->activity < b->activity;
                  });
        const std::size_t half = learnts.size() / 2;
        for (std::size_t i = 0; i < half; ++i) {
            SClause* c = learnts[i].get();
            if (c->size() > 2 && !locked(c)) {
                c->deleted = true;
                ++stats.learnts_deleted;
            }
        }
        // Purge watch lists, then free the deleted clauses.
        for (auto& ws : watches) {
            std::erase_if(ws, [](const Watcher& w) { return w.clause->deleted; });
        }
        std::erase_if(learnts, [](const std::unique_ptr<SClause>& c) { return c->deleted; });
    }

    // ----- search ----------------------------------------------------------
    /// One restart-bounded CDCL search episode.
    /// Returns Sat/Unsat, or Unknown when the conflict budget is exhausted.
    SolveResult search(std::uint64_t conflictBudget, const std::vector<Lit>& assumptions,
                       const Deadline& deadline)
    {
        std::uint64_t conflictsHere = 0;
        std::vector<Lit> learntClause;
        for (;;) {
            SClause* conflict = propagate();
            if (conflict != nullptr) {
                ++stats.conflicts;
                ++conflictsHere;
                if (decisionLevel() == 0) return SolveResult::Unsat;
                int btLevel = 0;
                analyze(conflict, learntClause, btLevel);
                // Never undo assumption decisions below their level unless
                // the learnt clause demands it; cancelUntil handles both.
                cancelUntil(btLevel);
                if (learntClause.size() == 1) {
                    uncheckedEnqueue(learntClause[0], nullptr);
                } else {
                    auto c = std::make_unique<SClause>();
                    c->lits = learntClause;
                    c->learnt = true;
                    claBump(*c);
                    attach(c.get());
                    uncheckedEnqueue(learntClause[0], c.get());
                    learnts.push_back(std::move(c));
                }
                varDecay();
                claDecay();
                if ((stats.conflicts & 0xff) == 0 && deadline.expired())
                    return deadlineExceededResult(deadline);
            } else {
                if (conflictsHere >= conflictBudget) {
                    cancelUntil(0);
                    return SolveResult::Unknown;
                }
                if (static_cast<double>(learnts.size()) >= maxLearnts) {
                    reduceDB();
                    maxLearnts *= 1.1;
                }
                // Assumption decisions first.
                Lit next = kUndefLit;
                while (decisionLevel() < static_cast<int>(assumptions.size())) {
                    const Lit a = assumptions[decisionLevel()];
                    if (value(a).isTrue()) {
                        trailLim.push_back(trail.size()); // dummy level
                    } else if (value(a).isFalse()) {
                        return SolveResult::Unsat; // conflicts with assumptions
                    } else {
                        next = a;
                        break;
                    }
                }
                if (next.isUndef() && decisionLevel() >= static_cast<int>(assumptions.size())) {
                    next = pickBranchLit();
                    if (next.isUndef()) return SolveResult::Sat; // all assigned
                    ++stats.decisions;
                }
                trailLim.push_back(trail.size());
                uncheckedEnqueue(next, nullptr);
            }
        }
    }

    SolveResult solve(const std::vector<Lit>& assumptions, const Deadline& deadline)
    {
        fault::checkpoint("sat");
        if (topConflict) return SolveResult::Unsat;
        for (Lit a : assumptions) ensureVars(a.var() + 1);
        model.clear();
        maxLearnts = std::max<double>(1000.0, static_cast<double>(clauses.size()) / 3.0);

        SolveResult res = SolveResult::Unknown;
        for (std::uint64_t restart = 0; res == SolveResult::Unknown; ++restart) {
            const auto budget = static_cast<std::uint64_t>(luby(2.0, restart) * 100.0);
            res = search(budget, assumptions, deadline);
            if (res == SolveResult::Unknown) ++stats.restarts;
            if (deadline.expired() && res == SolveResult::Unknown) res = deadlineExceededResult(deadline);
        }
        if (res == SolveResult::Sat) {
            model.assign(assigns.begin(), assigns.end());
        }
        cancelUntil(0);
        return res;
    }

};

SatSolver::SatSolver() : impl_(std::make_unique<Impl>()) {}
SatSolver::~SatSolver() = default;

Var SatSolver::newVar() { return impl_->newVar(); }
void SatSolver::ensureVars(Var n) { impl_->ensureVars(n); }
Var SatSolver::numVars() const { return static_cast<Var>(impl_->assigns.size()); }

bool SatSolver::addClause(std::vector<Lit> lits) { return impl_->addClause(std::move(lits)); }

bool SatSolver::addCnf(const Cnf& f)
{
    ensureVars(f.numVars());
    bool ok = true;
    for (const Clause& c : f) ok = addClause(c.lits()) && ok;
    return ok;
}

SolveResult SatSolver::solve(const std::vector<Lit>& assumptions, Deadline deadline)
{
    OBS_COUNT("sat.solves", 1);
    return impl_->solve(assumptions, deadline);
}

lbool SatSolver::modelValue(Var v) const
{
    if (v >= impl_->model.size()) return lbool::Undef;
    return impl_->model[v];
}

lbool SatSolver::modelValue(Lit l) const { return modelValue(l.var()) ^ l.negative(); }

std::vector<bool> SatSolver::modelBools() const
{
    std::vector<bool> out(impl_->model.size());
    for (std::size_t i = 0; i < impl_->model.size(); ++i) out[i] = impl_->model[i].isTrue();
    return out;
}

bool SatSolver::inConflict() const { return impl_->topConflict; }

lbool SatSolver::topLevelValue(Lit l) const
{
    const Var v = l.var();
    if (v >= impl_->assigns.size()) return lbool::Undef;
    if (impl_->assigns[v].isUndef() || impl_->level[v] != 0) return lbool::Undef;
    return impl_->assigns[v] ^ l.negative();
}

const SatStats& SatSolver::stats() const { return impl_->stats; }

bool bruteForceSat(const Cnf& f)
{
    const Var n = f.numVars();
    assert(n <= 24);
    std::vector<bool> assignment(n, false);
    for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
        for (Var v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1u;
        if (f.evaluate(assignment)) return true;
    }
    return false;
}

} // namespace hqs
