// CDCL SAT solver in the MiniSat tradition.
//
// Features: two-watched-literal propagation with blockers, first-UIP conflict
// analysis with recursive clause minimization, VSIDS variable activities with
// phase saving, Luby restarts, activity-based learnt-clause database
// reduction, and incremental solving under assumptions.
//
// This is the workhorse beneath the partial MaxSAT solver (variable-selection
// MaxSAT of HQS), FRAIG SAT-sweeping, the QDPLL cross-check solver, and the
// instantiation-based DQBF baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/literal.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/cnf.hpp"

namespace hqs {

/// Counters exposed for benchmarking and the experiment harness.
struct SatStats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnts_deleted = 0;
};

class SatSolver {
public:
    SatSolver();
    ~SatSolver();
    SatSolver(const SatSolver&) = delete;
    SatSolver& operator=(const SatSolver&) = delete;

    /// Allocate a fresh variable and return it.
    Var newVar();
    /// Make sure variables 0..n-1 exist.
    void ensureVars(Var n);
    Var numVars() const;

    /// Add a clause.  Returns false iff the solver is now in a top-level
    /// conflict (the clause set is unsatisfiable regardless of assumptions).
    bool addClause(std::vector<Lit> lits);
    bool addClause(std::initializer_list<Lit> lits) { return addClause(std::vector<Lit>(lits)); }
    bool addClause(const Clause& c) { return addClause(c.lits()); }
    /// Add every clause of @p f (growing the variable range as needed).
    bool addCnf(const Cnf& f);

    /// Decide satisfiability under the given assumptions.
    /// Returns Sat, Unsat, or Timeout (when @p deadline expires).
    SolveResult solve(const std::vector<Lit>& assumptions = {},
                      Deadline deadline = Deadline::unlimited());

    /// Model access; valid after solve() returned Sat.
    lbool modelValue(Var v) const;
    lbool modelValue(Lit l) const;
    /// Model as a dense bool vector (Undef mapped to false).
    std::vector<bool> modelBools() const;

    /// True if addClause already derived top-level unsatisfiability.
    bool inConflict() const;

    /// Value of a literal in the current top-level (decision level 0)
    /// assignment; Undef when unassigned at level 0.
    lbool topLevelValue(Lit l) const;

    const SatStats& stats() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Reference oracle: decide @p f by enumerating all assignments.  Intended
/// for tests on small formulas only (numVars <= ~22).
bool bruteForceSat(const Cnf& f);

} // namespace hqs
