#include "src/maxsat/maxsat.hpp"

namespace hqs {

void MaxSatSolver::addHard(Clause c)
{
    for (Lit l : c) ensureVars(l.var() + 1);
    hard_.push_back(std::move(c));
}

void MaxSatSolver::addSoft(Clause c)
{
    for (Lit l : c) ensureVars(l.var() + 1);
    soft_.push_back(std::move(c));
}

std::optional<MaxSatResult> MaxSatSolver::solve(Deadline deadline)
{
    SatSolver sat;
    sat.ensureVars(numVars_);
    for (const Clause& c : hard_) {
        if (!sat.addClause(c.lits())) return std::nullopt;
    }

    const std::size_t n = soft_.size();
    // Relaxation variables: b_i true <=> soft clause i is (allowed to be)
    // falsified.
    std::vector<Lit> relax;
    relax.reserve(n);
    for (const Clause& c : soft_) {
        const Var b = sat.newVar();
        std::vector<Lit> lits = c.lits();
        lits.push_back(Lit::pos(b));
        if (!sat.addClause(std::move(lits))) return std::nullopt;
        relax.push_back(Lit::pos(b));
    }

    auto extract = [&](std::size_t cost) {
        MaxSatResult res;
        res.cost = cost;
        res.model.resize(numVars_);
        for (Var v = 0; v < numVars_; ++v) res.model[v] = sat.modelValue(v).isTrue();
        return res;
    };

    if (n == 0) {
        const SolveResult r = sat.solve({}, deadline);
        if (r != SolveResult::Sat) return std::nullopt;
        return extract(0);
    }

    // Sequential counter (Sinz encoding), monotone direction only:
    // count(b_1..b_i) >= j  implies  s[i][j] is true.  Assuming ~s[n][k+1]
    // then enforces "at most k relaxed".
    // s is 1-based in j; s[i][j] for i in [0,n), j in [1, i+1].
    std::vector<std::vector<Lit>> s(n);
    for (std::size_t i = 0; i < n; ++i) {
        s[i].resize(i + 2, kUndefLit); // index 1..i+1
        for (std::size_t j = 1; j <= i + 1; ++j) s[i][j] = Lit::pos(sat.newVar());
        // b_i -> s[i][1]
        sat.addClause({~relax[i], s[i][1]});
        if (i > 0) {
            for (std::size_t j = 1; j <= i; ++j) {
                // s[i-1][j] -> s[i][j]
                sat.addClause({~s[i - 1][j], s[i][j]});
                // b_i & s[i-1][j] -> s[i][j+1]
                sat.addClause({~relax[i], ~s[i - 1][j], s[i][j + 1]});
            }
        }
    }

    // Linear search for the minimum number of falsified softs.
    for (std::size_t k = 0; k <= n; ++k) {
        std::vector<Lit> assumptions;
        if (k < n) assumptions.push_back(~s[n - 1][k + 1]);
        const SolveResult r = sat.solve(assumptions, deadline);
        if (r == SolveResult::Sat) return extract(k);
        if (r != SolveResult::Unsat) return std::nullopt; // timeout
    }
    return std::nullopt; // hard clauses unsatisfiable
}

} // namespace hqs
