// Partial MaxSAT solver (unit weights).
//
// Stands in for the `antom` solver the paper uses to pick the minimum set of
// universal variables whose elimination linearizes the DQBF prefix
// (Section III-A, Equations 1 and 2).  Hard clauses must hold; the solver
// maximizes the number of satisfied soft clauses.
//
// Algorithm: every soft clause C_i is relaxed to (C_i ∨ b_i); a sequential
// counter over the b_i yields monotone "at least j relaxed" outputs, and a
// linear UNSAT→SAT search over k with assumption ¬out_{k+1} finds the
// minimum number of falsified soft clauses.  Exact, and fast at the sizes
// the HQS selection problem produces (the paper reports < 0.06 s per
// instance).
#pragma once

#include <optional>
#include <vector>

#include "src/base/literal.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/cnf.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {

/// Result of a MaxSAT call.
struct MaxSatResult {
    /// Model over the original variables (indexed by Var; size = numVars at
    /// solve time).
    std::vector<bool> model;
    /// Number of falsified soft clauses in the optimum.
    std::size_t cost = 0;
};

class MaxSatSolver {
public:
    MaxSatSolver() = default;

    Var newVar() { return numVars_++; }
    void ensureVars(Var n)
    {
        if (n > numVars_) numVars_ = n;
    }
    Var numVars() const { return numVars_; }

    void addHard(Clause c);
    void addHard(std::initializer_list<Lit> lits) { addHard(Clause(lits)); }
    void addSoft(Clause c);
    void addSoft(std::initializer_list<Lit> lits) { addSoft(Clause(lits)); }

    std::size_t numSoft() const { return soft_.size(); }

    /// Minimize the number of falsified soft clauses subject to the hard
    /// clauses.  Returns std::nullopt iff the hard clauses are unsatisfiable
    /// or the deadline expired.
    std::optional<MaxSatResult> solve(Deadline deadline = Deadline::unlimited());

private:
    Var numVars_ = 0;
    std::vector<Clause> hard_;
    std::vector<Clause> soft_;
};

} // namespace hqs
