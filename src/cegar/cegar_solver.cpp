#include "src/cegar/cegar_solver.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {

namespace {

/// One learned rule: a projection class (y, pi) over D_y with its
/// counterexample-solver encoding (fire/value variables) and its repair-
/// solver value variable z, shared by every counterexample agreeing on pi.
struct RuleClass {
    Var fire = kNoVar;  ///< CES: F <-> cube(pi)
    Var value = kNoVar; ///< CES: F -> (y <-> value), pinned by assumption
    Var z = kNoVar;     ///< RS: the rule's output value
    std::vector<Lit> cube; ///< pi as literals over D_y (formula variables)
    bool currentValue = false; ///< latest repair-model value of z
};

struct ExistState {
    Var y = kNoVar;
    const std::vector<Var>* deps = nullptr; ///< sorted D_y
    std::vector<RuleClass> classes;
    /// CES: no-rule-fired chain after the last class; kNoVar while the
    /// list is empty (the chain is vacuously true then).
    Var chain = kNoVar;
    std::unordered_map<std::string, std::size_t> classIndex; ///< pi -> class
};

} // namespace

struct CegarSolver::Impl {
    const DqbfFormula* f = nullptr;
    SatSolver ces; ///< counterexample solver: -matrix + decision lists
    SatSolver rs;  ///< repair solver: instantiation constraints over z
    bool cesTopConflict = false;
    bool rsTopConflict = false;

    std::vector<ExistState> exist;
    std::unordered_map<Var, std::size_t> existIdx;
    Var guard = kNoVar; ///< CES: current refinement's default-clause guard
    /// Dedup of instantiation constraints already in the repair solver.
    std::unordered_set<std::string> rsSeen;
    /// Scratch: universal assignment of the latest counterexample,
    /// indexed by formula variable.
    std::vector<std::uint8_t> uValue;

    ExistState& stateOf(Var y) { return exist[existIdx.at(y)]; }

    /// Build the negated matrix in the counterexample solver: selector
    /// s_i -> every literal of clause i false, plus "some selector".
    /// Returns false when the matrix has no clauses (trivially TRUE).
    bool encodeNegatedMatrix()
    {
        ces.ensureVars(f->numVars());
        std::vector<Lit> some;
        some.reserve(f->matrix().numClauses());
        for (const Clause& c : f->matrix().clauses()) {
            const Var s = ces.newVar();
            for (Lit l : c.lits()) {
                if (!ces.addClause({Lit::neg(s), ~l})) return false;
            }
            some.push_back(Lit::pos(s));
        }
        return ces.addClause(std::move(some));
    }

    /// Class lookup key: pi rendered over the sorted dependency set.
    static std::string projectionKey(const std::vector<Var>& deps,
                                     const std::vector<std::uint8_t>& u)
    {
        std::string key(deps.size(), '0');
        for (std::size_t i = 0; i < deps.size(); ++i)
            if (u[deps[i]]) key[i] = '1';
        return key;
    }

    /// Find or create the projection class of @p y under the recorded
    /// counterexample, emitting its permanent CES encoding on creation.
    RuleClass& classOf(ExistState& st, CegarStats& stats)
    {
        std::string key = projectionKey(*st.deps, uValue);
        if (auto it = st.classIndex.find(key); it != st.classIndex.end())
            return st.classes[it->second];

        RuleClass rule;
        rule.cube.reserve(st.deps->size());
        for (std::size_t i = 0; i < st.deps->size(); ++i)
            rule.cube.push_back(Lit((*st.deps)[i], key[i] == '0'));

        rule.fire = ces.newVar();
        rule.value = ces.newVar();
        rule.z = rs.newVar();
        const Lit fire = Lit::pos(rule.fire);
        // F <-> cube(pi).
        std::vector<Lit> back{fire};
        for (Lit l : rule.cube) {
            if (!ces.addClause({~fire, l})) cesTopConflict = true;
            back.push_back(~l);
        }
        if (!ces.addClause(std::move(back))) cesTopConflict = true;
        // F -> (y <-> V).
        const Lit y = Lit::pos(st.y);
        const Lit v = Lit::pos(rule.value);
        if (!ces.addClause({~fire, ~v, y})) cesTopConflict = true;
        if (!ces.addClause({~fire, v, ~y})) cesTopConflict = true;
        // Extend the no-rule-fired chain: N_k <-> N_{k-1} & -F_k.
        const Var next = ces.newVar();
        const Lit n = Lit::pos(next);
        if (st.chain == kNoVar) {
            // First class: N_0 is vacuously true, so N_1 <-> -F_1.
            if (!ces.addClause({~n, ~fire})) cesTopConflict = true;
            if (!ces.addClause({n, fire})) cesTopConflict = true;
        } else {
            const Lit prev = Lit::pos(st.chain);
            if (!ces.addClause({~n, prev})) cesTopConflict = true;
            if (!ces.addClause({~n, ~fire})) cesTopConflict = true;
            if (!ces.addClause({n, ~prev, fire})) cesTopConflict = true;
        }
        st.chain = next;

        st.classIndex.emplace(std::move(key), st.classes.size());
        st.classes.push_back(std::move(rule));
        ++stats.rulesLearned;
        OBS_COUNT("cegar.rules_learned", 1);
        return st.classes.back();
    }

    /// Arm the next refinement's decision-list defaults: retire the old
    /// guard permanently, then emit per-existential guarded default
    /// clauses (guard & no-rule-fired -> y = false) under a fresh guard.
    void armDefaults()
    {
        if (guard != kNoVar && !ces.addClause({Lit::neg(guard)}))
            cesTopConflict = true;
        guard = ces.newVar();
        for (const ExistState& st : exist) {
            std::vector<Lit> def{Lit::neg(guard)};
            if (st.chain != kNoVar) def.push_back(Lit::neg(st.chain));
            def.push_back(Lit::neg(st.y)); // default value: false
            if (!ces.addClause(std::move(def))) cesTopConflict = true;
        }
    }

    /// Assumptions for the next counterexample query: the guard plus the
    /// latest repair-model value of every rule.
    std::vector<Lit> cesAssumptions() const
    {
        std::vector<Lit> assume{Lit::pos(guard)};
        for (const ExistState& st : exist)
            for (const RuleClass& rule : st.classes)
                assume.push_back(Lit(rule.value, !rule.currentValue));
        return assume;
    }

    /// Record the counterexample solver's model as a universal assignment.
    void extractCounterexample()
    {
        uValue.assign(f->numVars(), 0);
        for (Var x : f->universals())
            uValue[x] = ces.modelValue(x).isTrue() ? 1 : 0;
    }

    /// Instantiate every matrix clause the counterexample's universal part
    /// falsifies over the repair variables.  Returns false when the repair
    /// solver derives top-level unsatisfiability (the formula is FALSE).
    bool addRepairConstraints(CegarStats& stats)
    {
        for (const Clause& c : f->matrix().clauses()) {
            bool satByUniversal = false;
            for (Lit l : c.lits()) {
                if (f->isUniversal(l.var()) &&
                    (uValue[l.var()] != 0) != l.negative()) {
                    satByUniversal = true;
                    break;
                }
            }
            if (satByUniversal) continue;

            std::vector<Lit> inst;
            std::string key;
            for (Lit l : c.lits()) {
                if (f->isUniversal(l.var())) continue;
                ExistState& st = stateOf(l.var());
                RuleClass& rule = classOf(st, stats);
                inst.push_back(Lit(rule.z, l.negative()));
            }
            key.reserve(inst.size() * 9);
            for (Lit l : inst) {
                key += std::to_string(l.code());
                key += ',';
            }
            if (!rsSeen.insert(std::move(key)).second) continue;
            if (!rs.addClause(std::move(inst))) return false;
        }
        return true;
    }

    /// Pull the latest repair model into every rule's current value.
    void syncRuleValues()
    {
        for (ExistState& st : exist)
            for (RuleClass& rule : st.classes)
                rule.currentValue = rs.modelValue(rule.z).isTrue();
    }

    /// The learned lists as AIG Skolem functions: an ITE chain over the
    /// (mutually exclusive) class cubes with the false default at the
    /// bottom.  Support is structurally inside D_y.
    AigSkolemCertificate buildSkolem() const
    {
        AigSkolemCertificate cert;
        cert.aig = std::make_shared<Aig>();
        Aig& aig = *cert.aig;
        for (const ExistState& st : exist) {
            AigEdge fn = aig.constFalse();
            for (const RuleClass& rule : st.classes) {
                AigEdge cube = aig.constTrue();
                for (Lit l : rule.cube)
                    cube = aig.mkAnd(cube, aig.variable(l.var()) ^ l.negative());
                const AigEdge val =
                    rule.currentValue ? aig.constTrue() : aig.constFalse();
                fn = aig.mkIte(cube, val, fn);
            }
            cert.functions.emplace(st.y, fn);
        }
        return cert;
    }
};

CegarSolver::CegarSolver(CegarOptions opts)
    : impl_(std::make_unique<Impl>()), opts_(std::move(opts))
{
}

CegarSolver::~CegarSolver() = default;

SolveResult CegarSolver::solve(const DqbfFormula& f)
{
    OBS_SPAN(span, "cegar.solve");
    impl_ = std::make_unique<Impl>(); // solve() is restartable
    Impl& im = *impl_;
    im.f = &f;
    stats_ = CegarStats{};
    skolem_.reset();

    im.exist.reserve(f.existentials().size());
    for (Var y : f.existentials()) {
        ExistState st;
        st.y = y;
        st.deps = &f.dependencies(y);
        im.existIdx.emplace(y, im.exist.size());
        im.exist.push_back(std::move(st));
    }

    // An empty or selector-conflicting negated matrix means no universal
    // assignment can falsify anything: trivially TRUE.
    const bool negatedMatrixConsistent = im.encodeNegatedMatrix();

    for (;;) {
        fault::checkpoint("cegar-refine");
        if (opts_.deadline.expired()) return deadlineExceededResult(opts_.deadline);
        ++stats_.refinements;
        OBS_COUNT("cegar.refinements", 1);

        SolveResult ce = SolveResult::Unsat;
        if (negatedMatrixConsistent && !im.cesTopConflict) {
            im.armDefaults();
            if (im.cesTopConflict) {
                ce = SolveResult::Unsat;
            } else {
                ce = im.ces.solve(im.cesAssumptions(), opts_.deadline);
            }
        }
        stats_.abstractionVars = im.ces.numVars() + im.rs.numVars();
        OBS_GAUGE_MAX("cegar.abstraction_vars", stats_.abstractionVars);
        if (ce == SolveResult::Timeout)
            return deadlineExceededResult(opts_.deadline);
        if (ce == SolveResult::Unsat) {
            // No counterexample left: the lists are Skolem functions.
            if (opts_.computeSkolem) skolem_ = im.buildSkolem();
            return SolveResult::Sat;
        }

        im.extractCounterexample();
        ++stats_.counterexamples;
        if (!im.addRepairConstraints(stats_) || im.rs.inConflict())
            return SolveResult::Unsat;
        stats_.abstractionVars = im.ces.numVars() + im.rs.numVars();
        OBS_GAUGE_MAX("cegar.abstraction_vars", stats_.abstractionVars);
        if (opts_.ruleLimit != 0 && stats_.rulesLearned > opts_.ruleLimit)
            return SolveResult::Memout;

        const SolveResult repair = im.rs.solve({}, opts_.deadline);
        if (repair == SolveResult::Timeout)
            return deadlineExceededResult(opts_.deadline);
        if (repair == SolveResult::Unsat) return SolveResult::Unsat;
        im.syncRuleValues();
    }
}

} // namespace hqs
