// Clausal-abstraction CEGAR for DQBF (the "Clausal Abstraction for DQBF"
// algorithm family): learn one ordered decision list per existential
// variable over its dependency set, refined from counterexamples, until
// the lists are Skolem functions (TRUE) or the accumulated constraints on
// any candidate lists become irreducibly conflicting (FALSE).
//
// Two incremental SAT solvers cooperate:
//
//  * The counterexample solver (the abstraction oracle) holds the negated
//    matrix — one selector variable per clause, selector -> every literal
//    of the clause false, plus "some selector" — conjoined with the
//    decision-list encoding: per projection class (y, pi) over D_y a
//    rule-fire variable F (F <-> the cube pi), a value variable V with
//    F -> (y <-> V), a no-rule-fired chain N_k <-> N_{k-1} & -F_k, and a
//    per-refinement guarded default clause G & N & -> y = default.  The
//    fire/value/chain clauses are permanent; only the guard unit and the
//    V-pinning assumptions change per refinement, so the solver stays
//    incremental.  UNSAT here means no universal assignment falsifies the
//    matrix under the current lists: the lists ARE Skolem functions and
//    the formula is TRUE.
//
//  * The repair solver decides whether ANY assignment of rule values is
//    consistent with every counterexample seen: one variable z_{y,pi} per
//    projection class — reused across counterexamples that agree on pi,
//    which is exactly Henkin consistency — and, per counterexample u, the
//    instantiation over z of every matrix clause whose universal literals
//    u falsifies.  UNSAT here means no Skolem functions exist at all: the
//    conflict is irreducible and the formula is FALSE.
//
// Each refinement adds at least one instantiation constraint the current
// repair model falsifies (else the counterexample solver could not have
// found the counterexample), and the constraint space is finite, so the
// loop terminates.
//
// On TRUE the learned lists convert directly into AIG Skolem functions
// (an ITE chain over the mutually exclusive class cubes with the default
// at the bottom), feeding the existing certificate pipeline unchanged:
// cert::extractCertificate serializes them into the artifact the
// independent dqbf_check verifies.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/skolem_recorder.hpp"

namespace hqs {

struct CegarOptions {
    Deadline deadline;
    /// Budget on learned rules (projection classes) across all
    /// existentials — the engine's nodeLimit analogue; exceeding it
    /// returns Memout.  0 = unlimited.
    std::size_t ruleLimit = 0;
    /// Build the AIG Skolem certificate on Sat (skolemCertificate()).
    bool computeSkolem = false;
};

struct CegarStats {
    std::size_t refinements = 0;     ///< counterexample/repair rounds
    std::size_t rulesLearned = 0;    ///< projection classes created
    std::size_t abstractionVars = 0; ///< SAT variables across both solvers
    std::size_t counterexamples = 0; ///< universal assignments recorded
};

class CegarSolver {
public:
    explicit CegarSolver(CegarOptions opts = {});
    ~CegarSolver();
    CegarSolver(const CegarSolver&) = delete;
    CegarSolver& operator=(const CegarSolver&) = delete;

    /// Decide @p f.  Sat/Unsat on success; Timeout/Memout on budget
    /// exhaustion (cooperatively, at refinement granularity).
    SolveResult solve(const DqbfFormula& f);

    const CegarStats& stats() const { return stats_; }

    /// The learned decision lists as AIG Skolem functions; present after
    /// solve() returned Sat with CegarOptions::computeSkolem set.
    const std::optional<AigSkolemCertificate>& skolemCertificate() const
    {
        return skolem_;
    }

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    CegarOptions opts_;
    CegarStats stats_;
    std::optional<AigSkolemCertificate> skolem_;
};

} // namespace hqs
