// Guarded execution: structured failures, a resource watchdog, and the
// batch scheduler's degradation ladder.
//
// The paper's evaluation runs 1820 instances under an 8 GB / 3600 s budget,
// so resource exhaustion is the common case.  runGuarded() executes one
// engine call and guarantees the process survives whatever that call does:
//
//   * every exception (std::bad_alloc, ParseError, an injected fault, any
//     engine bug) is converted into a FailureInfo carried alongside the
//     SolveResult instead of unwinding into the worker pool;
//   * a watchdog thread polls the process RSS and fires the run's
//     CancelToken with CancelReason::Memout before the OS OOM-killer would
//     act, so the solver unwinds cooperatively and reports Memout;
//   * an external kill switch (batch shutdown) is forwarded into the run.
//
// The failure taxonomy (FailureKind) is shared by the thread pool, the
// portfolio racer, and the batch scheduler's JSONL output.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"

namespace hqs {

/// What went wrong, taxonomized.  `None` means the run completed without a
/// structured failure (its SolveResult may still be Timeout/Unknown).
enum class FailureKind {
    None,
    ParseError,    ///< malformed input (cnf/dimacs.cpp ParseError)
    BadAlloc,      ///< allocation failure (std::bad_alloc, real or injected)
    RssLimit,      ///< guard watchdog tripped the RSS budget
    InjectedFault, ///< fault::InjectedFault from an armed checkpoint
    EngineError,   ///< any other exception escaping an engine
    Disagreement,  ///< two engines returned contradictory conclusive verdicts
    Cancelled,     ///< run abandoned by an external kill switch
    ClientGone,    ///< caller disconnected mid-run (CancelReason::Disconnected)
    WorkerCrash,   ///< the worker process executing the run died (supervisor)
};

const char* toString(FailureKind k);

/// Structured failure record: what kind, where, and the exception text.
struct FailureInfo {
    FailureKind kind = FailureKind::None;
    std::string site;  ///< injection site / subsystem ("" when unknown)
    std::string what;  ///< exception message or human-readable detail

    explicit operator bool() const { return kind != FailureKind::None; }
};

/// Classify the in-flight exception of a catch block into a FailureInfo.
/// Call with std::current_exception(); never throws.
FailureInfo classifyException(const std::exception_ptr& e);

/// Current process resident-set size in bytes; 0 when the platform gives no
/// cheap answer (non-Linux).
std::size_t readRssBytes();

struct GuardOptions {
    /// Wall-clock budget for the guarded call (cancel tokens are attached by
    /// the guard itself; see `cancel`).
    Deadline deadline = Deadline::unlimited();
    /// External kill switch, forwarded into the run by the watchdog.
    std::optional<CancelToken> cancel;
    /// Fire a cooperative Memout when process RSS exceeds this many bytes
    /// (0 = no RSS watchdog).  NOTE: RSS is process-wide; with several
    /// guarded runs in flight the first budget breach degrades all of them,
    /// which is the intended behavior one step before the OOM-killer.
    std::size_t rssLimitBytes = 0;
    /// Memory probe override for tests (default: readRssBytes).
    std::function<std::size_t()> memoryProbe;
    /// Watchdog poll interval.
    double watchdogPollMilliseconds = 10.0;
};

struct GuardedOutcome {
    SolveResult result = SolveResult::Unknown;
    FailureInfo failure;          ///< kind == None on a clean run
    std::size_t peakRssBytes = 0; ///< highest probe reading (0 without watchdog)
};

/// Run @p body under the guard.  The Deadline handed to @p body carries the
/// guard's internal CancelToken: the body must poll it (all solvers do) and
/// return deadlineExceededResult() on expiry.  Exceptions thrown by the body
/// are classified, never propagated.
GuardedOutcome runGuarded(const GuardOptions& opts,
                          const std::function<SolveResult(const Deadline&)>& body);

// ----------------------------------------------------------------- ladder

/// One rung of the batch scheduler's degradation ladder: a cheaper engine
/// configuration tried after the previous rung died on a resource budget or
/// crashed.  Scales/flags apply relative to the batch options.
struct DegradationRung {
    std::string name;            ///< JSONL `rung` value ("full", "no-fraig", ...)
    bool fraig = true;           ///< FRAIG sweeping on this rung
    double nodeLimitScale = 1.0; ///< multiplies the configured node budget
    bool bddBackend = false;     ///< use the BDD elimination fallback engine
    double backoffSeconds = 0.0; ///< sleep before attempting this rung
};

/// The default ladder: full -> FRAIG off -> node budget halved -> BDD
/// fallback engine.  Backoffs are tiny: rungs exist to shed memory pressure,
/// not to wait out external services.
std::vector<DegradationRung> defaultDegradationLadder();

/// Per-rung counters accumulated by the batch scheduler.
struct RungStats {
    std::string name;
    std::size_t attempts = 0;   ///< jobs that ran this rung
    std::size_t conclusive = 0; ///< verdicts (Sat/Unsat) produced here
    std::size_t memouts = 0;    ///< attempts that died on a resource budget
    std::size_t failures = 0;   ///< attempts with a structured failure
};

} // namespace hqs
