// Batch job scheduler: shard a set of .dqdimacs instances across a worker
// pool with per-job wall-clock, AIG-node, and RSS budgets.
//
// Each job parses one file and solves it with either the paper's HQS
// configuration or a portfolio race.  Every attempt runs under the guard
// layer (guard.hpp): exceptions become structured FailureInfo records, and
// an optional RSS watchdog converts imminent memory exhaustion into a
// cooperative Memout.  A job that dies on a resource budget (or crashes)
// walks down a configurable degradation ladder — full -> FRAIG off -> node
// budget halved -> BDD fallback engine — so a memout resolves into the
// cheapest configuration that still answers instead of burning the rest of
// its wall-clock.
//
// Results stream out as one JSON object per line (JSONL).  The stream
// doubles as a journal: readJournal() parses it back (tolerating a
// truncated final line from a killed run), and conclusiveInstances() tells
// a resuming run which instances it can skip.  `dqbf_batch --resume` wires
// the two together.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/result.hpp"
#include "src/cache/result_cache.hpp"
#include "src/runtime/guard.hpp"
#include "src/strategy/spec.hpp"

namespace hqs {

struct BatchOptions {
    /// Worker threads (0 = std::thread::hardware_concurrency()).
    std::size_t numWorkers = 0;
    /// Per-job wall-clock budget in seconds (0 = unlimited).
    double jobTimeoutSeconds = 0.0;
    /// Per-job AIG-node budget, the stand-in for the paper's 8 GB memout
    /// (0 = unlimited; also caps the iDQ ground-clause count in portfolio
    /// mode).  Rungs of the degradation ladder scale this down.
    std::size_t nodeLimit = 0;
    /// Process-RSS budget in bytes (0 = no watchdog).  The guard layer fires
    /// a cooperative Memout before the OS OOM-killer would act.  RSS is
    /// process-wide: under concurrent jobs the first breach degrades every
    /// running job, which is the intended load-shedding behavior.
    std::size_t rssLimitBytes = 0;
    /// FRAIG sweep threshold forwarded to HQS (node count above which the
    /// main loop sweeps).  Exposed mainly so tests can force a sweep on
    /// small instances; 0 keeps the solver default.
    std::size_t fraigThresholdNodes = 0;
    /// Solve each instance with a portfolio race instead of single HQS.
    bool portfolio = false;
    /// Extract a Skolem certificate for every SAT verdict and self-check it
    /// through the independent parser/checker; the outcome lands in each
    /// row's `certificate` block.  BDD-backend rungs cannot record Skolem
    /// traces and skip extraction.
    bool certify = false;
    /// In portfolio mode: race only the first N default engines (0 = all).
    std::size_t portfolioEngines = 0;
    /// Degradation ladder; rung 0 is the primary configuration.  An attempt
    /// that ends in Memout or a crash-style failure moves to the next rung
    /// (after that rung's backoff).  Resize to one rung to disable retries.
    std::vector<DegradationRung> ladder = defaultDegradationLadder();
    /// Solve canonically identical instances (same cache::canonicalKey) only
    /// once per run: the first occurrence in input order is the
    /// representative, later duplicates copy its row with `dedup_of` naming
    /// it.  Instances that fail to parse are never grouped.
    bool dedup = true;
    /// Solve delta families through a shared solve session (`dqbf_batch
    /// --session-group`): instances whose filename stem matches up to the
    /// last `_` (foo_1.dqdimacs, foo_2.dqdimacs, ...) and that share an
    /// identical quantifier prefix are grouped; the clause-multiset
    /// intersection becomes the session's base formula and each instance
    /// solves as an add-group/solve/retract delta, reusing untouched
    /// connected components across the family.  Singletons, DQCIR
    /// instances, and prefix mismatches fall back to cold solves; session
    /// rows carry a `session` block and skip the degradation ladder.
    bool sessionGroup = false;
    /// Optional cross-run result cache, consulted before the ladder and
    /// updated after conclusive verdicts.  How it is consulted follows
    /// `strategy`'s cache policy (default: read and write).  A cache-layer
    /// failure degrades to a miss; it never fails the job.
    std::shared_ptr<cache::ResultCache> resultCache;
    /// Optional strategy spec: when set it supplies the degradation ladder,
    /// the portfolio lineup, and the cache policy mode, and its name tags
    /// the strategy.rung.* metrics.
    std::optional<strategy::StrategySpec> strategy;
    /// Fires to abandon the whole batch: running jobs unwind with Timeout,
    /// queued jobs are reported as cancelled without being solved.
    CancelToken cancel;
};

/// Per-instance solver metrics pulled from the metrics registry scope the
/// job ran under (src/obs/): phase wall-clock, peak AIG cone, elimination
/// counts.  All zero when the obs instrumentation is compiled out
/// (-DHQS_OBS=OFF) or when the entry was journaled by an older build.
struct BatchJobMetrics {
    double preprocessMs = 0.0; ///< CNF preprocessing
    double elimMs = 0.0;       ///< Theorem-1/2 + unit/pure elimination
    double qbfMs = 0.0;        ///< linearized-QBF backend
    double fraigMs = 0.0;      ///< FRAIG sweeps
    std::int64_t peakAigNodes = 0;  ///< peak matrix cone size
    std::int64_t eliminations = 0;  ///< all quantifier eliminations performed
    std::int64_t copies = 0;        ///< existential copies from Theorem 1

    bool any() const
    {
        return preprocessMs != 0 || elimMs != 0 || qbfMs != 0 || fraigMs != 0 ||
               peakAigNodes != 0 || eliminations != 0 || copies != 0;
    }
};

/// Engine-family accounting of one portfolio race: which family's racer
/// won, and the best result each family reached.  Empty outside portfolio
/// mode (any() = false).
struct BatchJobFamilies {
    std::string winner; ///< api::engineFamily of the winning racer
    /// family -> most conclusive result any of its racers returned, in
    /// first-appearance order of the lineup.
    std::vector<std::pair<std::string, std::string>> raced;

    bool any() const { return !raced.empty(); }
};

/// Certificate outcome of one SAT verdict under BatchOptions::certify.
struct BatchJobCertificate {
    bool present = false;    ///< a certificate was extracted for this verdict
    bool valid = false;      ///< independent checker accepted it
    std::string status;      ///< checker status ("ok", "refuted", ...)
    double extractMs = 0.0;  ///< extraction + serialization time
    double checkMs = 0.0;    ///< independent check time
    std::int64_t sizeNodes = 0; ///< AND nodes across the function cones

    bool any() const { return present; }
};

/// Result of one instance, in input order.
struct BatchJobResult {
    std::string instance;  ///< path as given
    SolveResult result = SolveResult::Unknown;
    double wallMilliseconds = 0.0;
    /// Engine that produced the verdict: "hqs" or the portfolio winner's
    /// name ("" while no engine was definitive).
    std::string engine;
    unsigned attempts = 0;   ///< rungs tried (1 = answered at the full config)
    bool degraded = false;   ///< verdict came from a rung below "full"
    std::string rung;        ///< name of the rung that produced the verdict
    /// Structured failure from the final attempt (kind None on clean runs).
    FailureInfo failure;
    std::string error;       ///< human-readable mirror of `failure.what`
    /// Registry metrics of the final attempt; survives a JSONL round-trip,
    /// so --resume keeps the fields of already-solved instances.
    BatchJobMetrics metrics;
    /// Certificate outcome (present only under BatchOptions::certify on a
    /// SAT verdict); survives a JSONL round-trip like `metrics`.
    BatchJobCertificate certificate;
    /// Engine-family win/loss block of the final portfolio race (empty in
    /// single-engine mode); the winner survives a JSONL round-trip.
    BatchJobFamilies families;
    /// Instance this row was deduplicated against ("" = solved itself).
    /// Set, the row is a copy of `dedup_of`'s row: same verdict, engine,
    /// rung, and certificate outcome.
    std::string dedupOf;
    /// Verdict came from the result cache instead of a solve (rung is
    /// "cache" and attempts is 0).
    bool cached = false;
    /// Session-group accounting (BatchOptions::sessionGroup): the family
    /// stem this instance solved under ("" = cold solve), and the session's
    /// incremental reuse for this delta solve.
    std::string sessionGroup;
    std::size_t sessionComponents = 0;
    std::size_t sessionReused = 0;
    std::int64_t sessionConeNodesSaved = 0;
};

/// Serialize @p r as one JSONL row, terminating newline included.  The row
/// is always a single line (writeJsonString escapes embedded newlines), so
/// emitting it with one write keeps the journal torn-row free: a killed
/// writer can truncate the *last* row but never interleave two rows, and
/// concurrent appenders to an O_APPEND fd cannot shear each other's rows.
std::string toJsonlLine(const BatchJobResult& r);

/// Write toJsonlLine(r) to @p os as a single os.write() call (on an
/// unbuffered or line-buffered stream this is one write(2) per row).
void writeJsonl(const BatchJobResult& r, std::ostream& os);

/// Parse one JSONL line previously produced by writeJsonl.  Returns false
/// on garbage (e.g. the torn final line of a killed run).
bool readJsonl(const std::string& line, BatchJobResult& out);

/// Parse a whole journal stream, skipping unparsable lines.  When a run was
/// resumed into the same file an instance can appear more than once; the
/// last entry wins.
std::vector<BatchJobResult> readJournal(std::istream& in);

/// The instances of @p journal that already carry a conclusive (Sat/Unsat)
/// verdict — the set a resuming run skips.
std::unordered_set<std::string> conclusiveInstances(const std::vector<BatchJobResult>& journal);

class BatchScheduler {
public:
    explicit BatchScheduler(BatchOptions opts = {}) : opts_(std::move(opts)) {}

    /// All *.dqdimacs and *.dqcir files directly inside @p dir, sorted by
    /// name.  DQCIR instances lower through the circuit front end at solve
    /// time and never touch the result cache (cache.bypass.format).
    static std::vector<std::string> collectInstances(const std::string& dir);

    /// Solve every file, @p opts.numWorkers at a time.  Results come back in
    /// input order; when @p jsonl is non-null each result is additionally
    /// streamed to it (in completion order) as soon as its job finishes.
    std::vector<BatchJobResult> run(const std::vector<std::string>& files,
                                    std::ostream* jsonl = nullptr);

    /// Per-rung counters for the last run(), one entry per ladder rung.
    const std::vector<RungStats>& rungStats() const { return rungStats_; }

private:
    BatchOptions opts_;
    std::vector<RungStats> rungStats_;
};

} // namespace hqs
