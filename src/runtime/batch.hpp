// Batch job scheduler: shard a set of .dqdimacs instances across a worker
// pool with per-job wall-clock and AIG-node budgets.
//
// Each job parses one file and solves it with either the paper's HQS
// configuration or a portfolio race.  A job that dies on the node budget is
// retried once with a degraded fail-fast configuration (FRAIG off, node
// limit halved) so a memout resolves quickly instead of burning the rest of
// its wall-clock.  Results stream out as one JSON object per line (JSONL),
// the format the bench harness ingests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/result.hpp"

namespace hqs {

struct BatchOptions {
    /// Worker threads (0 = std::thread::hardware_concurrency()).
    std::size_t numWorkers = 0;
    /// Per-job wall-clock budget in seconds (0 = unlimited).
    double jobTimeoutSeconds = 0.0;
    /// Per-job AIG-node budget, the stand-in for the paper's 8 GB memout
    /// (0 = unlimited; also caps the iDQ ground-clause count in portfolio
    /// mode).
    std::size_t nodeLimit = 0;
    /// Solve each instance with a portfolio race instead of single HQS.
    bool portfolio = false;
    /// In portfolio mode: race only the first N default engines (0 = all).
    std::size_t portfolioEngines = 0;
    /// Retry a Memout once with the degraded config (FRAIG off, nodeLimit
    /// halved) before reporting it.
    bool retryOnMemout = true;
    /// Fires to abandon the whole batch: running jobs unwind with Timeout,
    /// queued jobs are reported as cancelled without being solved.
    CancelToken cancel;
};

/// Result of one instance, in input order.
struct BatchJobResult {
    std::string instance;  ///< path as given
    SolveResult result = SolveResult::Unknown;
    double wallMilliseconds = 0.0;
    /// Engine that produced the verdict: "hqs" or the portfolio winner's
    /// name ("" while no engine was definitive).
    std::string engine;
    unsigned attempts = 0;  ///< 1, or 2 after a memout retry
    bool degraded = false;  ///< verdict came from the degraded retry config
    std::string error;      ///< non-empty on parse failure / cancellation
};

/// Serialize @p r as a single JSONL line (no trailing newline appended by
/// the caller — this writes one).
void writeJsonl(const BatchJobResult& r, std::ostream& os);

class BatchScheduler {
public:
    explicit BatchScheduler(BatchOptions opts = {}) : opts_(opts) {}

    /// All *.dqdimacs files directly inside @p dir, sorted by name.
    static std::vector<std::string> collectInstances(const std::string& dir);

    /// Solve every file, @p opts.numWorkers at a time.  Results come back in
    /// input order; when @p jsonl is non-null each result is additionally
    /// streamed to it (in completion order) as soon as its job finishes.
    std::vector<BatchJobResult> run(const std::vector<std::string>& files,
                                    std::ostream* jsonl = nullptr);

private:
    BatchOptions opts_;
};

} // namespace hqs
