#include "src/runtime/api.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace hqs::api {

const char* toString(EngineSpec::Kind kind)
{
    switch (kind) {
        case EngineSpec::Kind::Hqs: return "hqs";
        case EngineSpec::Kind::HqsBdd: return "hqs-bdd";
        case EngineSpec::Kind::Idq: return "idq";
        case EngineSpec::Kind::Expand: return "expand";
        case EngineSpec::Kind::Cegar: return "cegar";
        case EngineSpec::Kind::Portfolio: return "portfolio";
    }
    return "?";
}

const char* engineFamily(EngineSpec::Kind kind)
{
    switch (kind) {
        case EngineSpec::Kind::Hqs:
        case EngineSpec::Kind::HqsBdd: return "elimination";
        case EngineSpec::Kind::Idq:
        case EngineSpec::Kind::Expand: return "instantiation";
        case EngineSpec::Kind::Cegar: return "cegar";
        case EngineSpec::Kind::Portfolio: return "portfolio";
    }
    return "?";
}

std::optional<EngineSpec> parseEngineSpec(const std::string& text)
{
    EngineSpec spec;
    if (text.empty() || text == "hqs") return spec;
    if (text == "hqs-bdd") {
        spec.kind = EngineSpec::Kind::HqsBdd;
        return spec;
    }
    if (text == "idq") {
        spec.kind = EngineSpec::Kind::Idq;
        return spec;
    }
    if (text == "expand") {
        spec.kind = EngineSpec::Kind::Expand;
        return spec;
    }
    if (text == "cegar") {
        spec.kind = EngineSpec::Kind::Cegar;
        return spec;
    }
    if (text == "portfolio") {
        spec.kind = EngineSpec::Kind::Portfolio;
        return spec;
    }
    if (text.rfind("portfolio:", 0) == 0) {
        std::size_t n = 0;
        if (!parseSize(text.substr(10), &n) || n == 0) return std::nullopt;
        spec.kind = EngineSpec::Kind::Portfolio;
        spec.portfolioEngines = n;
        return spec;
    }
    return std::nullopt;
}

std::vector<RequestError> SolveRequest::validate() const
{
    std::vector<RequestError> errors;
    if (!parsedEngine()) {
        errors.push_back({"engine", "unknown engine \"" + engine +
                                        "\" (hqs | hqs-bdd | idq | expand | "
                                        "cegar | portfolio[:N])"});
    }
    // The one non-finite/negative budget gate: every front end funnels its
    // timeout here, whether it arrived as --timeout seconds, a timeout-ms
    // header, or a JSONL field.
    if (!std::isfinite(timeoutSeconds)) {
        errors.push_back({"timeout", "timeout must be finite"});
    } else if (timeoutSeconds < 0) {
        errors.push_back({"timeout", "timeout must be >= 0"});
    }
    // Certification needs a Skolem-producing backend: the AIG elimination
    // trace (hqs) or the CEGAR decision lists.  idq/expand never build
    // Skolem functions and hqs-bdd replays through a backend that does not
    // record.
    if (certify) {
        if (const auto spec = parsedEngine();
            spec && spec->kind != EngineSpec::Kind::Hqs &&
            spec->kind != EngineSpec::Kind::Cegar &&
            spec->kind != EngineSpec::Kind::Portfolio) {
            errors.push_back({"certify", "certification requires a "
                                         "Skolem-producing engine (hqs, cegar, "
                                         "or portfolio), not \"" +
                                             engine + "\""});
        }
    }
    if (!cacheControl.empty() && cacheControl != "on" && cacheControl != "off" &&
        cacheControl != "bypass") {
        errors.push_back({"cache-control", "must be on, off, or bypass, not \"" +
                                               cacheControl + "\""});
    }
    if (!format.empty() && format != "dqdimacs" && format != "dqcir") {
        errors.push_back({"format", "must be dqdimacs or dqcir, not \"" +
                                        format + "\""});
    }
    for (char c : strategy) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_' || c == '.')) {
            errors.push_back({"strategy",
                              "strategy names use [A-Za-z0-9._-] only"});
            break;
        }
    }
    return errors;
}

std::string SolveRequest::firstError() const
{
    const std::vector<RequestError> errors = validate();
    if (errors.empty()) return {};
    return errors.front().field + ": " + errors.front().message;
}

bool parseSeconds(const std::string& text, double* out)
{
    if (text.empty()) return false;
    try {
        std::size_t pos = 0;
        *out = std::stod(text, &pos);
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseMilliseconds(const std::string& text, double* outSeconds)
{
    double ms = 0;
    if (!parseSeconds(text, &ms)) return false;
    *outSeconds = ms / 1000.0;
    return true;
}

bool parseSize(const std::string& text, std::size_t* out)
{
    if (text.empty()) return false;
    try {
        std::size_t pos = 0;
        *out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseMegabytes(const std::string& text, std::size_t* outBytes)
{
    std::size_t mb = 0;
    if (!parseSize(text, &mb)) return false;
    if (mb > std::numeric_limits<std::size_t>::max() / (1024 * 1024)) return false;
    *outBytes = mb * 1024 * 1024;
    return true;
}

} // namespace hqs::api
