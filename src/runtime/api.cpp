#include "src/runtime/api.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace hqs::api {

const char* toString(EngineSpec::Kind kind)
{
    switch (kind) {
        case EngineSpec::Kind::Hqs: return "hqs";
        case EngineSpec::Kind::HqsBdd: return "hqs-bdd";
        case EngineSpec::Kind::Idq: return "idq";
        case EngineSpec::Kind::Expand: return "expand";
        case EngineSpec::Kind::Cegar: return "cegar";
        case EngineSpec::Kind::Portfolio: return "portfolio";
    }
    return "?";
}

const char* engineFamily(EngineSpec::Kind kind)
{
    switch (kind) {
        case EngineSpec::Kind::Hqs:
        case EngineSpec::Kind::HqsBdd: return "elimination";
        case EngineSpec::Kind::Idq:
        case EngineSpec::Kind::Expand: return "instantiation";
        case EngineSpec::Kind::Cegar: return "cegar";
        case EngineSpec::Kind::Portfolio: return "portfolio";
    }
    return "?";
}

std::optional<EngineSpec> parseEngineSpec(const std::string& text)
{
    EngineSpec spec;
    if (text.empty() || text == "hqs") return spec;
    if (text == "hqs-bdd") {
        spec.kind = EngineSpec::Kind::HqsBdd;
        return spec;
    }
    if (text == "idq") {
        spec.kind = EngineSpec::Kind::Idq;
        return spec;
    }
    if (text == "expand") {
        spec.kind = EngineSpec::Kind::Expand;
        return spec;
    }
    if (text == "cegar") {
        spec.kind = EngineSpec::Kind::Cegar;
        return spec;
    }
    if (text == "portfolio") {
        spec.kind = EngineSpec::Kind::Portfolio;
        return spec;
    }
    if (text.rfind("portfolio:", 0) == 0) {
        std::size_t n = 0;
        if (!parseSize(text.substr(10), &n) || n == 0) return std::nullopt;
        spec.kind = EngineSpec::Kind::Portfolio;
        spec.portfolioEngines = n;
        return spec;
    }
    return std::nullopt;
}

std::vector<RequestError> SolveRequest::validate() const
{
    std::vector<RequestError> errors;
    if (!parsedEngine()) {
        errors.push_back({"engine", "unknown engine \"" + engine +
                                        "\" (hqs | hqs-bdd | idq | expand | "
                                        "cegar | portfolio[:N])"});
    }
    // The one non-finite/negative budget gate: every front end funnels its
    // timeout here, whether it arrived as --timeout seconds, a timeout-ms
    // header, or a JSONL field.
    if (!std::isfinite(timeoutSeconds)) {
        errors.push_back({"timeout", "timeout must be finite"});
    } else if (timeoutSeconds < 0) {
        errors.push_back({"timeout", "timeout must be >= 0"});
    }
    // Certification needs a Skolem-producing backend: the AIG elimination
    // trace (hqs) or the CEGAR decision lists.  idq/expand never build
    // Skolem functions and hqs-bdd replays through a backend that does not
    // record.
    if (certify) {
        if (const auto spec = parsedEngine();
            spec && spec->kind != EngineSpec::Kind::Hqs &&
            spec->kind != EngineSpec::Kind::Cegar &&
            spec->kind != EngineSpec::Kind::Portfolio) {
            errors.push_back({"certify", "certification requires a "
                                         "Skolem-producing engine (hqs, cegar, "
                                         "or portfolio), not \"" +
                                             engine + "\""});
        }
    }
    if (!cacheControl.empty() && cacheControl != "on" && cacheControl != "off" &&
        cacheControl != "bypass") {
        errors.push_back({"cache-control", "must be on, off, or bypass, not \"" +
                                               cacheControl + "\""});
    }
    if (!format.empty() && format != "dqdimacs" && format != "dqcir") {
        errors.push_back({"format", "must be dqdimacs or dqcir, not \"" +
                                        format + "\""});
    }
    for (char c : strategy) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_' || c == '.')) {
            errors.push_back({"strategy",
                              "strategy names use [A-Za-z0-9._-] only"});
            break;
        }
    }
    // Session ops (protocol v2).  Stateless requests must not smuggle
    // session fields past the gate, and session solves run on the hqs
    // engine only: elimination is what the per-component reuse saves, and
    // the engine whose Skolem traces merged certificates are built from.
    if (!op.empty() && op != "open" && op != "delta" && op != "solve" &&
        op != "close") {
        errors.push_back({"op", "unknown op \"" + op +
                                    "\" (open | delta | solve | close)"});
    }
    if (op.empty()) {
        if (!session.empty())
            errors.push_back({"session", "session id requires an op"});
        if (!addGroup.empty() || !deltaClauses.empty() || !retractGroup.empty() ||
            !gate.empty() || !assume.empty()) {
            errors.push_back({"delta",
                              "delta fields require op \"delta\" or \"solve\""});
        }
    } else {
        if (op == "open" && !session.empty()) {
            errors.push_back({"session",
                              "op \"open\" allocates the id; do not pass one"});
        }
        if (op != "open" && session.empty()) {
            errors.push_back({"session", "op \"" + op + "\" requires a session id"});
        }
        if (op != "delta" && (!addGroup.empty() || !deltaClauses.empty() ||
                              !retractGroup.empty() || !gate.empty())) {
            errors.push_back({"delta", "group/gate deltas require op \"delta\""});
        }
        if (!assume.empty() && op != "delta" && op != "solve") {
            errors.push_back({"assume",
                              "assumptions require op \"delta\" or \"solve\""});
        }
        if (!deltaClauses.empty() && addGroup.empty()) {
            errors.push_back({"delta", "clauses require an add_group name"});
        }
        if (const auto spec = parsedEngine();
            spec && spec->kind != EngineSpec::Kind::Hqs) {
            errors.push_back({"engine", "session ops run on the hqs engine, not \"" +
                                            engine + "\""});
        }
    }
    return errors;
}

std::string SolveRequest::firstError() const
{
    const std::vector<RequestError> errors = validate();
    if (errors.empty()) return {};
    return errors.front().field + ": " + errors.front().message;
}

bool parseSeconds(const std::string& text, double* out)
{
    if (text.empty()) return false;
    try {
        std::size_t pos = 0;
        *out = std::stod(text, &pos);
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseMilliseconds(const std::string& text, double* outSeconds)
{
    double ms = 0;
    if (!parseSeconds(text, &ms)) return false;
    *outSeconds = ms / 1000.0;
    return true;
}

bool parseSize(const std::string& text, std::size_t* out)
{
    if (text.empty()) return false;
    try {
        std::size_t pos = 0;
        *out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseMegabytes(const std::string& text, std::size_t* outBytes)
{
    std::size_t mb = 0;
    if (!parseSize(text, &mb)) return false;
    if (mb > std::numeric_limits<std::size_t>::max() / (1024 * 1024)) return false;
    *outBytes = mb * 1024 * 1024;
    return true;
}

// ----- the one request-ingress table ---------------------------------------

namespace {

bool applyTimeoutMs(SolveRequest& r, const std::string& text)
{
    return parseMilliseconds(text, &r.timeoutSeconds);
}

bool applyRssLimitMb(SolveRequest& r, const std::string& text)
{
    // Accept the JSONL number syntax ("256" or "256.0") but keep the
    // narrowing guard validate() cannot see.
    double mb = 0;
    if (!parseSeconds(text, &mb)) return false;
    if (!std::isfinite(mb) || mb < 0) return false;
    if (mb > 0) r.rssLimitBytes = static_cast<std::size_t>(mb) * 1024 * 1024;
    return true;
}

bool applyEngine(SolveRequest& r, const std::string& text)
{
    r.engine = text.empty() ? "hqs" : text;
    return true;
}

bool applyCertify(SolveRequest& r, const std::string& text)
{
    if (text == "1" || text == "true") r.certify = true;
    else if (text == "0" || text == "false") r.certify = false;
    else return false;
    return true;
}

bool applyCache(SolveRequest& r, const std::string& text)
{
    r.cacheControl = text;
    return true;
}

bool applyStrategy(SolveRequest& r, const std::string& text)
{
    r.strategy = text;
    return true;
}

bool applyFormat(SolveRequest& r, const std::string& text)
{
    r.format = text;
    return true;
}

bool applyOp(SolveRequest& r, const std::string& text) { r.op = text; return true; }
bool applySession(SolveRequest& r, const std::string& text)
{
    r.session = text;
    return true;
}
bool applyAddGroup(SolveRequest& r, const std::string& text)
{
    r.addGroup = text;
    return true;
}
bool applyClauses(SolveRequest& r, const std::string& text)
{
    r.deltaClauses = text;
    return true;
}
bool applyRetractGroup(SolveRequest& r, const std::string& text)
{
    r.retractGroup = text;
    return true;
}
bool applyGate(SolveRequest& r, const std::string& text)
{
    r.gate = text;
    return true;
}
bool applyAssume(SolveRequest& r, const std::string& text)
{
    r.assume = text;
    return true;
}

} // namespace

const std::vector<RequestFieldSpec>& requestFields()
{
    // canonical (JSONL) | HTTP header | CLI stem | deprecated JSONL | deprecated HTTP
    //
    // "cache" replaces v1's "cache_control" field and "cache-control"
    // header (the old header shadowed standard HTTP Cache-Control
    // semantics; its v2 spelling is "solver-cache").  Session fields are
    // JSONL-only: the stateful protocol lives on the line-oriented surface.
    static const std::vector<RequestFieldSpec> kFields = {
        {"timeout_ms", "timeout-ms", "timeout-ms", "", "", &applyTimeoutMs},
        {"rss_limit_mb", "rss-limit-mb", "rss-limit-mb", "", "", &applyRssLimitMb},
        {"engine", "engine", "engine", "", "", &applyEngine},
        {"certify", "certify", "certify", "", "", &applyCertify},
        {"cache", "solver-cache", "cache", "cache_control", "cache-control",
         &applyCache},
        {"strategy", "strategy", "strategy", "", "", &applyStrategy},
        {"format", "format", "format", "", "", &applyFormat},
        {"op", "", "", "", "", &applyOp},
        {"session", "", "", "", "", &applySession},
        {"add_group", "", "", "", "", &applyAddGroup},
        {"clauses", "", "", "", "", &applyClauses},
        {"retract_group", "", "", "", "", &applyRetractGroup},
        {"gate", "", "", "", "", &applyGate},
        {"assume", "", "", "", "", &applyAssume},
    };
    return kFields;
}

std::string parseRequestFields(SolveRequest& out, RequestSurface surface,
                               const FieldGetter& get,
                               std::vector<FieldWarning>* warnings)
{
    for (const RequestFieldSpec& spec : requestFields()) {
        const char* name = spec.canonical;
        const char* deprecated = spec.deprecatedJsonl;
        if (surface == RequestSurface::Http) {
            name = spec.http;
            deprecated = spec.deprecatedHttp;
        } else if (surface == RequestSurface::Cli) {
            name = spec.cli;
            deprecated = "";
        }
        if (name[0] == '\0') continue;

        std::optional<std::string> text = get(name);
        if (!text && deprecated[0] != '\0') {
            text = get(deprecated);
            if (text && warnings) {
                warnings->push_back({deprecated,
                                     std::string("use ") + name + " instead"});
            }
            if (text) name = deprecated; // report problems under the used spelling
        }
        if (!text) continue;
        if (!spec.apply(out, *text))
            return std::string("malformed ") + name;
    }
    return std::string();
}

bool applyCliRequestFlag(SolveRequest& out, const std::string& arg,
                         std::string* problem)
{
    for (const RequestFieldSpec& spec : requestFields()) {
        if (spec.cli[0] == '\0') continue;
        const std::string flag = std::string("--") + spec.cli;
        if (arg == flag && spec.apply == &applyCertify) {
            out.certify = true;
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            if (!spec.apply(out, arg.substr(flag.size() + 1)) && problem)
                *problem = std::string("malformed ") + spec.cli;
            return true;
        }
    }
    return false;
}

} // namespace hqs::api
