// Fixed-size worker pool with a bounded job queue.
//
// The runtime's two consumers have opposite shapes: the portfolio racer
// submits a handful of long jobs and needs them all started at once, the
// batch scheduler streams thousands of jobs through a few workers and needs
// back-pressure so the queue cannot grow without bound.  Both are covered by
// a classic bounded producer/consumer pool:
//
//   * submit() enqueues a job, blocking while the queue is at capacity;
//   * wait() blocks until every submitted job has finished;
//   * the destructor stops accepting work, drains the queue, and joins —
//     destruct-while-busy is safe and completes all accepted jobs.
//
// Jobs may throw: an exception escaping a job is classified into a
// FailureInfo (see guard.hpp) and recorded on the pool — the worker moves
// on to the next job and the process never std::terminates.  Jobs that need
// per-job failure reporting should still catch their own exceptions (the
// batch scheduler runs each job under runGuarded); the pool-level record is
// the last line of defense.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/guard.hpp"

namespace hqs {

class ThreadPool {
public:
    /// @p numThreads workers (clamped to >= 1); queue holds at most
    /// @p queueCapacity pending jobs (clamped to >= 1) before submit()
    /// blocks.
    explicit ThreadPool(std::size_t numThreads,
                        std::size_t queueCapacity = kDefaultQueueCapacity);

    /// Drains: completes every accepted job, then joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue @p job, blocking while the queue is full.  Safe to call from
    /// any thread, including from inside a running job (a job submitting to
    /// its own pool never blocks on a full queue deadlock-free guarantee is
    /// NOT given — avoid recursive submission near capacity).
    /// Returns false (and drops the job) iff the pool is shutting down.
    bool submit(std::function<void()> job);

    /// Block until the queue is empty and no worker is running a job.
    void wait();

    std::size_t numThreads() const { return workers_.size(); }

    /// Failures recorded from jobs whose exception escaped into the worker,
    /// in completion order.  Thread-safe; typically read after wait().
    std::vector<FailureInfo> failures() const;
    std::size_t failedJobs() const;

    /// Live saturation gauges (also exported as obs metrics `pool.queue_depth`
    /// / `pool.active` so a worker's /metrics shows fleet saturation).
    std::size_t queueDepth() const;
    std::size_t activeCount() const;

    static constexpr std::size_t kDefaultQueueCapacity = 1024;

    /// Process-wide helper pool for kernel-internal parallelism (the
    /// Theorem-1 concurrent cofactor builds).  Deliberately separate from
    /// any solve-level pool: helper jobs are leaves that never submit work
    /// themselves, so a solver thread blocking on a helper future cannot
    /// deadlock the pool its own solve runs on.  Lazily constructed, lives
    /// until process exit.
    static ThreadPool& sharedHelperPool();

private:
    struct QueuedJob {
        std::function<void()> fn;
        std::uint64_t enqueueNs = 0; ///< trace-epoch stamp for queue latency
    };

    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable workReady_;   ///< queue non-empty or stopping
    std::condition_variable spaceReady_;  ///< queue below capacity
    std::condition_variable allIdle_;     ///< queue empty and no active job
    std::deque<QueuedJob> queue_;
    std::size_t capacity_;
    std::size_t active_ = 0; ///< jobs currently executing
    bool stop_ = false;
    std::vector<FailureInfo> failures_; ///< under mu_
    std::vector<std::thread> workers_;
};

} // namespace hqs
