// Solve sessions: the stateful half of the v2 request API.
//
// A Session pins one *base* formula (DQDIMACS text, or a DQCIR circuit
// lowered through the Tseitin front end) and then accepts delta solves:
// appended/retracted named clause groups, replaced DQCIR gates, and
// per-solve assumption literals.  The effective formula of a solve is
//
//   base  +  active clause groups (in add order)  +  assumption units
//
// Incrementality is PQE-style scoping by connected components: the
// effective formula splits into variable-connected components (a clause
// connects the variables it mentions), each component is rendered as a
// self-contained DQBF over a dense local numbering — dependency sets
// restricted to the component's universals, which is sound in both
// directions because a universal that never occurs in a component's matrix
// cannot help or hurt its Skolem functions — and solved independently.  The
// session keeps a per-component result cache keyed by the component's
// cache::canonicalKey, so a delta re-runs elimination only on the cones
// (components) it actually touched; untouched components are answered from
// the cache and their skipped elimination work is accounted in
// session.cone_nodes_saved.
//
// Verdict combination is the DQBF conjunction rule over disjoint variable
// sets: UNSAT if any component is UNSAT, SAT when all are SAT (Skolem
// functions compose independently), the worst inconclusive outcome
// otherwise.  Certificates for delta solves are re-extracted against the
// *effective* formula: per-component Skolem AIGs are imported into one
// manager, their local inputs substituted back to the effective variable
// numbering, and the merged artifact is byte-checkable by dqbf_check
// exactly like a cold solve's.
//
// Sessions run on the HQS engine only (api::SolveRequest::validate()
// rejects anything else): elimination is the engine whose per-component
// work the decomposition actually saves, and the one that records Skolem
// traces for the merged certificates.
//
// Lifecycle: SessionManager owns the id -> Session table with an explicit
// close op, a TTL, and an LRU bound on resident sessions; the service layer
// additionally closes every session its connection owned on disconnect.
// Sessions are reference-counted: an op running against a session keeps it
// alive through its shared_ptr even if the manager evicts it mid-solve.
//
// Thread model: SessionManager is thread-safe; a Session itself is NOT —
// callers must serialize ops per session (the service keeps a per-session
// FIFO op queue on its loop thread; batch --session-group drives each
// family's session from one worker).
//
// Fault checkpoint: `session-delta` fires between delta validation and
// commit (HQS_FAULT=session-delta:1), proving delta application is
// transactional — an injected fault unwinds with the session state intact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/cache/canonical.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/skolem_recorder.hpp"

namespace hqs {

/// Client mistakes against a session (unknown group, malformed clause
/// text, gate replacement on a CNF session, ...).  Front ends map this to a
/// typed error row instead of a guard-layer failure.
class SessionError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One delta against a session's effective formula.  All payloads are
/// text so the JSONL protocol can carry them as ordinary string fields.
struct SessionDelta {
    /// Name of a clause group to append (with @ref addClauses as its
    /// clauses, DIMACS style: "1 -2 0 3 0").  Group names are unique while
    /// active; re-adding a retracted name is fine.
    std::string addGroup;
    std::string addClauses;
    /// Name of an active clause group to retract.
    std::string retractGroup;
    /// DQCIR gate replacement, e.g. "g2 = or(g1, -x2)": the existing
    /// definition of g2 is replaced and the base re-lowered.  DQCIR
    /// sessions only.
    std::string gate;

    bool empty() const
    {
        return addGroup.empty() && addClauses.empty() && retractGroup.empty() &&
               gate.empty();
    }
};

struct SessionSolveOptions {
    Deadline deadline = Deadline::unlimited();
    std::size_t nodeLimit = 0; ///< per-component live-AIG-node budget
    bool certify = false;      ///< extract a merged Skolem certificate on Sat
};

/// Outcome of one session solve, with the incremental accounting the
/// response rows and obs metrics report.
struct SessionSolveOutcome {
    SolveResult result = SolveResult::Unknown;
    /// Serialized certificate of a certify+Sat solve ("" otherwise, or when
    /// a component's Skolem trace was unavailable).
    std::string certificate;
    /// The effective formula this solve decided, as DQDIMACS text
    /// (assumptions included as unit clauses).  A cold solve of this text
    /// must agree with @ref result — the differential suite's contract.
    std::string effectiveText;
    std::size_t components = 0;        ///< components of the effective formula
    std::size_t reusedComponents = 0;  ///< answered from the component cache
    std::int64_t coneNodesSaved = 0;   ///< peak-AIG-node work skipped via reuse
    /// Solve carried assumption literals: the effective formula is
    /// request-local, so callers skip whole-formula canonicalization and
    /// the shared result cache (counted as cache.bypass.session).
    bool usedAssumptions = false;
};

class Session {
public:
    /// Open a session on @p text.  @p format is "dqdimacs", "dqcir", or ""
    /// (content sniff).  Throws ParseError on malformed input.
    Session(std::string id, const std::string& text, const std::string& format);

    const std::string& id() const { return id_; }
    bool circuitBased() const { return !circuitLines_.empty(); }
    std::size_t baseVars() const { return base_.matrix.numVars(); }
    std::size_t baseClauses() const { return base_.matrix.numClauses(); }
    std::size_t activeGroups() const { return groups_.size(); }
    std::uint64_t deltasApplied() const { return deltasApplied_; }

    /// Apply @p delta transactionally: everything is validated and staged
    /// first, the `session-delta` fault checkpoint fires, then the staged
    /// state is committed — any throw before commit leaves the session
    /// unchanged.  Throws SessionError on client mistakes.
    void applyDelta(const SessionDelta& delta);

    /// Solve the current effective formula under @p assume (DIMACS
    /// literals, whitespace separated, "" = none).  Throws SessionError on
    /// malformed assumption text.
    SessionSolveOutcome solve(const SessionSolveOptions& opts,
                              const std::string& assume = std::string());

private:
    struct Component; // one variable-connected component, dense local form

    /// One solved component, keyed by its canonical hash.
    struct ComponentEntry {
        SolveResult result = SolveResult::Unknown;
        std::int64_t peakNodes = 0; ///< what re-solving it would cost again
        /// Exact local DQDIMACS of the solve that filled this entry; Skolem
        /// reuse requires byte equality (the canonical key identifies the
        /// formula up to renaming, but the stored functions are over one
        /// concrete local numbering).
        std::string localText;
        std::optional<AigSkolemCertificate> skolem; ///< local-numbered functions
    };

    ParsedQdimacs effectiveParsed(const std::vector<Lit>& assumptions) const;
    std::vector<Component> decompose(const ParsedQdimacs& effective) const;
    std::string buildCertificate(const ParsedQdimacs& effective,
                                 const std::vector<Component>& comps,
                                 const std::vector<const ComponentEntry*>& entries) const;

    std::string id_;
    ParsedQdimacs base_;
    /// DQCIR sessions keep the circuit source lines; gate replacement edits
    /// one line and re-lowers into base_.
    std::vector<std::string> circuitLines_;
    std::vector<std::pair<std::string, std::vector<Clause>>> groups_;
    std::unordered_map<cache::CanonicalKey, ComponentEntry> componentCache_;
    std::uint64_t deltasApplied_ = 0;
};

struct SessionManagerOptions {
    /// Resident-session bound; opening past it evicts the least recently
    /// used session (0 = unbounded).
    std::size_t maxSessions = 64;
    /// Idle lifetime in seconds (0 = no expiry), checked lazily on every
    /// open/find.
    double ttlSeconds = 0;
    /// Unix-epoch milliseconds; tests inject a fake clock to age sessions.
    std::function<std::int64_t()> clock;
};

struct SessionManagerStats {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;  ///< explicit close ops (incl. closeOwned)
    std::uint64_t evicted = 0; ///< TTL + LRU evictions
};

/// Thread-safe id -> Session table with TTL/LRU eviction and per-owner
/// teardown (the service's disconnect-closes-session hook).
class SessionManager {
public:
    explicit SessionManager(SessionManagerOptions opts = {});

    /// Open a session on @p text ("s-1", "s-2", ... ids).  Returns the id,
    /// or "" with @p error filled on a parse failure.
    std::string open(const std::string& text, const std::string& format,
                     std::uint64_t owner, std::string* error);

    /// The session for @p id, touching its LRU/TTL stamp; nullptr when the
    /// id is unknown, expired, or evicted (the typed `session-gone` case).
    std::shared_ptr<Session> find(const std::string& id);

    /// Close @p id; false when it was already gone.
    bool close(const std::string& id);

    /// Close every session opened under @p owner; returns how many.
    std::size_t closeOwned(std::uint64_t owner);

    std::size_t size() const;
    SessionManagerStats stats() const;

private:
    struct Entry {
        std::shared_ptr<Session> session;
        std::uint64_t owner = 0;
        std::int64_t lastUsedMs = 0;
    };

    std::int64_t nowMs() const;
    void expireLocked(std::int64_t now);
    void evictOverBudgetLocked();

    SessionManagerOptions opts_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> sessions_;
    std::uint64_t nextId_ = 1;
    SessionManagerStats stats_;
};

} // namespace hqs
