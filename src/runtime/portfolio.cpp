#include "src/runtime/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "src/cegar/cegar_solver.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/obs/obs.hpp"
#include "src/runtime/thread_pool.hpp"

namespace hqs {

PortfolioOptions PortfolioSolver::optionsFromRequest(const api::SolveRequest& request)
{
    PortfolioOptions opts;
    if (request.timeoutSeconds > 0) opts.deadline = Deadline::in(request.timeoutSeconds);
    opts.nodeLimit = request.nodeLimit;
    if (const std::optional<api::EngineSpec> spec = request.parsedEngine();
        spec && spec->kind == api::EngineSpec::Kind::Portfolio) {
        opts.maxEngines = spec->portfolioEngines;
    }
    opts.certify = request.certify;
    return opts;
}

std::vector<PortfolioEngine> PortfolioSolver::defaultEngines(std::size_t nodeLimit, bool fraig)
{
    return enginesFromSpec(strategy::defaultStrategySpec(), nodeLimit, fraig);
}

std::vector<PortfolioEngine> PortfolioSolver::enginesFromSpec(
    const strategy::StrategySpec& spec, std::size_t nodeLimit, bool fraig)
{
    std::vector<PortfolioEngine> engines;
    engines.reserve(spec.engines.size());
    for (const strategy::EngineRung& rung : spec.engines) {
        const std::optional<api::EngineSpec> parsed =
            api::parseEngineSpec(rung.engine);
        if (!parsed || parsed->kind == api::EngineSpec::Kind::Portfolio)
            continue; // parseStrategySpec rejects these; belt and braces
        const auto scaledRaw = static_cast<std::size_t>(
            static_cast<double>(nodeLimit) * rung.nodeLimitScale);
        const std::size_t scaledLimit =
            nodeLimit == 0 ? 0 : std::max<std::size_t>(1, scaledRaw);
        const bool rungFraig = fraig && rung.fraig;

        PortfolioEngine engine;
        engine.name = rung.name;
        engine.family = api::engineFamily(parsed->kind);
        switch (parsed->kind) {
        case api::EngineSpec::Kind::Hqs:
        case api::EngineSpec::Kind::HqsBdd: {
            const HqsOptions::Selection sel = rung.selection == "greedy"
                                                  ? HqsOptions::Selection::Greedy
                                                  : HqsOptions::Selection::MaxSat;
            const HqsOptions::Backend backend =
                parsed->kind == api::EngineSpec::Kind::HqsBdd
                    ? HqsOptions::Backend::BddElimination
                    : HqsOptions::Backend::AigElimination;
            engine.run = [scaledLimit, rungFraig, sel,
                          backend](const DqbfFormula& f, const Deadline& dl) {
                HqsOptions opts;
                opts.selection = sel;
                opts.backend = backend;
                opts.nodeLimit = scaledLimit;
                opts.fraig = rungFraig;
                opts.deadline = dl;
                HqsSolver solver(opts);
                return solver.solve(f);
            };
            // Certifying variant for the AIG-elimination configurations:
            // Skolem recording on, and on Sat the reconstructed functions
            // are serialized into the caller's slot as a checkable
            // artifact.  The BDD backend cannot record Skolem traces.
            if (parsed->kind == api::EngineSpec::Kind::Hqs) {
                engine.runCertify = [scaledLimit, rungFraig,
                                     sel](const DqbfFormula& f, const Deadline& dl,
                                          std::string* certOut) {
                    HqsOptions opts;
                    opts.selection = sel;
                    opts.backend = HqsOptions::Backend::AigElimination;
                    opts.nodeLimit = scaledLimit;
                    opts.fraig = rungFraig;
                    opts.deadline = dl;
                    opts.computeSkolem = true;
                    HqsSolver solver(opts);
                    const SolveResult r = solver.solve(f);
                    if (r == SolveResult::Sat && certOut &&
                        solver.skolemCertificate()) {
                        *certOut = cert::toCertificateString(cert::extractCertificate(
                            f, *solver.skolemCertificate()));
                    }
                    return r;
                };
            }
            break;
        }
        case api::EngineSpec::Kind::Idq:
            engine.run = [scaledLimit](const DqbfFormula& f, const Deadline& dl) {
                IdqOptions opts;
                opts.deadline = dl;
                opts.groundClauseLimit = scaledLimit;
                IdqSolver solver(opts);
                return solver.solve(f);
            };
            break;
        case api::EngineSpec::Kind::Expand: {
            // Full expansion is exponential in the universal count; beyond
            // the rung's cap it would only burn a core.
            const std::size_t maxUniversals = rung.maxUniversals;
            engine.run = [maxUniversals](const DqbfFormula& f, const Deadline& dl) {
                if (f.universals().size() > maxUniversals)
                    return SolveResult::Unknown;
                return expansionDqbf(f, dl);
            };
            break;
        }
        case api::EngineSpec::Kind::Cegar:
            // The rung's node budget caps learned rules: both grow with the
            // engine's memory footprint, so the degradation ladder's scaling
            // shrinks the CEGAR abstraction the same way it shrinks AIGs.
            engine.run = [scaledLimit](const DqbfFormula& f, const Deadline& dl) {
                CegarOptions opts;
                opts.deadline = dl;
                opts.ruleLimit = scaledLimit;
                CegarSolver solver(opts);
                return solver.solve(f);
            };
            engine.runCertify = [scaledLimit](const DqbfFormula& f, const Deadline& dl,
                                              std::string* certOut) {
                CegarOptions opts;
                opts.deadline = dl;
                opts.ruleLimit = scaledLimit;
                opts.computeSkolem = true;
                CegarSolver solver(opts);
                const SolveResult r = solver.solve(f);
                if (r == SolveResult::Sat && certOut && solver.skolemCertificate()) {
                    *certOut = cert::toCertificateString(cert::extractCertificate(
                        f, *solver.skolemCertificate()));
                }
                return r;
            };
            break;
        case api::EngineSpec::Kind::Portfolio:
            continue;
        }
        engines.push_back(std::move(engine));
    }
    return engines;
}

SolveResult PortfolioSolver::judgeDisagreement(const std::string& contradiction)
{
    // A conclusive contradiction always pits Sat against Unsat.  A valid
    // certificate proves the Sat side outright; a certificate the checker
    // rejects means the Sat claim failed its own proof obligation, and the
    // Unsat side is vindicated.  Timeouts and absent certificates decide
    // nothing.
    bool sawRejected = false;
    std::string rejectedWhat;
    for (EngineRunStats& es : stats_.engines) {
        if (es.result != SolveResult::Sat || es.certificate.empty()) continue;
        cert::Certificate parsed;
        std::string detail;
        cert::CheckStatus status =
            cert::parseCertificateString(es.certificate, parsed, detail);
        if (status == cert::CheckStatus::Ok) {
            status = cert::checkCertificate(parsed, opts_.deadline).status;
        }
        es.certCheck = cert::toString(status);
        OBS_COUNT("portfolio.disagreement_certchecks", 1);
        if (status == cert::CheckStatus::Ok) {
            es.winner = true;
            stats_.winnerName = es.name;
            stats_.winnerCertificate = es.certificate;
            stats_.failure = {FailureKind::Disagreement, "portfolio.certcheck",
                              contradiction + "; certificate check vindicated " +
                                  es.name};
            return SolveResult::Sat;
        }
        if (status != cert::CheckStatus::SolverTimeout) {
            sawRejected = true;
            rejectedWhat = contradiction + "; certificate of " + es.name +
                           " rejected (" + cert::toString(status) + ")";
        }
    }
    if (sawRejected) {
        for (EngineRunStats& es : stats_.engines) {
            if (es.result != SolveResult::Unsat) continue;
            es.winner = true;
            stats_.winnerName = es.name;
            stats_.failure = {FailureKind::Disagreement, "portfolio.certcheck",
                              rejectedWhat + ", vindicated " + es.name};
            return SolveResult::Unsat;
        }
    }
    return SolveResult::Unknown;
}

SolveResult PortfolioSolver::solve(const DqbfFormula& f)
{
    using Clock = std::chrono::steady_clock;

    std::vector<PortfolioEngine> engines =
        opts_.engines.empty() ? defaultEngines(opts_.nodeLimit) : opts_.engines;
    if (opts_.maxEngines != 0 && engines.size() > opts_.maxEngines)
        engines.resize(opts_.maxEngines);

    stats_ = PortfolioStats{};
    stats_.engines.resize(engines.size());
    for (std::size_t i = 0; i < engines.size(); ++i) {
        stats_.engines[i].name = engines[i].name;
        stats_.engines[i].family = engines[i].family;
    }
    if (engines.empty()) return SolveResult::Unknown;

    Timer total;
    OBS_SPAN(raceSpan, "portfolio.race");
    OBS_COUNT("portfolio.races", 1);
#if HQS_OBS_ENABLED
    if (!opts_.strategyName.empty()) {
        // Spec-driven lineup: per-rung race counters under the strategy.*
        // namespace (dynamic names, so the OBS_COUNT cache does not apply).
        for (const PortfolioEngine& e : engines)
            obs::currentRegistry().add(
                obs::metric("strategy.rung." + e.name + ".races",
                            obs::MetricKind::Counter),
                1);
    }
#endif
    // Racers run on pool workers whose thread-local registry would be the
    // global one; bind them to the registry current *here* so per-solve
    // MetricScopes (batch jobs, CLI --stats) see the engines' metrics.
    obs::Registry& parentRegistry = obs::currentRegistry();
    std::vector<std::string> spanLabels;
    spanLabels.reserve(engines.size());
    for (const PortfolioEngine& e : engines) spanLabels.push_back("engine:" + e.name);
    std::vector<CancelToken> tokens(engines.size());

    std::mutex mu;
    std::optional<std::size_t> winner;
    std::optional<Clock::time_point> cancelBroadcastAt;
    SolveResult verdict = SolveResult::Unknown;

    {
        ThreadPool pool(engines.size(), engines.size());
        for (std::size_t i = 0; i < engines.size(); ++i) {
            pool.submit([&, i] {
                // Each racer observes the shared budget, the portfolio-wide
                // kill switch, and its own loser-cancellation token.
                obs::BindRegistry bind(parentRegistry);
                OBS_SPAN(engineSpan, spanLabels[i].c_str());
                Deadline dl = opts_.deadline.withCancel(tokens[i]);
                Timer t;
                SolveResult r = SolveResult::Unknown;
                FailureInfo failure;
                std::string certText;
                try {
                    if (opts_.certify && engines[i].runCertify) {
                        r = engines[i].runCertify(f, dl, &certText);
                    } else {
                        r = engines[i].run(f, dl);
                    }
                } catch (...) {
                    // An engine crashing must not take the race down; record
                    // what it died on so the stats tell the story.
                    failure = classifyException(std::current_exception());
                    if (failure.kind == FailureKind::BadAlloc) r = SolveResult::Memout;
                }
                const double elapsed = t.elapsedMilliseconds();
                const Clock::time_point returnedAt = Clock::now();

                std::lock_guard<std::mutex> lock(mu);
                EngineRunStats& es = stats_.engines[i];
                es.result = r;
                es.failure = std::move(failure);
                es.certificate = std::move(certText);
                es.elapsedMilliseconds = elapsed;
                if (isConclusive(r) && !winner) {
                    winner = i;
                    verdict = r;
                    es.winner = true;
                    cancelBroadcastAt = Clock::now();
                    for (std::size_t j = 0; j < tokens.size(); ++j)
                        if (j != i) tokens[j].requestCancel();
                } else {
                    if (isConclusive(r) && isConclusive(verdict) && r != verdict)
                        stats_.disagreement = true;
                    if (cancelBroadcastAt) {
                        es.cancelLatencyMilliseconds =
                            std::chrono::duration<double, std::milli>(returnedAt -
                                                                      *cancelBroadcastAt)
                                .count();
                        OBS_OBSERVE("portfolio.cancel_latency_us",
                                    es.cancelLatencyMilliseconds * 1000.0);
#if HQS_OBS_ENABLED
                        // Labeled companion histogram: why this racer was
                        // told to stop (loser cancellation fires with User,
                        // a service client disconnect with Disconnected, the
                        // RSS watchdog with Memout).  Dynamic name, so the
                        // OBS_OBSERVE static-id cache does not apply.
                        obs::currentRegistry().observe(
                            obs::metric(std::string("portfolio.cancel_latency_us.") +
                                            toString(tokens[i].reason()),
                                        obs::MetricKind::Histogram),
                            static_cast<std::int64_t>(es.cancelLatencyMilliseconds *
                                                      1000.0));
#endif
                    }
                }
            });
        }
        // Forward the external kill switch to every racer's token, including
        // when it fires mid-race.  Polling at 1 ms keeps the monitor trivial
        // (no extra condition variables) and is far below any solver budget.
        std::atomic<bool> raceDone{false};
        std::thread monitor;
        if (opts_.cancel) {
            monitor = std::thread([&] {
                while (!raceDone.load(std::memory_order_relaxed)) {
                    if (opts_.cancel->cancelled()) {
                        // Forward the external token's reason (shutdown vs
                        // client disconnect vs memout) and stamp the
                        // broadcast time so the racers' cancel latency is
                        // measured for this path too.
                        const CancelReason why = opts_.cancel->reason();
                        const CancelReason fwd =
                            why == CancelReason::None ? CancelReason::User : why;
                        {
                            std::lock_guard<std::mutex> lock(mu);
                            if (!cancelBroadcastAt) cancelBroadcastAt = Clock::now();
                        }
                        for (CancelToken& t : tokens) t.requestCancel(fwd);
                        return;
                    }
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                }
            });
        }
        pool.wait();
        raceDone.store(true, std::memory_order_relaxed);
        if (monitor.joinable()) monitor.join();
    }

    stats_.totalMilliseconds = total.elapsedMilliseconds();

    // Cross-check every conclusive racer before answering: two engines
    // contradicting each other means at least one solver is wrong, and
    // answering with whichever happened to finish first would silently
    // launder the bug into a verdict.  When a Sat racer carries a
    // certificate, the independent checker re-judges it and its verdict
    // breaks the tie; otherwise report Unknown with a structured
    // disagreement record.
    for (const EngineRunStats& a : stats_.engines) {
        if (!isConclusive(a.result)) continue;
        for (const EngineRunStats& b : stats_.engines) {
            if (isConclusive(b.result) && a.result != b.result) {
                stats_.disagreement = true;
                const std::string contradiction = a.name + "=" + toString(a.result) +
                                                  " vs " + b.name + "=" +
                                                  toString(b.result);
                stats_.winnerName.clear();
                for (EngineRunStats& es : stats_.engines) es.winner = false;
                if (const SolveResult judged = judgeDisagreement(contradiction);
                    isConclusive(judged)) {
                    return judged;
                }
                stats_.failure = {FailureKind::Disagreement, "portfolio",
                                  contradiction};
                return SolveResult::Unknown;
            }
        }
    }

    if (winner) {
        stats_.winnerName = engines[*winner].name;
        stats_.winnerFamily = engines[*winner].family;
        stats_.winnerCertificate = stats_.engines[*winner].certificate;
#if HQS_OBS_ENABLED
        // Dynamic metric name (one counter per engine), so the per-call-site
        // static cache of OBS_COUNT does not apply.
        obs::currentRegistry().add(
            obs::metric("portfolio.win." + stats_.winnerName, obs::MetricKind::Counter),
            1);
        // Family-level win/loss accounting: the winner's family scores a
        // win, every other family that raced scores a loss — win rates per
        // engine family fall straight out of the two counters.
        if (!stats_.winnerFamily.empty()) {
            obs::currentRegistry().add(
                obs::metric("portfolio.family." + stats_.winnerFamily + ".wins",
                            obs::MetricKind::Counter),
                1);
            std::vector<std::string> lost;
            for (const PortfolioEngine& e : engines) {
                if (e.family.empty() || e.family == stats_.winnerFamily) continue;
                if (std::find(lost.begin(), lost.end(), e.family) != lost.end())
                    continue;
                lost.push_back(e.family);
                obs::currentRegistry().add(
                    obs::metric("portfolio.family." + e.family + ".losses",
                                obs::MetricKind::Counter),
                    1);
            }
        }
        if (!opts_.strategyName.empty())
            obs::currentRegistry().add(
                obs::metric("strategy.rung." + stats_.winnerName + ".wins",
                            obs::MetricKind::Counter),
                1);
#endif
        return verdict;
    }
    if (opts_.cancel && opts_.cancel->cancelled())
        stats_.failure = {FailureKind::Cancelled, "portfolio", "race cancelled"};
    // No definitive answer: report the most informative inconclusive result.
    bool sawTimeout = false, sawMemout = false;
    for (const EngineRunStats& es : stats_.engines) {
        sawTimeout |= es.result == SolveResult::Timeout;
        sawMemout |= es.result == SolveResult::Memout;
    }
    if (sawTimeout) return SolveResult::Timeout;
    if (sawMemout) return SolveResult::Memout;
    return SolveResult::Unknown;
}

} // namespace hqs
