#include "src/runtime/session.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/base/fault.hpp"
#include "src/cert/certificate.hpp"
#include "src/circuit/dqcir_parser.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/obs/obs.hpp"

namespace hqs {

namespace {

/// Parse one full-string integer; SessionError mentioning @p what otherwise.
int parseIntToken(const std::string& tok, const char* what)
{
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno != 0 ||
        v > 2'000'000'000L || v < -2'000'000'000L) {
        throw SessionError(std::string("malformed ") + what + " \"" + tok + "\"");
    }
    return static_cast<int>(v);
}

/// DIMACS clause stream "1 -2 0 3 0" -> clauses.  Every clause must be
/// 0-terminated; an explicit "0" alone is the (unsatisfiable) empty clause.
std::vector<Clause> parseDeltaClauses(const std::string& text)
{
    std::vector<Clause> out;
    Clause current;
    bool open = false;
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) {
        const int v = parseIntToken(tok, "clause literal");
        if (v == 0) {
            out.push_back(current);
            current = Clause();
            open = false;
        } else {
            current.push(Lit::fromDimacs(v));
            open = true;
        }
    }
    if (open) throw SessionError("clause group text must terminate every clause with 0");
    return out;
}

std::vector<Lit> parseAssumptions(const std::string& text)
{
    std::vector<Lit> out;
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) {
        const int v = parseIntToken(tok, "assumption literal");
        if (v == 0) throw SessionError("assumption literals must be non-zero");
        out.push_back(Lit::fromDimacs(v));
    }
    return out;
}

/// The gate name of a `name = op(args)` DQCIR line ("" when the line is
/// not a gate definition).
std::string gateNameOf(const std::string& line)
{
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return std::string();
    std::size_t b = 0;
    while (b < eq && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    std::size_t e = eq;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
    const std::string name = line.substr(b, e - b);
    if (name.empty() || name.find('(') != std::string::npos) return std::string();
    return name;
}

std::vector<std::string> splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) lines.push_back(cur);
    return lines;
}

std::string joinLines(const std::vector<std::string>& lines)
{
    std::string out;
    for (const std::string& l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// One variable-connected component of the effective formula, rendered as a
/// self-contained DQBF over a dense local numbering.
struct Session::Component {
    std::vector<Var> vars; ///< global vars, sorted ascending (== localToGlobal)
    ParsedQdimacs local;
    std::string text; ///< toDqdimacsString(local): the Skolem-reuse identity
};

Session::Session(std::string id, const std::string& text, const std::string& format)
    : id_(std::move(id))
{
    const bool circuit =
        format == "dqcir" || (format.empty() && looksLikeDqcir(text));
    if (circuit) {
        base_ = lowerDqcir(parseDqcirString(text));
        circuitLines_ = splitLines(text);
    } else {
        base_ = parseDqdimacsString(text);
    }
}

void Session::applyDelta(const SessionDelta& delta)
{
    if (delta.empty()) throw SessionError("empty delta");

    // Stage everything first; nothing below may touch member state until the
    // fault checkpoint has passed, so an injected fault (or a client
    // mistake) unwinds with the session unchanged.
    std::vector<std::string> stagedLines;
    ParsedQdimacs stagedBase;
    bool haveGate = false;
    if (!delta.gate.empty()) {
        if (!circuitBased())
            throw SessionError("gate replacement requires a DQCIR session");
        const std::string name = gateNameOf(delta.gate);
        if (name.empty())
            throw SessionError("gate replacement must look like \"name = op(args)\"");
        stagedLines = circuitLines_;
        bool found = false;
        for (std::string& line : stagedLines) {
            if (gateNameOf(line) == name) {
                line = delta.gate;
                found = true;
                break;
            }
        }
        if (!found) throw SessionError("unknown gate \"" + name + "\"");
        try {
            stagedBase = lowerDqcir(parseDqcirString(joinLines(stagedLines)));
        } catch (const ParseError& e) {
            throw SessionError(std::string("replacement gate does not parse: ") +
                               e.what());
        }
        haveGate = true;
    }

    std::size_t retractIndex = groups_.size();
    if (!delta.retractGroup.empty()) {
        for (std::size_t i = 0; i < groups_.size(); ++i) {
            if (groups_[i].first == delta.retractGroup) {
                retractIndex = i;
                break;
            }
        }
        if (retractIndex == groups_.size())
            throw SessionError("unknown clause group \"" + delta.retractGroup + "\"");
    }

    std::vector<Clause> stagedClauses;
    bool haveGroup = false;
    if (!delta.addGroup.empty() || !delta.addClauses.empty()) {
        if (delta.addGroup.empty())
            throw SessionError("clauses without a clause group name");
        for (const auto& [name, clauses] : groups_) {
            if (name == delta.addGroup && name != delta.retractGroup)
                throw SessionError("clause group \"" + name + "\" already active");
        }
        stagedClauses = parseDeltaClauses(delta.addClauses);
        haveGroup = true;
    }

    fault::checkpoint("session-delta");

    // Commit.  The component cache survives every delta: entries are keyed
    // by canonical component content, which never goes stale.
    if (haveGate) {
        circuitLines_ = std::move(stagedLines);
        base_ = std::move(stagedBase);
    }
    if (retractIndex < groups_.size())
        groups_.erase(groups_.begin() + static_cast<std::ptrdiff_t>(retractIndex));
    if (haveGroup) groups_.emplace_back(delta.addGroup, std::move(stagedClauses));
    ++deltasApplied_;
    OBS_COUNT("session.delta_solves", 1);
}

ParsedQdimacs Session::effectiveParsed(const std::vector<Lit>& assumptions) const
{
    ParsedQdimacs f = base_;
    for (const auto& [name, clauses] : groups_) {
        (void)name;
        for (const Clause& c : clauses) f.matrix.addClause(c);
    }
    for (const Lit l : assumptions) {
        f.matrix.ensureVars(l.var() + 1);
        f.matrix.addClause(Clause({l}));
    }
    return f;
}

std::vector<Session::Component> Session::decompose(const ParsedQdimacs& effective) const
{
    const Var n = effective.matrix.numVars();
    std::vector<Var> parent(n);
    for (Var v = 0; v < n; ++v) parent[v] = v;
    const auto find = [&parent](Var v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]]; // path halving
            v = parent[v];
        }
        return v;
    };

    std::vector<char> occurs(n, 0);
    for (const Clause& c : effective.matrix) {
        for (const Lit l : c) occurs[l.var()] = 1;
        for (std::size_t i = 1; i < c.size(); ++i) {
            const Var a = find(c[0].var());
            const Var b = find(c[i].var());
            if (a != b) parent[b] = a;
        }
    }

    // Components ordered by their smallest variable — deterministic, so the
    // rendered local texts (and hence Skolem reuse) are stable across solves.
    std::vector<std::size_t> compOf(n, static_cast<std::size_t>(-1));
    std::vector<Component> comps;
    for (Var v = 0; v < n; ++v) {
        if (!occurs[v]) continue;
        const Var root = find(v);
        if (compOf[root] == static_cast<std::size_t>(-1)) {
            compOf[root] = comps.size();
            comps.emplace_back();
        }
        comps[compOf[root]].vars.push_back(v);
    }

    const cert::NormalizedPrefix np = cert::normalizePrefix(effective);
    std::vector<char> isUniversal(n, 0);
    for (const Var u : np.universals)
        if (u < n) isUniversal[u] = 1;
    std::vector<std::size_t> existentialIndex(n, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < np.existentials.size(); ++i)
        if (np.existentials[i] < n) existentialIndex[np.existentials[i]] = i;

    std::vector<Var> globalToLocal(n, kNoVar);
    for (Component& comp : comps) {
        for (std::size_t i = 0; i < comp.vars.size(); ++i)
            globalToLocal[comp.vars[i]] = static_cast<Var>(i);

        comp.local.matrix.ensureVars(static_cast<Var>(comp.vars.size()));
        PrefixBlockSpec universals{QuantKind::Forall, {}};
        for (const Var v : comp.vars) {
            if (isUniversal[v]) {
                universals.vars.push_back(globalToLocal[v]);
            } else {
                DependencySpec d;
                d.var = globalToLocal[v];
                const std::size_t ei = existentialIndex[v];
                if (ei != static_cast<std::size_t>(-1)) {
                    for (const Var dep : np.deps[ei]) {
                        // Restrict to this component's universals: a
                        // universal absent from the component's matrix can
                        // neither help nor hurt its Skolem functions.
                        if (dep < n && globalToLocal[dep] != kNoVar &&
                            compOf[find(dep)] == compOf[find(v)]) {
                            d.deps.push_back(globalToLocal[dep]);
                        }
                    }
                }
                comp.local.henkin.push_back(std::move(d));
            }
        }
        if (!universals.vars.empty()) comp.local.blocks.push_back(std::move(universals));

        for (const Var v : comp.vars) globalToLocal[v] = kNoVar; // reset scratch
    }

    for (const Clause& c : effective.matrix.clauses()) {
        if (c.empty()) continue; // caller short-circuits on empty clauses
        const std::size_t idx = compOf[find(c[0].var())];
        Component& comp = comps[idx];
        // Rebuild the local view of this component's mapping on demand.
        Clause local;
        for (const Lit l : c) {
            const auto it = std::lower_bound(comp.vars.begin(), comp.vars.end(), l.var());
            local.push(Lit(static_cast<Var>(it - comp.vars.begin()), l.negative()));
        }
        comp.local.matrix.addClause(std::move(local));
    }

    for (Component& comp : comps) comp.text = toDqdimacsString(comp.local);
    return comps;
}

SessionSolveOutcome Session::solve(const SessionSolveOptions& opts,
                                   const std::string& assume)
{
    const std::vector<Lit> assumptions = parseAssumptions(assume);
    SessionSolveOutcome out;
    out.usedAssumptions = !assumptions.empty();
    if (out.usedAssumptions) OBS_COUNT("cache.bypass.session", 1);

    const ParsedQdimacs effective = effectiveParsed(assumptions);
    out.effectiveText = toDqdimacsString(effective);
    if (effective.matrix.hasEmptyClause()) {
        out.result = SolveResult::Unsat;
        return out;
    }

    const std::vector<Component> comps = decompose(effective);
    out.components = comps.size();

    std::vector<const ComponentEntry*> entries;
    std::vector<std::unique_ptr<ComponentEntry>> scratch; // inconclusive, uncached
    bool sawMemout = false, sawTimeout = false, sawUnknown = false, sawUnsat = false;
    for (const Component& comp : comps) {
        const cache::CanonicalKey key = cache::canonicalKey(comp.local);
        const auto it = componentCache_.find(key);
        const bool skolemOk =
            it != componentCache_.end() && it->second.result == SolveResult::Sat &&
            it->second.skolem && it->second.localText == comp.text;
        const bool reusable =
            it != componentCache_.end() && isConclusive(it->second.result) &&
            (!opts.certify || it->second.result == SolveResult::Unsat || skolemOk);

        const ComponentEntry* entry = nullptr;
        if (reusable) {
            ++out.reusedComponents;
            out.coneNodesSaved += it->second.peakNodes;
            entry = &it->second;
        } else {
            HqsOptions hopts;
            hopts.deadline = opts.deadline;
            hopts.nodeLimit = opts.nodeLimit;
            hopts.computeSkolem = opts.certify;
            HqsSolver solver(hopts);
            ComponentEntry fresh;
            fresh.result = solver.solve(DqbfFormula::fromParsed(comp.local));
            fresh.peakNodes = std::max<std::int64_t>(
                static_cast<std::int64_t>(solver.stats().aigKernel.peakLiveNodes),
                static_cast<std::int64_t>(solver.stats().peakConeSize));
            fresh.localText = comp.text;
            if (opts.certify && fresh.result == SolveResult::Sat &&
                solver.skolemCertificate()) {
                fresh.skolem = *solver.skolemCertificate();
            }
            if (isConclusive(fresh.result)) {
                entry = &(componentCache_[key] = std::move(fresh));
            } else {
                scratch.push_back(std::make_unique<ComponentEntry>(std::move(fresh)));
                entry = scratch.back().get();
            }
        }
        entries.push_back(entry);

        switch (entry->result) {
        case SolveResult::Unsat: sawUnsat = true; break;
        case SolveResult::Memout: sawMemout = true; break;
        case SolveResult::Timeout: sawTimeout = true; break;
        case SolveResult::Unknown: sawUnknown = true; break;
        case SolveResult::Sat: break;
        }
        if (sawUnsat) break; // the conjunction is already refuted
    }

    if (sawUnsat) {
        out.result = SolveResult::Unsat;
    } else if (sawMemout) {
        out.result = SolveResult::Memout;
    } else if (sawTimeout) {
        out.result = SolveResult::Timeout;
    } else if (sawUnknown) {
        out.result = SolveResult::Unknown;
    } else {
        out.result = SolveResult::Sat;
        if (opts.certify) out.certificate = buildCertificate(effective, comps, entries);
    }

    if (out.reusedComponents > 0) OBS_COUNT("session.reuse", 1);
    if (out.coneNodesSaved > 0)
        OBS_COUNT("session.cone_nodes_saved",
                  static_cast<std::uint64_t>(out.coneNodesSaved));
    return out;
}

std::string Session::buildCertificate(const ParsedQdimacs& effective,
                                      const std::vector<Component>& comps,
                                      const std::vector<const ComponentEntry*>& entries) const
{
    // Mirror cert::extractCertificate: the certificate binds to the
    // normalized effective formula, one function per existential in
    // declaration order, constFalse for unconstrained ones.
    const DqbfFormula f = DqbfFormula::fromParsed(effective);
    cert::Certificate cert;
    cert.formula = f.toParsed();
    cert.hash = cert::formulaHash(cert.formula);
    cert.aig = std::make_shared<Aig>();

    std::unordered_map<Var, AigEdge> merged;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        if (!entries[i]->skolem) return std::string(); // no trace, no artifact
        const AigSkolemCertificate& sk = *entries[i]->skolem;
        const std::vector<Var>& localToGlobal = comps[i].vars;
        Substitution toGlobal;
        for (const auto& [localVar, edge] : sk.functions) {
            if (localVar >= localToGlobal.size()) continue; // solver-internal var
            const AigEdge imported = cert.aig->importCone(*sk.aig, edge);
            toGlobal.clear();
            for (const Var lv : cert.aig->support(imported)) {
                if (lv >= localToGlobal.size()) return std::string();
                toGlobal.set(lv, cert.aig->variable(localToGlobal[lv]));
            }
            merged[localToGlobal[localVar]] =
                toGlobal.empty() ? imported : cert.aig->substitute(imported, toGlobal);
        }
    }

    for (const Var y : f.existentials()) {
        const auto it = merged.find(y);
        cert.functions.push_back(it == merged.end() ? cert.aig->constFalse()
                                                    : it->second);
    }
    return cert::toCertificateString(cert);
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(SessionManagerOptions opts) : opts_(std::move(opts)) {}

std::int64_t SessionManager::nowMs() const
{
    if (opts_.clock) return opts_.clock();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void SessionManager::expireLocked(std::int64_t now)
{
    if (opts_.ttlSeconds <= 0) return;
    const auto ttlMs = static_cast<std::int64_t>(opts_.ttlSeconds * 1e3);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (now - it->second.lastUsedMs > ttlMs) {
            it = sessions_.erase(it);
            ++stats_.evicted;
            OBS_COUNT("session.evicted", 1);
        } else {
            ++it;
        }
    }
}

void SessionManager::evictOverBudgetLocked()
{
    if (opts_.maxSessions == 0) return;
    while (sessions_.size() > opts_.maxSessions) {
        auto oldest = sessions_.begin();
        for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
            if (it->second.lastUsedMs < oldest->second.lastUsedMs) oldest = it;
        }
        sessions_.erase(oldest);
        ++stats_.evicted;
        OBS_COUNT("session.evicted", 1);
    }
}

std::string SessionManager::open(const std::string& text, const std::string& format,
                                 std::uint64_t owner, std::string* error)
{
    std::shared_ptr<Session> session;
    std::string id;
    {
        std::lock_guard<std::mutex> lock(mu_);
        id = "s-" + std::to_string(nextId_++);
    }
    try {
        session = std::make_shared<Session>(id, text, format);
    } catch (const std::exception& e) {
        if (error) *error = e.what();
        return std::string();
    }
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t now = nowMs();
    expireLocked(now);
    sessions_[id] = Entry{std::move(session), owner, now};
    evictOverBudgetLocked();
    ++stats_.opened;
    OBS_COUNT("session.open", 1);
    return id;
}

std::shared_ptr<Session> SessionManager::find(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t now = nowMs();
    expireLocked(now);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return nullptr;
    it->second.lastUsedMs = now;
    return it->second.session;
}

bool SessionManager::close(const std::string& id)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    sessions_.erase(it);
    ++stats_.closed;
    return true;
}

std::size_t SessionManager::closeOwned(std::uint64_t owner)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t closed = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second.owner == owner) {
            it = sessions_.erase(it);
            ++closed;
        } else {
            ++it;
        }
    }
    stats_.closed += closed;
    return closed;
}

std::size_t SessionManager::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
}

SessionManagerStats SessionManager::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace hqs
