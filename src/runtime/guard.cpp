#include "src/runtime/guard.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <new>
#include <thread>

#include "src/base/fault.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/obs/obs.hpp"

#ifdef __linux__
#include <unistd.h>

#include <cstdio>
#endif

namespace hqs {

const char* toString(FailureKind k)
{
    switch (k) {
        case FailureKind::None: return "none";
        case FailureKind::ParseError: return "parse-error";
        case FailureKind::BadAlloc: return "bad-alloc";
        case FailureKind::RssLimit: return "rss-limit";
        case FailureKind::InjectedFault: return "injected-fault";
        case FailureKind::EngineError: return "engine-error";
        case FailureKind::Disagreement: return "disagreement";
        case FailureKind::Cancelled: return "cancelled";
        case FailureKind::ClientGone: return "client-gone";
        case FailureKind::WorkerCrash: return "worker-crash";
    }
    return "invalid";
}

FailureInfo classifyException(const std::exception_ptr& e)
{
    FailureInfo info;
    if (!e) return info;
    try {
        std::rethrow_exception(e);
    } catch (const fault::InjectedFault& f) {
        info = {FailureKind::InjectedFault, f.site(), f.what()};
    } catch (const ParseError& p) {
        info = {FailureKind::ParseError, "parse", p.what()};
    } catch (const std::bad_alloc& b) {
        info = {FailureKind::BadAlloc, "", b.what()};
    } catch (const std::exception& x) {
        info = {FailureKind::EngineError, "", x.what()};
    } catch (...) {
        info = {FailureKind::EngineError, "", "non-standard exception"};
    }
    return info;
}

std::size_t readRssBytes()
{
#ifdef __linux__
    // /proc/self/statm field 2 is the resident set in pages; reading it is a
    // few microseconds, fine for a 10 ms poll loop.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (!f) return 0;
    unsigned long sizePages = 0, rssPages = 0;
    const int n = std::fscanf(f, "%lu %lu", &sizePages, &rssPages);
    std::fclose(f);
    if (n != 2) return 0;
    return static_cast<std::size_t>(rssPages) *
           static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
    return 0;
#endif
}

GuardedOutcome runGuarded(const GuardOptions& opts,
                          const std::function<SolveResult(const Deadline&)>& body)
{
    GuardedOutcome out;

    CancelToken inner;
    const Deadline dl = opts.deadline.withCancel(inner);

    // A token fired before the run starts (e.g. the client disconnected
    // while the job sat in the admission queue) is forwarded synchronously,
    // so the body sees an expired deadline from its first poll instead of
    // racing the watchdog's first wakeup.
    if (opts.cancel && opts.cancel->cancelled()) {
        const CancelReason why = opts.cancel->reason();
        inner.requestCancel(why == CancelReason::None ? CancelReason::User : why);
    }

    // The watchdog owns two duties: forward the external kill switch, and
    // trip a cooperative Memout when RSS crosses the budget.  Without either
    // duty no thread is spawned.  It sleeps on a condition variable the
    // completing run notifies, so joining it costs a wakeup, not the rest of
    // a poll interval — sub-millisecond guarded runs (the solver service's
    // common case) would otherwise pay the full poll in added latency.
    const bool wantWatchdog = opts.cancel.has_value() || opts.rssLimitBytes != 0;
    std::mutex watchdogMu;
    std::condition_variable watchdogCv;
    bool done = false; // guarded by watchdogMu
    std::atomic<bool> rssTripped{false};
    std::atomic<std::size_t> peakRss{0};
    std::thread watchdog;
    if (wantWatchdog) {
        const auto poll = std::chrono::duration<double, std::milli>(
            opts.watchdogPollMilliseconds > 0 ? opts.watchdogPollMilliseconds : 10.0);
        watchdog = std::thread([&, poll] {
            const std::function<std::size_t()> probe =
                opts.memoryProbe ? opts.memoryProbe : std::function<std::size_t()>(&readRssBytes);
            std::unique_lock<std::mutex> lock(watchdogMu);
            while (!done) {
                if (opts.cancel && opts.cancel->cancelled()) {
                    // Forward the external token's reason so the unwinding
                    // solver (and the failure record below) can tell a
                    // shutdown from a client disconnect or external memout.
                    const CancelReason why = opts.cancel->reason();
                    inner.requestCancel(why == CancelReason::None ? CancelReason::User : why);
                    return;
                }
                if (opts.rssLimitBytes != 0) {
                    const std::size_t rss = probe();
                    if (rss > peakRss.load(std::memory_order_relaxed))
                        peakRss.store(rss, std::memory_order_relaxed);
                    if (rss > opts.rssLimitBytes) {
                        rssTripped.store(true, std::memory_order_release);
                        inner.requestCancel(CancelReason::Memout);
                        return;
                    }
                }
                watchdogCv.wait_for(lock, poll);
            }
        });
    }

    OBS_COUNT("guard.runs", 1);
    obs::clearDeathSite();
    try {
        out.result = body(dl);
    } catch (...) {
        out.failure = classifyException(std::current_exception());
        // Exceptions that carry no site of their own get the innermost span
        // the unwind crossed (see obs::deathSite()): "bad-alloc somewhere"
        // becomes "bad-alloc in hqs.fraig".
        if (out.failure.site.empty()) out.failure.site = obs::deathSite();
        OBS_COUNT("guard.failures", 1);
        // A memory failure maps onto the resource-budget outcome the rest of
        // the runtime already understands (degradation ladder, retry).
        out.result = out.failure.kind == FailureKind::BadAlloc ? SolveResult::Memout
                                                               : SolveResult::Unknown;
    }

    {
        std::lock_guard<std::mutex> lock(watchdogMu);
        done = true;
    }
    watchdogCv.notify_all();
    if (watchdog.joinable()) watchdog.join();
    out.peakRssBytes = peakRss.load(std::memory_order_relaxed);
    if (out.peakRssBytes != 0) OBS_GAUGE_MAX("guard.peak_rss_bytes", out.peakRssBytes);

    if (!isConclusive(out.result)) {
        if (rssTripped.load(std::memory_order_acquire)) {
            // Cooperative memout: the solver unwound because we fired the
            // token.  Normalize the result and attach the structured record.
            out.result = SolveResult::Memout;
            if (!out.failure) {
                out.failure = {FailureKind::RssLimit, "rss-watchdog",
                               "process RSS exceeded " +
                                   std::to_string(opts.rssLimitBytes) + " bytes"};
            }
        } else if (opts.cancel && opts.cancel->cancelled() && !out.failure) {
            if (opts.cancel->reason() == CancelReason::Disconnected)
                out.failure = {FailureKind::ClientGone, "service", "client disconnected"};
            else
                out.failure = {FailureKind::Cancelled, "", "run cancelled"};
        }
    }
    return out;
}

std::vector<DegradationRung> defaultDegradationLadder()
{
    return {
        {"full", /*fraig=*/true, /*nodeLimitScale=*/1.0, /*bddBackend=*/false,
         /*backoffSeconds=*/0.0},
        {"no-fraig", /*fraig=*/false, /*nodeLimitScale=*/1.0, /*bddBackend=*/false,
         /*backoffSeconds=*/0.0},
        {"half-nodes", /*fraig=*/false, /*nodeLimitScale=*/0.5, /*bddBackend=*/false,
         /*backoffSeconds=*/0.01},
        {"bdd", /*fraig=*/false, /*nodeLimitScale=*/0.5, /*bddBackend=*/true,
         /*backoffSeconds=*/0.01},
    };
}

} // namespace hqs
