#include "src/runtime/thread_pool.hpp"

#include <algorithm>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"

namespace hqs {

ThreadPool::ThreadPool(std::size_t numThreads, std::size_t queueCapacity)
    : capacity_(std::max<std::size_t>(1, queueCapacity))
{
    const std::size_t n = std::max<std::size_t>(1, numThreads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    workReady_.notify_all();
    spaceReady_.notify_all();
    for (std::thread& t : workers_) t.join();
}

bool ThreadPool::submit(std::function<void()> job)
{
    const std::uint64_t now = HQS_OBS_ENABLED ? obs::detail::nowNs() : 0;
    std::size_t depth = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        spaceReady_.wait(lock, [this] { return stop_ || queue_.size() < capacity_; });
        if (stop_) return false;
        queue_.push_back({std::move(job), now});
        depth = queue_.size();
    }
    OBS_GAUGE_SET("pool.queue_depth", depth);
    OBS_GAUGE_MAX("pool.queue_depth.max", depth);
    workReady_.notify_one();
    return true;
}

void ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::vector<FailureInfo> ThreadPool::failures() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return failures_;
}

std::size_t ThreadPool::failedJobs() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return failures_.size();
}

std::size_t ThreadPool::queueDepth() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return queue_.size();
}

std::size_t ThreadPool::activeCount() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return active_;
}

void ThreadPool::workerLoop()
{
    for (;;) {
        QueuedJob job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workReady_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            // Drain-on-stop: keep taking jobs until the queue is empty, so
            // destruct-while-busy completes everything already accepted.
            if (queue_.empty()) return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
            OBS_GAUGE_SET("pool.queue_depth", queue_.size());
            OBS_GAUGE_SET("pool.active", active_);
            OBS_GAUGE_MAX("pool.active.max", active_);
        }
        spaceReady_.notify_one();
        if (job.enqueueNs != 0) {
            OBS_OBSERVE("pool.queue_latency_us",
                        (obs::detail::nowNs() - job.enqueueNs) / 1000);
        }
        FailureInfo failure;
        obs::clearDeathSite();
        try {
            fault::checkpoint("pool-dispatch");
            OBS_SPAN(jobSpan, "pool.job");
            job.fn();
        } catch (...) {
            // A throwing job marks itself failed; the worker survives to run
            // the rest of the queue.  Tag the failure with the innermost
            // span the exception unwound out of.
            failure = classifyException(std::current_exception());
            if (failure.site.empty()) failure.site = obs::deathSite();
            OBS_COUNT("pool.job_failures", 1);
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (failure) failures_.push_back(std::move(failure));
            --active_;
            OBS_GAUGE_SET("pool.active", active_);
            if (queue_.empty() && active_ == 0) allIdle_.notify_all();
        }
    }
}

ThreadPool& ThreadPool::sharedHelperPool()
{
    // Small and process-wide: helper jobs are short-lived leaves, so a
    // couple of workers suffice even when several solves overlap.  The
    // function-local static is intentionally leaked-at-exit-free (joined by
    // static destruction after main).
    static ThreadPool pool(
        std::clamp<std::size_t>(std::thread::hardware_concurrency() / 2, 1, 4), 256);
    return pool;
}

} // namespace hqs
