// The unified solve-request surface shared by every entry point.
//
// dqbf_solve, dqbf_batch, the portfolio, and the solver service each accept
// the same small set of budgets and an engine selector, but historically
// each hand-rolled its own parsing and validation — PR 4's review found the
// same non-finite-timeout bug twice in two parsers.  SolveRequest is the
// single place those options live now:
//
//   * the parse*() helpers convert header/flag text into typed values and
//     reject malformed text (trailing garbage, overflow) — but deliberately
//     accept any syntactically valid double, including "nan" and "inf";
//   * validate() is the one gate that rejects semantically invalid
//     requests (non-finite or negative budgets, unknown engines) with
//     structured, field-tagged errors every front end can render.
//
// Entry points construct a SolveRequest, call validate(), and only then
// translate it into engine options (HqsOptions, PortfolioOptions,
// GuardOptions...).  Nothing downstream of validate() re-checks budgets.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.hpp"

namespace hqs::api {

/// Engine selector parsed from a request's engine string.
struct EngineSpec {
    enum class Kind {
        Hqs,       ///< quantifier elimination (the paper's solver)
        HqsBdd,    ///< HQS with the BDD QBF backend ("hqs-bdd")
        Idq,       ///< instantiation-based baseline
        Expand,    ///< one-shot universal expansion
        Cegar,     ///< clausal abstraction with decision lists
        Portfolio, ///< race the default engine lineup ("portfolio[:N]")
    };
    Kind kind = Kind::Hqs;
    std::size_t portfolioEngines = 0; ///< lineup cap; 0 = all (Portfolio only)
};

const char* toString(EngineSpec::Kind kind);

/// Coarse engine-family taxonomy for win/loss accounting: "elimination"
/// (hqs, hqs-bdd — the paper's quantifier-elimination family),
/// "instantiation" (idq, expand), "cegar" (clausal abstraction), or
/// "portfolio" for the meta-engine itself.
const char* engineFamily(EngineSpec::Kind kind);

/// "hqs" | "hqs-bdd" | "idq" | "expand" | "cegar" | "portfolio" |
/// "portfolio:N" (empty selects hqs, the service default).  nullopt on
/// anything else.
std::optional<EngineSpec> parseEngineSpec(const std::string& text);

/// One structured validation failure: which request field, and why.
struct RequestError {
    std::string field;
    std::string message;
};

/// A validated solve request: formula source plus budgets and toggles.
struct SolveRequest {
    /// Where the formula comes from — a path, "-" for stdin, or a
    /// front-end-specific tag (the service uses the request id).  Purely
    /// descriptive; the caller loads the text itself.
    std::string source;

    std::string engine = "hqs";  ///< see parseEngineSpec
    double timeoutSeconds = 0;   ///< wall-clock budget; 0 = none
    std::size_t rssLimitBytes = 0; ///< cooperative-memout watchdog; 0 = off
    std::size_t nodeLimit = 0;   ///< live-AIG-node / ground-clause budget
    bool stats = false;          ///< emit statistics with the verdict
    bool trace = false;          ///< record span traces
    bool certify = false;        ///< extract a Skolem certificate on SAT
    /// Result-cache control: "" (strategy decides) | "on" | "off" |
    /// "bypass" (skip the read, refresh the entry).  validate() rejects
    /// anything else.
    std::string cacheControl;
    /// Named strategy spec to solve under ("" = the deployment default).
    /// The grammar is validated here; whether the name is *known* is the
    /// front end's check, since it owns the spec table.
    std::string strategy;
    /// Input format: "" (sniff the content: a leading '#' means DQCIR) |
    /// "dqdimacs" | "dqcir".  validate() rejects anything else.
    std::string format;

    // ----- v2 session fields (JSONL protocol ops; see DESIGN.md §12) -----
    /// Session op: "" (stateless solve) | "open" | "delta" | "solve" |
    /// "close".  Everything below requires a non-empty op.
    std::string op;
    /// Target session id ("s-1", ...).  Required for delta/solve/close;
    /// must stay empty for open (the service allocates the id).
    std::string session;
    /// Delta payload (op "delta"): clause group to append with its clauses
    /// (DIMACS text, "1 -2 0"), group to retract, DQCIR gate replacement.
    std::string addGroup;
    std::string deltaClauses;
    std::string retractGroup;
    std::string gate;
    /// Assumption literals for this solve only (ops "delta"/"solve").
    std::string assume;

    /// Semantic validation: every violated rule yields one field-tagged
    /// error (empty vector = valid).  The only place in the tree that
    /// rejects non-finite or negative budgets.
    std::vector<RequestError> validate() const;

    /// parseEngineSpec(engine).
    std::optional<EngineSpec> parsedEngine() const { return parseEngineSpec(engine); }

    /// First validation error rendered as "field: message", or "" if valid.
    std::string firstError() const;
};

/// Outcome summary an entry point can render uniformly.
struct SolveReport {
    SolveResult result = SolveResult::Unknown;
    std::string engine;          ///< engine (or portfolio winner) that decided
    double wallMilliseconds = 0;
    std::string failure;         ///< structured failure text; empty when clean
};

// ----- text -> value helpers (syntax only; validate() judges semantics) ----

/// Full-string parses; false on trailing garbage, overflow, or empty text.
bool parseSeconds(const std::string& text, double* out);
/// Milliseconds text (HTTP `timeout-ms` header) into seconds.
bool parseMilliseconds(const std::string& text, double* outSeconds);
/// Megabytes text (HTTP `rss-limit-mb` header / --rss-limit=MB) into bytes.
bool parseMegabytes(const std::string& text, std::size_t* outBytes);
/// Unsigned integer, full string.
bool parseSize(const std::string& text, std::size_t* out);

// ----- the one request-ingress table ---------------------------------------
//
// HTTP headers, JSONL fields, and CLI flags historically each hand-rolled
// the same field parsing; requestFields() is now the single table that
// names every request field per surface and owns its text -> value
// conversion, so spellings, types, and error messages cannot drift.  The
// old per-path spellings survive one release as deprecated aliases that
// still parse but tag the response with a field warning.

/// Which ingress surface a request arrived on (selects field spellings).
enum class RequestSurface { Http, Jsonl, Cli };

/// One request field across all three surfaces.  Empty spelling = the
/// field is not exposed on that surface (session ops are JSONL-only).
struct RequestFieldSpec {
    const char* canonical;       ///< v2 JSONL spelling — the field's identity
    const char* http;            ///< header name ("" = not exposed over HTTP)
    const char* cli;             ///< flag stem, used as "--<cli>=..." ("" = none)
    const char* deprecatedJsonl; ///< pre-v2 JSONL alias ("" = none)
    const char* deprecatedHttp;  ///< pre-v2 header alias ("" = none)
    /// Parse @p text into the request; false on malformed text.
    bool (*apply)(SolveRequest&, const std::string&);
};

const std::vector<RequestFieldSpec>& requestFields();

/// A value arrived under a deprecated spelling; front ends surface these in
/// the response (JSONL "deprecated":[...] array / HTTP Deprecation header).
struct FieldWarning {
    std::string field;   ///< the deprecated spelling the client used
    std::string message; ///< "use <canonical> instead"
};

/// Raw field text by spelling; nullopt when the request has no such field.
using FieldGetter = std::function<std::optional<std::string>(const std::string&)>;

/// Fill @p out from the table: for every field exposed on @p surface, pull
/// its text through @p get — canonical spelling first, deprecated alias as
/// the one-release fallback (appending a FieldWarning when used) — and
/// apply it.  Returns "" on success or the first "malformed <spelling>"
/// problem; semantics are still validate()'s job.
std::string parseRequestFields(SolveRequest& out, RequestSurface surface,
                               const FieldGetter& get,
                               std::vector<FieldWarning>* warnings);

/// CLI shim over the table: handles "--<cli>=<value>" (plus bare
/// "--certify") for every field with a CLI spelling.  Returns true when
/// @p arg matched a table flag; a parse failure fills @p problem.
bool applyCliRequestFlag(SolveRequest& out, const std::string& arg,
                         std::string* problem);

} // namespace hqs::api
