#include "src/runtime/batch.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <thread>

#include "src/base/timer.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/runtime/thread_pool.hpp"

namespace hqs {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
void writeJsonString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

struct SolveOutcome {
    SolveResult result = SolveResult::Unknown;
    std::string engine;
};

SolveOutcome solveOnce(const DqbfFormula& f, const BatchOptions& opts, bool degraded)
{
    const std::size_t nodeLimit =
        degraded ? std::max<std::size_t>(1, opts.nodeLimit / 2) : opts.nodeLimit;
    const Deadline deadline =
        Deadline::in(opts.jobTimeoutSeconds).withCancel(opts.cancel);
    if (opts.portfolio) {
        PortfolioOptions popts;
        popts.maxEngines = opts.portfolioEngines;
        popts.deadline = deadline;
        popts.nodeLimit = nodeLimit;
        popts.engines = PortfolioSolver::defaultEngines(nodeLimit, /*fraig=*/!degraded);
        PortfolioSolver solver(popts);
        SolveOutcome out;
        out.result = solver.solve(f);
        out.engine = solver.stats().winnerName;
        return out;
    }
    HqsOptions hopts;
    hopts.nodeLimit = nodeLimit;
    hopts.deadline = deadline;
    hopts.fraig = !degraded;
    HqsSolver solver(hopts);
    SolveOutcome out;
    out.result = solver.solve(f);
    out.engine = "hqs";
    return out;
}

} // namespace

void writeJsonl(const BatchJobResult& r, std::ostream& os)
{
    os << "{\"instance\":";
    writeJsonString(os, r.instance);
    os << ",\"result\":";
    writeJsonString(os, toString(r.result));
    os << ",\"wall_ms\":" << r.wallMilliseconds;
    os << ",\"engine\":";
    writeJsonString(os, r.engine);
    os << ",\"attempts\":" << r.attempts;
    os << ",\"degraded\":" << (r.degraded ? "true" : "false");
    if (!r.error.empty()) {
        os << ",\"error\":";
        writeJsonString(os, r.error);
    }
    os << "}\n";
}

std::vector<std::string> BatchScheduler::collectInstances(const std::string& dir)
{
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        if (entry.path().extension() == ".dqdimacs") files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::vector<BatchJobResult> BatchScheduler::run(const std::vector<std::string>& files,
                                                std::ostream* jsonl)
{
    std::vector<BatchJobResult> results(files.size());
    std::size_t workers = opts_.numWorkers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    // A portfolio job spawns its own racer threads; sharding the batch wide
    // AND racing wide oversubscribes, but that is the caller's knob to turn.

    std::mutex outMu;
    {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < files.size(); ++i) {
            pool.submit([&, i] {
                BatchJobResult& r = results[i];
                r.instance = files[i];
                Timer t;
                if (opts_.cancel.cancelled()) {
                    r.result = SolveResult::Timeout;
                    r.error = "cancelled before start";
                } else {
                    DqbfFormula formula;
                    bool parsed = false;
                    try {
                        formula = DqbfFormula::fromParsed(parseDqdimacsFile(files[i]));
                        parsed = true;
                    } catch (const std::exception& e) {
                        r.result = SolveResult::Unknown;
                        r.error = e.what();
                    }
                    if (parsed) {
                        SolveOutcome out = solveOnce(formula, opts_, /*degraded=*/false);
                        r.attempts = 1;
                        if (out.result == SolveResult::Memout && opts_.retryOnMemout &&
                            !opts_.cancel.cancelled()) {
                            out = solveOnce(formula, opts_, /*degraded=*/true);
                            r.attempts = 2;
                            r.degraded = true;
                        }
                        r.result = out.result;
                        r.engine = out.engine;
                        if (opts_.cancel.cancelled() && !isConclusive(r.result))
                            r.error = "batch cancelled";
                    }
                }
                r.wallMilliseconds = t.elapsedMilliseconds();
                if (jsonl) {
                    std::lock_guard<std::mutex> lock(outMu);
                    writeJsonl(r, *jsonl);
                    jsonl->flush();
                }
            });
        }
        pool.wait();
    }
    return results;
}

} // namespace hqs
