#include "src/runtime/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "src/base/timer.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/circuit/dqcir_parser.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/obs/obs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/runtime/session.hpp"
#include "src/runtime/thread_pool.hpp"

namespace hqs {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
void writeJsonString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

/// Extract the JSON string value following `"key":` in @p line (as written
/// by writeJsonString).  Returns false when the key is absent or the value
/// is torn (unterminated — a killed writer mid-line).
bool readJsonStringField(const std::string& line, const std::string& key, std::string& out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t start = line.find(needle);
    if (start == std::string::npos) return false;
    out.clear();
    std::size_t i = start + needle.size();
    while (i < line.size()) {
        const char c = line[i];
        if (c == '"') return true;
        if (c == '\\') {
            if (i + 1 >= line.size()) return false;
            const char esc = line[i + 1];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    // Only \u00XX is ever produced by writeJsonString.
                    if (i + 5 >= line.size()) return false;
                    const std::string hex = line.substr(i + 2, 4);
                    out.push_back(static_cast<char>(std::stoul(hex, nullptr, 16)));
                    i += 4;
                    break;
                }
                default: return false;
            }
            i += 2;
        } else {
            out.push_back(c);
            ++i;
        }
    }
    return false; // ran off the end inside the string: torn line
}

/// Extract the JSON number following `"key":` in @p line.  Returns false
/// when the key is absent or not followed by a number.
bool readJsonNumberField(const std::string& line, const std::string& key, double& out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t start = line.find(needle);
    if (start == std::string::npos) return false;
    const char* begin = line.c_str() + start + needle.size();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    out = v;
    return true;
}

/// Is @p path a circuit-form (DQCIR) instance?  Decided by extension — the
/// batch collects files by extension, so content sniffing never applies.
bool isDqcirPath(const std::string& path)
{
    return std::filesystem::path(path).extension() == ".dqcir";
}

/// Parse one instance in either input format.  DQCIR lowers through the
/// circuit/Tseitin front end into the same ParsedQdimacs shape.
ParsedQdimacs parseInstanceFile(const std::string& path)
{
    if (isDqcirPath(path)) return lowerDqcir(parseDqcirFile(path));
    return parseDqdimacsFile(path);
}

/// Distill a finished race into the per-family JSONL block: winner family
/// plus each family's most conclusive result.
BatchJobFamilies collectFamilies(const PortfolioStats& stats)
{
    auto rank = [](SolveResult r) {
        switch (r) {
            case SolveResult::Sat:
            case SolveResult::Unsat: return 3;
            case SolveResult::Timeout: return 2;
            case SolveResult::Memout: return 1;
            default: return 0;
        }
    };
    BatchJobFamilies out;
    out.winner = stats.winnerFamily;
    for (const EngineRunStats& es : stats.engines) {
        if (es.family.empty()) continue;
        auto it = std::find_if(out.raced.begin(), out.raced.end(),
                               [&](const auto& p) { return p.first == es.family; });
        if (it == out.raced.end()) {
            out.raced.emplace_back(es.family, toString(es.result));
        } else if (const std::optional<SolveResult> prev =
                       solveResultFromString(it->second);
                   !prev || rank(es.result) > rank(*prev)) {
            it->second = toString(es.result);
        }
    }
    return out;
}

struct SolveOutcome {
    SolveResult result = SolveResult::Unknown;
    std::string engine;
    FailureInfo failure;
    BatchJobMetrics metrics;
    BatchJobCertificate certificate;
    BatchJobFamilies families;
    /// Serialized certificate artifact of the verdict (empty when not
    /// certifying or the winning engine could not certify) — what the
    /// result cache stores alongside the verdict.
    std::string certificateText;
};

/// Judge a serialized certificate through the independent parser/checker
/// and record the outcome — the batch-side self-check before a row claims
/// its SAT verdict is certified.
void checkSerializedCertificate(BatchJobCertificate& c, const std::string& text,
                                const Deadline& deadline)
{
    c.present = true;
    cert::Certificate parsed;
    std::string detail;
    const cert::CheckStatus st = cert::parseCertificateString(text, parsed, detail);
    cert::CheckResult res;
    if (st == cert::CheckStatus::Ok) {
        res = cert::checkCertificate(parsed, deadline);
    } else {
        res.status = st;
        res.detail = std::move(detail);
    }
    c.valid = res.ok();
    c.status = cert::toString(res.status);
    c.checkMs = res.checkMs;
    c.sizeNodes = static_cast<std::int64_t>(res.sizeNodes);
    if (!c.valid) OBS_COUNT("cert.selfcheck_fail", 1);
}

/// Distill one job's registry scope into the JSONL metric fields.
BatchJobMetrics collectJobMetrics(const obs::MetricScope& scope)
{
    using obs::MetricKind;
    auto counter = [&](const char* name) {
        return scope.value(obs::metric(name, MetricKind::Counter));
    };
    BatchJobMetrics m;
    m.preprocessMs = static_cast<double>(counter("phase.preprocess.us")) / 1000.0;
    m.elimMs = static_cast<double>(counter("phase.elim_exists.us") +
                                   counter("phase.elim_universal.us") +
                                   counter("phase.unit_pure.us")) /
               1000.0;
    m.qbfMs = static_cast<double>(counter("phase.qbf.us")) / 1000.0;
    m.fraigMs = static_cast<double>(counter("phase.fraig.us")) / 1000.0;
    m.peakAigNodes = scope.value(obs::metric("aig.peak_cone", MetricKind::Gauge));
    m.eliminations = counter("hqs.elim.universal") + counter("hqs.elim.existential") +
                     counter("hqs.elim.unit") + counter("hqs.elim.pure") +
                     counter("qbf.elim.universal") + counter("qbf.elim.existential");
    m.copies = counter("hqs.elim.copies");
    return m;
}

/// One guarded attempt at rung @p rung.
SolveOutcome solveAtRung(const std::string& path, const BatchOptions& opts,
                         const DegradationRung& rung)
{
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(opts.nodeLimit) * rung.nodeLimitScale);
    const std::size_t nodeLimit = opts.nodeLimit == 0 ? 0 : std::max<std::size_t>(1, scaled);

    GuardOptions gopts;
    gopts.deadline = Deadline::in(opts.jobTimeoutSeconds);
    gopts.cancel = opts.cancel;
    gopts.rssLimitBytes = opts.rssLimitBytes;

    SolveOutcome out;
    // All OBS_* updates of this attempt — including portfolio racer threads,
    // which bind to this scope — accumulate locally, become the job's JSONL
    // metric fields, and then merge into the enclosing registry.
    obs::MetricScope scope;
    const GuardedOutcome guarded = runGuarded(gopts, [&](const Deadline& dl) {
        // Parsing runs inside the guard too: a malformed instance becomes a
        // ParseError failure record, not a dead worker.  Re-parsing per rung
        // costs little against a solve and keeps attempts independent.
        const DqbfFormula formula = DqbfFormula::fromParsed(parseInstanceFile(path));
        if (opts.portfolio) {
            PortfolioOptions popts;
            popts.maxEngines = opts.portfolioEngines;
            popts.deadline = dl;
            popts.nodeLimit = nodeLimit;
            if (opts.strategy) {
                popts.engines = PortfolioSolver::enginesFromSpec(
                    *opts.strategy, nodeLimit, rung.fraig);
                popts.strategyName = opts.strategy->name;
            } else {
                popts.engines =
                    PortfolioSolver::defaultEngines(nodeLimit, rung.fraig);
            }
            popts.certify = opts.certify;
            PortfolioSolver solver(popts);
            const SolveResult r = solver.solve(formula);
            out.engine = solver.stats().winnerName;
            out.families = collectFamilies(solver.stats());
            if (solver.stats().failure) out.failure = solver.stats().failure;
            if (opts.certify && !solver.stats().winnerCertificate.empty()) {
                out.certificateText = solver.stats().winnerCertificate;
                checkSerializedCertificate(out.certificate,
                                           solver.stats().winnerCertificate, dl);
            }
            return r;
        }
        HqsOptions hopts;
        hopts.nodeLimit = nodeLimit;
        hopts.deadline = dl;
        hopts.fraig = rung.fraig;
        if (opts.fraigThresholdNodes != 0)
            hopts.fraigThresholdNodes = opts.fraigThresholdNodes;
        if (rung.bddBackend) hopts.backend = HqsOptions::Backend::BddElimination;
        // Certification needs the Skolem-recording AIG elimination run; BDD
        // fallback rungs answer uncertified rather than not at all.
        if (opts.certify && !rung.bddBackend) hopts.computeSkolem = true;
        HqsSolver solver(hopts);
        const SolveResult r = solver.solve(formula);
        out.engine = "hqs";
        if (r == SolveResult::Sat && hopts.computeSkolem && solver.skolemCertificate()) {
            Timer extractTimer;
            const cert::Certificate extracted =
                cert::extractCertificate(formula, *solver.skolemCertificate());
            const std::string text = cert::toCertificateString(extracted);
            out.certificate.extractMs = extractTimer.elapsedMilliseconds();
            out.certificateText = text;
            checkSerializedCertificate(out.certificate, text, dl);
        }
        return r;
    });
    out.result = guarded.result;
    if (guarded.failure) out.failure = guarded.failure;
    out.metrics = collectJobMetrics(scope);
    return out;
}

// ------------------------------------------------- session families --

/// Filename stem up to the last '_' (directory and extension stripped):
/// "bench/ripple_3.dqdimacs" -> "ripple".  "" when the name has no usable
/// '_' — such files never join a session family.
std::string familyStem(const std::string& path)
{
    const std::string name = std::filesystem::path(path).stem().string();
    const std::size_t us = name.rfind('_');
    if (us == std::string::npos || us == 0) return {};
    return name.substr(0, us);
}

/// Identical quantifier structure — the precondition for sharing a session
/// base across a family (the base reuses the first member's prefix).
bool samePrefix(const ParsedQdimacs& a, const ParsedQdimacs& b)
{
    if (a.matrix.numVars() != b.matrix.numVars()) return false;
    if (a.blocks.size() != b.blocks.size() || a.henkin.size() != b.henkin.size())
        return false;
    for (std::size_t i = 0; i < a.blocks.size(); ++i)
        if (a.blocks[i].kind != b.blocks[i].kind || a.blocks[i].vars != b.blocks[i].vars)
            return false;
    for (std::size_t i = 0; i < a.henkin.size(); ++i)
        if (a.henkin[i].var != b.henkin[i].var || a.henkin[i].deps != b.henkin[i].deps)
            return false;
    return true;
}

/// Canonical multiset key of one clause (sorted DIMACS literals).
std::string clauseKey(const Clause& c)
{
    std::vector<int> lits;
    lits.reserve(c.size());
    for (const Lit& l : c) lits.push_back(l.toDimacs());
    std::sort(lits.begin(), lits.end());
    std::string key;
    for (const int v : lits) {
        key += std::to_string(v);
        key += ' ';
    }
    return key;
}

/// One validated session family: the base formula (clause-multiset
/// intersection under the shared prefix) and each member's delta clauses.
struct SessionFamily {
    std::string stem;
    std::vector<std::size_t> members; ///< indices into the input file list
    std::string baseText;             ///< DQDIMACS of the shared base
    std::vector<std::string> deltaClauses; ///< per member, DIMACS "l.. 0" text
};

/// Validate one stem group into a SessionFamily: every member must parse
/// and share the first member's prefix, otherwise the group falls back to
/// cold solves (nullopt).
std::optional<SessionFamily> buildFamily(const std::vector<std::string>& files,
                                         std::string stem,
                                         std::vector<std::size_t> members)
{
    std::vector<ParsedQdimacs> parsed;
    parsed.reserve(members.size());
    for (const std::size_t i : members) {
        try {
            parsed.push_back(parseInstanceFile(files[i]));
        } catch (const std::exception&) {
            return std::nullopt;
        }
        if (parsed.size() > 1 && !samePrefix(parsed.front(), parsed.back()))
            return std::nullopt;
    }
    // Base = per-key minimum occurrence count across all members.
    std::unordered_map<std::string, std::size_t> baseCount;
    for (const Clause& c : parsed.front().matrix.clauses()) ++baseCount[clauseKey(c)];
    for (std::size_t m = 1; m < parsed.size(); ++m) {
        std::unordered_map<std::string, std::size_t> count;
        for (const Clause& c : parsed[m].matrix.clauses()) ++count[clauseKey(c)];
        for (auto& [key, n] : baseCount) {
            const auto it = count.find(key);
            n = std::min(n, it == count.end() ? std::size_t{0} : it->second);
        }
    }
    SessionFamily fam;
    fam.stem = std::move(stem);
    fam.members = std::move(members);
    ParsedQdimacs base;
    base.blocks = parsed.front().blocks;
    base.henkin = parsed.front().henkin;
    base.matrix.ensureVars(parsed.front().matrix.numVars());
    std::unordered_map<std::string, std::size_t> used;
    for (const Clause& c : parsed.front().matrix.clauses()) {
        const std::string key = clauseKey(c);
        if (used[key]++ < baseCount[key]) base.matrix.addClause(c);
    }
    fam.baseText = toDqdimacsString(base);
    // Each member's delta: its clauses beyond the base multiset.
    for (const ParsedQdimacs& p : parsed) {
        std::unordered_map<std::string, std::size_t> seen;
        std::string delta;
        for (const Clause& c : p.matrix.clauses()) {
            if (seen[clauseKey(c)]++ < baseCount[clauseKey(c)]) continue;
            for (const Lit& l : c) {
                delta += std::to_string(l.toDimacs());
                delta += ' ';
            }
            delta += "0 ";
        }
        fam.deltaClauses.push_back(std::move(delta));
    }
    return fam;
}

/// Should the ladder advance past an attempt that ended like @p out?
/// Resource exhaustion and crash-style failures are retryable at a cheaper
/// rung; parse errors and cancellations are terminal.
bool rungRetryable(const SolveOutcome& out)
{
    if (isConclusive(out.result)) return false;
    if (out.result == SolveResult::Memout) return true;
    switch (out.failure.kind) {
        case FailureKind::BadAlloc:
        case FailureKind::InjectedFault:
        case FailureKind::EngineError: return true;
        default: return false;
    }
}

} // namespace

std::string toJsonlLine(const BatchJobResult& r)
{
    std::ostringstream os;
    os << "{\"instance\":";
    writeJsonString(os, r.instance);
    os << ",\"result\":";
    writeJsonString(os, toString(r.result));
    os << ",\"wall_ms\":" << r.wallMilliseconds;
    os << ",\"engine\":";
    writeJsonString(os, r.engine);
    os << ",\"attempts\":" << r.attempts;
    os << ",\"degraded\":" << (r.degraded ? "true" : "false");
    if (!r.rung.empty()) {
        os << ",\"rung\":";
        writeJsonString(os, r.rung);
    }
    if (!r.dedupOf.empty()) {
        os << ",\"dedup_of\":";
        writeJsonString(os, r.dedupOf);
    }
    if (r.cached) os << ",\"cached\":true";
    if (!r.sessionGroup.empty()) {
        os << ",\"session\":{\"group\":";
        writeJsonString(os, r.sessionGroup);
        os << ",\"components\":" << r.sessionComponents
           << ",\"reused\":" << r.sessionReused
           << ",\"cone_nodes_saved\":" << r.sessionConeNodesSaved << '}';
    }
    if (r.failure) {
        os << ",\"failure\":{\"kind\":";
        writeJsonString(os, toString(r.failure.kind));
        os << ",\"site\":";
        writeJsonString(os, r.failure.site);
        os << ",\"what\":";
        writeJsonString(os, r.failure.what);
        os << '}';
    }
    if (!r.error.empty()) {
        os << ",\"error\":";
        writeJsonString(os, r.error);
    }
    if (r.metrics.any()) {
        const BatchJobMetrics& m = r.metrics;
        os << ",\"metrics\":{\"preprocess_ms\":" << m.preprocessMs
           << ",\"elim_ms\":" << m.elimMs << ",\"qbf_ms\":" << m.qbfMs
           << ",\"fraig_ms\":" << m.fraigMs << ",\"peak_aig_nodes\":" << m.peakAigNodes
           << ",\"eliminations\":" << m.eliminations << ",\"copies\":" << m.copies
           << '}';
    }
    if (r.certificate.present) {
        const BatchJobCertificate& c = r.certificate;
        os << ",\"certificate\":{\"valid\":" << (c.valid ? "true" : "false")
           << ",\"status\":";
        writeJsonString(os, c.status);
        os << ",\"extract_ms\":" << c.extractMs << ",\"check_ms\":" << c.checkMs
           << ",\"size_nodes\":" << c.sizeNodes << '}';
    }
    if (r.families.any()) {
        os << ",\"families\":{\"winner\":";
        writeJsonString(os, r.families.winner);
        os << ",\"raced\":{";
        bool first = true;
        for (const auto& [family, result] : r.families.raced) {
            if (!first) os << ',';
            first = false;
            writeJsonString(os, family);
            os << ':';
            writeJsonString(os, result);
        }
        os << "}}";
    }
    os << "}\n";
    return std::move(os).str();
}

void writeJsonl(const BatchJobResult& r, std::ostream& os)
{
    // One formatted row, one write call: a row can be truncated by a kill
    // but never interleaved with a concurrent writer's row.
    const std::string row = toJsonlLine(r);
    os.write(row.data(), static_cast<std::streamsize>(row.size()));
}

bool readJsonl(const std::string& line, BatchJobResult& out)
{
    if (line.empty() || line.front() != '{' || line.back() != '}') return false;
    BatchJobResult r;
    if (!readJsonStringField(line, "instance", r.instance)) return false;
    std::string resultText;
    if (!readJsonStringField(line, "result", resultText)) return false;
    const std::optional<SolveResult> parsed = solveResultFromString(resultText);
    if (!parsed) return false;
    r.result = *parsed;
    readJsonStringField(line, "engine", r.engine);      // optional for resume
    readJsonStringField(line, "rung", r.rung);          // optional
    readJsonStringField(line, "dedup_of", r.dedupOf);   // optional
    r.cached = line.find("\"cached\":true") != std::string::npos;
    std::string kindText;
    if (readJsonStringField(line, "kind", kindText)) {
        for (FailureKind k : {FailureKind::ParseError, FailureKind::BadAlloc,
                              FailureKind::RssLimit, FailureKind::InjectedFault,
                              FailureKind::EngineError, FailureKind::Disagreement,
                              FailureKind::Cancelled, FailureKind::ClientGone}) {
            if (kindText == toString(k)) r.failure.kind = k;
        }
        readJsonStringField(line, "site", r.failure.site);
        readJsonStringField(line, "what", r.failure.what);
    }
    readJsonStringField(line, "error", r.error);
    double num = 0;
    if (readJsonNumberField(line, "wall_ms", num)) r.wallMilliseconds = num;
    if (readJsonNumberField(line, "preprocess_ms", num)) r.metrics.preprocessMs = num;
    if (readJsonNumberField(line, "elim_ms", num)) r.metrics.elimMs = num;
    if (readJsonNumberField(line, "qbf_ms", num)) r.metrics.qbfMs = num;
    if (readJsonNumberField(line, "fraig_ms", num)) r.metrics.fraigMs = num;
    if (readJsonNumberField(line, "peak_aig_nodes", num))
        r.metrics.peakAigNodes = static_cast<std::int64_t>(num);
    if (readJsonNumberField(line, "eliminations", num))
        r.metrics.eliminations = static_cast<std::int64_t>(num);
    if (readJsonNumberField(line, "copies", num))
        r.metrics.copies = static_cast<std::int64_t>(num);
    if (line.find("\"session\":{") != std::string::npos) {
        readJsonStringField(line, "group", r.sessionGroup);
        if (readJsonNumberField(line, "components", num))
            r.sessionComponents = static_cast<std::size_t>(num);
        if (readJsonNumberField(line, "reused", num))
            r.sessionReused = static_cast<std::size_t>(num);
        if (readJsonNumberField(line, "cone_nodes_saved", num))
            r.sessionConeNodesSaved = static_cast<std::int64_t>(num);
    }
    if (line.find("\"families\":{") != std::string::npos) {
        // Only the winner survives the round trip; `raced` is reporting
        // detail a resumed run does not need.
        readJsonStringField(line, "winner", r.families.winner);
    }
    if (line.find("\"certificate\":{") != std::string::npos) {
        r.certificate.present = true;
        r.certificate.valid = line.find("\"valid\":true") != std::string::npos;
        readJsonStringField(line, "status", r.certificate.status);
        if (readJsonNumberField(line, "extract_ms", num)) r.certificate.extractMs = num;
        if (readJsonNumberField(line, "check_ms", num)) r.certificate.checkMs = num;
        if (readJsonNumberField(line, "size_nodes", num))
            r.certificate.sizeNodes = static_cast<std::int64_t>(num);
    }
    out = std::move(r);
    return true;
}

std::vector<BatchJobResult> readJournal(std::istream& in)
{
    std::vector<BatchJobResult> entries;
    std::unordered_map<std::string, std::size_t> indexOf;
    std::string line;
    while (std::getline(in, line)) {
        BatchJobResult r;
        if (!readJsonl(line, r)) continue; // torn/garbage line: skip
        const auto [it, inserted] = indexOf.emplace(r.instance, entries.size());
        if (inserted) {
            entries.push_back(std::move(r));
        } else {
            entries[it->second] = std::move(r); // later run of the same instance wins
        }
    }
    return entries;
}

std::unordered_set<std::string> conclusiveInstances(const std::vector<BatchJobResult>& journal)
{
    std::unordered_set<std::string> done;
    for (const BatchJobResult& r : journal)
        if (isConclusive(r.result)) done.insert(r.instance);
    return done;
}

std::vector<std::string> BatchScheduler::collectInstances(const std::string& dir)
{
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const auto ext = entry.path().extension();
        if (ext == ".dqdimacs" || ext == ".dqcir")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::vector<BatchJobResult> BatchScheduler::run(const std::vector<std::string>& files,
                                                std::ostream* jsonl)
{
    std::vector<BatchJobResult> results(files.size());
    std::size_t workers = opts_.numWorkers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    // A portfolio job spawns its own racer threads; sharding the batch wide
    // AND racing wide oversubscribes, but that is the caller's knob to turn.

    const std::vector<DegradationRung> ladder =
        opts_.strategy ? opts_.strategy->ladder
        : opts_.ladder.empty() ? defaultDegradationLadder()
                               : opts_.ladder;

    // Canonical pre-scan, feeding both dedup (identical instances solve
    // once) and the result cache (lookup/store key + the certificate's
    // formula-hash binding).  A file that fails to parse here gets an empty
    // key and runs as its own job — the solve path will report the
    // ParseError with full context.
    struct ScanInfo {
        bool parsed = false;
        bool dqcir = false; ///< circuit-form instance: dedup yes, cache no
        cache::CanonicalKey key;
        std::uint64_t certHash = 0;
    };
    const cache::ResultCache* cacheConfigured = opts_.resultCache.get();
    const strategy::CachePolicy::Mode cacheMode =
        opts_.strategy ? opts_.strategy->cache.mode
                       : strategy::CachePolicy::Mode::On;
    const bool cacheRead = cacheConfigured &&
                           cacheMode == strategy::CachePolicy::Mode::On;
    const bool cacheWrite = cacheConfigured &&
                            cacheMode != strategy::CachePolicy::Mode::Off;
    const bool needScan =
        (opts_.dedup && files.size() > 1) || cacheRead || cacheWrite;
    std::vector<ScanInfo> scan(files.size());
    // repOf[i] == i: solve normally.  repOf[i] == j < i: copy row j.
    std::vector<std::size_t> repOf(files.size());
    std::vector<std::vector<std::size_t>> dupsOf(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) repOf[i] = i;

    // Session-group pre-pass: validate each filename-stem group into a
    // shared-base family.  Members solve through one Session below and skip
    // dedup, the cache, and the ladder; invalid groups fall back to cold.
    std::vector<char> viaSession(files.size(), 0);
    std::vector<SessionFamily> sessionFamilies;
    if (opts_.sessionGroup) {
        std::unordered_map<std::string, std::vector<std::size_t>> byStem;
        std::vector<std::string> stemOrder;
        for (std::size_t i = 0; i < files.size(); ++i) {
            if (isDqcirPath(files[i])) continue;
            const std::string stem = familyStem(files[i]);
            if (stem.empty()) continue;
            auto [it, inserted] = byStem.try_emplace(stem);
            if (inserted) stemOrder.push_back(stem);
            it->second.push_back(i);
        }
        for (const std::string& stem : stemOrder) {
            std::vector<std::size_t>& members = byStem[stem];
            if (members.size() < 2) continue;
            if (std::optional<SessionFamily> fam =
                    buildFamily(files, stem, std::move(members))) {
                for (const std::size_t i : fam->members) viaSession[i] = 1;
                sessionFamilies.push_back(std::move(*fam));
            }
        }
    }

    if (needScan) {
        std::unordered_map<cache::CanonicalKey, std::size_t> firstWithKey;
        for (std::size_t i = 0; i < files.size(); ++i) {
            if (viaSession[i]) continue;
            try {
                const ParsedQdimacs parsed = parseInstanceFile(files[i]);
                scan[i].key = cache::canonicalKey(parsed);
                scan[i].certHash = cert::formulaHash(parsed);
                scan[i].parsed = true;
                scan[i].dqcir = isDqcirPath(files[i]);
            } catch (const std::exception&) {
                continue;
            }
            if (opts_.dedup) {
                const auto [it, inserted] =
                    firstWithKey.emplace(scan[i].key, i);
                if (!inserted) {
                    repOf[i] = it->second;
                    dupsOf[it->second].push_back(i);
                }
            }
        }
    }
    rungStats_.assign(ladder.size(), RungStats{});
    for (std::size_t i = 0; i < ladder.size(); ++i) rungStats_[i].name = ladder[i].name;

    // Session families solve sequentially, one Session per family: open on
    // the shared base, then add-group/solve/retract per member so untouched
    // connected components reuse their cached verdicts (and Skolem
    // functions) across the whole delta family.
    for (const SessionFamily& fam : sessionFamilies) {
        std::unique_ptr<Session> session;
        std::string openError;
        try {
            session = std::make_unique<Session>(fam.stem, fam.baseText, "dqdimacs");
        } catch (const std::exception& e) {
            openError = e.what();
        }
        for (std::size_t m = 0; m < fam.members.size(); ++m) {
            const std::size_t i = fam.members[m];
            BatchJobResult& r = results[i];
            r.instance = files[i];
            r.sessionGroup = fam.stem;
            r.engine = "hqs";
            r.rung = "session";
            r.attempts = 1;
            Timer t;
            if (!openError.empty()) {
                r.failure = {FailureKind::EngineError, "session", openError};
            } else if (opts_.cancel.cancelled()) {
                r.result = SolveResult::Timeout;
                r.failure = {FailureKind::Cancelled, "batch", "cancelled before start"};
            } else {
                GuardOptions gopts;
                gopts.deadline = Deadline::in(opts_.jobTimeoutSeconds);
                gopts.cancel = opts_.cancel;
                gopts.rssLimitBytes = opts_.rssLimitBytes;
                SessionSolveOutcome outcome;
                const GuardedOutcome guarded = runGuarded(gopts, [&](const Deadline& dl) {
                    if (!fam.deltaClauses[m].empty()) {
                        SessionDelta delta;
                        delta.addGroup = "inst";
                        delta.addClauses = fam.deltaClauses[m];
                        session->applyDelta(delta);
                    }
                    SessionSolveOptions sopts;
                    sopts.deadline = dl;
                    sopts.nodeLimit = opts_.nodeLimit;
                    sopts.certify = opts_.certify;
                    outcome = session->solve(sopts);
                    return outcome.result;
                });
                if (!fam.deltaClauses[m].empty() && session) {
                    // Retract even when the solve failed; the next member
                    // must start from the clean base.  A delta that never
                    // committed (fault before the checkpoint) has no group.
                    try {
                        SessionDelta retract;
                        retract.retractGroup = "inst";
                        session->applyDelta(retract);
                    } catch (const std::exception&) {
                    }
                }
                r.result = guarded.result;
                r.failure = guarded.failure;
                r.sessionComponents = outcome.components;
                r.sessionReused = outcome.reusedComponents;
                r.sessionConeNodesSaved = outcome.coneNodesSaved;
                if (opts_.certify && guarded.result == SolveResult::Sat &&
                    !outcome.certificate.empty())
                    checkSerializedCertificate(r.certificate, outcome.certificate,
                                               gopts.deadline);
            }
            if (r.failure && r.error.empty()) r.error = r.failure.what;
            r.wallMilliseconds = t.elapsedMilliseconds();
            if (jsonl) {
                writeJsonl(r, *jsonl);
                jsonl->flush();
            }
        }
    }

    std::mutex outMu; // serializes the JSONL stream and the rung counters
    {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < files.size(); ++i) {
            if (viaSession[i]) continue; // solved through its session family
            if (repOf[i] != i) continue; // row is filled by its representative
            pool.submit([&, i] {
                BatchJobResult& r = results[i];
                r.instance = files[i];
                Timer t;
                bool servedFromCache = false;
                // Circuit-form instances never touch the result cache: the
                // cache key is defined over the CNF canonicalization, and
                // Tseitin variable numbering is an implementation detail we
                // refuse to bake into persisted entries.  A typed counter
                // keeps the bypass observable.
                if (cacheRead && scan[i].dqcir)
                    OBS_COUNT("cache.bypass.format", 1);
                if (cacheRead && scan[i].parsed && !scan[i].dqcir &&
                    !opts_.cancel.cancelled()) {
                    try {
                        if (std::optional<cache::CacheEntry> entry =
                                opts_.resultCache->lookup(scan[i].key);
                            entry && isConclusive(entry->result)) {
                            r.result = entry->result;
                            r.engine = entry->engine;
                            r.rung = "cache";
                            r.cached = true;
                            r.attempts = 0;
                            // Re-verify the hash binding before touching the
                            // cached artifact; a mismatched certificate is
                            // withheld while the verdict still serves.
                            if (opts_.certify &&
                                cache::vetCachedCertificate(*entry,
                                                            scan[i].certHash) ==
                                    cache::CertReuse::Served) {
                                checkSerializedCertificate(
                                    r.certificate, entry->certificate,
                                    Deadline::in(opts_.jobTimeoutSeconds));
                            }
                            servedFromCache = true;
                        }
                    } catch (const std::exception&) {
                        // Cache-layer failure (real or injected): a miss,
                        // never a failed job.
                    }
                }
                if (servedFromCache) {
                    // Nothing to solve.
                } else if (opts_.cancel.cancelled()) {
                    r.result = SolveResult::Timeout;
                    r.failure = {FailureKind::Cancelled, "batch", "cancelled before start"};
                } else {
                    SolveOutcome out;
                    std::size_t rungIdx = 0;
                    for (;; ++rungIdx) {
                        const DegradationRung& rung = ladder[rungIdx];
                        if (rung.backoffSeconds > 0 && rungIdx > 0) {
                            std::this_thread::sleep_for(std::chrono::duration<double>(
                                rung.backoffSeconds));
                        }
                        out = solveAtRung(files[i], opts_, rung);
                        {
                            std::lock_guard<std::mutex> lock(outMu);
                            RungStats& rs = rungStats_[rungIdx];
                            ++rs.attempts;
                            if (isConclusive(out.result)) ++rs.conclusive;
                            if (out.result == SolveResult::Memout) ++rs.memouts;
                            if (out.failure) ++rs.failures;
                        }
#if HQS_OBS_ENABLED
                        {
                            // Per-rung outcome counters (dynamic names, so
                            // the OBS_COUNT static-id cache does not apply).
                            using obs::MetricKind;
                            obs::Registry& reg = obs::currentRegistry();
                            const std::string base = "batch.rung." + rung.name;
                            reg.add(obs::metric(base + ".attempts",
                                                MetricKind::Counter), 1);
                            if (isConclusive(out.result))
                                reg.add(obs::metric(base + ".conclusive",
                                                    MetricKind::Counter), 1);
                            if (out.result == SolveResult::Memout)
                                reg.add(obs::metric(base + ".memouts",
                                                    MetricKind::Counter), 1);
                            if (out.failure)
                                reg.add(obs::metric(base + ".failures",
                                                    MetricKind::Counter), 1);
                            if (opts_.strategy) {
                                const std::string sbase =
                                    "strategy.rung." + rung.name;
                                reg.add(obs::metric(sbase + ".attempts",
                                                    MetricKind::Counter), 1);
                                if (isConclusive(out.result))
                                    reg.add(obs::metric(sbase + ".conclusive",
                                                        MetricKind::Counter), 1);
                            }
                        }
#endif
                        r.attempts = static_cast<unsigned>(rungIdx + 1);
                        if (rungIdx + 1 >= ladder.size() || !rungRetryable(out) ||
                            opts_.cancel.cancelled()) {
                            break;
                        }
                    }
                    r.result = out.result;
                    r.engine = out.engine;
                    r.failure = out.failure;
                    r.metrics = out.metrics;
                    r.certificate = out.certificate;
                    r.families = out.families;
                    r.rung = ladder[rungIdx].name;
                    r.degraded = rungIdx > 0;
                    if (opts_.cancel.cancelled() && !isConclusive(r.result) && !r.failure)
                        r.failure = {FailureKind::Cancelled, "batch", "batch cancelled"};
                    if (cacheWrite && scan[i].parsed && !scan[i].dqcir &&
                        isConclusive(r.result)) {
                        try {
                            cache::CacheEntry entry;
                            entry.result = r.result;
                            entry.engine = r.engine;
                            entry.solveMilliseconds = t.elapsedMilliseconds();
                            entry.certFormulaHash = scan[i].certHash;
                            entry.certificate = out.certificateText;
                            opts_.resultCache->store(scan[i].key, entry);
                        } catch (const std::exception&) {
                            // A cache write failure never taints the verdict.
                        }
                    }
                }
                if (r.failure && r.error.empty()) r.error = r.failure.what;
                r.wallMilliseconds = t.elapsedMilliseconds();
                // Fan the representative's row out to its duplicates.  Each
                // dup index belongs to exactly this job, so the copies race
                // nothing; only the JSONL stream needs the lock.
                for (std::size_t j : dupsOf[i]) {
                    results[j] = r;
                    results[j].instance = files[j];
                    results[j].dedupOf = files[i];
                }
                if (jsonl) {
                    std::lock_guard<std::mutex> lock(outMu);
                    writeJsonl(r, *jsonl);
                    for (std::size_t j : dupsOf[i]) writeJsonl(results[j], *jsonl);
                    jsonl->flush();
                }
            });
        }
        pool.wait();
    }
    return results;
}

} // namespace hqs
