// Portfolio racing over DQBF engine configurations.
//
// HQS's elimination order, iDQ-style instantiation, and the alternative
// backends win on disjoint instance families, so racing complementary
// configurations on the same formula dominates any single engine: the
// portfolio answers as soon as the first engine returns a definitive
// Sat/Unsat, and cancels the rest through the CancelToken threaded into
// every solver's Deadline.  Losers unwind cooperatively at their next
// deadline check — no signals, no detached threads left running.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/runtime/api.hpp"
#include "src/runtime/guard.hpp"
#include "src/strategy/spec.hpp"

namespace hqs {

/// One racer: a named engine configuration.  run() receives its own copy of
/// the formula and a Deadline that already carries this racer's CancelToken;
/// it must poll the deadline and return Timeout once it expires.
struct PortfolioEngine {
    std::string name;
    std::function<SolveResult(const DqbfFormula&, const Deadline&)> run;
    /// Optional certifying variant: like run(), but on Sat additionally
    /// serializes a Skolem certificate artifact into *certOut.  Engines that
    /// cannot certify (BDD backend, idq, expand) leave this empty; the race
    /// falls back to run() for them even under PortfolioOptions::certify.
    std::function<SolveResult(const DqbfFormula&, const Deadline&, std::string* certOut)>
        runCertify;
    /// Engine family (api::engineFamily) for win/loss accounting; "" when
    /// the caller hand-rolled the lineup and did not care.  Last member so
    /// pre-existing positional {name, run, runCertify} initializers keep
    /// compiling.
    std::string family;
};

struct PortfolioOptions {
    /// Race only the first N engines of the configured list (0 = all).
    std::size_t maxEngines = 0;
    /// Global wall-clock budget shared by every racer.
    Deadline deadline = Deadline::unlimited();
    /// Per-engine AIG-node / ground-clause budget (0 = none), applied when
    /// building the default engine list.
    std::size_t nodeLimit = 0;
    /// Engine list; empty means PortfolioSolver::defaultEngines(nodeLimit).
    std::vector<PortfolioEngine> engines;
    /// External kill switch for the whole race (batch scheduler shutdown).
    /// When set, a monitor thread forwards it to every racer mid-run.
    std::optional<CancelToken> cancel;
    /// Ask certificate-capable racers to extract Skolem certificates on Sat.
    /// Also arms the disagreement tie-breaker: contradictory verdicts are
    /// re-judged by the independent certificate checker when a certificate
    /// is available, instead of unconditionally degrading to Unknown.
    bool certify = false;
    /// Name of the strategy spec the engine lineup came from ("" when the
    /// lineup is hard-wired).  Non-empty arms the strategy.rung.* metrics:
    /// one .races counter per rung raced, one .wins counter for the rung
    /// whose verdict was served.
    std::string strategyName;
};

/// Outcome of a single racer within one solve() call.
struct EngineRunStats {
    std::string name;
    std::string family; ///< engine family of this racer ("" when unset)
    SolveResult result = SolveResult::Unknown;
    double elapsedMilliseconds = 0.0;
    /// Time from the winner's cancel broadcast to this engine returning;
    /// 0 for the winner itself and for engines that finished before the
    /// broadcast.
    double cancelLatencyMilliseconds = 0.0;
    bool winner = false;
    /// Structured record of the exception this racer died on (kind None for
    /// a racer that returned normally).
    FailureInfo failure;
    /// Serialized certificate artifact (empty unless this racer returned Sat
    /// under PortfolioOptions::certify with a certificate-capable engine).
    std::string certificate;
    /// Independent checker's verdict on this racer's certificate, when it
    /// was consulted to break a disagreement ("ok", "refuted", ...).
    std::string certCheck;
};

struct PortfolioStats {
    std::vector<EngineRunStats> engines;
    std::string winnerName;            ///< empty when no engine was definitive
    std::string winnerFamily;          ///< family of the winner ("" when none)
    /// The winner's serialized certificate (empty when not certifying or the
    /// winning engine cannot certify).
    std::string winnerCertificate;
    double totalMilliseconds = 0.0;
    /// Two racers returned contradictory definitive answers — a solver bug.
    /// Without a certificate the race then reports Unknown (never a
    /// coin-flip verdict) and `failure` names the contradicting engines.
    /// When a Sat racer produced a certificate, the independent checker
    /// re-judges it and its verdict breaks the tie; `failure.site` becomes
    /// "portfolio.certcheck" and `failure.what` names the vindicated engine.
    bool disagreement = false;
    /// Race-level failure: Disagreement, or Cancelled when the external
    /// kill switch fired before any verdict.
    FailureInfo failure;
};

class PortfolioSolver {
public:
    explicit PortfolioSolver(PortfolioOptions opts = {}) : opts_(std::move(opts)) {}

    /// Race all engines on @p f; first definitive Sat/Unsat wins and cancels
    /// the rest.  With no definitive answer: Timeout if any racer timed out,
    /// else Memout if any hit a resource budget, else Unknown.
    SolveResult solve(const DqbfFormula& f);

    const PortfolioStats& stats() const { return stats_; }

    /// The standard racer lineup, in priority order: HQS/maxsat (the paper's
    /// configuration), HQS/greedy selection, HQS with the BDD backend, the
    /// iDQ-style instantiation solver, and single-call expansion SAT (which
    /// sits out instances with too many universals).  @p fraig = false is the
    /// batch scheduler's degraded memout-retry configuration.
    static std::vector<PortfolioEngine> defaultEngines(std::size_t nodeLimit = 0,
                                                       bool fraig = true);

    /// Translate a validated strategy spec's engine rungs into runnable
    /// racers.  Per rung, the request node budget is scaled by
    /// nodeLimitScale and FRAIG is the AND of the rung flag and @p fraig
    /// (so a degraded ladder rung can force sweeping off across the whole
    /// lineup).  defaultEngines() is exactly
    /// enginesFromSpec(strategy::defaultStrategySpec(), ...).
    static std::vector<PortfolioEngine> enginesFromSpec(
        const strategy::StrategySpec& spec, std::size_t nodeLimit = 0,
        bool fraig = true);

    /// Translate a *validated* api::SolveRequest into portfolio options:
    /// timeout -> deadline, node limit, and the portfolio:N lineup cap.
    /// Precondition: request.validate() returned no errors.  Callers racing
    /// under an outer guard overwrite the deadline with the guarded one.
    static PortfolioOptions optionsFromRequest(const api::SolveRequest& request);

private:
    /// Re-judge a Sat-vs-Unsat contradiction with the independent
    /// certificate checker.  Returns Sat or Unsat when a certificate settles
    /// the tie (stats_ updated: vindicated winner, failure record with site
    /// "portfolio.certcheck"), Unknown when no certificate is conclusive.
    SolveResult judgeDisagreement(const std::string& contradiction);

    PortfolioOptions opts_;
    PortfolioStats stats_;
};

} // namespace hqs
