#include "src/circuit/dqcir_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/base/fault.hpp"
#include "src/circuit/tseitin.hpp"

namespace hqs {
namespace {

bool isNameChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A name or '-'name reference on a DQCIR line.
struct DqcirLit {
    std::string name;
    bool negated = false;
};

/// Tokenized `head(arg, arg, ...)` line; gate lines carry `target`.
struct DqcirLine {
    std::string target; ///< empty for prefix/output lines
    std::string head;   ///< keyword or gate operator
    std::vector<DqcirLit> args;
};

class LineLexer {
public:
    LineLexer(const std::string& text, unsigned lineNo)
        : text_(text), lineNo_(lineNo)
    {
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw ParseError("dqcir line " + std::to_string(lineNo_) + ": " + what);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string name()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < text_.size() && isNameChar(text_[pos_])) ++pos_;
        if (pos_ == start) fail("expected a variable or gate name");
        return text_.substr(start, pos_ - start);
    }

    DqcirLit literal()
    {
        DqcirLit l;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
            l.negated = true;
        }
        l.name = name();
        return l;
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;
    unsigned lineNo_;
};

/// Tokenize one non-comment line into head(args) or target = head(args).
DqcirLine tokenizeLine(const std::string& text, unsigned lineNo)
{
    LineLexer lex(text, lineNo);
    DqcirLine line;
    std::string first = lex.name();
    if (lex.consume('=')) {
        line.target = std::move(first);
        line.head = lex.name();
    } else {
        line.head = std::move(first);
    }
    if (!lex.consume('(')) lex.fail("expected '(' after \"" + line.head + "\"");
    if (!lex.consume(')')) {
        do {
            line.args.push_back(lex.literal());
        } while (lex.consume(','));
        if (!lex.consume(')')) lex.fail("missing ')'");
    }
    if (!lex.atEnd()) lex.fail("trailing text after ')'");
    return line;
}

class DqcirParser {
public:
    ParsedDqcir parse(std::istream& in)
    {
        fault::checkpoint("dqcir-parse");
        std::string raw;
        unsigned lineNo = 0;
        bool sawHeader = false;
        while (std::getline(in, raw)) {
            ++lineNo;
            const std::string text = stripped(raw);
            if (text.empty()) continue;
            if (text[0] == '#') {
                if (!sawHeader && isHeader(text)) sawHeader = true;
                continue; // later '#' lines are comments
            }
            if (!sawHeader)
                throw ParseError("dqcir: missing #QCIR-G14 header line");
            handleLine(tokenizeLine(text, lineNo), lineNo);
        }
        if (!sawHeader) throw ParseError("dqcir: missing #QCIR-G14 header line");
        if (!sawOutput_) throw ParseError("dqcir: missing output(...) line");
        return std::move(result_);
    }

private:
    [[noreturn]] static void fail(unsigned lineNo, const std::string& what)
    {
        throw ParseError("dqcir line " + std::to_string(lineNo) + ": " + what);
    }

    static std::string stripped(const std::string& raw)
    {
        std::size_t b = 0, e = raw.size();
        while (b < e && std::isspace(static_cast<unsigned char>(raw[b]))) ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(raw[e - 1]))) --e;
        return raw.substr(b, e - b);
    }

    static bool isHeader(const std::string& text)
    {
        return text.rfind("#QCIR", 0) == 0 || text.rfind("#qcir", 0) == 0;
    }

    Circuit::NodeId resolve(const DqcirLit& l, unsigned lineNo)
    {
        auto it = nodeOf_.find(l.name);
        if (it == nodeOf_.end())
            fail(lineNo, "undefined variable \"" + l.name + "\"");
        Circuit::NodeId n = it->second;
        if (l.negated) {
            auto cached = notOf_.find(n);
            if (cached != notOf_.end()) return cached->second;
            const Circuit::NodeId inv = result_.circuit.notGate(n);
            notOf_.emplace(n, inv);
            return inv;
        }
        return n;
    }

    void declare(const std::string& name, Circuit::NodeId node, unsigned lineNo)
    {
        if (!nodeOf_.emplace(name, node).second)
            fail(lineNo, "variable \"" + name + "\" already declared");
    }

    std::size_t declareInput(const std::string& name, bool universal,
                             std::vector<std::size_t> deps, unsigned lineNo)
    {
        DqcirInput input;
        input.name = name;
        input.node = result_.circuit.addInput(name);
        input.universal = universal;
        input.deps = std::move(deps);
        declare(name, input.node, lineNo);
        result_.inputs.push_back(std::move(input));
        return result_.inputs.size() - 1;
    }

    void handleLine(const DqcirLine& line, unsigned lineNo)
    {
        if (line.target.empty() &&
            (line.head == "forall" || line.head == "exists" ||
             line.head == "depend" || line.head == "free")) {
            if (sawOutput_ || result_.gateCount > 0)
                fail(lineNo, "quantifier line after output/gates");
            handleQuantifier(line, lineNo);
            return;
        }
        if (line.target.empty() && line.head == "output") {
            if (sawOutput_) fail(lineNo, "duplicate output(...) line");
            if (line.args.size() != 1)
                fail(lineNo, "output(...) takes exactly one literal");
            outputLit_ = line.args[0];
            sawOutput_ = true;
            return;
        }
        if (line.target.empty())
            fail(lineNo, "unknown directive \"" + line.head + "\"");
        handleGate(line, lineNo);
    }

    void handleQuantifier(const DqcirLine& line, unsigned lineNo)
    {
        for (const DqcirLit& a : line.args)
            if (a.negated) fail(lineNo, "negated variable in quantifier prefix");
        if (line.head == "forall") {
            for (const DqcirLit& a : line.args) {
                const std::size_t idx = declareInput(a.name, true, {}, lineNo);
                universalIdx_.push_back(idx);
            }
        } else if (line.head == "exists") {
            // QBF semantics: depend on every universal declared so far.
            for (const DqcirLit& a : line.args)
                declareInput(a.name, false, universalIdx_, lineNo);
        } else if (line.head == "free") {
            for (const DqcirLit& a : line.args)
                declareInput(a.name, false, {}, lineNo);
        } else { // depend(v, x1, ..., xk)
            if (line.args.empty())
                fail(lineNo, "depend(...) needs a target variable");
            std::vector<std::size_t> deps;
            deps.reserve(line.args.size() - 1);
            for (std::size_t i = 1; i < line.args.size(); ++i) {
                const std::string& dep = line.args[i].name;
                auto it = inputIdxOf_.find(dep);
                if (it == inputIdxOf_.end() || !result_.inputs[it->second].universal)
                    fail(lineNo, "depend(...) on non-universal \"" + dep + "\"");
                deps.push_back(it->second);
            }
            declareInput(line.args[0].name, false, std::move(deps), lineNo);
        }
        // Keep the by-name index in sync with the inputs just added.
        while (indexedInputs_ < result_.inputs.size()) {
            inputIdxOf_.emplace(result_.inputs[indexedInputs_].name, indexedInputs_);
            ++indexedInputs_;
        }
    }

    void handleGate(const DqcirLine& line, unsigned lineNo)
    {
        if (!sawOutput_) fail(lineNo, "gate definition before output(...)");
        std::vector<Circuit::NodeId> fanins;
        fanins.reserve(line.args.size());
        for (const DqcirLit& a : line.args) fanins.push_back(resolve(a, lineNo));

        Circuit::NodeId node;
        if (line.head == "and") {
            node = fanins.empty() ? result_.circuit.constant(true)
                                  : result_.circuit.gate(GateOp::And, std::move(fanins));
        } else if (line.head == "or") {
            node = fanins.empty() ? result_.circuit.constant(false)
                                  : result_.circuit.gate(GateOp::Or, std::move(fanins));
        } else if (line.head == "xor") {
            if (fanins.size() != 2)
                fail(lineNo, "xor(...) takes exactly two literals");
            node = result_.circuit.gate(GateOp::Xor, std::move(fanins));
        } else if (line.head == "ite") {
            if (fanins.size() != 3)
                fail(lineNo, "ite(...) takes exactly three literals");
            // ite(c, t, e) = (c and t) or (-c and e), expanded structurally.
            Circuit& c = result_.circuit;
            const Circuit::NodeId thenArm = c.gate2(GateOp::And, fanins[0], fanins[1]);
            const Circuit::NodeId notC = resolveNot(fanins[0]);
            const Circuit::NodeId elseArm = c.gate2(GateOp::And, notC, fanins[2]);
            node = c.gate2(GateOp::Or, thenArm, elseArm);
        } else {
            fail(lineNo, "unknown gate \"" + line.head + "\"");
        }
        declare(line.target, node, lineNo);
        ++result_.gateCount;
    }

    Circuit::NodeId resolveNot(Circuit::NodeId n)
    {
        auto cached = notOf_.find(n);
        if (cached != notOf_.end()) return cached->second;
        const Circuit::NodeId inv = result_.circuit.notGate(n);
        notOf_.emplace(n, inv);
        return inv;
    }

public:
    /// Resolve the recorded output literal once all gates are defined.
    void finishOutput(ParsedDqcir& parsed)
    {
        auto it = nodeOf_.find(outputLit_.name);
        if (it == nodeOf_.end())
            throw ParseError("dqcir: output references undefined variable \"" +
                             outputLit_.name + "\"");
        parsed.outputNode = it->second;
        parsed.outputNegated = outputLit_.negated;
    }

private:
    ParsedDqcir result_;
    std::unordered_map<std::string, Circuit::NodeId> nodeOf_;
    std::unordered_map<std::string, std::size_t> inputIdxOf_;
    std::unordered_map<Circuit::NodeId, Circuit::NodeId> notOf_;
    std::vector<std::size_t> universalIdx_;
    std::size_t indexedInputs_ = 0;
    DqcirLit outputLit_;
    bool sawOutput_ = false;
};

} // namespace

ParsedDqcir parseDqcir(std::istream& in)
{
    DqcirParser parser;
    ParsedDqcir parsed = parser.parse(in);
    parser.finishOutput(parsed);
    return parsed;
}

ParsedDqcir parseDqcirFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw ParseError("dqcir: cannot open file: " + path);
    return parseDqcir(in);
}

ParsedDqcir parseDqcirString(const std::string& text)
{
    std::istringstream in(text);
    return parseDqcir(in);
}

bool looksLikeDqcir(const std::string& text)
{
    std::size_t pos = 0;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos < text.size() && text[pos] == '#';
}

ParsedQdimacs lowerDqcir(const ParsedDqcir& parsed)
{
    ParsedQdimacs out;
    const Var numInputs = static_cast<Var>(parsed.inputs.size());
    out.matrix.ensureVars(numInputs);

    std::unordered_map<Circuit::NodeId, Var> fixed;
    fixed.reserve(parsed.inputs.size());
    for (Var i = 0; i < numInputs; ++i) fixed.emplace(parsed.inputs[i].node, i);

    Var next = numInputs;
    const std::vector<Var> nodeVar =
        tseitinEncode(parsed.circuit, out.matrix, fixed, [&next] { return next++; });
    out.matrix.addClause({Lit(nodeVar[parsed.outputNode], parsed.outputNegated)});

    PrefixBlockSpec universals{QuantKind::Forall, {}};
    for (Var i = 0; i < numInputs; ++i)
        if (parsed.inputs[i].universal) universals.vars.push_back(i);
    if (!universals.vars.empty()) out.blocks.push_back(std::move(universals));

    for (Var i = 0; i < numInputs; ++i) {
        const DqcirInput& input = parsed.inputs[i];
        if (input.universal) continue;
        DependencySpec spec;
        spec.var = i;
        spec.deps.reserve(input.deps.size());
        for (std::size_t dep : input.deps) spec.deps.push_back(static_cast<Var>(dep));
        std::sort(spec.deps.begin(), spec.deps.end());
        out.henkin.push_back(std::move(spec));
    }

    // Tseitin variables are functionally determined by the inputs, so an
    // innermost e-block (depends on every universal) is sound.
    if (next > numInputs) {
        PrefixBlockSpec gates{QuantKind::Exists, {}};
        gates.vars.reserve(next - numInputs);
        for (Var v = numInputs; v < next; ++v) gates.vars.push_back(v);
        out.blocks.push_back(std::move(gates));
    }
    return out;
}

} // namespace hqs
