#include "src/circuit/circuit.hpp"

#include <algorithm>

namespace hqs {

Circuit::NodeId Circuit::addNode(Node n)
{
    for (NodeId f : n.fanins) {
        assert(f < nodes_.size());
        (void)f;
    }
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(n));
    return id;
}

Circuit::NodeId Circuit::addInput(std::string name)
{
    const NodeId id = addNode(Node{GateOp::Input, {}, 0, 0, std::move(name)});
    inputs_.push_back(id);
    return id;
}

Circuit::NodeId Circuit::constant(bool value)
{
    return addNode(Node{value ? GateOp::Const1 : GateOp::Const0, {}, 0, 0, {}});
}

Circuit::NodeId Circuit::gate(GateOp op, std::vector<NodeId> fanins)
{
    assert(op != GateOp::Input && op != GateOp::BlackBoxOutput && op != GateOp::Const0 &&
           op != GateOp::Const1);
    assert((op != GateOp::Not && op != GateOp::Buf) || fanins.size() == 1);
    assert(!fanins.empty());
    return addNode(Node{op, std::move(fanins), 0, 0, {}});
}

Circuit::BoxId Circuit::addBlackBox(std::vector<NodeId> inputs, std::string name)
{
    for (NodeId f : inputs) {
        assert(f < nodes_.size());
        (void)f;
    }
    const BoxId id = static_cast<BoxId>(boxes_.size());
    boxes_.push_back(Box{std::move(inputs), {}, std::move(name)});
    return id;
}

Circuit::NodeId Circuit::blackBoxOutput(BoxId box)
{
    assert(box < boxes_.size());
    Node n{GateOp::BlackBoxOutput, boxes_[box].inputs, box, boxes_[box].outputs.size(), {}};
    const NodeId id = addNode(std::move(n));
    boxes_[box].outputs.push_back(id);
    return id;
}

void Circuit::addOutput(NodeId n, std::string name)
{
    assert(n < nodes_.size());
    outputs_.push_back(n);
    if (!name.empty()) nodes_[n].name = std::move(name);
}

std::size_t Circuit::numGates() const
{
    return static_cast<std::size_t>(
        std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) {
            return n.op != GateOp::Input && n.op != GateOp::BlackBoxOutput &&
                   n.op != GateOp::Const0 && n.op != GateOp::Const1;
        }));
}

bool evalGateOp(GateOp op, const std::vector<bool>& vals)
{
    switch (op) {
        case GateOp::And:
        case GateOp::Nand: {
            const bool a = std::all_of(vals.begin(), vals.end(), [](bool b) { return b; });
            return op == GateOp::And ? a : !a;
        }
        case GateOp::Or:
        case GateOp::Nor: {
            const bool a = std::any_of(vals.begin(), vals.end(), [](bool b) { return b; });
            return op == GateOp::Or ? a : !a;
        }
        case GateOp::Xor:
        case GateOp::Xnor: {
            bool a = false;
            for (bool b : vals) a = a != b;
            return op == GateOp::Xor ? a : !a;
        }
        case GateOp::Not:
            return !vals[0];
        case GateOp::Buf:
            return vals[0];
        case GateOp::Const0:
            return false;
        case GateOp::Const1:
            return true;
        case GateOp::Input:
        case GateOp::BlackBoxOutput:
            break;
    }
    assert(false && "evalGateOp: not a gate");
    return false;
}

std::vector<bool> Circuit::simulate(const std::vector<bool>& inputValues,
                                    const BoxFunction& boxFn) const
{
    assert(inputValues.size() == inputs_.size());
    std::vector<bool> value(nodes_.size(), false);
    std::size_t nextInput = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& n = nodes_[id];
        switch (n.op) {
            case GateOp::Input:
                value[id] = inputValues[nextInput++];
                break;
            case GateOp::BlackBoxOutput: {
                assert(boxFn && "simulating an incomplete circuit requires a box function");
                std::vector<bool> ins;
                ins.reserve(n.fanins.size());
                for (NodeId f : n.fanins) ins.push_back(value[f]);
                value[id] = boxFn(n.box, n.boxOutputIndex, ins);
                break;
            }
            default: {
                std::vector<bool> ins;
                ins.reserve(n.fanins.size());
                for (NodeId f : n.fanins) ins.push_back(value[f]);
                value[id] = evalGateOp(n.op, ins);
                break;
            }
        }
    }
    return value;
}

std::vector<bool> Circuit::evaluateOutputs(const std::vector<bool>& inputValues,
                                           const BoxFunction& boxFn) const
{
    const std::vector<bool> value = simulate(inputValues, boxFn);
    std::vector<bool> out;
    out.reserve(outputs_.size());
    for (NodeId o : outputs_) out.push_back(value[o]);
    return out;
}

} // namespace hqs
