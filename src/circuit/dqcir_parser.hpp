// Reader for DQCIR, the circuit-form DQBF input format: QCIR-G14 (the
// QBF Gallery circuit format) extended with `depend(...)` lines declaring
// Henkin dependency sets, mirroring the format pedantic-style CEGAR
// solvers consume.
//
//   #QCIR-G14
//   forall(x1, x2)
//   depend(y1, x1)          # existential y1 with D_y1 = {x1}
//   exists(y2)              # QBF semantics: depends on x1, x2
//   free(w)                 # existential with an empty dependency set
//   output(g2)
//   g1 = and(x1, -y1)
//   g2 = or(g1, -x2)
//
// Gates are and/or (n-ary, 0-ary constants), xor (binary), and ite
// (ternary, expanded structurally).  Operands are previously declared
// names, optionally negated with '-'; the gate list is therefore already
// in topological order.  Lines starting with '#' after the header are
// comments.
//
// The parser throws the same typed ParseError the DQDIMACS reader uses,
// one distinct message per corrupt-input branch (see tests/data/corrupt/
// dqcir_*.dqcir), and lowers through the existing Circuit/Tseitin path —
// no text round-trip: lowerDqcir() pins the quantified inputs to the
// leading CNF variables and Tseitin-encodes the gate cone directly, so the
// emitted clause patterns are exactly the ones the preprocessor's gate
// detection recognizes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/circuit/circuit.hpp"
#include "src/cnf/dimacs.hpp"

namespace hqs {

/// One quantified circuit input, in declaration order.  For existentials
/// `deps` holds the indices (into ParsedDqcir::inputs) of the universal
/// inputs the variable depends on; `exists()` variables get every
/// universal declared to their left, `free()` variables none.
struct DqcirInput {
    std::string name;
    Circuit::NodeId node = 0;
    bool universal = false;
    std::vector<std::size_t> deps;
};

/// Parse result: the gate DAG plus the quantified prefix over its inputs.
struct ParsedDqcir {
    Circuit circuit;
    std::vector<DqcirInput> inputs;
    Circuit::NodeId outputNode = 0;
    bool outputNegated = false;
    std::size_t gateCount = 0;
};

/// Parse DQCIR text.  Throws ParseError on malformed input; every error
/// branch has its own stable message prefix for the corrupt-corpus tests.
ParsedDqcir parseDqcir(std::istream& in);
ParsedDqcir parseDqcirFile(const std::string& path);
ParsedDqcir parseDqcirString(const std::string& text);

/// Content sniffing: true when @p text looks like a QCIR/DQCIR file
/// (first non-blank line is a '#QCIR' header) rather than (D)QDIMACS.
/// Cheap and read-only; the parser still validates properly.
bool looksLikeDqcir(const std::string& text);

/// Lower a parsed circuit into CNF form: quantified inputs become the
/// leading CNF variables (declaration order), the gate cone is
/// Tseitin-encoded on top, Tseitin variables join a trailing `e` block
/// (they depend on every universal — sound, since each is functionally
/// determined by the inputs), and the output literal is asserted as a
/// unit clause.  The result feeds DqbfFormula::fromParsed unchanged.
ParsedQdimacs lowerDqcir(const ParsedDqcir& parsed);

} // namespace hqs
