#include "src/circuit/families.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace hqs {
namespace {

using NodeId = Circuit::NodeId;

/// Shared builder context: each family builds spec (withBoxes = false) and
/// impl (withBoxes = true) from the same code path so the two circuits have
/// identical input/output order.
struct BuildMode {
    bool withBoxes;
    bool realizable;   ///< only meaningful when withBoxes
    unsigned boxes = 2;

    bool boxed(unsigned cell) const { return withBoxes && positions.contains(cell); }
    std::set<unsigned> positions; ///< boxed cell indices (cell-based families)
};

/// Spread @p k box positions over cells 1..n-1 (cell 0 stays a gate so the
/// first box sees a genuine internal chain signal).
std::set<unsigned> spreadPositions(unsigned n, unsigned k)
{
    std::set<unsigned> pos;
    if (n <= 1) return pos;
    k = std::min(k, n - 1);
    for (unsigned i = 0; i < k; ++i) {
        pos.insert(std::min(n - 1, 1 + (i * (n - 1)) / k));
    }
    return pos;
}

// ---------------------------------------------------------------------------
// adder: n-bit ripple-carry adder; two full-adder cells become black boxes.
// Unrealizable variant: the boxes lose their carry-in.
// ---------------------------------------------------------------------------
Circuit buildAdder(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) a[i] = c.addInput("a" + std::to_string(i));
    for (unsigned i = 0; i < n; ++i) b[i] = c.addInput("b" + std::to_string(i));
    NodeId carry = c.addInput("cin");

    std::vector<NodeId> sum(n);
    for (unsigned i = 0; i < n; ++i) {
        if (m.boxed(i)) {
            std::vector<NodeId> boxIns{a[i], b[i]};
            if (m.realizable) boxIns.push_back(carry);
            const auto box = c.addBlackBox(std::move(boxIns), "fa" + std::to_string(i));
            sum[i] = c.blackBoxOutput(box);
            carry = c.blackBoxOutput(box);
        } else {
            const NodeId axb = c.gate2(GateOp::Xor, a[i], b[i]);
            sum[i] = c.gate2(GateOp::Xor, axb, carry);
            const NodeId maj =
                c.gate2(GateOp::Or, c.gate2(GateOp::And, a[i], b[i]),
                        c.gate2(GateOp::And, axb, carry));
            carry = maj;
        }
    }
    for (unsigned i = 0; i < n; ++i) c.addOutput(sum[i], "s" + std::to_string(i));
    c.addOutput(carry, "cout");
    return c;
}

// ---------------------------------------------------------------------------
// bitcell: fixed-priority arbiter as a chain of bit cells [31]:
// grant_i = req_i & ~carry_i;  carry_{i+1} = carry_i | req_i.
// Two cells become black boxes; unrealizable: they lose the carry input.
// ---------------------------------------------------------------------------
Circuit buildBitcell(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> req(n);
    for (unsigned i = 0; i < n; ++i) req[i] = c.addInput("req" + std::to_string(i));
    NodeId carry = c.constant(false);

    std::vector<NodeId> grant(n);
    for (unsigned i = 0; i < n; ++i) {
        if (m.boxed(i)) {
            std::vector<NodeId> boxIns{req[i]};
            if (m.realizable) boxIns.push_back(carry);
            const auto box = c.addBlackBox(std::move(boxIns), "cell" + std::to_string(i));
            grant[i] = c.blackBoxOutput(box);
            carry = c.blackBoxOutput(box);
        } else {
            grant[i] = c.gate2(GateOp::And, req[i], c.notGate(carry));
            carry = c.gate2(GateOp::Or, carry, req[i]);
        }
    }
    for (unsigned i = 0; i < n; ++i) c.addOutput(grant[i], "gnt" + std::to_string(i));
    c.addOutput(carry, "busy");
    return c;
}

// ---------------------------------------------------------------------------
// lookahead: the same arbiter function computed with a two-level lookahead
// structure [31]: the low half produces a group request that gates the high
// half.  The two half-arbiters become black boxes; unrealizable: the high
// box loses the group-carry signal.
// ---------------------------------------------------------------------------
Circuit buildLookahead(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> req(n);
    for (unsigned i = 0; i < n; ++i) req[i] = c.addInput("req" + std::to_string(i));
    const unsigned h = n / 2;

    std::vector<NodeId> grant(n);
    NodeId groupAny = 0;
    if (m.withBoxes) {
        // Low half-box: sees its requests, produces grants + group-or.
        std::vector<NodeId> lowIns(req.begin(), req.begin() + h);
        const auto lowBox = c.addBlackBox(std::move(lowIns), "low");
        for (unsigned i = 0; i < h; ++i) grant[i] = c.blackBoxOutput(lowBox);
        groupAny = c.blackBoxOutput(lowBox);

        std::vector<NodeId> highIns(req.begin() + static_cast<int>(h), req.end());
        if (m.realizable) highIns.push_back(groupAny);
        const auto highBox = c.addBlackBox(std::move(highIns), "high");
        for (unsigned i = h; i < n; ++i) grant[i] = c.blackBoxOutput(highBox);
    } else {
        NodeId carry = c.constant(false);
        for (unsigned i = 0; i < h; ++i) {
            grant[i] = c.gate2(GateOp::And, req[i], c.notGate(carry));
            carry = c.gate2(GateOp::Or, carry, req[i]);
        }
        groupAny = carry;
        NodeId hcarry = groupAny;
        for (unsigned i = h; i < n; ++i) {
            grant[i] = c.gate2(GateOp::And, req[i], c.notGate(hcarry));
            hcarry = c.gate2(GateOp::Or, hcarry, req[i]);
        }
    }
    for (unsigned i = 0; i < n; ++i) c.addOutput(grant[i], "gnt" + std::to_string(i));
    c.addOutput(groupAny, "lowAny");
    return c;
}

// ---------------------------------------------------------------------------
// pec_xor: out = x0 XOR ... XOR x_{n-1} [15].  Implementation: the parity of
// each half comes from a black box and the halves are xor-ed together.
// Unrealizable: the high box does not see the last input.
// ---------------------------------------------------------------------------
Circuit buildPecXor(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> x(n);
    for (unsigned i = 0; i < n; ++i) x[i] = c.addInput("x" + std::to_string(i));

    NodeId out = 0;
    if (m.withBoxes) {
        // k segments, each contributing its parity from a black box.
        const unsigned k = std::max(2u, std::min(m.boxes, n / 2));
        std::vector<NodeId> parities;
        for (unsigned seg = 0; seg < k; ++seg) {
            const unsigned lo = (seg * n) / k;
            const unsigned hi = ((seg + 1) * n) / k;
            std::vector<NodeId> ins(x.begin() + lo, x.begin() + hi);
            // Unrealizable: the last segment's box cannot see its last input.
            if (!m.realizable && seg == k - 1) ins.pop_back();
            const auto box = c.addBlackBox(std::move(ins), "seg" + std::to_string(seg));
            parities.push_back(c.blackBoxOutput(box));
        }
        out = c.gate(GateOp::Xor, parities);
    } else {
        out = c.gate(GateOp::Xor, x);
    }
    c.addOutput(out, "parity");
    return c;
}

// ---------------------------------------------------------------------------
// z4: carry-skip-adder PEC in the spirit of the ISCAS-85 z4ml instances.
// The implementation computes the low block's carry and the whole high
// block inside black boxes (block-level boxes, unlike `adder`'s cell-level
// ones).  Unrealizable: the low box loses cin.
// ---------------------------------------------------------------------------
Circuit buildZ4(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) a[i] = c.addInput("a" + std::to_string(i));
    for (unsigned i = 0; i < n; ++i) b[i] = c.addInput("b" + std::to_string(i));
    const NodeId cin = c.addInput("cin");
    const unsigned h = n / 2;

    std::vector<NodeId> sum(n);
    NodeId cout = 0;
    auto rippleRange = [&](unsigned lo, unsigned hi, NodeId carry) {
        for (unsigned i = lo; i < hi; ++i) {
            const NodeId axb = c.gate2(GateOp::Xor, a[i], b[i]);
            sum[i] = c.gate2(GateOp::Xor, axb, carry);
            carry = c.gate2(GateOp::Or, c.gate2(GateOp::And, a[i], b[i]),
                            c.gate2(GateOp::And, axb, carry));
        }
        return carry;
    };

    if (m.withBoxes) {
        // Low block sums ripple normally, but the block carry-out comes from
        // a box over the whole low block.
        const NodeId lowCarry = rippleRange(0, h, cin);
        std::vector<NodeId> lowIns;
        for (unsigned i = 0; i < h; ++i) {
            lowIns.push_back(a[i]);
            lowIns.push_back(b[i]);
        }
        if (m.realizable) lowIns.push_back(cin);
        const auto lowBox = c.addBlackBox(std::move(lowIns), "skip");
        const NodeId blockCarry = c.blackBoxOutput(lowBox);
        (void)lowCarry; // replaced by the box in the implementation

        // High block entirely inside a second box.
        std::vector<NodeId> highIns;
        for (unsigned i = h; i < n; ++i) {
            highIns.push_back(a[i]);
            highIns.push_back(b[i]);
        }
        highIns.push_back(blockCarry);
        const auto highBox = c.addBlackBox(std::move(highIns), "highblk");
        for (unsigned i = h; i < n; ++i) sum[i] = c.blackBoxOutput(highBox);
        cout = c.blackBoxOutput(highBox);
    } else {
        const NodeId mid = rippleRange(0, h, cin);
        cout = rippleRange(h, n, mid);
    }
    for (unsigned i = 0; i < n; ++i) c.addOutput(sum[i], "s" + std::to_string(i));
    c.addOutput(cout, "cout");
    return c;
}

// ---------------------------------------------------------------------------
// comp: n-bit magnitude comparator (greater / equal), MSB-first chain.
// Two chain cells become black boxes; unrealizable: they lose the equal-so-
// far input.
// ---------------------------------------------------------------------------
Circuit buildComp(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<NodeId> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) a[i] = c.addInput("a" + std::to_string(i));
    for (unsigned i = 0; i < n; ++i) b[i] = c.addInput("b" + std::to_string(i));

    NodeId gt = c.constant(false);
    NodeId eq = c.constant(true);
    for (unsigned idx = 0; idx < n; ++idx) {
        const unsigned i = n - 1 - idx; // MSB first
        if (m.boxed(idx)) {
            std::vector<NodeId> boxIns{a[i], b[i], gt};
            if (m.realizable) boxIns.push_back(eq);
            const auto box = c.addBlackBox(std::move(boxIns), "cmp" + std::to_string(i));
            gt = c.blackBoxOutput(box);
            eq = c.blackBoxOutput(box);
        } else {
            const NodeId aiGtBi = c.gate2(GateOp::And, a[i], c.notGate(b[i]));
            const NodeId aiEqBi = c.gate2(GateOp::Xnor, a[i], b[i]);
            gt = c.gate2(GateOp::Or, gt, c.gate2(GateOp::And, eq, aiGtBi));
            eq = c.gate2(GateOp::And, eq, aiEqBi);
        }
    }
    c.addOutput(gt, "gt");
    c.addOutput(eq, "eq");
    return c;
}

// ---------------------------------------------------------------------------
// c432: priority interrupt controller in the spirit of ISCAS-85 C432:
// three groups of n request lines with enables; group 0 has priority; within
// a selected group the lowest line wins.  Two of the three within-group
// priority encoders become black boxes; unrealizable: they lose the
// group-select signal.
// ---------------------------------------------------------------------------
Circuit buildC432(unsigned n, BuildMode m)
{
    Circuit c;
    std::vector<std::vector<NodeId>> r(3, std::vector<NodeId>(n));
    std::vector<NodeId> en(3);
    for (unsigned g = 0; g < 3; ++g) {
        for (unsigned i = 0; i < n; ++i)
            r[g][i] = c.addInput("r" + std::to_string(g) + "_" + std::to_string(i));
        en[g] = c.addInput("en" + std::to_string(g));
    }

    // Group selection with priority 0 > 1 > 2.
    std::vector<NodeId> any(3), sel(3);
    for (unsigned g = 0; g < 3; ++g) any[g] = c.gate(GateOp::Or, r[g]);
    sel[0] = c.gate2(GateOp::And, any[0], en[0]);
    sel[1] = c.gate2(GateOp::And, c.gate2(GateOp::And, any[1], en[1]), c.notGate(sel[0]));
    sel[2] = c.gate2(GateOp::And, c.gate2(GateOp::And, any[2], en[2]),
                     c.gate2(GateOp::Nor, sel[0], sel[1]));

    // Within-group priority encoders; the last min(boxes, 3) groups become
    // black boxes (group 0 last, so two boxes leave the top-priority
    // encoder implemented as in the original instances).
    const unsigned numBoxed = m.withBoxes ? std::min(m.boxes, 3u) : 0;
    for (unsigned g = 0; g < 3; ++g) {
        const bool boxed = m.withBoxes && g >= 3 - numBoxed;
        if (boxed) {
            std::vector<NodeId> boxIns = r[g];
            if (m.realizable) boxIns.push_back(sel[g]);
            const auto box = c.addBlackBox(std::move(boxIns), "enc" + std::to_string(g));
            for (unsigned i = 0; i < n; ++i)
                c.addOutput(c.blackBoxOutput(box),
                            "ack" + std::to_string(g) + "_" + std::to_string(i));
        } else {
            NodeId blocked = c.constant(false);
            for (unsigned i = 0; i < n; ++i) {
                const NodeId win = c.gate2(GateOp::And, r[g][i], c.notGate(blocked));
                c.addOutput(c.gate2(GateOp::And, win, sel[g]),
                            "ack" + std::to_string(g) + "_" + std::to_string(i));
                blocked = c.gate2(GateOp::Or, blocked, r[g][i]);
            }
        }
    }
    return c;
}

} // namespace

std::string toString(Family f)
{
    switch (f) {
        case Family::Adder: return "adder";
        case Family::Bitcell: return "bitcell";
        case Family::Lookahead: return "lookahead";
        case Family::PecXor: return "pec_xor";
        case Family::Z4: return "z4";
        case Family::Comp: return "comp";
        case Family::C432: return "c432";
    }
    return "invalid";
}

std::vector<Family> allFamilies()
{
    return {Family::Adder,  Family::Bitcell, Family::Lookahead, Family::PecXor,
            Family::Z4,     Family::Comp,    Family::C432};
}

PecInstance makeInstance(Family family, unsigned width, bool realizable)
{
    return makeInstance(family, width, realizable, 2);
}

PecInstance makeInstance(Family family, unsigned width, bool realizable, unsigned boxes)
{
    assert(width >= 3 && boxes >= 2);
    auto build = [&](BuildMode mode) {
        mode.boxes = boxes;
        mode.positions = spreadPositions(width, boxes);
        switch (family) {
            case Family::Adder: return buildAdder(width, mode);
            case Family::Bitcell: return buildBitcell(width, mode);
            case Family::Lookahead: return buildLookahead(width, mode);
            case Family::PecXor: return buildPecXor(width, mode);
            case Family::Z4: return buildZ4(width, mode);
            case Family::Comp: return buildComp(width, mode);
            case Family::C432: return buildC432(width, mode);
        }
        return Circuit{};
    };
    PecInstance inst;
    inst.family = family;
    inst.name = toString(family) + "_w" + std::to_string(width) +
                (boxes != 2 ? "_b" + std::to_string(boxes) : "") +
                (realizable ? "_sat" : "_unsat");
    inst.spec = build(BuildMode{false, true, 2, {}});
    inst.impl = build(BuildMode{true, realizable, 2, {}});
    inst.expectedRealizable = realizable;
    assert(inst.spec.inputs().size() == inst.impl.inputs().size());
    assert(inst.spec.outputs().size() == inst.impl.outputs().size());
    return inst;
}

} // namespace hqs
