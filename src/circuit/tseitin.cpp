#include "src/circuit/tseitin.hpp"

namespace hqs {
namespace {

/// Emit clauses for O == AND(as) (O and as are literals).
void encodeAnd(Cnf& out, Lit o, const std::vector<Lit>& as)
{
    Clause big;
    big.push(o);
    for (Lit a : as) {
        out.addClause({~o, a});
        big.push(~a);
    }
    out.addClause(big);
}

/// Emit clauses for O == OR(as).
void encodeOr(Cnf& out, Lit o, const std::vector<Lit>& as)
{
    Clause big;
    big.push(~o);
    for (Lit a : as) {
        out.addClause({o, ~a});
        big.push(a);
    }
    out.addClause(big);
}

/// Emit clauses for O == a XOR b.
void encodeXor2(Cnf& out, Lit o, Lit a, Lit b)
{
    out.addClause({~o, a, b});
    out.addClause({~o, ~a, ~b});
    out.addClause({o, ~a, b});
    out.addClause({o, a, ~b});
}

} // namespace

std::vector<Var> tseitinEncode(const Circuit& c, Cnf& out,
                               const std::unordered_map<Circuit::NodeId, Var>& fixed,
                               const std::function<Var()>& freshVar)
{
    std::vector<Var> nodeVar(c.numNodes(), kNoVar);
    for (Circuit::NodeId id = 0; id < c.numNodes(); ++id) {
        auto pin = fixed.find(id);
        nodeVar[id] = (pin != fixed.end()) ? pin->second : freshVar();
        out.ensureVars(nodeVar[id] + 1);

        const GateOp op = c.op(id);
        if (op == GateOp::Input || op == GateOp::BlackBoxOutput) continue;

        const Lit o = Lit::pos(nodeVar[id]);
        std::vector<Lit> as;
        as.reserve(c.fanins(id).size());
        for (Circuit::NodeId f : c.fanins(id)) as.push_back(Lit::pos(nodeVar[f]));

        switch (op) {
            case GateOp::Const0:
                out.addClause({~o});
                break;
            case GateOp::Const1:
                out.addClause({o});
                break;
            case GateOp::And:
                encodeAnd(out, o, as);
                break;
            case GateOp::Nand:
                encodeAnd(out, ~o, as);
                break;
            case GateOp::Or:
                encodeOr(out, o, as);
                break;
            case GateOp::Nor:
                encodeOr(out, ~o, as);
                break;
            case GateOp::Not:
                out.addClause({~o, ~as[0]});
                out.addClause({o, as[0]});
                break;
            case GateOp::Buf:
                out.addClause({~o, as[0]});
                out.addClause({o, ~as[0]});
                break;
            case GateOp::Xor:
            case GateOp::Xnor: {
                // Fold the parity chain with fresh intermediates; the final
                // link targets o (complemented for XNOR).
                Lit acc = as[0];
                for (std::size_t i = 1; i + 1 < as.size(); ++i) {
                    const Var t = freshVar();
                    out.ensureVars(t + 1);
                    encodeXor2(out, Lit::pos(t), acc, as[i]);
                    acc = Lit::pos(t);
                }
                const Lit target = (op == GateOp::Xor) ? o : ~o;
                if (as.size() == 1) {
                    // Degenerate single-input parity: o == a (or ~a).
                    out.addClause({~target, acc});
                    out.addClause({target, ~acc});
                } else {
                    encodeXor2(out, target, acc, as.back());
                }
                break;
            }
            case GateOp::Input:
            case GateOp::BlackBoxOutput:
                break;
        }
    }
    return nodeVar;
}

} // namespace hqs
